#!/usr/bin/env python3
"""Quickstart: recommend XML indexes for a small database and workload.

Builds a TPoX-like database, defines a three-query workload (including the
paper's running examples Q1/Q2 from Section III), asks the advisor for a
recommendation, creates the recommended indexes for real, and shows that
the optimizer's execution plans actually use them.

Run:  python examples/quickstart.py
"""

from repro import Executor, IndexAdvisor, Workload
from repro.workloads import tpox


def main() -> None:
    # 1. Build a database: three collections of XML documents.
    db = tpox.build_database(
        num_securities=200, num_orders=100, num_customers=50, seed=7
    )
    print(f"database: {[f'{n} ({len(c)} docs)' for n, c in db.collections.items()]}")

    # 2. Define the workload.  Q1/Q2 are the paper's running examples.
    workload = Workload.from_statements(
        [
            # Paper Q1: return a security having the specified Symbol
            f"""for $sec in SECURITY('SDOC')/Security
                where $sec/Symbol = "{tpox.symbol_for(42)}"
                return $sec""",
            # Paper Q2: securities in a sector given a yield range
            """for $sec in SECURITY('SDOC')/Security[Yield>4.5]
               where $sec/SecInfo/*/Sector = "Energy"
               return <Security>{$sec/Name}</Security>""",
            # An order lookup by account
            """for $o in ORDER('ODOC')/FIXML/Order
               where $o/@Acct = "ACCT00017"
               return $o/Instrmt""",
        ]
    )

    # 3. Recommend an index configuration within a disk budget.
    advisor = IndexAdvisor(db, workload)
    print("\ncandidates enumerated by the optimizer (basic + generalized):")
    for candidate in advisor.candidates:
        print(f"  {candidate}  (~{candidate.size_bytes} bytes)")

    recommendation = advisor.recommend(
        budget_bytes=60_000, algorithm="greedy_heuristics"
    )
    print("\n" + recommendation.report())

    # 4. Create the indexes for real and run the workload through them.
    advisor.create_indexes(recommendation)
    executor = Executor(db)
    print("\nexecution with the recommended configuration:")
    for entry in workload:
        result = executor.execute(entry.statement)
        print(
            f"  rows={result.rows:<4} docs_examined={result.docs_examined:<5} "
            f"indexes={list(result.used_indexes) or 'none (scan)'}"
        )


if __name__ == "__main__":
    main()
