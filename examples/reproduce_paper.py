#!/usr/bin/env python3
"""Regenerate every table and figure of the paper's evaluation section.

Runs the drivers in :mod:`repro.experiments` at laptop scale and prints
the text version of each table/figure.  Pass experiment names to run a
subset:

    python examples/reproduce_paper.py               # everything
    python examples/reproduce_paper.py fig2 table3   # a subset

Available experiments: fig2 fig3 table3 table4 fig4 fig5 ablations
"""

import sys

from repro import Workload
from repro.experiments import ablations, fig2, fig3, fig4, fig5, table3, table4
from repro.workloads import synthetic, tpox

NUM_SECURITIES = 250
SEED = 42


def build():
    db = tpox.build_database(
        num_securities=NUM_SECURITIES, num_orders=250, num_customers=120, seed=SEED
    )
    workload = tpox.tpox_workload(num_securities=NUM_SECURITIES, seed=SEED)
    mixed = Workload(list(workload.entries))
    for query in synthetic.random_path_queries(db, "SDOC", 9, seed=5):
        mixed.add(query)
    return db, workload, mixed


def run_fig2(db, workload, mixed):
    rows, all_speedup = fig2.run(db, workload)
    print(fig2.format_rows(rows, all_speedup))


def run_fig3(db, workload, mixed):
    print(fig3.format_rows(fig3.run(db, workload)))


def run_table3(db, workload, mixed):
    print(table3.format_rows(table3.run(db)))


def run_table4(db, workload, mixed):
    print(table4.format_rows(table4.run(db, mixed)))


def run_fig4(db, workload, mixed):
    rows, all_speedup = fig4.run(db, mixed)
    print(fig4.format_rows(rows, all_speedup))


def run_fig5(db, workload, mixed):
    # fig5 creates real indexes; use a private, smaller database
    small_db = tpox.build_database(
        num_securities=150, num_orders=150, num_customers=80, seed=SEED
    )
    small_workload = tpox.tpox_workload(num_securities=150, seed=SEED)
    for query in synthetic.random_path_queries(small_db, "SDOC", 9, seed=5):
        small_workload.add(query)
    rows, secs, docs = fig5.run(small_db, small_workload)
    print(fig5.format_rows(rows, secs, docs))


def run_ablations(db, workload, mixed):
    print(ablations.format_optimizer_calls(
        ablations.run_optimizer_calls(db, workload)))
    print()
    print(ablations.format_beta_sweep(ablations.run_beta_sweep(db, mixed)))
    print()

    def workload_factory(frequency):
        return tpox.tpox_workload(
            num_securities=NUM_SECURITIES,
            seed=SEED,
            include_updates=frequency > 0,
            update_frequency=max(frequency, 1.0),
        )

    print(ablations.format_update_sweep(
        ablations.run_update_sweep(db, workload_factory)))


EXPERIMENTS = {
    "fig2": run_fig2,
    "fig3": run_fig3,
    "table3": run_table3,
    "table4": run_table4,
    "fig4": run_fig4,
    "fig5": run_fig5,
    "ablations": run_ablations,
}


def main() -> None:
    selected = sys.argv[1:] or list(EXPERIMENTS)
    unknown = [name for name in selected if name not in EXPERIMENTS]
    if unknown:
        raise SystemExit(
            f"unknown experiments {unknown}; choose from {sorted(EXPERIMENTS)}"
        )
    print("building the benchmark database...")
    db, workload, mixed = build()
    for name in selected:
        print(f"\n{'=' * 70}")
        EXPERIMENTS[name](db, workload, mixed)


if __name__ == "__main__":
    main()
