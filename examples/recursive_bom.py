#!/usr/bin/env python3
"""Index recommendation over recursive XML (bill of materials).

The paper singles out recursion as one of the things that make XML index
recommendation hard (Section I): a recursive tag occurs at many depths,
so a descendant-axis pattern matches unboundedly many rooted paths while
a specific pattern matches exactly one.  This example:

1. generates a bill-of-materials collection (``Part`` nesting ``Part``),
2. prints its DataGuide structural summary (recursion made visible),
3. recommends indexes for descendant-navigating queries, and
4. shows the depth-spanning index answering a query a top-level index
   cannot.

Run:  python examples/recursive_bom.py
"""

from repro import Executor, IndexAdvisor
from repro.storage.schema import build_dataguide, format_dataguide, recursive_tags
from repro.workloads import recursive


def main() -> None:
    db = recursive.build_database(num_parts=120, max_depth=4, seed=23)
    stats = db.runstats("PARTS")
    print(f"collection PARTS: {stats.doc_count} documents, "
          f"{len(stats.path_counts)} distinct rooted paths\n")

    guide = build_dataguide(stats)
    print("=== DataGuide (truncated to depth 4) ===")
    print(format_dataguide(guide, max_depth=4))
    print(f"\nrecursive tags: {', '.join(recursive_tags(guide))}")

    workload = recursive.recursive_workload(seed=23)
    advisor = IndexAdvisor(db, workload)
    print("\n=== Candidates (note the descendant-axis patterns) ===")
    for candidate in advisor.candidates:
        print(f"  {candidate}  (~{candidate.size_bytes} bytes)")

    recommendation = advisor.recommend(budget_bytes=300_000)
    print("\n" + recommendation.report())

    advisor.create_indexes(recommendation)
    executor = Executor(db)
    print("\n=== Execution ===")
    for entry in workload.queries():
        result = executor.execute(entry.statement)
        print(
            f"  rows={result.rows:<4} docs={result.docs_examined:<4} "
            f"entries={result.index_entries_scanned:<5} "
            f"indexes={list(result.used_indexes) or 'scan'}"
        )
    print(
        "\nThe /Part//Material-style indexes contain entries from every\n"
        "nesting depth, so one index serves the whole recursion; a\n"
        "top-level /Part/Material index could not answer the descendant\n"
        "queries at all."
    )


if __name__ == "__main__":
    main()
