#!/usr/bin/env python3
"""Update-aware index recommendation.

The advisor charges every candidate index the maintenance cost mc(x, s)
for the workload's insert/delete statements (Section III).  This example
sweeps the update rate of a mixed workload and shows the recommended
configuration shrinking: indexes whose query benefit no longer covers
their churn get dropped, and at extreme churn only the index that the
delete statements themselves use survives on the churning collection.

Run:  python examples/update_aware_tuning.py
"""

from repro import IndexAdvisor
from repro.workloads import tpox


def main() -> None:
    db = tpox.build_database(
        num_securities=250, num_orders=250, num_customers=120, seed=42
    )
    probe = IndexAdvisor(db, tpox.tpox_workload(num_securities=250, seed=42))
    budget = 2 * probe.all_index_configuration().size_bytes()

    print(f"{'update freq':>12} {'indexes':>8} {'on SDOC':>8} "
          f"{'size (B)':>10} {'benefit':>12}  configuration")
    for frequency in (0.0, 5.0, 50.0, 500.0, 5000.0):
        workload = tpox.tpox_workload(
            num_securities=250,
            seed=42,
            include_updates=frequency > 0,
            update_frequency=max(frequency, 1.0),
        )
        advisor = IndexAdvisor(db, workload)
        rec = advisor.recommend(budget_bytes=budget, algorithm="greedy_heuristics")
        sdoc = [c for c in rec.configuration if c.collection == "SDOC"]
        summary = ", ".join(str(c.pattern) for c in sdoc) or "(none)"
        print(
            f"{frequency:>12.0f} {len(rec.configuration):>8} {len(sdoc):>8} "
            f"{rec.search.size_bytes:>10} {rec.search.benefit:>12.1f}  "
            f"SDOC: {summary}"
        )

    print(
        "\nAs churn on SDOC rises, its indexes disappear -- except the one\n"
        "the delete statements use to find their victims, whose benefit\n"
        "grows with the update frequency just like its maintenance charge.\n"
        "Indexes on ODOC/CDOC (no updates there) are unaffected."
    )


if __name__ == "__main__":
    main()
