#!/usr/bin/env python3
"""Recommending general indexes that help queries you have not seen yet.

This is the paper's headline capability (Section V + VI-B, Figures 4/5):
train the advisor on a *partial* workload, and compare how well the
configurations recommended by top-down search (which prefers general
indexes) and greedy-with-heuristics (which over-fits the training
workload) serve the *full* workload -- including never-seen queries.

Run:  python examples/unseen_workloads.py
"""

from repro import IndexAdvisor, Optimizer, Workload
from repro.core.benefit import ConfigurationEvaluator
from repro.workloads import synthetic, tpox


def main() -> None:
    db = tpox.build_database(
        num_securities=200, num_orders=200, num_customers=100, seed=42
    )
    # The test workload: 11 TPoX queries + 9 synthetic ones (as in the
    # paper's 20-query experiment).
    test_workload = tpox.tpox_workload(num_securities=200, seed=42)
    for query in synthetic.random_path_queries(db, "SDOC", 9, seed=5):
        test_workload.add(query)

    reference = IndexAdvisor(db, test_workload)
    all_config = reference.all_index_configuration()
    all_speedup = reference.evaluate_configuration(all_config)
    budget = 2 * all_config.size_bytes()
    print(
        f"test workload: {len(test_workload)} queries; "
        f"All-Index speedup {all_speedup:.2f}x; budget {budget} B"
    )

    # Train on only the first 8 queries.
    training = test_workload.subset(8)
    print(f"\ntraining on the first {len(training)} queries only\n")

    for algorithm in ("topdown_lite", "greedy_heuristics"):
        advisor = IndexAdvisor(db, training)
        recommendation = advisor.recommend(budget_bytes=budget, algorithm=algorithm)
        evaluator = ConfigurationEvaluator(db, Optimizer(db), test_workload)
        speedup = evaluator.estimated_speedup(recommendation.configuration)
        print(f"=== {algorithm} ===")
        print(
            f"  {len(recommendation.configuration)} indexes "
            f"(general: {recommendation.search.general_count}, "
            f"specific: {recommendation.search.specific_count})"
        )
        for candidate in recommendation.configuration:
            print(f"    {candidate}")
        print(f"  speedup on the FULL 20-query workload: {speedup:.2f}x\n")

    print(
        "The general indexes (e.g. /Security//*) recommended by top-down\n"
        "search cover path expressions that never appeared in the training\n"
        "queries, so the unseen test queries can still use them -- that is\n"
        "why its full-workload speedup is far higher at equal budget."
    )


if __name__ == "__main__":
    main()
