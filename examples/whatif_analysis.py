#!/usr/bin/env python3
"""What-if analysis and workload compression.

Shows two facilities a DBA uses around the advisor proper:

* **workload compression** -- a raw statement stream with heavy repetition
  is folded into unique statements with frequencies (and optionally into
  literal-insensitive templates) before tuning;
* **what-if analysis** -- a candidate configuration is evaluated virtually
  (no index is built), reporting per-statement costs, plans, the indexes
  each plan would use, and any dead-weight indexes no plan touches.

Run:  python examples/whatif_analysis.py
"""

from repro import IndexAdvisor, Workload
from repro.core.compression import compress, compression_ratio
from repro.core.whatif import analyze
from repro.workloads import tpox


def main() -> None:
    db = tpox.build_database(
        num_securities=200, num_orders=100, num_customers=50, seed=21
    )

    # ------------------------------------------------------------------
    # 1. A raw "query log": lots of repeated point lookups.
    # ------------------------------------------------------------------
    raw = Workload.from_statements(
        [
            f"""for $s in X('SDOC')/Security
                where $s/Symbol = "{tpox.symbol_for(i % 7)}"
                return $s"""
            for i in range(40)
        ]
        + [
            """for $s in X('SDOC')/Security[Yield>4.5]
               where $s/SecInfo/*/Sector = "Energy"
               return $s/Name"""
        ]
    )
    exact = compress(raw)
    templates = compress(raw, by_template=True)
    print(f"raw workload        : {len(raw)} statements")
    print(f"exact compression   : {len(exact)} unique statements "
          f"({compression_ratio(raw, exact):.0%} removed)")
    print(f"template compression: {len(templates)} templates "
          f"({compression_ratio(raw, templates):.0%} removed)")
    for entry in templates:
        print(f"  freq={entry.frequency:>5.0f}  {entry.statement.describe()[:70]}")

    # ------------------------------------------------------------------
    # 2. Recommend on the compressed workload, then ask "what if?".
    # ------------------------------------------------------------------
    advisor = IndexAdvisor(db, exact)
    recommendation = advisor.recommend(budget_bytes=50_000)
    print(f"\nrecommended {len(recommendation.configuration)} indexes "
          f"(estimated speedup {recommendation.estimated_speedup:.2f}x)\n")

    report = analyze(db, exact, recommendation.configuration)
    print("=== What-if report (configuration evaluated virtually) ===")
    print(report.summary())

    # ------------------------------------------------------------------
    # 3. What-if on a deliberately bad configuration: dead weight shows up.
    # ------------------------------------------------------------------
    from repro.core.candidates import CandidateIndex
    from repro.core.config import IndexConfiguration
    from repro.storage.index import IndexValueType
    from repro.xpath import parse_pattern

    dead = CandidateIndex(
        parse_pattern("/Security/Price/Bid"), IndexValueType.NUMERIC, "SDOC"
    )
    dead.size_bytes = 5000
    bad = IndexConfiguration(list(recommendation.configuration) + [dead])
    bad_report = analyze(db, exact, bad)
    print("\n=== Same workload, configuration padded with a useless index ===")
    print(f"unused indexes: {bad_report.unused_indexes()}")


if __name__ == "__main__":
    main()
