#!/usr/bin/env python3
"""Index recommendation for cross-document join workloads.

TPoX's full workload joins FIXML orders and customer holdings to their
securities.  Join queries make *join-key* patterns indexable on both
collections: a join-key index turns a hash join (scan the inner side)
into an index nested-loop join (probe per outer row).  This example shows
the advisor discovering that.

Run:  python examples/join_tuning.py
"""

from repro import Executor, IndexAdvisor, Optimizer, Workload
from repro.workloads import tpox


def measure(db, workload, label):
    executor = Executor(db)
    total_docs = 0
    for entry in workload.queries():
        result = executor.execute(entry.statement)
        total_docs += result.docs_examined
        print(
            f"  rows={result.rows:<4} docs={result.docs_examined:<5} "
            f"indexes={list(result.used_indexes) or 'none'}"
        )
    print(f"  => {label}: {total_docs} documents examined\n")
    return total_docs


def main() -> None:
    db = tpox.build_database(
        num_securities=200, num_orders=250, num_customers=60, seed=42
    )
    workload = Workload.from_statements(
        tpox.tpox_join_queries(num_securities=200, seed=42)
    )
    print("=== Join workload ===")
    for entry in workload:
        print(f"  {entry.statement.describe()[:90]}")

    print("\n=== Execution without indexes (hash joins over scans) ===")
    before = measure(db, workload, "no indexes")

    advisor = IndexAdvisor(db, workload)
    print("=== Candidates (note join keys on BOTH collections) ===")
    for candidate in advisor.candidates.basics():
        print(f"  {candidate}  on {candidate.collection}")

    recommendation = advisor.recommend(budget_bytes=10**6)
    print("\n" + recommendation.report())
    advisor.create_indexes(recommendation)

    print("\n=== Execution with the recommended configuration ===")
    after = measure(db, workload, "recommended")

    print("=== One join plan, explained ===")
    print(Optimizer(db).optimize(workload.entries[1].statement).explain())
    print(
        f"\ndocuments examined: {before} -> {after} "
        f"({before / max(after, 1):.1f}x less work)"
    )


if __name__ == "__main__":
    main()
