#!/usr/bin/env python3
"""A full tuning session on the TPoX-like benchmark.

Walks through what a DBA would do with the advisor:

1. inspect the workload's indexable patterns (Enumerate Indexes mode),
2. compare all five search algorithms across disk budgets (mini Figure 2),
3. look at EXPLAIN plans before and after the recommendation,
4. materialize the winning configuration and verify real execution.

Run:  python examples/tpox_tuning.py
"""

from repro import Executor, IndexAdvisor, Optimizer, OptimizerMode
from repro.workloads import tpox

ALGORITHMS = ["greedy", "greedy_heuristics", "topdown_lite", "topdown_full", "dp"]


def main() -> None:
    db = tpox.build_database(
        num_securities=250, num_orders=250, num_customers=120, seed=42
    )
    workload = tpox.tpox_workload(num_securities=250, seed=42)

    # ------------------------------------------------------------------
    # 1. What can be indexed?  Ask the optimizer per query.
    # ------------------------------------------------------------------
    optimizer = Optimizer(db)
    print("=== Enumerate Indexes mode, per query ===")
    for position, entry in enumerate(workload):
        result = optimizer.optimize(entry.statement, OptimizerMode.ENUMERATE)
        patterns = ", ".join(str(c) for c in result.candidates) or "(nothing)"
        print(f"Q{position + 1:<2} -> {patterns}")

    # ------------------------------------------------------------------
    # 2. Compare the search algorithms across budgets.
    # ------------------------------------------------------------------
    probe = IndexAdvisor(db, workload)
    all_config = probe.all_index_configuration()
    all_size = all_config.size_bytes()
    all_speedup = probe.evaluate_configuration(all_config)
    print(f"\n=== Algorithm comparison (All-Index: {all_size} B, "
          f"{all_speedup:.2f}x) ===")
    print(f"{'budget':>9} " + " ".join(f"{a:>20}" for a in ALGORITHMS))
    for fraction in (0.3, 0.6, 1.0):
        budget = int(all_size * fraction)
        cells = []
        for algorithm in ALGORITHMS:
            advisor = IndexAdvisor(db, workload)
            rec = advisor.recommend(budget_bytes=budget, algorithm=algorithm)
            cells.append(
                f"{rec.estimated_speedup:7.2f}x G{rec.search.general_count}"
                f"S{rec.search.specific_count:02d} {rec.search.elapsed_seconds*1000:4.0f}ms"
            )
        print(f"{budget:>9} " + " ".join(f"{c:>20}" for c in cells))

    # ------------------------------------------------------------------
    # 3. EXPLAIN the paper's Q2 before/after.
    # ------------------------------------------------------------------
    advisor = IndexAdvisor(db, workload)
    recommendation = advisor.recommend(
        budget_bytes=all_size, algorithm="topdown_full"
    )
    q4 = workload.entries[3].statement  # search_securities (paper Q2)
    virtual = [
        c.definition(f"v{i}") for i, c in enumerate(recommendation.configuration)
    ]
    before = optimizer.optimize(q4, OptimizerMode.EVALUATE, ())
    after = optimizer.optimize(q4, OptimizerMode.EVALUATE, virtual)
    print("\n=== EXPLAIN search_securities, no indexes ===")
    print(before.explain())
    print("\n=== EXPLAIN search_securities, recommended configuration ===")
    print(after.explain())

    # ------------------------------------------------------------------
    # 4. Materialize and verify.
    # ------------------------------------------------------------------
    print("\n=== Recommended DDL ===")
    for ddl in recommendation.ddl:
        print(f"  {ddl}")
    advisor.create_indexes(recommendation)
    executor = Executor(db)
    total_docs = sum(
        executor.execute(e.statement).docs_examined for e in workload.queries()
    )
    full_scan_docs = sum(
        len(db.collection(e.statement.collection)) for e in workload.queries()
    )
    print(
        f"\nworkload executed: {total_docs} documents examined "
        f"(full scans would examine {full_scan_docs})"
    )


if __name__ == "__main__":
    main()
