"""Tests for the DataGuide-style structural summary."""

import pytest

from repro.storage import Database
from repro.storage.schema import build_dataguide, format_dataguide, recursive_tags
from repro.workloads import recursive


@pytest.fixture()
def guide(security_db):
    return build_dataguide(security_db.runstats("SDOC"))


class TestDataGuide:
    def test_structure(self, guide):
        security = guide.children["Security"]
        assert security.count == 30
        assert set(security.children) >= {"Symbol", "Yield", "SecInfo", "@id"}

    def test_counts_propagated(self, guide):
        symbol = guide.children["Security"].children["Symbol"]
        assert symbol.count == 30

    def test_value_kinds(self, guide):
        security = guide.children["Security"]
        assert security.children["Yield"].has_numeric_values
        assert not security.children["Yield"].has_text_values
        assert security.children["Symbol"].has_text_values

    def test_depth_and_node_count(self, guide):
        # Security/SecInfo/Industrial/Sector is the deepest chain (root
        # pseudo-node adds one level)
        assert guide.depth() == 5
        assert guide.node_count() == len(
            list(_walk(guide))
        )

    def test_format_renders_tree(self, guide):
        text = format_dataguide(guide)
        assert "Security (30)" in text
        assert "  Symbol (30)" in text
        assert "[num]" in text

    def test_format_max_depth(self, guide):
        text = format_dataguide(guide, max_depth=1)
        assert "Security (30)" in text
        assert "Symbol" not in text

    def test_no_recursion_in_flat_data(self, guide):
        assert recursive_tags(guide) == []

    def test_recursion_detected(self):
        db = recursive.build_database(num_parts=40, max_depth=3, seed=9)
        guide = build_dataguide(db.runstats("PARTS"))
        tags = recursive_tags(guide)
        assert "Part" in tags

    def test_empty_collection(self):
        db = Database()
        db.create_collection("E")
        guide = build_dataguide(db.runstats("E"))
        assert guide.children == {}
        assert format_dataguide(guide) == ""


def _walk(node):
    yield node
    for child in node.children.values():
        yield from _walk(child)


class TestCliTree:
    def test_stats_tree_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "db")
        main(["generate", path, "--benchmark", "tpox", "--scale", "10"])
        capsys.readouterr()
        assert main(["stats", path, "SDOC", "--tree"]) == 0
        out = capsys.readouterr().out
        assert "Security (10)" in out
        assert "SecInfo" in out
