"""Unit tests for IndexConfiguration."""

import pytest

from repro.core.candidates import CandidateIndex
from repro.core.config import IndexConfiguration
from repro.storage.index import IndexValueType
from repro.xpath import parse_pattern


def candidate(pattern, value_type=IndexValueType.STRING, size=100, general=False):
    c = CandidateIndex(parse_pattern(pattern), value_type, "C", general=general)
    c.size_bytes = size
    return c


class TestConstruction:
    def test_empty(self):
        config = IndexConfiguration()
        assert len(config) == 0
        assert config.size_bytes() == 0

    def test_deduplicates_by_key(self):
        a = candidate("/a/b")
        b = candidate("/a/b")
        config = IndexConfiguration([a, b])
        assert len(config) == 1

    def test_same_pattern_different_types_kept(self):
        config = IndexConfiguration(
            [candidate("/a/b"), candidate("/a/b", IndexValueType.NUMERIC)]
        )
        assert len(config) == 2

    def test_immutable(self):
        config = IndexConfiguration()
        with pytest.raises(AttributeError):
            config.candidates = ()


class TestSetOperations:
    def test_with_candidate(self):
        base = IndexConfiguration([candidate("/a")])
        bigger = base.with_candidate(candidate("/b"))
        assert len(base) == 1  # original untouched
        assert len(bigger) == 2

    def test_without(self):
        a, b = candidate("/a"), candidate("/b")
        config = IndexConfiguration([a, b])
        assert len(config.without(a)) == 1
        assert a not in config.without(a)
        assert b in config.without(a)

    def test_contains(self):
        a = candidate("/a")
        config = IndexConfiguration([a])
        assert a in config
        assert candidate("/a") in config  # by key, not identity
        assert candidate("/z") not in config

    def test_equality_and_hash_by_keys(self):
        a1 = IndexConfiguration([candidate("/a"), candidate("/b")])
        a2 = IndexConfiguration([candidate("/b"), candidate("/a")])
        assert a1 == a2
        assert hash(a1) == hash(a2)
        assert a1 != IndexConfiguration([candidate("/a")])


class TestAccounting:
    def test_size_bytes_sums(self):
        config = IndexConfiguration(
            [candidate("/a", size=100), candidate("/b", size=250)]
        )
        assert config.size_bytes() == 350

    def test_general_specific_counts(self):
        config = IndexConfiguration(
            [candidate("/a"), candidate("/a/*", general=True)]
        )
        assert config.general_count() == 1
        assert config.specific_count() == 1

    def test_affected_statements_union(self):
        a = candidate("/a")
        a.affected = {0, 1}
        b = candidate("/b")
        b.affected = {1, 2}
        config = IndexConfiguration([a, b])
        assert config.affected_statements() == frozenset({0, 1, 2})
