"""Differential tests (PR 9 satellite): every concurrent schedule the
server commits must be **bit-identical** to its own serial replay.

The server stamps each response with a commit watermark
(``Response.seq``): writes get their global commit sequence, reads the
number of writes committed when they validated.  ``serial_order()``
turns a concurrent run into a serial script -- writes in commit order,
each read at its watermark -- and replaying that script one client at a
time on an identically-built database must reproduce every response's
``comparable()`` projection exactly, plus the commit journal, storage
counters and collection epochs.  Any torn read that leaked into a
response, any write ordering the journal misstates, any read-path side
effect on shared statistics would all break the equality.

The portfolio half of the satellite: a tournament ``recommend`` through
the server must be at least as good as every single strategy run
standalone on the same snapshot.
"""

import asyncio

import pytest

from repro.core.advisor import IndexAdvisor
from repro.optimizer.session import WhatIfSession
from repro.query.workload import Workload
from repro.serve import AdvisorServer, SeededScheduler
from repro.serve.server import serial_order
from repro.workloads import tpox

TIMEOUT = 180
BUDGET = 50_000


def small_database():
    return tpox.build_database(
        num_securities=12, num_orders=12, num_customers=6, seed=7
    )


SMALL_WORKLOAD = tpox.tpox_workload(num_securities=12, seed=7).subset(6)
QUERY_TEXTS = [e.statement.describe() for e in SMALL_WORKLOAD.entries]


def security(symbol: str) -> str:
    return (
        f"<Security><Symbol>{symbol}</Symbol>"
        f"<SecurityInformation><Sector>Energy</Sector>"
        f"</SecurityInformation></Security>"
    )


def mixed_schedule(writes: int = 3, with_advise: bool = False):
    """Interleave every workload query with inserts and one delete (and
    optionally advise-class requests), so reads race writers."""
    schedule = []
    for index, text in enumerate(QUERY_TEXTS):
        schedule.append({"kind": "query", "text": text})
        if index < writes:
            schedule.append(
                {
                    "kind": "dml",
                    "text": "insert into SDOC value "
                    f"'{security(f'NEW{index}')}'",
                }
            )
    if with_advise:
        schedule.append(
            {
                "kind": "whatif",
                "statements": QUERY_TEXTS,
                "patterns": ["/Security/Symbol"],
                "collection": "SDOC",
            }
        )
        schedule.append(
            {
                "kind": "recommend",
                "statements": QUERY_TEXTS,
                "budget_bytes": BUDGET,
            }
        )
    schedule.append(
        {
            "kind": "dml",
            "text": 'delete from SDOC where /Security/Symbol = "NEW0"',
        }
    )
    return schedule


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=TIMEOUT))


async def concurrent_run(schedule, *, seed=None, clients=4, lanes=0):
    """Run ``schedule`` concurrently: adversarially interleaved under a
    :class:`SeededScheduler` when ``seed`` is given, free-running on the
    event loop (optionally with thread lanes) otherwise."""
    database = small_database()
    scheduler = SeededScheduler(seed=seed) if seed is not None else None
    server = AdvisorServer(database, scheduler=scheduler, lanes=lanes)
    async with server:
        if scheduler is not None:
            responses = await scheduler.drive(
                [server.dispatch(request) for request in schedule]
            )
        else:
            responses = await server.run_schedule(schedule, clients=clients)
    return server, responses


async def serial_run(requests):
    database = small_database()
    server = AdvisorServer(database)
    async with server:
        responses = await server.run_schedule(requests, clients=1)
    return server, responses


def assert_serially_equivalent(schedule, server, responses):
    """The differential contract: replay serially, compare bit-for-bit."""
    assert all(response.ok for response in responses), [
        (response.kind, response.code, response.error)
        for response in responses
        if not response.ok
    ]
    order = serial_order(responses)
    assert sorted(order) == list(range(len(schedule)))
    replay_server, replayed = run(
        serial_run([schedule[index] for index in order])
    )
    for position, index in enumerate(order):
        assert (
            responses[index].comparable()
            == replayed[position].comparable()
        ), f"response {index} diverged from its serial replay"
    assert server.journal == replay_server.journal
    assert (
        server.database.storage_stats()
        == replay_server.database.storage_stats()
    )
    assert dict(server.database.collection_epochs) == dict(
        replay_server.database.collection_epochs
    )
    return replay_server, replayed


class TestSerialEquivalence:
    @pytest.mark.parametrize("seed", range(6))
    def test_adversarial_schedules_replay_bit_identical(self, seed):
        schedule = mixed_schedule()
        server, responses = run(concurrent_run(schedule, seed=seed))
        assert_serially_equivalent(schedule, server, responses)
        # the schedule exercised real contention, not a serial accident
        assert server.gate.stats()["writes_gated"] == 4

    def test_free_running_clients_replay_bit_identical(self):
        schedule = mixed_schedule(writes=4)
        server, responses = run(concurrent_run(schedule, clients=4))
        assert_serially_equivalent(schedule, server, responses)

    def test_thread_lane_mode_replays_bit_identical(self):
        schedule = mixed_schedule(writes=4)
        server, responses = run(
            concurrent_run(schedule, clients=4, lanes=2)
        )
        assert_serially_equivalent(schedule, server, responses)

    def test_advise_requests_replay_bit_identical(self):
        schedule = mixed_schedule(writes=2, with_advise=True)
        server, responses = run(concurrent_run(schedule, seed=13))
        assert_serially_equivalent(schedule, server, responses)

    def test_watermarks_pin_what_each_read_saw(self):
        """A read's statistics fingerprint must equal the fingerprint of
        a fresh database with exactly ``seq`` writes applied -- the
        watermark is not just an ordering hint, it *names the state*."""
        schedule = mixed_schedule()
        server, responses = run(concurrent_run(schedule, seed=3))
        journal = server.journal
        for response in responses:
            if response.kind != "query":
                continue
            prefix = [
                {"kind": "dml", "text": entry["text"]}
                for entry in journal[: response.seq]
            ]
            replay_server, _ = run(serial_run(prefix))
            fingerprint = replay_server._stats_fingerprint(
                response.value["statistics"].keys()
            )
            assert response.value["statistics"] == fingerprint


class TestPortfolioDominance:
    def test_tournament_at_least_every_single_strategy(self):
        async def scenario():
            async with AdvisorServer(
                small_database(), mode="tournament"
            ) as server:
                return await server.recommend(QUERY_TEXTS, BUDGET)

        response = run(scenario())
        assert response.ok
        tournament_benefit = response.value["benefit"]
        lanes = {
            s["algorithm"]: s
            for s in response.value["portfolio"]["strategies"]
        }
        for algorithm in ("greedy", "greedy_heuristics", "ilp"):
            database = small_database()
            standalone = IndexAdvisor(
                database,
                Workload(SMALL_WORKLOAD.entries),
                session=WhatIfSession(database),
            ).recommend(BUDGET, algorithm=algorithm)
            assert (
                tournament_benefit >= standalone.search.benefit - 1e-9
            ), f"tournament lost to standalone {algorithm}"
            # each lane reproduced its standalone twin exactly: the
            # server's snapshot discipline kept lanes unperturbed
            assert lanes[algorithm]["benefit"] == pytest.approx(
                standalone.search.benefit
            )

    def test_recommend_is_schedule_invariant(self):
        """The same recommend request returns the identical normalized
        value whether it ran alone or raced a full mixed schedule (its
        snapshot came from the same watermark)."""
        request = {
            "kind": "recommend",
            "statements": QUERY_TEXTS,
            "budget_bytes": BUDGET,
        }

        async def alone():
            async with AdvisorServer(small_database()) as server:
                return await server.dispatch(request)

        solo = run(alone())
        assert solo.ok
        schedule = mixed_schedule(writes=0, with_advise=False)
        schedule.pop()  # drop the delete: keep the database unchanged
        schedule.append(request)
        server, responses = run(concurrent_run(schedule, seed=5))
        raced = responses[-1]
        assert raced.ok and raced.seq == 0
        assert raced.value == solo.value
