"""Smoke tests for the experiment drivers at tiny scale.

The full-scale shape assertions live in benchmarks/; these tests verify
the drivers run, return well-formed rows, and format cleanly.
"""

import pytest

from repro import Workload
from repro.experiments import ablations, fig2, fig3, fig4, fig5, table3, table4
from repro.workloads import synthetic, tpox


@pytest.fixture(scope="module")
def tiny_db():
    return tpox.build_database(
        num_securities=60, num_orders=40, num_customers=20, seed=11
    )


@pytest.fixture(scope="module")
def tiny_workload():
    return tpox.tpox_workload(num_securities=60, seed=11)


@pytest.fixture(scope="module")
def tiny_mixed(tiny_db, tiny_workload):
    workload = Workload(list(tiny_workload.entries))
    for query in synthetic.random_path_queries(tiny_db, "SDOC", 4, seed=2):
        workload.add(query)
    return workload


class TestFig2:
    def test_rows_and_format(self, tiny_db, tiny_workload):
        rows, all_speedup = fig2.run(
            tiny_db, tiny_workload, fractions=(0.5, 1.0),
            algorithms=("greedy", "topdown_lite"),
        )
        assert len(rows) == 2
        assert all_speedup >= 1.0
        for row in rows:
            assert row["greedy"] >= 1.0
            assert row["topdown_lite"] >= 1.0
        text = fig2.format_rows(rows, all_speedup, ("greedy", "topdown_lite"))
        assert "Figure 2" in text
        assert str(rows[0]["budget"]) in text


class TestFig3:
    def test_rows_and_format(self, tiny_db, tiny_workload):
        rows = fig3.run(
            tiny_db, tiny_workload, fractions=(0.5,),
            algorithms=("greedy", "topdown_full"),
        )
        (row,) = rows
        assert row["greedy"]["optimizer_calls"] > 0
        assert row["topdown_full"]["seconds"] >= 0
        assert "Figure 3" in fig3.format_rows(rows, ("greedy", "topdown_full"))


class TestTable3:
    def test_rows_and_format(self, tiny_db):
        rows = table3.run(tiny_db, sizes=(5, 10))
        assert [row["queries"] for row in rows] == [5, 10]
        for row in rows:
            assert row["total"] >= row["basic"] > 0
        assert "Table III" in table3.format_rows(rows)


class TestTable4:
    def test_rows_and_format(self, tiny_db, tiny_mixed):
        rows = table4.run(
            tiny_db, tiny_mixed, fractions=(0.5, 2.0),
            algorithms=("topdown_lite",),
        )
        for row in rows:
            generals, specifics = row["topdown_lite"]
            assert generals >= 0 and specifics >= 0
        assert "Table IV" in table4.format_rows(rows, ("topdown_lite",))


class TestFig4:
    def test_rows_and_format(self, tiny_db, tiny_mixed):
        rows, all_speedup = fig4.run(
            tiny_db, tiny_mixed, training_sizes=(2, len(tiny_mixed)),
            algorithms=("topdown_lite",),
        )
        assert rows[0]["n"] == 2
        assert rows[-1]["topdown_lite"] >= rows[0]["topdown_lite"] - 1e-6
        assert "Figure 4" in fig4.format_rows(rows, all_speedup, ("topdown_lite",))


class TestFig5:
    def test_rows_and_format(self):
        db = tpox.build_database(
            num_securities=40, num_orders=20, num_customers=10, seed=13
        )
        workload = tpox.tpox_workload(num_securities=40, seed=13)
        rows, secs, docs = fig5.run(
            db, workload, training_sizes=(3, len(workload)),
            algorithms=("greedy_heuristics",),
        )
        assert secs > 0 and docs > 0
        final = rows[-1]["greedy_heuristics"]
        assert final["speedup_docs"] >= 1.0
        assert "Figure 5" in fig5.format_rows(rows, secs, docs, ("greedy_heuristics",))
        # indexes were dropped again
        assert db.indexes == {}


class TestAblations:
    def test_optimizer_calls(self, tiny_db, tiny_workload):
        rows = ablations.run_optimizer_calls(
            tiny_db, tiny_workload, algorithms=("greedy_heuristics",)
        )
        (row,) = rows
        assert row["efficient_calls"] < row["naive_calls"]
        assert "Ablation" in ablations.format_optimizer_calls(rows)

    def test_beta_sweep(self, tiny_db, tiny_mixed):
        rows = ablations.run_beta_sweep(tiny_db, tiny_mixed, betas=(0.0, 1.0))
        generals = [row["generals"] for row in rows]
        assert generals == sorted(generals)
        assert "beta" in ablations.format_beta_sweep(rows)

    def test_update_sweep(self, tiny_db):
        def factory(frequency):
            return tpox.tpox_workload(
                num_securities=60, seed=11,
                include_updates=frequency > 0,
                update_frequency=max(frequency, 1.0),
            )

        rows = ablations.run_update_sweep(
            tiny_db, factory, frequencies=(0.0, 1000.0)
        )
        assert rows[-1]["indexes"] <= rows[0]["indexes"]
        assert "update frequency" in ablations.format_update_sweep(rows)


class TestAccuracyHelpers:
    def test_ranks_simple(self):
        from repro.experiments.accuracy import _ranks

        assert _ranks([10.0, 30.0, 20.0]) == [1.0, 3.0, 2.0]

    def test_ranks_ties_averaged(self):
        from repro.experiments.accuracy import _ranks

        assert _ranks([5.0, 5.0, 1.0]) == [2.5, 2.5, 1.0]

    def test_spearman_perfect_and_inverse(self):
        from repro.experiments.accuracy import spearman

        assert spearman([1, 2, 3, 4], [10, 20, 30, 40]) == pytest.approx(1.0)
        assert spearman([1, 2, 3, 4], [40, 30, 20, 10]) == pytest.approx(-1.0)

    def test_accuracy_run_smoke(self):
        from repro.experiments import accuracy
        from repro.workloads import tpox

        db = tpox.build_database(
            num_securities=40, num_orders=20, num_customers=10, seed=3
        )
        workload = tpox.tpox_workload(num_securities=40, seed=3)
        rows = accuracy.run(db, workload)
        assert {row["config"] for row in rows} == {
            "none", "recommended", "all_index"
        }
        stats = accuracy.correlations(rows)
        assert stats["estimated_vs_docs"] > 0.5
        assert "Spearman" in accuracy.format_rows(rows)
        assert db.indexes == {}  # cleaned up
