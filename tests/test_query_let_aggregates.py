"""Tests for let clauses and aggregate functions."""

import pytest

from repro import Database, Executor, IndexAdvisor, Workload
from repro.query import QuerySyntaxError, parse_statement
from repro.query.model import Aggregate
from repro.xpath.ast import LocationPath
from repro.xpath.parser import parse_xpath


@pytest.fixture()
def orders_db():
    db = Database()
    db.create_collection("ODOC")
    rows = [(100, 10.0), (500, 20.0), (1500, 30.0)]
    for i, (qty, px) in enumerate(rows):
        db.insert_document(
            "ODOC",
            f"""<FIXML><Order ID="{i}">
                  <OrdQty Qty="{qty}"/><Px>{px}</Px><Px>{px + 1}</Px>
                </Order></FIXML>""",
        )
    return db


class TestLetParsing:
    def test_let_is_alias_not_filter(self):
        query = parse_statement(
            """for $o in X('ODOC')/FIXML/Order
               let $q := $o/OrdQty/@Qty
               where $q > 100 return $o"""
        )
        # exactly one where clause (the comparison); no existence conjunct
        assert len(query.where) == 1
        assert str(query.where[0].path) == "OrdQty/@Qty"

    def test_let_chains(self):
        query = parse_statement(
            """for $o in X('ODOC')/FIXML/Order
               let $q := $o/OrdQty let $n := $q/@Qty
               where $n > 100 return $o"""
        )
        assert str(query.where[0].path) == "OrdQty/@Qty"

    def test_let_with_predicate_lifted(self):
        query = parse_statement(
            """for $o in X('ODOC')/FIXML/Order
               let $q := $o/OrdQty[@Qty>100]
               return $q"""
        )
        comparisons = [c for c in query.where if c.is_comparison]
        assert len(comparisons) == 1
        assert str(comparisons[0].path) == "OrdQty/@Qty"

    def test_let_undefined_source(self):
        with pytest.raises(QuerySyntaxError):
            parse_statement(
                "for $o in X('C')/a let $q := $zzz/b return $o"
            )

    def test_let_redefinition_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_statement(
                "for $o in X('C')/a let $o := $o/b return $o"
            )

    def test_malformed_let(self):
        with pytest.raises(QuerySyntaxError):
            parse_statement("for $o in X('C')/a let $q = $o/b return $o")


class TestAggregateParsing:
    def test_aggregates_extracted(self):
        query = parse_statement(
            "for $o in X('ODOC')/FIXML/Order return max($o/Px)"
        )
        (aggregate,) = query.aggregates
        assert aggregate.function == "max"
        assert str(aggregate.path) == "Px"

    def test_aggregate_through_let(self):
        query = parse_statement(
            """for $o in X('ODOC')/FIXML/Order
               let $p := $o/Px return avg($p)"""
        )
        (aggregate,) = query.aggregates
        assert str(aggregate.path) == "Px"

    def test_mixed_aggregate_and_path(self):
        query = parse_statement(
            "for $o in X('ODOC')/FIXML/Order return <r>{count($o/Px)}{$o/@ID}</r>"
        )
        assert len(query.aggregates) == 1
        assert [str(p) for p in query.return_paths] == ["@ID"]

    def test_aggregate_model_validation(self):
        with pytest.raises(ValueError):
            Aggregate("median", LocationPath((), absolute=False))
        with pytest.raises(ValueError):
            Aggregate("count", parse_xpath("/a/b"))


class TestAggregateExecution:
    def run(self, db, text):
        return Executor(db).execute(parse_statement(text), collect_output=True)

    def test_count(self, orders_db):
        result = self.run(
            orders_db,
            "for $o in X('ODOC')/FIXML/Order return count($o/Px)",
        )
        assert result.output == ["2", "2", "2"]

    def test_max_min(self, orders_db):
        result = self.run(
            orders_db,
            "for $o in X('ODOC')/FIXML/Order return max($o/Px)",
        )
        assert result.output == ["11", "21", "31"]
        result = self.run(
            orders_db,
            "for $o in X('ODOC')/FIXML/Order return min($o/Px)",
        )
        assert result.output == ["10", "20", "30"]

    def test_sum_avg(self, orders_db):
        result = self.run(
            orders_db,
            "for $o in X('ODOC')/FIXML/Order return sum($o/Px)",
        )
        assert result.output == ["21", "41", "61"]
        result = self.run(
            orders_db,
            "for $o in X('ODOC')/FIXML/Order return avg($o/Px)",
        )
        assert result.output == ["10.5", "20.5", "30.5"]

    def test_aggregate_over_missing_path(self, orders_db):
        result = self.run(
            orders_db,
            "for $o in X('ODOC')/FIXML/Order return count($o/Nope)",
        )
        assert result.output == ["0", "0", "0"]

    def test_aggregate_with_where_and_index(self, orders_db):
        """Aggregates compose with let/where and index-backed filtering."""
        workload = Workload.from_statements(
            [
                """for $o in X('ODOC')/FIXML/Order
                   let $q := $o/OrdQty/@Qty
                   where $q > 400 return max($o/Px)"""
            ]
        )
        advisor = IndexAdvisor(orders_db, workload)
        patterns = {str(c.pattern) for c in advisor.candidates.basics()}
        assert "/FIXML/Order/OrdQty/@Qty" in patterns
        result = self.run(orders_db, workload.entries[0].statement.text)
        assert sorted(result.output) == ["21", "31"]
