"""Tests for the benchmark workload generators."""

import pytest

from repro import Database, Executor, IndexAdvisor, Workload
from repro.query import Query, parse_statement
from repro.workloads import synthetic, tpox, xmark


class TestTpoxGenerator:
    def test_deterministic(self):
        a = tpox.build_database(num_securities=20, num_orders=10, num_customers=5, seed=1)
        b = tpox.build_database(num_securities=20, num_orders=10, num_customers=5, seed=1)
        from repro.xmlmodel import serialize

        for col in ("SDOC", "ODOC", "CDOC"):
            docs_a = [serialize(d.root) for d in a.collection(col)]
            docs_b = [serialize(d.root) for d in b.collection(col)]
            assert docs_a == docs_b

    def test_different_seeds_differ(self):
        from repro.xmlmodel import serialize

        a = tpox.build_database(num_securities=20, num_orders=1, num_customers=1, seed=1)
        b = tpox.build_database(num_securities=20, num_orders=1, num_customers=1, seed=2)
        assert [serialize(d.root) for d in a.collection("SDOC")] != [
            serialize(d.root) for d in b.collection("SDOC")
        ]

    def test_collections_present(self, tpox_db):
        assert len(tpox_db.collection("SDOC")) == 120
        assert len(tpox_db.collection("ODOC")) == 120
        assert len(tpox_db.collection("CDOC")) == 60

    def test_wildcard_structure_varies(self, tpox_db):
        """SecInfo children vary by type, making /Security/SecInfo/*/Sector
        (paper candidate C2) genuinely need the wildcard."""
        stats = tpox_db.runstats("SDOC")
        info_children = {
            path[2]
            for path in stats.path_counts
            if len(path) == 4 and path[:2] == ("Security", "SecInfo")
        }
        assert len(info_children) >= 2

    def test_eleven_queries_parse(self):
        queries = tpox.tpox_queries(num_securities=120, seed=42)
        assert len(queries) == 11
        for text in queries:
            assert isinstance(parse_statement(text), Query)

    def test_workload_with_updates(self):
        wl = tpox.tpox_workload(num_securities=50, seed=1, include_updates=True)
        assert len(wl.updates()) == 4
        assert all(e.frequency == 1.0 for e in wl)

    def test_update_statements_executable(self):
        db = tpox.build_database(num_securities=30, num_orders=5, num_customers=5, seed=9)
        executor = Executor(db)
        for text in tpox.tpox_updates(num_securities=30, seed=9):
            executor.execute(parse_statement(text))

    def test_symbol_for_unique(self):
        symbols = {tpox.symbol_for(i) for i in range(500)}
        assert len(symbols) == 500


class TestXmarkGenerator:
    def test_collections(self, xmark_db):
        assert len(xmark_db.collection("IDOC")) == 80
        assert len(xmark_db.collection("PDOC")) == 80
        assert len(xmark_db.collection("ADOC")) == 80

    def test_queries_parse_and_run(self, xmark_db):
        executor = Executor(xmark_db)
        for text in xmark.xmark_queries(seed=7):
            result = executor.execute(parse_statement(text))
            assert result.docs_examined > 0

    def test_advisor_on_xmark(self, xmark_db):
        advisor = IndexAdvisor(xmark_db, xmark.xmark_workload(seed=7))
        rec = advisor.recommend(budget_bytes=100_000, algorithm="greedy_heuristics")
        assert rec.estimated_speedup > 1.0
        assert len(rec.configuration) >= 3


class TestSyntheticGenerator:
    def test_count_and_determinism(self, tpox_db):
        a = synthetic.random_path_queries(tpox_db, "SDOC", 10, seed=5)
        b = synthetic.random_path_queries(tpox_db, "SDOC", 10, seed=5)
        assert len(a) == 10
        assert [q.text for q in a] == [q.text for q in b]

    def test_queries_are_over_data_paths(self, tpox_db):
        from repro.optimizer.rewriter import extract_path_requests

        stats = tpox_db.runstats("SDOC")
        for query in synthetic.random_path_queries(tpox_db, "SDOC", 15, seed=3):
            for request in extract_path_requests(query):
                assert any(
                    request.pattern.matches(path) for path in stats.path_counts
                ), f"{request.pattern} matches nothing in the data"

    def test_queries_executable(self, tpox_db):
        executor = Executor(tpox_db)
        for query in synthetic.random_path_queries(tpox_db, "SDOC", 10, seed=4):
            result = executor.execute(query)
            assert result.docs_examined > 0

    def test_enumerable_candidates(self, tpox_db):
        """Synthetic queries must expose indexable patterns (Table III
        depends on this)."""
        from repro.core.candidates import enumerate_basic_candidates
        from repro.optimizer import Optimizer

        wl = synthetic.synthetic_workload(tpox_db, "SDOC", 10, seed=6)
        candidates = enumerate_basic_candidates(Optimizer(tpox_db), wl)
        assert len(candidates) >= 5

    def test_empty_collection_rejected(self):
        db = Database()
        db.create_collection("EMPTY")
        with pytest.raises(ValueError):
            synthetic.random_path_queries(db, "EMPTY", 5, seed=0)


class TestTpoxExtendedQueries:
    def test_parse_and_execute(self, tpox_db):
        from repro import Executor

        executor = Executor(tpox_db)
        for text in tpox.tpox_queries(num_securities=120, seed=42):
            pass  # baseline set covered elsewhere
        for text in tpox.tpox_extended_queries(num_securities=120, seed=42):
            statement = parse_statement(text)
            result = executor.execute(statement, collect_output=True)
            assert result.docs_examined > 0

    def test_aggregates_present(self):
        texts = tpox.tpox_extended_queries(num_securities=50, seed=1)
        parsed = [parse_statement(t) for t in texts]
        assert all(q.aggregates for q in parsed)
        functions = {q.aggregates[0].function for q in parsed}
        assert functions == {"max", "sum", "count", "avg"}

    def test_advisable(self, tpox_db):
        from repro import IndexAdvisor

        wl = Workload.from_statements(
            tpox.tpox_extended_queries(num_securities=120, seed=42)
        )
        advisor = IndexAdvisor(tpox_db, wl)
        assert len(advisor.candidates.basics()) >= 4
        rec = advisor.recommend(budget_bytes=100_000)
        assert rec.estimated_speedup > 1.0


class TestTpoxJoinQueries:
    def test_parse_as_joins(self):
        from repro.query.model import JoinQuery

        for text in tpox.tpox_join_queries(num_securities=50, seed=1):
            assert isinstance(parse_statement(text), JoinQuery)

    def test_execute_and_find_rows(self, tpox_db):
        executor = Executor(tpox_db)
        total_rows = 0
        for text in tpox.tpox_join_queries(num_securities=120, seed=42):
            result = executor.execute(parse_statement(text))
            total_rows += result.rows
            assert result.docs_examined > 0
        assert total_rows > 0

    def test_advisable(self, tpox_db):
        wl = Workload.from_statements(
            tpox.tpox_join_queries(num_securities=120, seed=42)
        )
        advisor = IndexAdvisor(tpox_db, wl)
        collections = {c.collection for c in advisor.candidates.basics()}
        assert {"SDOC", "ODOC", "CDOC"} <= collections
        rec = advisor.recommend(budget_bytes=10**6)
        assert rec.estimated_speedup > 1.0
