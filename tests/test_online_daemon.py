"""Lifecycle tests of the supervised online advisor daemon: initial
apply, drift gating, hysteresis, cooldown, rollback, flap freezing,
fault-injected cycles, watchdog fallback, and crash-safe journal
resume (the PR 8 tentpole acceptance criteria)."""

import json

import pytest

from repro.core.advisor import IndexAdvisor
from repro.online import OnlineAdvisor, OnlinePolicy
from repro.online.daemon import ONLINE_INDEX_PREFIX
from repro.online.journal import DaemonJournal
from repro.robustness.faults import FaultInjector, FaultRule, injected
from repro.workloads import tpox
from repro.workloads.tpox import symbol_for

BUDGET = 150_000


def small_db():
    """A fresh, mutable database per test (the daemon builds indexes)."""
    return tpox.build_database(
        num_securities=30, num_orders=30, num_customers=15, seed=3
    )


def make_policy(**overrides):
    overrides.setdefault("algorithm", "greedy_heuristics")
    overrides.setdefault("window_capacity", 60)
    overrides.setdefault("cycle_interval", 20)
    overrides.setdefault("cooldown_cycles", 0)
    overrides.setdefault("min_relative_improvement", 0.0)
    overrides.setdefault("retries", 0)
    return OnlinePolicy(budget_bytes=BUDGET, **overrides)


def phase_a(n):
    """Security-only traffic (one coverage-signature mix)."""
    texts = []
    for i in range(n):
        texts.append(
            [
                f"for $s in SECURITY('SDOC')/Security "
                f'where $s/Symbol = "{symbol_for(i % 10)}" return $s',
                "for $s in SECURITY('SDOC')/Security "
                "where $s/Yield > 4.5 return $s/Name",
                "for $s in SECURITY('SDOC')/Security "
                'where $s/SecInfo/*/Sector = "Energy" return $s/Symbol',
            ][i % 3]
        )
    return texts


def phase_b(n):
    """Order/customer traffic (a disjoint signature mix)."""
    texts = []
    for i in range(n):
        texts.append(
            [
                f"for $o in ORDER('ODOC')/FIXML/Order "
                f'where $o/@Acct = "ACCT{i % 8:05d}" return $o/Instrmt',
                f"for $o in ORDER('ODOC')/FIXML/Order "
                f'where $o/Instrmt/@Sym = "{symbol_for(i % 10)}" return $o/Px',
                "for $c in CUSTACC('CDOC')/Customer "
                'where $c/Nationality = "US" return $c/Name',
            ][i % 3]
        )
    return texts


class TestLifecycle:
    def test_first_cycle_applies_an_initial_configuration(self):
        daemon = OnlineAdvisor(small_db(), make_policy())
        reports = daemon.serve(phase_a(20))
        assert [r.action for r in reports] == ["applied"]
        assert reports[0].creates
        assert not reports[0].drops
        assert daemon.materialized
        assert daemon.configuration_keys() == sorted(daemon.materialized)
        assert daemon.counters["applies"] == 1
        for entry in daemon.materialized.values():
            assert entry.name.startswith(ONLINE_INDEX_PREFIX)
            assert entry.name in daemon.database.indexes
        json.dumps(daemon.status())  # always serializable

    def test_stable_stream_skips_without_flapping(self):
        daemon = OnlineAdvisor(small_db(), make_policy())
        reports = daemon.serve(phase_a(120))
        assert reports[0].action == "applied"
        assert {r.action for r in reports[1:]} == {"skip-no-drift"}
        assert daemon.counters["applies"] == 1
        # Every index changed membership exactly once (its creation).
        assert set(daemon.flap_counts.values()) == {1}
        assert daemon.frozen == []

    def test_drift_triggers_a_retune(self):
        daemon = OnlineAdvisor(small_db(), make_policy())
        daemon.serve(phase_a(60))
        keys_before = daemon.configuration_keys()
        reports = daemon.serve(phase_b(120))
        applied = [r for r in reports if r.action == "applied"]
        assert applied, "phase change never triggered a re-tune"
        assert applied[0].drift >= daemon.policy.drift_threshold
        assert daemon.configuration_keys() != keys_before
        assert any("/FIXML/Order" in key for key in daemon.materialized)

    def test_hysteresis_blocks_marginal_churn(self):
        daemon = OnlineAdvisor(
            small_db(), make_policy(min_relative_improvement=1e9)
        )
        daemon.serve(phase_a(20))  # initial apply is never gated
        keys_before = daemon.configuration_keys()
        reports = daemon.serve(phase_b(40))
        tuned = [r for r in reports if r.action not in ("skip-no-drift",)]
        assert tuned
        assert {r.action for r in tuned} <= {
            "skip-hysteresis", "tuned-no-change"
        }
        assert "skip-hysteresis" in {r.action for r in tuned}
        assert daemon.configuration_keys() == keys_before
        assert daemon.counters["skipped_hysteresis"] >= 1

    def test_cooldown_holds_after_an_apply(self):
        daemon = OnlineAdvisor(small_db(), make_policy(cooldown_cycles=2))
        daemon.serve(phase_a(20))
        assert daemon.cooldown_remaining == 2
        first = daemon.run_cycle(force=True)
        second = daemon.run_cycle(force=True)
        assert [first.action, second.action] == (
            ["skip-cooldown", "skip-cooldown"]
        )
        third = daemon.run_cycle(force=True)
        assert third.action != "skip-cooldown"
        assert daemon.counters["skipped_cooldown"] == 2


class TestVerifyRollback:
    @staticmethod
    def regressing_verifier():
        """Live window cost that jumps after the first probe -- every
        apply looks like a regression."""
        calls = []

        def verifier(database, workload):
            calls.append(1)
            return 100.0 if len(calls) == 1 else 1000.0

        return verifier

    def test_regressing_apply_is_rolled_back(self):
        daemon = OnlineAdvisor(
            small_db(), make_policy(), verifier=self.regressing_verifier()
        )
        reports = daemon.serve(phase_a(20))
        assert [r.action for r in reports] == ["rolled-back"]
        assert daemon.materialized == {}
        assert daemon.database.indexes == {}
        assert daemon.counters["rollbacks"] == 1
        assert daemon.counters["applies"] == 0
        assert any("rolled back" in d for d in reports[0].diagnostics)

    def test_oscillating_index_is_frozen(self):
        daemon = OnlineAdvisor(
            small_db(),
            make_policy(max_flaps_per_index=1),
            verifier=self.regressing_verifier(),
        )
        daemon.serve(phase_a(20))
        # The rollback churned every touched key twice (out and back),
        # blowing the flap limit of 1: all of them freeze.
        assert daemon.frozen
        assert any("frozen" in d for d in daemon.diagnostics)
        report = daemon.run_cycle(force=True)
        # Frozen keys are pinned out of the diff: nothing to apply.
        assert report.action == "tuned-no-change"
        assert daemon.materialized == {}

    def test_verification_can_be_disabled(self):
        daemon = OnlineAdvisor(
            small_db(),
            make_policy(verify_applies=False),
            verifier=self.regressing_verifier(),
        )
        reports = daemon.serve(phase_a(20))
        assert [r.action for r in reports] == ["applied"]
        assert daemon.counters["rollbacks"] == 0


class TestSupervision:
    def test_fault_injected_cycles_never_kill_the_daemon(self):
        daemon = OnlineAdvisor(small_db(), make_policy())
        stream = phase_a(60)
        with injected(FaultInjector([FaultRule(site="online.cycle")])):
            reports = daemon.serve(stream)
        assert daemon.statements_seen == len(stream)
        assert [r.action for r in reports] == ["failed"] * 3
        assert all(r.error for r in reports)
        assert daemon.materialized == {}
        assert daemon.counters["failed_cycles"] == 3

    def test_watchdog_trips_to_the_fallback_algorithm(self):
        daemon = OnlineAdvisor(
            small_db(),
            make_policy(
                algorithm="greedy",
                fallback_algorithm="greedy_heuristics",
                watchdog_limit=2,
                cycle_interval=10_000,  # cycles only run when forced
            ),
        )
        for text in phase_a(30):
            daemon.ingest(text)
        rules = [FaultRule(site="online.cycle", at={0, 1})]
        with injected(FaultInjector(rules)):
            first = daemon.run_cycle(force=True)
            second = daemon.run_cycle(force=True)
            assert [first.action, second.action] == ["failed", "failed"]
            assert daemon.watchdog.tripped
            assert any("watchdog tripped" in d for d in daemon.diagnostics)
            third = daemon.run_cycle(force=True)
        assert third.action == "applied"
        assert third.algorithm == "greedy_heuristics"
        assert third.degraded  # ran on the fallback, not the primary

    def test_cycle_call_budget_bounds_every_cycle(self):
        daemon = OnlineAdvisor(
            small_db(), make_policy(cycle_call_budget=150)
        )
        reports = daemon.serve(phase_a(60) + phase_b(60))
        tuned = [r for r in reports if r.cycle_optimizer_calls]
        assert tuned
        assert all(r.cycle_optimizer_calls <= 150 for r in tuned)


class TestJournalResume:
    def test_journal_round_trips_the_daemon(self, tmp_path):
        path = str(tmp_path / "daemon.journal")
        daemon = OnlineAdvisor(small_db(), make_policy(), journal_path=path)
        daemon.serve(phase_a(60))
        assert daemon.materialized

        resumed = OnlineAdvisor.resume(small_db(), make_policy(), path)
        assert resumed.configuration_keys() == daemon.configuration_keys()
        assert resumed.cycle == daemon.cycle
        assert resumed.statements_seen == daemon.statements_seen
        assert resumed.window.texts() == daemon.window.texts()
        # The fresh database had no physical indexes: resume rebuilt them.
        for entry in resumed.materialized.values():
            assert entry.name in resumed.database.indexes
        # Same traffic, no drift: the resumed daemon stays put.
        reports = resumed.serve(phase_a(20))
        assert [r.action for r in reports] == ["skip-no-drift"]

    def test_resume_rolls_a_pending_apply_forward(self, tmp_path):
        path = str(tmp_path / "daemon.journal")
        window = phase_a(12)
        DaemonJournal(path).write(
            {
                "phase": "applying",
                "cycle": 3,
                "statements_seen": 12,
                "window": window,
                "baseline": None,
                "materialized": [],
                "cooldown_remaining": 0,
                "flap_counts": {},
                "frozen": [],
                "counters": {},
                "pending": {
                    "creates": [
                        {
                            "pattern": "/Security/Symbol",
                            "value_type": "string",
                            "collection": "SDOC",
                        }
                    ],
                    "drops": [],
                },
            }
        )
        daemon = OnlineAdvisor.resume(small_db(), make_policy(), path)
        assert daemon.configuration_keys() == ["/Security/Symbol|string"]
        assert daemon.counters["rollforwards"] == 1
        assert any("rolled 1 pending" in d for d in daemon.diagnostics)
        # The journal was rewritten idle: resuming again is a no-op.
        again = OnlineAdvisor.resume(small_db(), make_policy(), path)
        assert again.counters["rollforwards"] == 1

    def test_corrupt_journal_degrades_to_fresh(self, tmp_path):
        path = str(tmp_path / "daemon.journal")
        with open(path, "w") as handle:
            handle.write('{"phase": "idle", "cyc')  # truncated mid-write
        daemon = OnlineAdvisor.resume(small_db(), make_policy(), path)
        assert daemon.cycle == 0
        assert daemon.materialized == {}
        assert any("journal ignored" in d for d in daemon.diagnostics)
        # The fresh daemon re-established a loadable journal.
        assert DaemonJournal(path).load() is not None

    def test_fault_injected_run_converges_to_the_clean_run(self):
        """The bench's convergence gate in miniature: a run whose early
        cycles fail (one mid-tune, one mid-apply) must end on the same
        configuration as a clean run of the same stream."""
        stream = phase_a(80) + phase_b(80)

        def finish(daemon):
            daemon.serve(stream)
            daemon.run_cycle(force=True)  # settle on the final window
            return daemon

        clean = finish(OnlineAdvisor(small_db(), make_policy()))
        rules = [
            FaultRule(site="online.cycle", at={0}),
            FaultRule(site="online.apply", at={0}),
        ]
        with injected(FaultInjector(rules)):
            faulted = finish(OnlineAdvisor(small_db(), make_policy()))
        assert faulted.counters["failed_cycles"] >= 1
        assert faulted.configuration_keys() == clean.configuration_keys()


class TestStartOnline:
    def test_start_online_seeds_the_window(self):
        database = small_db()
        workload = tpox.tpox_workload(num_securities=30, seed=3).subset(6)
        advisor = IndexAdvisor(database, workload)
        daemon = advisor.start_online(BUDGET, cycle_interval=20)
        assert len(daemon.window) > 0
        report = daemon.run_cycle(force=True)
        assert report.action == "applied"
        assert daemon.materialized

    def test_policy_and_overrides_are_exclusive(self):
        database = small_db()
        workload = tpox.tpox_workload(num_securities=30, seed=3).subset(3)
        advisor = IndexAdvisor(database, workload)
        with pytest.raises(ValueError):
            advisor.start_online(
                BUDGET, policy=make_policy(), cycle_interval=5
            )

    def test_resume_requires_a_journal_path(self):
        database = small_db()
        workload = tpox.tpox_workload(num_securities=30, seed=3).subset(3)
        advisor = IndexAdvisor(database, workload)
        with pytest.raises(ValueError):
            advisor.start_online(BUDGET, resume=True)
