"""Tests for boolean predicates and string functions in XPath.

Covers the parser (precedence, parentheses), the evaluator, the rewriter
(what is and is not indexable), index lookups for ``starts-with``, and the
advisor end to end.
"""

import pytest

from repro.optimizer.rewriter import extract_path_requests
from repro.query import parse_statement
from repro.storage import Database, IndexDefinition, IndexValueType
from repro.storage.statistics import collect_statistics
from repro.xmlmodel import parse_document
from repro.xpath import evaluate_path, parse_xpath
from repro.xpath.ast import (
    AndPredicate,
    ComparisonPredicate,
    FunctionPredicate,
    Literal,
    OrPredicate,
)
from repro.xpath.parser import XPathSyntaxError

DOC = parse_document(
    """
<Security><Symbol>IBM</Symbol><Name>Intl Business Machines</Name>
<Yield>4.8</Yield><PE>22</PE></Security>
"""
)


def values(expr):
    return [n.string_value() for n in evaluate_path(DOC, parse_xpath(expr))]


class TestParsing:
    def test_and_splits_into_step_predicates(self):
        path = parse_xpath("/Security[Yield>4.5 and PE<30]")
        assert len(path.steps[0].predicates) == 2
        assert all(
            isinstance(p, ComparisonPredicate) for p in path.steps[0].predicates
        )

    def test_or_predicate_node(self):
        path = parse_xpath("/Security[Yield>9 or PE<30]")
        (pred,) = path.steps[0].predicates
        assert isinstance(pred, OrPredicate)
        assert len(pred.alternatives) == 2

    def test_and_binds_tighter_than_or(self):
        path = parse_xpath("/Security[Yield>9 or PE<30 and Yield>5]")
        (pred,) = path.steps[0].predicates
        assert isinstance(pred, OrPredicate)
        assert isinstance(pred.alternatives[1], AndPredicate)

    def test_parentheses_override_precedence(self):
        path = parse_xpath("/Security[(Yield>9 or PE<30) and Yield>5]")
        # top level is AND -> split into two predicates
        preds = path.steps[0].predicates
        assert len(preds) == 2
        assert isinstance(preds[0], OrPredicate)

    def test_starts_with(self):
        path = parse_xpath('/Security[starts-with(Symbol,"IB")]')
        (pred,) = path.steps[0].predicates
        assert isinstance(pred, FunctionPredicate)
        assert pred.function == "starts-with"
        assert pred.literal == Literal("IB")

    def test_contains(self):
        path = parse_xpath('/Security[contains(Name,"Business")]')
        (pred,) = path.steps[0].predicates
        assert pred.function == "contains"

    def test_function_needs_string_argument(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("/Security[starts-with(Symbol,4)]")

    def test_function_missing_paren(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath('/Security[starts-with(Symbol,"IB"]')

    def test_element_named_like_function(self):
        # no '(' after the name -> it is an ordinary path step
        path = parse_xpath("/Security[contains]")
        (pred,) = path.steps[0].predicates
        assert not isinstance(pred, FunctionPredicate)

    def test_str_round_trips(self):
        for text in [
            '/Security[starts-with(Symbol,"IB")]',
            "/a[b=1 or c=2]",
        ]:
            assert str(parse_xpath(text)).replace(" ", "") == text.replace(" ", "")


class TestEvaluation:
    def test_and_semantics(self):
        assert values("/Security[Yield>4.5 and PE<30]/Symbol") == ["IBM"]
        assert values("/Security[Yield>4.5 and PE>30]/Symbol") == []

    def test_or_semantics(self):
        assert values("/Security[Yield>9 or PE<30]/Symbol") == ["IBM"]
        assert values("/Security[Yield>9 or PE>30]/Symbol") == []

    def test_precedence_semantics(self):
        # Yield>9 is false; PE<30 and Yield>5 is false (4.8) => []
        assert values("/Security[Yield>9 or PE<30 and Yield>5]/Symbol") == []
        # (Yield>9 or PE<30) and Yield>4 => true
        assert values("/Security[(Yield>9 or PE<30) and Yield>4]/Symbol") == ["IBM"]

    def test_starts_with_evaluation(self):
        assert values('/Security[starts-with(Symbol,"IB")]/Name') == [
            "Intl Business Machines"
        ]
        assert values('/Security[starts-with(Symbol,"XX")]/Name') == []

    def test_contains_evaluation(self):
        assert values('/Security[contains(Name,"Business")]/Symbol') == ["IBM"]
        assert values('/Security[contains(Name,"Nope")]/Symbol') == []


class TestRewriter:
    def test_and_conjuncts_both_indexable(self):
        query = parse_statement(
            """COLLECTION('SDOC')/Security[Yield>4.5 and PE<30]"""
        )
        patterns = {str(r.pattern) for r in extract_path_requests(query)}
        assert patterns == {"/Security/Yield", "/Security/PE"}

    def test_or_not_indexable(self):
        query = parse_statement(
            """COLLECTION('SDOC')/Security[Yield>9 or PE<30]"""
        )
        assert extract_path_requests(query) == []

    def test_starts_with_indexable_as_string(self):
        query = parse_statement(
            """COLLECTION('SDOC')/Security[starts-with(Symbol,"IB")]"""
        )
        (request,) = extract_path_requests(query)
        assert request.op == "starts-with"
        assert request.value_type is IndexValueType.STRING

    def test_contains_not_indexable(self):
        query = parse_statement(
            """COLLECTION('SDOC')/Security[contains(Name,"x")]"""
        )
        assert extract_path_requests(query) == []


@pytest.fixture()
def prefix_db():
    db = Database()
    db.create_collection("SDOC")
    for i in range(40):
        prefix = "IB" if i % 8 == 0 else "ZQ"
        db.insert_document(
            "SDOC",
            f"<Security><Symbol>{prefix}{i:03d}</Symbol><Yield>{i % 10}</Yield></Security>",
        )
    return db


class TestStartsWithThroughTheStack:
    def test_index_lookup(self, prefix_db):
        from repro.xpath import parse_pattern

        index = prefix_db.create_index(
            IndexDefinition(
                "isym", "SDOC", parse_pattern("/Security/Symbol"),
                IndexValueType.STRING,
            )
        )
        hits = index.lookup_op("starts-with", Literal("IB"))
        assert len(hits) == 5

    def test_starts_with_on_numeric_index_rejected(self, prefix_db):
        from repro.xpath import parse_pattern

        index = prefix_db.create_index(
            IndexDefinition(
                "iy", "SDOC", parse_pattern("/Security/Yield"),
                IndexValueType.NUMERIC,
            )
        )
        with pytest.raises(ValueError):
            index.lookup_op("starts-with", Literal("4"))

    def test_selectivity(self, prefix_db):
        from repro.xpath import parse_pattern

        stats = prefix_db.runstats("SDOC")
        sel = stats.selectivity(
            parse_pattern("/Security/Symbol"), "starts-with", Literal("IB")
        )
        assert sel == pytest.approx(5 / 40)

    def test_advisor_recommends_and_executor_uses(self, prefix_db):
        from repro import Executor, IndexAdvisor, Workload

        workload = Workload.from_statements(
            ["""COLLECTION('SDOC')/Security[starts-with(Symbol,"IB")]"""]
        )
        advisor = IndexAdvisor(prefix_db, workload)
        patterns = {str(c.pattern) for c in advisor.candidates.basics()}
        assert patterns == {"/Security/Symbol"}
        recommendation = advisor.recommend(budget_bytes=100_000)
        assert len(recommendation.configuration) == 1
        advisor.create_indexes(recommendation)
        result = Executor(prefix_db).execute(workload.entries[0].statement)
        assert result.rows == 5
        assert result.docs_examined == 5
        assert result.used_indexes


class TestNotPredicate:
    def test_parse(self):
        from repro.xpath.ast import NotPredicate

        path = parse_xpath("/Security[not(Flagged)]")
        (pred,) = path.steps[0].predicates
        assert isinstance(pred, NotPredicate)

    def test_negated_existence(self):
        assert values("/Security[not(Flagged)]/Symbol") == ["IBM"]
        assert values("/Security[not(Symbol)]/Name") == []

    def test_negated_comparison(self):
        assert values("/Security[not(Yield>5)]/Symbol") == ["IBM"]
        assert values("/Security[not(Yield>4)]/Symbol") == []

    def test_negated_boolean_group(self):
        assert values('/Security[not(Yield>5 or PE>30)]/Symbol') == ["IBM"]
        assert values('/Security[not(Yield>4 and PE<30)]/Symbol') == []

    def test_double_negation(self):
        assert values("/Security[not(not(Symbol))]/Name") == [
            "Intl Business Machines"
        ]

    def test_not_never_indexable(self):
        query = parse_statement(
            "COLLECTION('SDOC')/Security[not(Yield>5)]"
        )
        assert extract_path_requests(query) == []

    def test_not_defeats_disjunction(self):
        from repro.optimizer.rewriter import extract_disjunctive_requests

        query = parse_statement(
            "COLLECTION('SDOC')/Security[Yield>5 or not(PE>3)]"
        )
        assert extract_disjunctive_requests(query) == []

    def test_str_rendering(self):
        path = parse_xpath("/Security[not(Yield>5)]")
        assert "not(" in str(path)
