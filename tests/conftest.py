"""Shared fixtures: small seeded databases and workloads."""

from __future__ import annotations

import os
import signal

import pytest

from repro import Database, IndexAdvisor, Workload
from repro.workloads import synthetic, tpox, xmark


@pytest.fixture(autouse=True)
def _per_test_timeout():
    """SIGALRM-based per-test timeout, enabled by REPRO_TEST_TIMEOUT=<s>.

    The CI chaos-smoke job prefers pytest-timeout when it is installed;
    this fallback keeps a stalling injected fault from hanging the suite
    in environments without the plugin.  No-op unless the variable is
    set (and on platforms without SIGALRM)."""
    seconds = int(os.environ.get("REPRO_TEST_TIMEOUT", "0"))
    if seconds <= 0 or not hasattr(signal, "SIGALRM"):
        yield
        return

    def _expired(signum, frame):
        raise TimeoutError(
            f"test exceeded REPRO_TEST_TIMEOUT={seconds}s"
        )

    previous = signal.signal(signal.SIGALRM, _expired)
    signal.alarm(seconds)
    try:
        yield
    finally:
        signal.alarm(0)
        signal.signal(signal.SIGALRM, previous)


@pytest.fixture(scope="session")
def tpox_db() -> Database:
    """A small TPoX-like database shared across tests (read-only!)."""
    return tpox.build_database(
        num_securities=120, num_orders=120, num_customers=60, seed=42
    )


@pytest.fixture(scope="session")
def tpox_wl() -> Workload:
    return tpox.tpox_workload(num_securities=120, seed=42)


@pytest.fixture()
def tpox_advisor(tpox_db, tpox_wl) -> IndexAdvisor:
    return IndexAdvisor(tpox_db, tpox_wl)


@pytest.fixture(scope="session")
def xmark_db() -> Database:
    return xmark.build_database(
        num_items=80, num_persons=80, num_auctions=80, seed=7
    )


@pytest.fixture()
def security_db() -> Database:
    """A tiny single-collection database safe to mutate in tests."""
    db = Database("test")
    db.create_collection("SDOC")
    for i in range(30):
        sector = "Energy" if i % 3 == 0 else "Tech"
        db.insert_document(
            "SDOC",
            f"""<Security id="s{i}">
                  <Symbol>SYM{i:03d}</Symbol>
                  <Name>Company {i}</Name>
                  <Yield>{(i % 10) + 0.5}</Yield>
                  <SecInfo><Industrial><Sector>{sector}</Sector></Industrial></SecInfo>
                </Security>""",
        )
    return db
