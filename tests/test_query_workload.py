"""Tests for workloads."""

import pytest

from repro.query import Query, Workload, WorkloadEntry, parse_statement
from repro.query.model import WhereClause
from repro.xpath.ast import Literal, LocationPath
from repro.xpath.parser import parse_xpath


class TestWorkload:
    def test_from_statement_texts(self):
        wl = Workload.from_statements(
            ["COLLECTION('C')/a", "insert into C value '<a/>'"]
        )
        assert len(wl) == 2
        assert len(wl.queries()) == 1
        assert len(wl.updates()) == 1

    def test_from_statement_objects(self):
        query = parse_statement("COLLECTION('C')/a")
        wl = Workload.from_statements([query])
        assert wl.entries[0].statement is query

    def test_frequencies_parallel(self):
        wl = Workload.from_statements(
            ["COLLECTION('C')/a", "COLLECTION('C')/b"], [2.0, 5.0]
        )
        assert [e.frequency for e in wl] == [2.0, 5.0]

    def test_frequencies_length_mismatch(self):
        with pytest.raises(ValueError):
            Workload.from_statements(["COLLECTION('C')/a"], [1.0, 2.0])

    def test_default_frequency(self):
        wl = Workload.from_statements(["COLLECTION('C')/a"])
        assert wl.entries[0].frequency == 1.0

    def test_non_positive_frequency_rejected(self):
        with pytest.raises(ValueError):
            WorkloadEntry(parse_statement("COLLECTION('C')/a"), 0.0)

    def test_subset_is_prefix(self):
        wl = Workload.from_statements(
            [f"COLLECTION('C')/p{i}" for i in range(5)]
        )
        sub = wl.subset(3)
        assert len(sub) == 3
        assert sub.entries == wl.entries[:3]

    def test_add_and_concat(self):
        a = Workload.from_statements(["COLLECTION('C')/a"])
        b = Workload.from_statements(["COLLECTION('C')/b"])
        combined = a + b
        assert len(combined) == 2
        a.add("COLLECTION('C')/c", frequency=3.0)
        assert len(a) == 2
        assert len(combined) == 2  # concat made a copy


class TestQueryModel:
    def test_binding_must_be_absolute(self):
        with pytest.raises(ValueError):
            Query("C", parse_xpath("a/b"))

    def test_where_clause_must_be_relative(self):
        with pytest.raises(ValueError):
            WhereClause(parse_xpath("/a/b"), "=", Literal(1.0))

    def test_where_clause_op_literal_pairing(self):
        with pytest.raises(ValueError):
            WhereClause(parse_xpath("a"), "=", None)

    def test_describe_collapses_whitespace(self):
        query = parse_statement(
            """for $s in X('C')/a
               where $s/b = 1
               return $s"""
        )
        assert "\n" not in query.describe()
