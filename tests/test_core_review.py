"""Tests for existing-index review (keep/drop recommendations)."""

import pytest

from repro import Database, IndexAdvisor, IndexDefinition, IndexValueType, Workload
from repro.core.review import drop_recommended, review_existing_indexes
from repro.workloads import tpox
from repro.xpath import parse_pattern


@pytest.fixture()
def tuned_db():
    """A database with one useful index, one redundant one, and one no
    query ever touches."""
    db = tpox.build_database(
        num_securities=80, num_orders=20, num_customers=10, seed=31
    )
    db.create_index(
        IndexDefinition(
            "useful", "SDOC", parse_pattern("/Security/Symbol"),
            IndexValueType.STRING,
        )
    )
    db.create_index(
        IndexDefinition(
            "redundant", "SDOC", parse_pattern("/Security/*"),
            IndexValueType.STRING,
        )
    )
    db.create_index(
        IndexDefinition(
            "untouched", "SDOC", parse_pattern("/Security/Price/Bid"),
            IndexValueType.NUMERIC,
        )
    )
    return db


@pytest.fixture()
def symbol_workload():
    return Workload.from_statements(
        [
            f"""for $s in X('SDOC')/Security
                where $s/Symbol = "{tpox.symbol_for(3)}"
                return $s"""
        ]
    )


class TestReview:
    def test_verdicts(self, tuned_db, symbol_workload):
        reviews = {
            r.index_name: r
            for r in review_existing_indexes(tuned_db, symbol_workload)
        }
        assert reviews["useful"].keep
        assert reviews["useful"].marginal_benefit > 0
        # the general index is shadowed by the specific one: no marginal gain
        assert not reviews["redundant"].keep
        assert reviews["redundant"].marginal_benefit == pytest.approx(0.0)
        # never used at all
        assert not reviews["untouched"].keep

    def test_database_unchanged_by_review(self, tuned_db, symbol_workload):
        before = set(tuned_db.indexes)
        review_existing_indexes(tuned_db, symbol_workload)
        assert set(tuned_db.indexes) == before
        # indexes still functional
        assert tuned_db.index("useful").entry_count() > 0

    def test_no_indexes_empty_review(self, symbol_workload):
        db = tpox.build_database(
            num_securities=10, num_orders=5, num_customers=5, seed=1
        )
        assert review_existing_indexes(db, symbol_workload) == []

    def test_maintenance_included(self, tuned_db):
        """With heavy churn and no queries, even the 'useful' index should
        be dropped."""
        workload = Workload.from_statements(
            ["insert into SDOC value '<Security><Symbol>N</Symbol></Security>'"],
            [1000.0],
        )
        reviews = review_existing_indexes(tuned_db, workload)
        assert all(not r.keep for r in reviews)
        assert all(r.maintenance_cost > 0 for r in reviews)

    def test_str_rendering(self, tuned_db, symbol_workload):
        reviews = review_existing_indexes(tuned_db, symbol_workload)
        text = "\n".join(str(r) for r in reviews)
        assert "KEEP useful" in text
        assert "DROP" in text


class TestDropRecommended:
    def test_drops_only_flagged(self, tuned_db, symbol_workload):
        reviews = review_existing_indexes(tuned_db, symbol_workload)
        dropped = drop_recommended(tuned_db, reviews)
        assert set(dropped) == {"redundant", "untouched"}
        assert "useful" in tuned_db.indexes
        assert "redundant" not in tuned_db.indexes

    def test_workload_unharmed_after_drop(self, tuned_db, symbol_workload):
        from repro import Executor

        executor = Executor(tuned_db)
        statement = symbol_workload.entries[0].statement
        before = executor.execute(statement, collect_output=True)
        reviews = review_existing_indexes(tuned_db, symbol_workload)
        drop_recommended(tuned_db, reviews)
        after = Executor(tuned_db).execute(statement, collect_output=True)
        assert sorted(before.output) == sorted(after.output)
        assert after.docs_examined <= before.docs_examined + 1
