"""Tests for the index maintenance cost mc(x, s)."""

import pytest

from repro.core.candidates import CandidateIndex
from repro.core.maintenance import MaintenanceConstants, maintenance_cost
from repro.query import parse_statement
from repro.storage.index import IndexValueType
from repro.xpath import parse_pattern


def candidate(pattern, value_type=IndexValueType.STRING, collection="SDOC"):
    return CandidateIndex(parse_pattern(pattern), value_type, collection)


class TestMaintenanceCost:
    def test_queries_are_free(self, security_db):
        stats = security_db.runstats("SDOC")
        query = parse_statement("COLLECTION('SDOC')/Security/Symbol")
        assert maintenance_cost(candidate("/Security/Symbol"), query, stats) == 0.0

    def test_insert_charges_expected_entries(self, security_db):
        stats = security_db.runstats("SDOC")
        insert = parse_statement("insert into SDOC value '<Security/>'")
        cost = maintenance_cost(candidate("/Security/Symbol"), insert, stats)
        # one Symbol per document, one level: entry_update * 1 * 1
        assert cost == pytest.approx(MaintenanceConstants().entry_update)

    def test_bigger_index_costs_more(self, security_db):
        stats = security_db.runstats("SDOC")
        insert = parse_statement("insert into SDOC value '<Security/>'")
        narrow = maintenance_cost(candidate("/Security/Symbol"), insert, stats)
        wide = maintenance_cost(candidate("/Security//*"), insert, stats)
        assert wide > narrow

    def test_numeric_index_charges_numeric_entries_only(self, security_db):
        stats = security_db.runstats("SDOC")
        insert = parse_statement("insert into SDOC value '<Security/>'")
        string_cost = maintenance_cost(
            candidate("/Security//*", IndexValueType.STRING), insert, stats
        )
        numeric_cost = maintenance_cost(
            candidate("/Security//*", IndexValueType.NUMERIC), insert, stats
        )
        assert numeric_cost < string_cost

    def test_delete_scales_with_victims(self, security_db):
        stats = security_db.runstats("SDOC")
        one = parse_statement('delete from SDOC where /Security/Symbol = "SYM003"')
        many = parse_statement("delete from SDOC where /Security/Yield >= 0")
        idx = candidate("/Security/Symbol")
        assert maintenance_cost(idx, many, stats) > maintenance_cost(idx, one, stats)

    def test_other_collection_free(self, security_db):
        stats = security_db.runstats("SDOC")
        insert = parse_statement("insert into OTHER value '<x/>'")
        assert maintenance_cost(candidate("/Security/Symbol"), insert, stats) == 0.0

    def test_custom_constants(self, security_db):
        stats = security_db.runstats("SDOC")
        insert = parse_statement("insert into SDOC value '<Security/>'")
        cheap = maintenance_cost(
            candidate("/Security/Symbol"), insert, stats,
            MaintenanceConstants(entry_update=0.001),
        )
        expensive = maintenance_cost(
            candidate("/Security/Symbol"), insert, stats,
            MaintenanceConstants(entry_update=1.0),
        )
        assert expensive > cheap


class TestMaintenanceInBenefit:
    def test_update_heavy_workload_reduces_benefit(self, security_db):
        """Benefit(X; W) must fall as update frequency rises."""
        from repro.core.benefit import ConfigurationEvaluator
        from repro.core.config import IndexConfiguration
        from repro.optimizer import Optimizer
        from repro.query import Workload

        idx = candidate("/Security/Symbol")
        idx.size_bytes = 1000
        query = """for $s in X('SDOC')/Security where $s/Symbol = "SYM003" return $s"""
        benefits = []
        for freq in (0.0, 10.0, 100.0):
            wl = Workload.from_statements([query])
            if freq:
                wl.add("insert into SDOC value '<Security><Symbol>N</Symbol></Security>'", freq)
            evaluator = ConfigurationEvaluator(
                security_db, Optimizer(security_db), wl
            )
            benefits.append(evaluator.benefit(IndexConfiguration([idx])))
        assert benefits[0] > benefits[1] > benefits[2]

    def test_benefit_can_go_negative_under_churn(self, security_db):
        from repro.core.benefit import ConfigurationEvaluator
        from repro.core.config import IndexConfiguration
        from repro.optimizer import Optimizer
        from repro.query import Workload

        idx = candidate("/Security//*")  # big index, no query uses it
        idx.size_bytes = 100000
        wl = Workload.from_statements(["COLLECTION('SDOC')/Security"])
        wl.add("insert into SDOC value '<Security><Symbol>N</Symbol></Security>'", 1000.0)
        evaluator = ConfigurationEvaluator(security_db, Optimizer(security_db), wl)
        assert evaluator.benefit(IndexConfiguration([idx])) < 0
