"""Differential tests for the synopsis-backed executor path.

``Executor(use_synopsis=True)`` resolves predicate-free absolute paths
through the per-document synopsis (compiled-matcher bitmap over interned
path ids, then a node-id lookup) instead of a tree walk.  The contract:
ExecutionResults are **bit-identical** to the walking executor -- rows,
docs examined, index entries scanned, used indexes, and the rendered
output -- across every suite workload, including the DML statements that
mutate the database mid-stream.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimizer.executor import Executor, _path_nodes
from repro.query.workload import Workload
from repro.workloads import synthetic, tpox, xmark
from repro.xmlmodel.parser import parse_document
from repro.xpath.parser import parse_xpath


def build_tpox():
    db = tpox.build_database(
        num_securities=25, num_orders=25, num_customers=12, seed=3
    )
    workload = tpox.tpox_workload(
        num_securities=25, seed=3, include_updates=True, update_frequency=0.5
    )
    return db, workload


def build_synthetic():
    db = tpox.build_database(
        num_securities=25, num_orders=25, num_customers=12, seed=3
    )
    workload = Workload([])
    for query in synthetic.random_path_queries(db, "SDOC", 8, seed=5):
        workload.add(query)
    return db, workload


def build_xmark():
    db = xmark.build_database(
        num_items=20, num_persons=20, num_auctions=20, seed=3
    )
    return db, xmark.xmark_workload(seed=3)


BENCHMARKS = {
    "tpox": build_tpox,
    "synthetic": build_synthetic,
    "xmark": build_xmark,
}


def run_workload(build, use_synopsis):
    """Execute a whole workload (queries AND updates, in order) against a
    freshly built database and return the comparable result tuples."""
    database, workload = build()
    executor = Executor(database, use_synopsis=use_synopsis)
    assert executor.use_synopsis is use_synopsis
    results = []
    for entry in workload.entries:
        result = executor.execute(entry.statement, collect_output=True)
        results.append(
            (
                result.rows,
                result.docs_examined,
                result.used_indexes,
                result.index_entries_scanned,
                tuple(result.output),
            )
        )
    return results


@pytest.mark.parametrize("bench_name", sorted(BENCHMARKS))
def test_synopsis_executor_is_bit_identical(bench_name):
    build = BENCHMARKS[bench_name]
    walking = run_workload(build, use_synopsis=False)
    synopsis = run_workload(build, use_synopsis=True)
    assert synopsis == walking


def test_env_toggle_disables_fast_path(monkeypatch):
    monkeypatch.setenv("REPRO_SYNOPSIS_EXEC", "0")
    db = tpox.build_database(
        num_securities=5, num_orders=5, num_customers=3, seed=3
    )
    assert Executor(db).use_synopsis is False
    monkeypatch.setenv("REPRO_SYNOPSIS_EXEC", "1")
    assert Executor(db).use_synopsis is True
    # An explicit argument always wins over the environment.
    assert Executor(db, use_synopsis=False).use_synopsis is False


# ---------------------------------------------------------------------------
# Property: for ANY linear absolute path, bitmap resolution == tree walk
# ---------------------------------------------------------------------------

TAGS = ("a", "b", "c")
TEXTS = ("", "red", "7", "-3.5")

texts = st.sampled_from(TEXTS)


@st.composite
def elements(draw, depth=0):
    tag = draw(st.sampled_from(TAGS))
    attr = draw(st.sampled_from(("", ' id="x"', ' k="9"')))
    text = draw(texts)
    children = (
        []
        if depth >= 2
        else draw(st.lists(elements(depth=depth + 1), max_size=3))
    )
    return f"<{tag}{attr}>{text}{''.join(children)}</{tag}>"


@st.composite
def linear_paths(draw):
    steps = draw(
        st.lists(
            st.tuples(st.sampled_from(("/", "//")), st.sampled_from(TAGS + ("*",))),
            min_size=1,
            max_size=3,
        )
    )
    return "".join(axis + name for axis, name in steps)


@settings(max_examples=60, deadline=None)
@given(text=elements(), path_text=linear_paths())
def test_pattern_nodes_equal_tree_walk(text, path_text):
    document = parse_document(text, 0)
    path = parse_xpath(path_text)
    fast = _path_nodes(document, path, use_synopsis=True)
    slow = _path_nodes(document, path, use_synopsis=False)
    assert [n.node_id for n in fast] == [n.node_id for n in slow]
    assert [n.string_value() for n in fast] == [n.string_value() for n in slow]
