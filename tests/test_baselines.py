"""Tests for the decoupled advisor baseline."""

import pytest

from repro import IndexAdvisor, Optimizer, Workload
from repro.baselines import DecoupledAdvisor
from repro.core.benefit import ConfigurationEvaluator
from repro.storage.index import IndexValueType


@pytest.fixture()
def setup(tpox_db, tpox_wl):
    return DecoupledAdvisor(tpox_db, tpox_wl)


class TestCandidateGeneration:
    def test_candidates_are_data_paths(self, setup, tpox_db):
        candidates = setup.enumerate_candidates()
        stats = tpox_db.runstats("SDOC")
        patterns = {str(c.pattern) for c in candidates if c.collection == "SDOC"}
        for tag_path in stats.path_counts:
            assert "/" + "/".join(tag_path) in patterns

    def test_numeric_variants_for_numeric_paths(self, setup):
        candidates = setup.enumerate_candidates()
        yield_types = {
            c.value_type
            for c in candidates
            if str(c.pattern) == "/Security/Yield"
        }
        assert yield_types == {IndexValueType.STRING, IndexValueType.NUMERIC}

    def test_candidate_space_much_larger_than_coupled(self, setup, tpox_db, tpox_wl):
        coupled = IndexAdvisor(tpox_db, tpox_wl)
        assert len(setup.enumerate_candidates()) > 2 * len(coupled.candidates)

    def test_only_workload_collections(self, tpox_db):
        workload = Workload.from_statements(
            ["for $s in X('SDOC')/Security where $s/Yield > 1 return $s"]
        )
        advisor = DecoupledAdvisor(tpox_db, workload)
        assert {c.collection for c in advisor.enumerate_candidates()} == {"SDOC"}


class TestHeuristicBenefit:
    def test_mentioned_tag_scores(self, setup):
        candidates = {
            str(c.pattern): c
            for c in setup.enumerate_candidates()
            if c.value_type is IndexValueType.STRING
        }
        # Symbol appears in several TPoX queries; an obscure path does not
        assert setup.heuristic_benefit(candidates["/Security/Symbol"]) > 0
        assert setup.heuristic_benefit(candidates["/Security/Price/Bid"]) == 0

    def test_no_selectivity_awareness(self, setup):
        """The hallmark flaw: a mention scores the same regardless of the
        predicate's selectivity (contrast with the coupled evaluator)."""
        candidates = {
            (str(c.pattern), c.value_type): c
            for c in setup.enumerate_candidates()
        }
        yield_candidate = candidates[("/Security/Yield", IndexValueType.NUMERIC)]
        score = setup.heuristic_benefit(yield_candidate)
        assert score > 0  # "Yield" appears in Q4's text


class TestRecommendation:
    def test_budget_respected(self, setup):
        recommendation = setup.recommend(budget_bytes=30_000)
        assert recommendation.size_bytes <= 30_000

    def test_zero_budget(self, setup):
        assert len(setup.recommend(budget_bytes=0).configuration) == 0

    def test_coupled_wins_at_equal_budget(self, tpox_db, tpox_wl, setup):
        budget = 40_000
        coupled_rec = IndexAdvisor(tpox_db, tpox_wl).recommend(
            budget_bytes=budget, algorithm="greedy_heuristics"
        )
        decoupled_rec = setup.recommend(budget)
        evaluator = ConfigurationEvaluator(tpox_db, Optimizer(tpox_db), tpox_wl)
        assert evaluator.estimated_speedup(
            coupled_rec.configuration
        ) >= evaluator.estimated_speedup(decoupled_rec.configuration)

    def test_some_recommended_indexes_unused(self, tpox_db, tpox_wl, setup):
        """Section II: 'no guarantee that the optimizer will use the
        recommended indexes'."""
        from repro.core.whatif import analyze

        recommendation = setup.recommend(budget_bytes=60_000)
        report = analyze(tpox_db, tpox_wl, recommendation.configuration)
        assert report.unused_indexes()
