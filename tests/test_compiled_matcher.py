"""Compiled pattern-matching kernel: equivalence and regression tests.

The compiled matcher (:mod:`repro.xpath.compiled`) must be observationally
identical to the NFA reference (``PathPattern.matches_nfa``), and the
delta benefit evaluation must equal the benefit difference it replaces.
The property tests here generate random patterns (child/descendant axes,
``*``/``@*`` wildcards, attribute finals) against random tag paths --
including symbols containing the encoding separator, which exercise the
NFA fallback.  The counter regression test pins the optimizer traffic of
the flagship search at its pre-kernel level.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import IndexAdvisor, Optimizer
from repro.core.benefit import ConfigurationEvaluator
from repro.core.config import IndexConfiguration
from repro.workloads import tpox
from repro.xpath.ast import Axis
from repro.xpath.compiled import (
    SEP,
    CompiledMatcher,
    PathTable,
    encode_tag_path,
)
from repro.xpath.patterns import (
    PathPattern,
    PatternStep,
    _covers_product,
    parse_pattern,
)

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

NAMES = ["a", "b", "c"]
AXES = st.sampled_from([Axis.CHILD, Axis.DESCENDANT])

MIDDLE_STEPS = st.builds(
    PatternStep, axis=AXES, name=st.sampled_from(NAMES + ["*"])
)
FINAL_STEPS = st.builds(
    PatternStep, axis=AXES, name=st.sampled_from(NAMES + ["*", "@x", "@y", "@*"])
)
PATTERNS = st.builds(
    lambda middle, last: PathPattern(middle + [last]),
    st.lists(MIDDLE_STEPS, max_size=4),
    FINAL_STEPS,
)

# Tag paths over a slightly larger element alphabet (so concrete steps
# miss sometimes), optionally ending in an attribute symbol.  "se" + SEP
# exercises the unencodable-path NFA fallback.
ELEMENT_SYMBOLS = st.sampled_from(NAMES + ["d", "se" + SEP + "p"])
TAG_PATHS = st.builds(
    lambda elements, attr: tuple(elements) + (attr,) if attr else tuple(elements),
    st.lists(ELEMENT_SYMBOLS, max_size=5),
    st.sampled_from([None, "@x", "@y", "@z"]),
)


# ---------------------------------------------------------------------------
# Compiled matcher == NFA reference
# ---------------------------------------------------------------------------

@given(pattern=PATTERNS, tag_path=TAG_PATHS)
@settings(max_examples=400, deadline=None)
def test_compiled_matches_agrees_with_nfa(pattern, tag_path):
    assert pattern.matches(tag_path) == pattern.matches_nfa(tag_path)


@given(pattern=PATTERNS, tag_paths=st.lists(TAG_PATHS, max_size=8))
@settings(max_examples=150, deadline=None)
def test_matching_ids_is_exactly_the_nfa_language(pattern, tag_paths):
    """The bitmap over a private table holds exactly the NFA-matching
    interned paths, regardless of interleaving of intern and probe."""
    table = PathTable()
    matcher = CompiledMatcher(pattern._transitions, pattern.matches_nfa, table)
    ids = {table.intern(path): path for path in tag_paths}
    matched = matcher.matching_ids()
    for path_id, path in ids.items():
        assert (path_id in matched) == pattern.matches_nfa(path)


def test_empty_path_never_matches():
    assert not parse_pattern("//*").matches(())
    assert not parse_pattern("/a").matches(())


def test_empty_symbol_is_matched_by_wildcard_only():
    # ("",) is a distinct encodable path: wildcard matches it, literals miss.
    assert parse_pattern("/*").matches(("",))
    assert not parse_pattern("/a").matches(("",))
    assert not parse_pattern("/*").matches(())


def test_unencodable_symbol_falls_back_to_nfa():
    weird = ("a", f"b{SEP}c")
    assert encode_tag_path(weird) is None
    assert parse_pattern("/a/*").matches(weird)
    assert parse_pattern("//*").matches(weird)
    assert not parse_pattern("/a/b").matches(weird)


def test_descendant_axis_skips_elements_not_attributes():
    pattern = parse_pattern("//@id")
    assert pattern.matches(("a", "b", "@id"))
    assert not pattern.matches(("a", "@other", "@id"))


def test_path_table_interns_densely_and_stably():
    table = PathTable()
    first = table.intern(("a", "b"))
    second = table.intern(("a",))
    assert (first, second) == (0, 1)
    assert table.intern(["a", "b"]) == first  # list/tuple agnostic
    assert table.path(1) == ("a",)
    assert len(table) == 2


# ---------------------------------------------------------------------------
# Containment fast paths == product automaton
# ---------------------------------------------------------------------------

@given(sup=PATTERNS, sub=PATTERNS)
@settings(max_examples=300, deadline=None)
def test_covers_fast_paths_agree_with_product_automaton(sup, sub):
    assert sup.covers(sub) == _covers_product(sup, sub)


# ---------------------------------------------------------------------------
# Delta benefit == benefit difference
# ---------------------------------------------------------------------------

@pytest.fixture(scope="module")
def world():
    db = tpox.build_database(
        num_securities=60, num_orders=40, num_customers=20, seed=17
    )
    workload = tpox.tpox_workload(
        num_securities=60, seed=17, include_updates=True, update_frequency=0.5
    )
    advisor = IndexAdvisor(db, workload)
    return db, workload, list(advisor.candidates)


@given(
    indices=st.lists(st.integers(min_value=0, max_value=200), max_size=6),
    extra=st.integers(min_value=0, max_value=200),
)
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_delta_benefit_equals_benefit_difference(world, indices, extra):
    db, workload, candidates = world
    config = IndexConfiguration(
        [candidates[i % len(candidates)] for i in indices]
    )
    candidate = candidates[extra % len(candidates)]
    evaluator = ConfigurationEvaluator(db, Optimizer(db), workload)
    expected = evaluator.benefit(
        config.with_candidate(candidate)
    ) - evaluator.benefit(config)
    assert evaluator.delta_benefit(config, candidate) == pytest.approx(
        expected, abs=1e-9
    )


@given(indices=st.lists(st.integers(min_value=0, max_value=200), max_size=6))
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_delta_benefit_matches_naive_mode(world, indices):
    """Delta evaluation agrees with the naive evaluator's difference."""
    db, workload, candidates = world
    chosen = [candidates[i % len(candidates)] for i in indices]
    if not chosen:
        return
    config = IndexConfiguration(chosen[:-1])
    candidate = chosen[-1]
    fast = ConfigurationEvaluator(db, Optimizer(db), workload)
    naive = ConfigurationEvaluator(db, Optimizer(db), workload, naive=True)
    expected = naive.benefit(config.with_candidate(candidate)) - naive.benefit(
        config
    )
    assert fast.delta_benefit(config, candidate) == pytest.approx(
        expected, abs=1e-9
    )


# ---------------------------------------------------------------------------
# Optimizer-traffic regression pin (pre-kernel values, captured before
# this change landed: optimizer_calls=45, cache_misses=45)
# ---------------------------------------------------------------------------

def test_greedy_heuristics_counters_do_not_regress():
    db = tpox.build_database(
        num_securities=250, num_orders=250, num_customers=120, seed=42
    )
    workload = tpox.tpox_workload(num_securities=250, seed=42)
    advisor = IndexAdvisor(db, workload)
    all_size = sum(c.size_bytes for c in advisor.candidates.basics())
    result = advisor.recommend(
        budget_bytes=int(all_size * 0.5), algorithm="greedy_heuristics"
    )
    assert result.search.optimizer_calls <= 45
    assert result.search.cache_misses <= 45
    assert result.search.benefit == pytest.approx(882.72225)
    assert len(result.configuration) == 7
