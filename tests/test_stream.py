"""Tests for the synthetic statement-stream generator (PR 7).

The BENCH_PR7 benchmark leans on three properties of
``synthetic_stream``: determinism in the seed, a bounded distinct-text
vocabulary (finite literal pools), and a parseable update mix.  Pin
them here so the benchmark's stream can't silently drift.
"""

import pytest

from repro.query.model import StatementKind
from repro.workloads.stream import stream_profile, synthetic_stream


class TestSyntheticStream:
    def test_deterministic_in_seed(self):
        first = synthetic_stream(num_statements=400, seed=11)
        second = synthetic_stream(num_statements=400, seed=11)
        assert [e.statement.describe() for e in first] == [
            e.statement.describe() for e in second
        ]

    def test_different_seeds_differ(self):
        a = synthetic_stream(num_statements=400, seed=1)
        b = synthetic_stream(num_statements=400, seed=2)
        assert [e.statement.describe() for e in a] != [
            e.statement.describe() for e in b
        ]

    def test_arrivals_not_deduplicated(self):
        stream = synthetic_stream(num_statements=500, seed=3)
        arrivals, distinct = stream_profile(stream)
        assert arrivals == 500
        assert 0 < distinct < arrivals
        assert all(entry.frequency == 1 for entry in stream)

    def test_vocabulary_saturates(self):
        """Finite literal pools: doubling the stream barely grows the
        distinct-text vocabulary once the pools are exhausted."""
        _, short_distinct = stream_profile(
            synthetic_stream(num_statements=2000, seed=0)
        )
        _, long_distinct = stream_profile(
            synthetic_stream(num_statements=4000, seed=0)
        )
        assert long_distinct < 2 * short_distinct

    def test_update_mix_parses(self):
        stream = synthetic_stream(
            num_statements=600, seed=5, update_fraction=0.1
        )
        kinds = {entry.statement.kind for entry in stream}
        assert StatementKind.QUERY in kinds
        assert StatementKind.INSERT in kinds
        assert StatementKind.DELETE in kinds
        updates = [
            e for e in stream if e.statement.kind is not StatementKind.QUERY
        ]
        assert 0 < len(updates) < 0.2 * 600

    def test_zero_update_fraction_is_all_queries(self):
        stream = synthetic_stream(
            num_statements=300, seed=7, update_fraction=0.0
        )
        assert all(
            e.statement.kind is StatementKind.QUERY for e in stream
        )


class TestDriftingStream:
    """The phase-shifted replay stream behind ``repro serve`` and the
    BENCH_PR8 drift-replay sweep."""

    def test_boundaries_split_the_stream_evenly(self):
        from repro.workloads.stream import drifting_stream

        texts, boundaries = drifting_stream(num_statements=90, phases=3)
        assert len(texts) == 90
        assert boundaries == [0, 30, 60]

    def test_deterministic_in_seed(self):
        from repro.workloads.stream import drifting_stream

        assert drifting_stream(num_statements=60, seed=4) == (
            drifting_stream(num_statements=60, seed=4)
        )
        assert drifting_stream(num_statements=60, seed=4) != (
            drifting_stream(num_statements=60, seed=5)
        )

    def test_phases_draw_from_disjoint_template_slices(self):
        from repro.online.window import StatementWindow, drift_distance
        from repro.workloads.stream import drifting_stream

        texts, boundaries = drifting_stream(
            num_statements=120, seed=1, phases=3
        )
        distributions = []
        for start, end in zip(boundaries, boundaries[1:] + [len(texts)]):
            window = StatementWindow(200)
            for text in texts[start:end]:
                window.ingest(text)
            distributions.append(window.signature_distribution())
        # Disjoint template slices => disjoint signature mixes.
        for a, b in zip(distributions, distributions[1:]):
            assert drift_distance(a, b) == pytest.approx(1.0)

    def test_every_text_is_parseable(self):
        from repro.query.parser import parse_statement
        from repro.workloads.stream import drifting_stream

        texts, __ = drifting_stream(num_statements=60, seed=2)
        for text in texts:
            parse_statement(text)

    def test_phase_count_is_validated(self):
        from repro.workloads.stream import drifting_stream

        with pytest.raises(ValueError):
            drifting_stream(num_statements=10, phases=0)
        with pytest.raises(ValueError):
            drifting_stream(num_statements=10, phases=99)
