"""Tests for the mini-XQuery front end."""

import pytest

from repro.query import (
    DeleteStatement,
    InsertStatement,
    Query,
    QuerySyntaxError,
    StatementKind,
    parse_statement,
)
from repro.xpath.ast import Literal


class TestFlworParsing:
    def test_paper_q1(self):
        query = parse_statement(
            """for $sec in SECURITY('SDOC')/Security
               where $sec/Symbol = "BCIIPRC"
               return $sec"""
        )
        assert isinstance(query, Query)
        assert query.collection == "SDOC"
        assert str(query.binding_path) == "/Security"
        (clause,) = query.where
        assert str(clause.path) == "Symbol"
        assert clause.op == "="
        assert clause.literal == Literal("BCIIPRC")

    def test_paper_q2(self):
        query = parse_statement(
            """for $sec in SECURITY('SDOC')/Security[Yield>4.5]
               where $sec/SecInfo/*/Sector = "Energy"
               return <Security>{$sec/Name}</Security>"""
        )
        assert query.binding_path.has_predicates()
        (clause,) = query.where
        assert str(clause.path) == "SecInfo/*/Sector"
        assert [str(p) for p in query.return_paths] == ["Name"]

    def test_collection_function_name_is_free(self):
        query = parse_statement("for $x in WHATEVER('COL')/a return $x")
        assert query.collection == "COL"

    def test_multiple_where_conjuncts(self):
        query = parse_statement(
            """for $s in X('C')/a
               where $s/b = 1 and $s/c > 2 and $s/d"""
        )
        assert len(query.where) == 3
        assert query.where[2].op is None  # existence

    def test_comparison_on_variable_itself(self):
        query = parse_statement(
            """for $s in X('C')/a/b where $s = "v" return $s"""
        )
        (clause,) = query.where
        assert clause.path.steps == ()
        assert clause.op == "="

    def test_attribute_where_clause(self):
        query = parse_statement(
            """for $o in X('C')/FIXML/Order where $o/@ID = "1" return $o"""
        )
        (clause,) = query.where
        assert str(clause.path) == "@ID"

    def test_secondary_binding_folds_into_where(self):
        query = parse_statement(
            """for $o in X('C')/FIXML/Order for $q in $o/OrdQty
               where $q/@Qty > 100 return $o"""
        )
        paths = [str(c.path) for c in query.where]
        assert "OrdQty" in paths  # existence from the binding
        assert "OrdQty/@Qty" in paths

    def test_secondary_binding_with_predicate(self):
        query = parse_statement(
            """for $o in X('C')/a for $b in $o/b[c=5] return $b/d"""
        )
        comparisons = [c for c in query.where if c.is_comparison]
        assert any(str(c.path) == "b/c" for c in comparisons)
        # return paths keep their predicates (used verbatim by the executor)
        assert [str(p) for p in query.return_paths] == ["b[c=5]/d"]

    def test_return_paths_through_secondary_variable(self):
        query = parse_statement(
            """for $o in X('C')/a for $b in $o/b return $b/c"""
        )
        assert [str(p) for p in query.return_paths] == ["b/c"]

    def test_bare_collection_path(self):
        query = parse_statement("COLLECTION('SDOC')/Security/Symbol")
        assert query.collection == "SDOC"
        assert str(query.binding_path) == "/Security/Symbol"
        assert query.where == ()

    def test_kind(self):
        query = parse_statement("COLLECTION('C')/a")
        assert query.kind is StatementKind.QUERY


class TestFlworErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "for $x in /a return $x",  # no collection binding
            "for $x return $x",  # no 'in'
            "for x in C('C')/a return x",  # not a variable
            "for $x in C('C')/a where $y/b = 1",  # unknown variable
            "for $x in C('C')/a for $y in $z/b return $y",  # undefined source
            "for $x in $y/a return $x",  # first binding not a collection
            "for $x in C('C')/a for $y in D('D')/b return $y",  # 2nd collection
            "COLLECTION('C')",  # missing path
        ],
    )
    def test_malformed(self, text):
        with pytest.raises(QuerySyntaxError):
            parse_statement(text)


class TestUpdates:
    def test_insert_with_document(self):
        stmt = parse_statement(
            "insert into SDOC value '<Security><Symbol>X</Symbol></Security>'"
        )
        assert isinstance(stmt, InsertStatement)
        assert stmt.collection == "SDOC"
        assert stmt.document_text.startswith("<Security>")
        assert stmt.kind is StatementKind.INSERT

    def test_insert_without_document(self):
        stmt = parse_statement("insert into SDOC")
        assert stmt.document_text == ""

    def test_delete_with_comparison(self):
        stmt = parse_statement(
            'delete from SDOC where /Security/Symbol = "GONE"'
        )
        assert isinstance(stmt, DeleteStatement)
        assert stmt.op == "="
        assert stmt.literal == Literal("GONE")
        assert stmt.kind is StatementKind.DELETE

    def test_delete_with_existence(self):
        stmt = parse_statement("delete from SDOC where /Security/Flagged")
        assert stmt.op is None

    def test_delete_without_where_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_statement("delete from SDOC")

    def test_delete_bad_condition(self):
        with pytest.raises(QuerySyntaxError):
            parse_statement("delete from SDOC where ???")


class TestKeywordSplitting:
    def test_keyword_inside_string_not_split(self):
        query = parse_statement(
            """for $s in X('C')/a where $s/b = "where and return" return $s"""
        )
        (clause,) = query.where
        assert clause.literal == Literal("where and return")

    def test_keyword_inside_predicate_brackets(self):
        # 'and' inside a predicate value must not split the where clause
        query = parse_statement(
            """for $s in X('C')/a[b="x and y"] where $s/c = 1 return $s"""
        )
        assert len(query.where) == 1

    def test_case_insensitive_keywords(self):
        query = parse_statement(
            """FOR $s IN X('C')/a WHERE $s/b = 1 RETURN $s"""
        )
        assert len(query.where) == 1
