"""Tests for linear index patterns: matching, containment, rewriting.

Pattern containment is the heart of optimizer index matching, so it gets
property-based coverage: containment decisions must agree with brute-force
membership checks over generated tag paths.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xpath.ast import Axis
from repro.xpath.parser import XPathSyntaxError
from repro.xpath.patterns import (
    PathPattern,
    PatternStep,
    parse_pattern,
    pattern_from_path,
    pattern_to_path,
)
from repro.xpath.parser import parse_xpath


class TestParsing:
    def test_parse_simple(self):
        pattern = parse_pattern("/Security/Yield")
        assert str(pattern) == "/Security/Yield"
        assert len(pattern.steps) == 2

    def test_parse_rejects_predicates(self):
        with pytest.raises(XPathSyntaxError):
            parse_pattern("/Security[Yield>4]/Symbol")

    def test_parse_rejects_relative(self):
        with pytest.raises(XPathSyntaxError):
            parse_pattern("Security/Yield")

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            PathPattern([])

    def test_attribute_only_last(self):
        with pytest.raises(ValueError):
            PathPattern(
                [PatternStep(Axis.CHILD, "@id"), PatternStep(Axis.CHILD, "x")]
            )

    def test_pattern_round_trip_via_path(self):
        path = parse_xpath("/a//b/*")
        pattern = pattern_from_path(path)
        assert str(pattern_to_path(pattern)) == "/a//b/*"

    def test_equality_and_hash(self):
        assert parse_pattern("/a/b") == parse_pattern("/a/b")
        assert hash(parse_pattern("/a/b")) == hash(parse_pattern("/a/b"))
        assert parse_pattern("/a/b") != parse_pattern("/a//b")

    def test_immutable(self):
        pattern = parse_pattern("/a")
        with pytest.raises(AttributeError):
            pattern.steps = ()


class TestMatching:
    @pytest.mark.parametrize(
        "pattern,path,expected",
        [
            ("/a/b", ("a", "b"), True),
            ("/a/b", ("a",), False),
            ("/a/b", ("a", "b", "c"), False),
            ("/a/*", ("a", "anything"), True),
            ("/a//b", ("a", "b"), True),
            ("/a//b", ("a", "x", "y", "b"), True),
            ("/a//b", ("a", "x", "b", "y"), False),
            ("//b", ("b",), True),
            ("//b", ("x", "y", "b"), True),
            ("//*", ("any", "depth", "works"), True),
            ("/a/@id", ("a", "@id"), True),
            ("/a/@id", ("a", "id"), False),
            ("//@*", ("x", "@attr"), True),
            ("/a/*", ("a", "@attr"), False),  # * does not match attributes
            ("/Security/SecInfo/*/Sector",
             ("Security", "SecInfo", "Industrial", "Sector"), True),
            ("/Security/SecInfo/*/Sector",
             ("Security", "SecInfo", "Sector"), False),
        ],
    )
    def test_matches(self, pattern, path, expected):
        assert parse_pattern(pattern).matches(path) is expected

    def test_universal_flag(self):
        assert parse_pattern("//*").is_universal
        assert not parse_pattern("/a//*").is_universal


class TestContainment:
    @pytest.mark.parametrize(
        "sup,sub",
        [
            ("//*", "/a/b"),
            ("//*", "/Security/SecInfo/*/Sector"),
            ("/a//*", "/a/b/c"),
            ("/a//b", "/a/b"),
            ("/a//b", "/a/x/b"),
            ("/a/*", "/a/b"),
            ("/a//*", "/a/*/b"),
            ("/a/b", "/a/b"),
            ("//@*", "/a/@id"),
            ("/Security//*", "/Security/Symbol"),
        ],
    )
    def test_covers_positive(self, sup, sub):
        assert parse_pattern(sup).covers(parse_pattern(sub))

    @pytest.mark.parametrize(
        "sup,sub",
        [
            ("/a/b", "/a//b"),
            ("/a/*", "/a/b/c"),
            ("/a/b", "/a/c"),
            ("/a//b", "/a//c"),
            ("/a/@id", "/a/@other"),
            ("//*", "//@*"),  # element universal does not cover attributes
            ("/Security/Symbol", "/Security//*"),
        ],
    )
    def test_covers_negative(self, sup, sub):
        assert not parse_pattern(sup).covers(parse_pattern(sub))

    def test_covers_is_reflexive(self):
        for text in ["/a", "/a//b", "//*", "/a/*/c"]:
            pattern = parse_pattern(text)
            assert pattern.covers(pattern)

    def test_overlaps(self):
        assert parse_pattern("/a//b").overlaps(parse_pattern("/a/*/b"))
        assert not parse_pattern("/a/b").overlaps(parse_pattern("/a/c"))
        assert parse_pattern("//*").overlaps(parse_pattern("/x/y"))


class TestCollapseWildcards:
    @pytest.mark.parametrize(
        "before,after",
        [
            ("/a/*/b", "/a//b"),
            ("/a/*/*/b", "/a//b"),
            ("/a/b", "/a/b"),
            ("/a/*", "/a/*"),  # last step kept
            ("/Security/*/*", "/Security//*"),
            ("/a/*/b/*/c", "/a//b//c"),
            ("/a//*/b", "/a//b"),
        ],
    )
    def test_collapse(self, before, after):
        assert str(parse_pattern(before).collapse_wildcards()) == after

    def test_collapse_only_generalizes(self):
        pattern = parse_pattern("/a/*/b")
        collapsed = pattern.collapse_wildcards()
        assert collapsed.covers(pattern)


# ---------------------------------------------------------------------------
# Property-based: containment agrees with membership
# ---------------------------------------------------------------------------

NAMES = st.sampled_from(["a", "b", "c", "d"])
STEP = st.tuples(st.sampled_from([Axis.CHILD, Axis.DESCENDANT]),
                 st.one_of(NAMES, st.just("*")))
PATTERNS = st.lists(STEP, min_size=1, max_size=4).map(
    lambda steps: PathPattern([PatternStep(axis, name) for axis, name in steps])
)
TAG_PATHS = st.lists(NAMES, min_size=1, max_size=6).map(tuple)


@given(sup=PATTERNS, sub=PATTERNS, path=TAG_PATHS)
@settings(max_examples=300, deadline=None)
def test_containment_consistent_with_matching(sup, sub, path):
    """If sup covers sub, every path matched by sub is matched by sup."""
    if sup.covers(sub) and sub.matches(path):
        assert sup.matches(path)


@given(pattern=PATTERNS, path=TAG_PATHS)
@settings(max_examples=200, deadline=None)
def test_collapse_preserves_membership(pattern, path):
    """Rule 0 only generalizes: anything matched before is matched after."""
    if pattern.matches(path):
        assert pattern.collapse_wildcards().matches(path)


@given(pattern=PATTERNS)
@settings(max_examples=200, deadline=None)
def test_universal_covers_everything(pattern):
    assert parse_pattern("//*").covers(pattern)


@given(pattern=PATTERNS)
@settings(max_examples=200, deadline=None)
def test_pattern_text_round_trip(pattern):
    """Canonical text parses back to an equal pattern."""
    assert parse_pattern(str(pattern)) == pattern


@given(pattern=PATTERNS, path=TAG_PATHS)
@settings(max_examples=200, deadline=None)
def test_matched_paths_are_covered_as_exact_patterns(pattern, path):
    """If a pattern matches a tag path, it covers the exact child-axis
    pattern of that path (matching and containment agree)."""
    if pattern.matches(path):
        exact = PathPattern([PatternStep(Axis.CHILD, name) for name in path])
        assert pattern.covers(exact)


@given(a=PATTERNS, b=PATTERNS)
@settings(max_examples=200, deadline=None)
def test_covers_is_transitive_spotcheck(a, b):
    """a covers b implies a covers anything b covers (checked against the
    universal and a few fixed narrow patterns)."""
    if a.covers(b):
        for text in ["/a/b", "/a", "/b/c/d"]:
            narrow = parse_pattern(text)
            if b.covers(narrow):
                assert a.covers(narrow)


@given(a=PATTERNS, b=PATTERNS)
@settings(max_examples=200, deadline=None)
def test_mutual_coverage_is_equivalence(a, b):
    """a covers b and b covers a means the languages are equal: spot-check
    with each pattern's own 'easiest' witness paths."""
    if a.covers(b) and b.covers(a):
        # any witness matched by one must be matched by the other
        for path in [("a",), ("a", "b"), ("a", "b", "c"), ("d", "c", "b", "a")]:
            assert a.matches(path) == b.matches(path)
