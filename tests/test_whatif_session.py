"""Tests for the shared :class:`WhatIfSession` coupling layer.

Covers the cross-component cache contract (what-if analysis after a
``recommend()`` run re-optimizes nothing), invalidation on database
modification, instrumentation surfacing, and agreement between the
session-cached and naive evaluators.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database, IndexAdvisor, Workload
from repro.core import whatif
from repro.core.benefit import ConfigurationEvaluator
from repro.core.config import IndexConfiguration
from repro.optimizer.session import InstrumentationCounters, WhatIfSession
from repro.query.parser import parse_statement
from repro.workloads import tpox

BUDGET = 200_000


@pytest.fixture()
def session(tpox_db) -> WhatIfSession:
    return WhatIfSession(tpox_db)


# ---------------------------------------------------------------------------
# Core caching contract
# ---------------------------------------------------------------------------
def test_repeated_cost_hits_cache(tpox_db, tpox_wl, session):
    statement = tpox_wl.entries[0].statement
    first = session.cost(statement)
    assert session.counters.cache_misses == 1
    assert session.counters.optimizer_calls == 1
    second = session.cost(statement)
    assert second == first
    assert session.counters.cache_hits == 1
    assert session.counters.optimizer_calls == 1  # no new optimization


def test_equal_statements_share_cache_entries(tpox_db, session):
    text = "for $s in X('SDOC')/Security where $s/Yield > 4 return $s"
    session.cost(parse_statement(text))
    session.cost(parse_statement(text))  # re-parsed, equal by value
    assert session.counters.optimizer_calls == 1
    assert session.counters.cache_hits == 1


def test_projection_ignores_irrelevant_indexes(tpox_db, tpox_wl, session):
    """An index that matches none of a statement's path requests must not
    change its cache key, so adding it costs zero optimizer calls."""
    advisor = IndexAdvisor(tpox_db, tpox_wl, session=session)
    candidates = list(advisor.candidates)
    statement = tpox_wl.entries[0].statement
    relevant = [
        c for c in candidates if 0 in advisor.evaluator.affected_set(c)
    ]
    irrelevant = [
        c for c in candidates if 0 not in advisor.evaluator.affected_set(c)
    ]
    assert relevant and irrelevant  # fixture sanity
    baseline = session.cost(statement, session.definitions_for(relevant[:1]))
    calls = session.counters.optimizer_calls
    padded = relevant[:1] + irrelevant
    assert session.cost(
        statement, session.definitions_for(padded)
    ) == baseline
    assert session.counters.optimizer_calls == calls


def test_analyze_after_recommend_reoptimizes_nothing(tpox_db, tpox_wl):
    """Acceptance: every (statement, configuration) pair the search costed
    is served warm to what-if analysis -- zero new optimizer calls."""
    session = WhatIfSession(tpox_db)
    advisor = IndexAdvisor(tpox_db, tpox_wl, session=session)
    recommendation = advisor.recommend(
        budget_bytes=BUDGET, algorithm="greedy_heuristics"
    )
    calls_before = session.counters.optimizer_calls
    hits_before = session.counters.cache_hits
    report = whatif.analyze(
        tpox_db, tpox_wl, recommendation.configuration, session=session
    )
    assert session.counters.optimizer_calls == calls_before
    assert session.counters.cache_hits > hits_before
    assert len(report.impacts) == len(tpox_wl.entries)
    assert report.total_benefit > 0


def test_analyze_without_session_still_works(tpox_db, tpox_wl):
    advisor = IndexAdvisor(tpox_db, tpox_wl)
    recommendation = advisor.recommend(budget_bytes=BUDGET)
    report = whatif.analyze(tpox_db, tpox_wl, recommendation.configuration)
    assert report.total_benefit > 0


# ---------------------------------------------------------------------------
# Invalidation on database modification
# ---------------------------------------------------------------------------
def test_insert_invalidates_cached_costs(security_db):
    session = WhatIfSession(security_db)
    statement = parse_statement(
        "for $s in X('SDOC')/Security where $s/Yield > 2 return $s"
    )
    before = session.cost(statement)
    calls = session.counters.optimizer_calls
    for i in range(40):
        security_db.insert_document(
            "SDOC",
            f"<Security><Symbol>NEW{i}</Symbol><Yield>9.9</Yield></Security>",
        )
    after = session.cost(statement)
    assert session.counters.invalidations >= 1
    assert session.counters.optimizer_calls == calls + 1  # re-optimized
    assert after != before  # 40 extra documents moved the cost


def test_evaluator_caches_follow_database_generation(security_db):
    workload = Workload()
    workload.add(
        parse_statement(
            "for $s in X('SDOC')/Security where $s/Yield > 2 return $s"
        )
    )
    session = WhatIfSession(security_db)
    evaluator = ConfigurationEvaluator(security_db, session, workload)
    advisor_candidates = IndexAdvisor(security_db, workload).candidates
    config = IndexConfiguration(list(advisor_candidates)[:1])
    stale_base = evaluator.total_base_cost()
    evaluator.benefit(config)
    assert evaluator._subconfig_cache  # populated
    for i in range(40):
        security_db.insert_document(
            "SDOC",
            f"<Security><Symbol>NEW{i}</Symbol><Yield>9.9</Yield></Security>",
        )
    fresh_base = evaluator.total_base_cost()  # triggers _refresh()
    assert fresh_base != stale_base
    evaluator.benefit(config)  # recomputed against fresh statistics


def test_index_ddl_invalidates_plans(security_db):
    from repro.storage.catalog import IndexDefinition
    from repro.storage.index import IndexValueType
    from repro.xpath.patterns import parse_pattern

    session = WhatIfSession(security_db)
    statement = parse_statement(
        "for $s in X('SDOC')/Security where $s/Yield > 9 return $s"
    )
    unindexed = session.plan(statement)
    security_db.create_index(
        IndexDefinition(
            name="yield_idx",
            collection="SDOC",
            pattern=parse_pattern("/Security/Yield"),
            value_type=IndexValueType.NUMERIC,
        )
    )
    indexed = session.plan(statement)
    assert "yield_idx" in indexed.used_indexes
    assert indexed.estimated_cost < unindexed.estimated_cost


def test_explicit_invalidate_clears_results(tpox_db, tpox_wl, session):
    session.cost(tpox_wl.entries[0].statement)
    assert session.stats()["cached_results"] == 1
    session.invalidate()
    assert session.stats()["cached_results"] == 0
    assert session.counters.invalidations == 1


# ---------------------------------------------------------------------------
# Instrumentation surfacing
# ---------------------------------------------------------------------------
def test_recommendation_reports_session_stats(tpox_db, tpox_wl):
    advisor = IndexAdvisor(tpox_db, tpox_wl)
    recommendation = advisor.recommend(budget_bytes=BUDGET)
    payload = recommendation.to_dict()
    assert payload["cache_hits"] == recommendation.search.cache_hits
    assert payload["cache_misses"] == recommendation.search.cache_misses
    stats = payload["session"]
    assert stats["optimizer_calls"] == advisor.session.counters.optimizer_calls
    assert stats["cache_hits"] + stats["cache_misses"] > 0
    assert 0.0 <= stats["cache_hit_ratio"] <= 1.0
    for phase in ("enumerate", "base-costs"):
        assert stats["phase_seconds"][phase] >= 0.0
    assert "Cost cache" in recommendation.report()
    assert "optimizer calls" in recommendation.stats_report()


def test_counters_to_dict_roundtrip():
    counters = InstrumentationCounters()
    counters.optimizer_calls = 7
    counters.cache_hits = 3
    counters.cache_misses = 1
    payload = counters.to_dict()
    assert payload["optimizer_calls"] == 7
    assert payload["cache_hit_ratio"] == pytest.approx(0.75)


def test_search_result_counts_session_cache_traffic(tpox_db, tpox_wl):
    advisor = IndexAdvisor(tpox_db, tpox_wl)
    result = advisor.recommend(budget_bytes=BUDGET).search
    assert result.optimizer_calls > 0
    assert result.cache_misses > 0
    assert result.cache_hits >= 0


def test_greedy_heuristics_issues_no_more_calls_than_greedy(tpox_db, tpox_wl):
    """Regression: the heuristics variant prunes evaluations, so on the
    TPoX workload it must not issue more optimizer calls than plain
    greedy (fresh sessions for a fair count)."""
    plain = IndexAdvisor(tpox_db, tpox_wl)
    plain.recommend(budget_bytes=BUDGET, algorithm="greedy")
    pruned = IndexAdvisor(tpox_db, tpox_wl)
    pruned.recommend(budget_bytes=BUDGET, algorithm="greedy_heuristics")
    assert (
        pruned.session.counters.optimizer_calls
        <= plain.session.counters.optimizer_calls
    )


# ---------------------------------------------------------------------------
# Session/naive evaluator agreement
# ---------------------------------------------------------------------------
def _agreement_fixture():
    db = tpox.build_database(
        num_securities=60, num_orders=60, num_customers=30, seed=11
    )
    workload = tpox.tpox_workload(num_securities=60, seed=11)
    advisor = IndexAdvisor(db, workload)
    candidates = list(advisor.candidates)
    cached = ConfigurationEvaluator(db, WhatIfSession(db), workload)
    naive = ConfigurationEvaluator(
        db, WhatIfSession(db), workload, naive=True
    )
    return candidates, cached, naive


_CANDIDATES, _CACHED, _NAIVE = _agreement_fixture()


@settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
@given(
    picks=st.lists(
        st.integers(min_value=0, max_value=len(_CANDIDATES) - 1),
        min_size=0,
        max_size=6,
        unique=True,
    )
)
def test_cached_and_naive_benefits_agree(picks):
    """Property: sub-configuration splitting plus the session cache are
    pure optimizations -- the naive evaluator (whole workload, whole
    configuration, no cache) computes the same benefit."""
    config = IndexConfiguration([_CANDIDATES[i] for i in picks])
    assert _CACHED.benefit(config) == pytest.approx(
        _NAIVE.benefit(config), rel=1e-9, abs=1e-9
    )


# ---------------------------------------------------------------------------
# Construction discipline
# ---------------------------------------------------------------------------
def test_adopt_wraps_existing_optimizer(tpox_db):
    from repro.optimizer.optimizer import Optimizer

    optimizer = Optimizer(tpox_db)
    session = WhatIfSession.adopt(optimizer)
    assert session.optimizer is optimizer


def test_no_production_optimizer_construction_outside_session():
    """Grep-clean acceptance: ``Optimizer(`` is constructed in exactly one
    production module -- the session layer."""
    import pathlib
    import re

    src = pathlib.Path(__file__).resolve().parent.parent / "src" / "repro"
    offenders = []
    for path in src.rglob("*.py"):
        for lineno, line in enumerate(path.read_text().splitlines(), 1):
            if re.search(r"\bOptimizer\(", line) and "session.py" not in str(
                path
            ):
                offenders.append(f"{path.name}:{lineno}: {line.strip()}")
    assert offenders == [], offenders


def test_public_candidate_maintenance(tpox_db, tpox_wl):
    advisor = IndexAdvisor(tpox_db, tpox_wl)
    candidate = next(iter(advisor.candidates))
    charge = advisor.evaluator.candidate_maintenance(candidate)
    assert charge >= 0.0
    # the deprecated underscore alias stays wired to the public method
    assert advisor.evaluator._candidate_maintenance(candidate) == charge
