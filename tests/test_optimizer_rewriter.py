"""Tests for the rewrite phase: exposing indexable path requests."""

import pytest

from repro.optimizer.rewriter import PathRequest, extract_path_requests
from repro.query import parse_statement
from repro.storage.index import IndexValueType
from repro.xpath import parse_pattern
from repro.xpath.ast import Literal


def requests_of(text):
    return extract_path_requests(parse_statement(text))


class TestQueryRequests:
    def test_paper_example_q1_q2(self):
        """Section IV / Table I: the optimizer exposes C1, C2, C3."""
        q1 = requests_of(
            """for $sec in SECURITY('SDOC')/Security
               where $sec/Symbol = "BCIIPRC" return $sec"""
        )
        assert [str(r.pattern) for r in q1] == ["/Security/Symbol"]
        assert q1[0].value_type is IndexValueType.STRING

        q2 = requests_of(
            """for $sec in SECURITY('SDOC')/Security[Yield>4.5]
               where $sec/SecInfo/*/Sector = "Energy"
               return <Security>{$sec/Name}</Security>"""
        )
        patterns = {str(r.pattern): r.value_type for r in q2}
        assert patterns == {
            "/Security/Yield": IndexValueType.NUMERIC,
            "/Security/SecInfo/*/Sector": IndexValueType.STRING,
        }

    def test_predicate_inside_middle_step(self):
        reqs = requests_of("COLLECTION('C')/a/b[c=1]/d")
        assert "/a/b/c" in {str(r.pattern) for r in reqs}

    def test_nested_predicate_lifted(self):
        reqs = requests_of("COLLECTION('C')/a[b[c=1]]")
        patterns = {str(r.pattern) for r in reqs}
        assert "/a/b" in patterns  # the existence of b
        assert "/a/b/c" in patterns  # the nested comparison

    def test_existence_where_clause(self):
        reqs = requests_of(
            "for $x in C('C')/a where $x/b return $x"
        )
        (req,) = reqs
        assert not req.is_comparison
        assert req.value_type is IndexValueType.STRING

    def test_attribute_request(self):
        reqs = requests_of(
            """for $o in C('C')/FIXML/Order where $o/@ID = "1" return $o"""
        )
        assert str(reqs[0].pattern) == "/FIXML/Order/@ID"

    def test_numeric_vs_string_typing(self):
        reqs = requests_of(
            """for $x in C('C')/a where $x/b > 5 and $x/c = "v" return $x"""
        )
        types = {str(r.pattern): r.value_type for r in reqs}
        assert types["/a/b"] is IndexValueType.NUMERIC
        assert types["/a/c"] is IndexValueType.STRING

    def test_duplicates_removed(self):
        reqs = requests_of(
            """for $x in C('C')/a[b=1] where $x/b = 1 return $x"""
        )
        assert len(reqs) == 1

    def test_return_paths_not_requests(self):
        reqs = requests_of(
            "for $x in C('C')/a where $x/b = 1 return $x/huge/subtree"
        )
        assert {str(r.pattern) for r in reqs} == {"/a/b"}

    def test_bare_path_query_no_requests(self):
        # a bare path with no predicates exposes nothing indexable
        assert requests_of("COLLECTION('C')/a/b") == []


class TestUpdateRequests:
    def test_insert_has_no_requests(self):
        assert requests_of("insert into C value '<a/>'") == []

    def test_delete_selector_is_request(self):
        reqs = requests_of('delete from C where /a/b = "x"')
        (req,) = reqs
        assert str(req.pattern) == "/a/b"
        assert req.op == "="

    def test_delete_existence_selector(self):
        reqs = requests_of("delete from C where /a/b")
        assert not reqs[0].is_comparison


class TestPathRequest:
    def test_op_literal_pairing_enforced(self):
        with pytest.raises(ValueError):
            PathRequest(parse_pattern("/a"), op="=", literal=None)

    def test_str_forms(self):
        req = PathRequest(parse_pattern("/a/b"), ">", Literal(4.5))
        assert str(req) == "/a/b > 4.5"
        assert "exists" in str(PathRequest(parse_pattern("/a")))
