"""Tests for candidate generalization (Algorithm 1 / Table II)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.candidates import CandidateSet
from repro.core.generalization import generalize_candidates, generalize_pair
from repro.storage.index import IndexValueType
from repro.xpath import parse_pattern
from repro.xpath.ast import Axis
from repro.xpath.patterns import PathPattern, PatternStep


def gen(a, b):
    return {str(p) for p in generalize_pair(parse_pattern(a), parse_pattern(b))}


class TestPaperExamples:
    def test_section_v_running_example(self):
        """C1 + C2 -> C4: /Security//* (Table I)."""
        assert gen("/Security/Symbol", "/Security/SecInfo/*/Sector") == {
            "/Security//*"
        }

    def test_rule4_reoccurrence_example(self):
        """Table II discussion: /a/b/d + /a/d/b/d -> /a//d and /a//b/d."""
        assert gen("/a/b/d", "/a/d/b/d") == {"/a//d", "/a//b/d"}

    def test_rewrite_rule_applied(self):
        """/Security/*/* must come out as /Security//* (Rule 0)."""
        results = gen("/Security/Symbol", "/Security/SecInfo/*/Sector")
        assert "/Security/*/*" not in results


class TestPairGeneralization:
    def test_siblings_generalize_to_wildcard(self):
        assert gen("/Security/Yield", "/Security/PE") == {"/Security/*"}

    def test_identical_patterns_nothing_new(self):
        assert gen("/a/b", "/a/b") == set()

    def test_one_covers_other_nothing_new(self):
        # //Yield already covers /Security/Yield; the only generalization
        # is //Yield itself, which is not new.
        assert gen("//Yield", "/Security/Yield") == set()

    def test_descendant_axis_wins(self):
        results = gen("/a//b", "/a/b")
        assert results <= {"/a//b"} or results == set()

    def test_different_lengths(self):
        assert gen("/a/b/c", "/a/c") == {"/a//c"}

    def test_different_roots(self):
        results = gen("/a/x", "/b/y")
        assert results == {"//*"} or results == {"/*/*"}

    def test_attribute_patterns_generalize_together(self):
        assert gen("/a/@id", "/a/b/@id") == {"/a//@id"}

    def test_attribute_and_element_do_not_mix(self):
        assert gen("/a/@id", "/a/b") == set()

    def test_results_cover_both_parents(self):
        for a, b in [
            ("/Security/Symbol", "/Security/SecInfo/*/Sector"),
            ("/a/b/d", "/a/d/b/d"),
            ("/x/y", "/x//z"),
        ]:
            pa, pb = parse_pattern(a), parse_pattern(b)
            for result in generalize_pair(pa, pb):
                assert result.covers(pa)
                assert result.covers(pb)


class TestFixedPoint:
    def make_candidates(self, patterns, value_type=IndexValueType.STRING):
        candidates = CandidateSet()
        for position, text in enumerate(patterns):
            candidate = candidates.get_or_add(
                parse_pattern(text), value_type, "C"
            )
            candidate.affected.add(position)
        return candidates

    def test_expansion_adds_generals(self):
        candidates = self.make_candidates(
            ["/Security/Symbol", "/Security/SecInfo/*/Sector"]
        )
        added = generalize_candidates(candidates)
        assert added >= 1
        assert {str(c.pattern) for c in candidates.generals()} == {"/Security//*"}

    def test_types_never_mix(self):
        candidates = CandidateSet()
        candidates.get_or_add(
            parse_pattern("/S/Yield"), IndexValueType.NUMERIC, "C"
        )
        candidates.get_or_add(
            parse_pattern("/S/Symbol"), IndexValueType.STRING, "C"
        )
        added = generalize_candidates(candidates)
        assert added == 0

    def test_collections_never_mix(self):
        candidates = CandidateSet()
        candidates.get_or_add(parse_pattern("/S/a"), IndexValueType.STRING, "C1")
        candidates.get_or_add(parse_pattern("/S/b"), IndexValueType.STRING, "C2")
        assert generalize_candidates(candidates) == 0

    def test_generated_candidates_participate(self):
        """New generals pair with the rest until a fixed point."""
        candidates = self.make_candidates(["/a/x/k", "/a/y/k", "/b/k"])
        generalize_candidates(candidates)
        patterns = {str(c.pattern) for c in candidates}
        # /a/x/k + /a/y/k -> /a/*/k -> /a//k ; with /b/k -> //k (via /*//k etc.)
        assert "/a//k" in patterns
        assert any(p in patterns for p in ("//k", "/*//k", "/*/k"))

    def test_affected_sets_propagated(self):
        candidates = self.make_candidates(
            ["/Security/Symbol", "/Security/SecInfo/*/Sector"]
        )
        generalize_candidates(candidates)
        (general,) = candidates.generals()
        assert general.affected == {0, 1}

    def test_sources_recorded(self):
        candidates = self.make_candidates(["/S/a", "/S/b"])
        generalize_candidates(candidates)
        (general,) = candidates.generals()
        assert len(general.sources) == 2

    def test_terminates_on_many_patterns(self):
        patterns = [f"/root/n{i}/leaf" for i in range(8)]
        candidates = self.make_candidates(patterns)
        generalize_candidates(candidates)  # must not hang
        assert len(candidates.generals()) >= 1


# ---------------------------------------------------------------------------
# Property-based: soundness of generalization
# ---------------------------------------------------------------------------

NAMES = st.sampled_from(["a", "b", "c"])
STEPS = st.lists(
    st.tuples(st.sampled_from([Axis.CHILD, Axis.DESCENDANT]), NAMES),
    min_size=1,
    max_size=4,
)


def to_pattern(steps):
    return PathPattern([PatternStep(axis, name) for axis, name in steps])


@given(a=STEPS, b=STEPS)
@settings(max_examples=200, deadline=None)
def test_generalizations_cover_both_inputs(a, b):
    pa, pb = to_pattern(a), to_pattern(b)
    for result in generalize_pair(pa, pb):
        assert result.covers(pa)
        assert result.covers(pb)


@given(a=STEPS, b=STEPS)
@settings(max_examples=200, deadline=None)
def test_generalization_is_symmetric(a, b):
    pa, pb = to_pattern(a), to_pattern(b)
    assert generalize_pair(pa, pb) == generalize_pair(pb, pa)


# ---------------------------------------------------------------------------
# Frontier pruning is output-identical to the naive fixed point
# ---------------------------------------------------------------------------

def naive_generalize_candidates(candidates: CandidateSet) -> int:
    """The pre-frontier reference loop: EVERY pair re-enumerated in every
    round.  ``generalize_candidates`` prunes old x old pairs after round
    one and must stay exactly output-identical to this."""
    from repro.core.generalization import MAX_ROUNDS

    added = 0
    for _ in range(MAX_ROUNDS):
        current = list(candidates)
        new_patterns = []
        for i, left in enumerate(current):
            for right in current[i + 1 :]:
                if left.value_type is not right.value_type:
                    continue
                if left.collection != right.collection:
                    continue
                for pattern in generalize_pair(left.pattern, right.pattern):
                    if (str(pattern), left.value_type) not in candidates:
                        new_patterns.append((pattern, left, right))
        if not new_patterns:
            break
        for pattern, left, right in new_patterns:
            key = (str(pattern), left.value_type)
            existing = candidates.get(key)
            if existing is None:
                candidate = candidates.get_or_add(
                    pattern, left.value_type, left.collection, general=True
                )
                added += 1
            else:
                candidate = existing
            candidate.sources.add(left.key)
            candidate.sources.add(right.key)
    candidates.propagate_affected_sets()
    return added


FRONTIER_NAMES = ("a", "b", "k", "*")
FRONTIER_PATHS = st.lists(
    st.builds(
        lambda parts: "".join(parts),
        st.lists(
            st.tuples(st.sampled_from(("/", "//")), st.sampled_from(FRONTIER_NAMES)).map(
                lambda ax_name: ax_name[0] + ax_name[1]
            ),
            min_size=1,
            max_size=3,
        ),
    ),
    min_size=2,
    max_size=5,
    unique=True,
)


def build_set(paths, types):
    candidates = CandidateSet()
    for position, (text, numeric) in enumerate(zip(paths, types)):
        value_type = IndexValueType.NUMERIC if numeric else IndexValueType.STRING
        candidate = candidates.get_or_add(parse_pattern(text), value_type, "C")
        candidate.affected.add(position)
    return candidates


def snapshot(candidates):
    return [
        (c.key, c.general, sorted(c.sources), sorted(c.affected))
        for c in candidates
    ]


@given(
    paths=FRONTIER_PATHS,
    types=st.lists(st.booleans(), min_size=5, max_size=5),
)
@settings(max_examples=60, deadline=None)
def test_frontier_pruning_is_output_identical(paths, types):
    """For ANY candidate set: same added count, same candidates in the
    same creation order, same general flags, sources, and affected sets
    as the naive every-pair fixed point."""
    pruned = build_set(paths, types)
    naive = build_set(paths, types)
    assert generalize_candidates(pruned) == naive_generalize_candidates(naive)
    assert snapshot(pruned) == snapshot(naive)
