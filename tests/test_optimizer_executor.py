"""Tests for real plan execution.

The central invariant: query results are identical with and without
indexes (indexes change the access path, never the answer).
"""

import pytest

from repro.optimizer import Executor, Optimizer
from repro.query import parse_statement
from repro.storage import Database, IndexDefinition, IndexValueType
from repro.workloads import tpox
from repro.xpath import parse_pattern


def fresh_security_db(n=40):
    db = Database()
    db.create_collection("SDOC")
    for i in range(n):
        sector = "Energy" if i % 4 == 0 else "Tech"
        db.insert_document(
            "SDOC",
            f"""<Security id="s{i}">
                  <Symbol>SYM{i:03d}</Symbol>
                  <Yield>{(i % 10) + 0.5}</Yield>
                  <SecInfo><Industrial><Sector>{sector}</Sector></Industrial></SecInfo>
                </Security>""",
        )
    return db


QUERIES = [
    """for $s in X('SDOC')/Security where $s/Symbol = "SYM003" return $s""",
    """for $s in X('SDOC')/Security[Yield>4.5]
       where $s/SecInfo/*/Sector = "Energy" return $s/Symbol""",
    """for $s in X('SDOC')/Security where $s/Yield <= 2.0 return $s""",
    """for $s in X('SDOC')/Security where $s/@id = "s7" return $s""",
    "COLLECTION('SDOC')/Security/Symbol",
]

INDEX_DEFS = [
    ("/Security/Symbol", IndexValueType.STRING),
    ("/Security/Yield", IndexValueType.NUMERIC),
    ("/Security/SecInfo/*/Sector", IndexValueType.STRING),
    ("/Security/@id", IndexValueType.STRING),
]


class TestResultEquivalence:
    @pytest.mark.parametrize("query_text", QUERIES)
    def test_same_rows_with_and_without_indexes(self, query_text):
        query = parse_statement(query_text)
        db = fresh_security_db()
        executor = Executor(db)
        without = executor.execute(query, collect_output=True)

        for i, (pattern, vt) in enumerate(INDEX_DEFS):
            db.create_index(
                IndexDefinition(f"ix{i}", "SDOC", parse_pattern(pattern), vt)
            )
        with_idx = Executor(db).execute(query, collect_output=True)
        assert sorted(without.output) == sorted(with_idx.output)
        assert without.rows == with_idx.rows

    def test_index_reduces_docs_examined(self):
        query = parse_statement(QUERIES[0])
        db = fresh_security_db()
        no_idx = Executor(db).execute(query)
        assert no_idx.docs_examined == 40
        db.create_index(
            IndexDefinition(
                "isym", "SDOC", parse_pattern("/Security/Symbol"),
                IndexValueType.STRING,
            )
        )
        with_idx = Executor(db).execute(query)
        assert with_idx.docs_examined == 1
        assert with_idx.used_indexes == ("isym",)


class TestUpdateExecution:
    def test_insert_adds_document(self):
        db = fresh_security_db(5)
        result = Executor(db).execute(
            parse_statement(
                "insert into SDOC value '<Security><Symbol>NEW</Symbol></Security>'"
            )
        )
        assert result.rows == 1
        assert len(db.collection("SDOC")) == 6

    def test_insert_without_document_rejected(self):
        db = fresh_security_db(2)
        with pytest.raises(ValueError):
            Executor(db).execute(parse_statement("insert into SDOC"))

    def test_delete_removes_matching(self):
        db = fresh_security_db(10)
        result = Executor(db).execute(
            parse_statement('delete from SDOC where /Security/Symbol = "SYM003"')
        )
        assert result.rows == 1
        assert len(db.collection("SDOC")) == 9

    def test_delete_uses_index_and_maintains_it(self):
        db = fresh_security_db(20)
        index = db.create_index(
            IndexDefinition(
                "isym", "SDOC", parse_pattern("/Security/Symbol"),
                IndexValueType.STRING,
            )
        )
        entries_before = index.entry_count()
        result = Executor(db).execute(
            parse_statement('delete from SDOC where /Security/Symbol = "SYM005"')
        )
        assert result.rows == 1
        assert result.used_indexes == ("isym",)
        assert result.docs_examined == 1
        assert index.entry_count() == entries_before - 1

    def test_delete_nothing(self):
        db = fresh_security_db(5)
        result = Executor(db).execute(
            parse_statement('delete from SDOC where /Security/Symbol = "NOPE"')
        )
        assert result.rows == 0
        assert len(db.collection("SDOC")) == 5


class TestTpoxExecution:
    def test_all_tpox_queries_execute(self, tpox_db):
        executor = Executor(tpox_db)
        for text in tpox.tpox_queries(num_securities=120, seed=42):
            result = executor.execute(parse_statement(text))
            assert result.rows >= 0
            assert result.docs_examined > 0

    def test_selective_queries_find_rows(self, tpox_db):
        executor = Executor(tpox_db)
        q1 = parse_statement(tpox.tpox_queries(num_securities=120, seed=42)[0])
        assert executor.execute(q1).rows == 1
