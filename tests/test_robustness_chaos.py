"""Chaos property test (ISSUE satellite): under ANY seeded fault
schedule, ``recommend()`` either returns a valid :class:`Recommendation`
or raises a typed :class:`FatalAdvisorError` -- never an unhandled
exception."""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.advisor import IndexAdvisor, Recommendation
from repro.optimizer.session import WhatIfSession
from repro.query.workload import Workload
from repro.robustness.errors import FatalAdvisorError
from repro.robustness.faults import FaultInjector, FaultRule, injected
from repro.robustness.policy import RetryPolicy
from repro.workloads import tpox

FAST_RETRIES = RetryPolicy(sleep=lambda seconds: None)
BUDGET = 50_000

SITES = st.sampled_from(
    [
        "optimizer",
        "optimizer.evaluate",
        "optimizer.enumerate",
        "optimizer.plan",
        "statistics",
        "statistics.runstats",
        "statistics.derive",
    ]
)

RULES = st.builds(
    FaultRule,
    site=SITES,
    rate=st.floats(min_value=0.0, max_value=1.0),
)

ALGORITHMS = st.sampled_from(
    ["greedy", "greedy_heuristics", "topdown_full", "dp"]
)


def small_database():
    return tpox.build_database(
        num_securities=12, num_orders=12, num_customers=6, seed=7
    )


SMALL_WORKLOAD = tpox.tpox_workload(num_securities=12, seed=7).subset(6)


@settings(max_examples=25, deadline=None)
@given(
    rules=st.lists(RULES, min_size=1, max_size=3),
    seed=st.integers(min_value=0, max_value=2**16),
    algorithm=ALGORITHMS,
)
def test_recommend_never_raises_unhandled(rules, seed, algorithm):
    database = small_database()
    advisor = IndexAdvisor(
        database,
        Workload(SMALL_WORKLOAD.entries),
        session=WhatIfSession(database, retry_policy=FAST_RETRIES),
    )
    with injected(FaultInjector(rules, seed=seed)):
        try:
            recommendation = advisor.recommend(BUDGET, algorithm=algorithm)
        except FatalAdvisorError:
            return  # the one allowed failure mode
    assert isinstance(recommendation, Recommendation)
    assert recommendation.search.size_bytes <= BUDGET
    assert recommendation.search.benefit >= 0.0 or recommendation.degraded
    json.dumps(recommendation.to_dict())  # always serializable


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    algorithm=ALGORITHMS,
)
def test_chaos_schedules_replay_deterministically(seed, algorithm):
    """The same fault seed must reproduce the same outcome -- the
    property that makes chaos failures debuggable."""
    def run():
        database = small_database()
        advisor = IndexAdvisor(
            database,
            Workload(SMALL_WORKLOAD.entries),
            session=WhatIfSession(database, retry_policy=FAST_RETRIES),
        )
        rules = [FaultRule(site="optimizer", rate=0.2)]
        with injected(FaultInjector(rules, seed=seed)):
            try:
                recommendation = advisor.recommend(BUDGET, algorithm=algorithm)
            except FatalAdvisorError as exc:
                return ("fatal", str(exc))
        return (
            "ok",
            recommendation.search.benefit,
            recommendation.session_stats["retries"],
            recommendation.session_stats["degraded_estimates"],
            [str(c.pattern) for c in recommendation.configuration],
        )

    assert run() == run()
