"""Chaos property test (ISSUE satellite): under ANY seeded fault
schedule, ``recommend()`` either returns a valid :class:`Recommendation`
or raises a typed :class:`FatalAdvisorError` -- never an unhandled
exception.  PR 4 extends the same property to the parallel session:
faults injected inside worker fan-outs merge into the parent's degraded
counters and still never escape as anything but FatalAdvisorError."""

import asyncio
import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.advisor import IndexAdvisor, Recommendation
from repro.optimizer.session import WhatIfSession
from repro.parallel import ParallelWhatIfSession
from repro.query.workload import Workload
from repro.robustness.errors import FatalAdvisorError
from repro.robustness.faults import (
    FaultInjector,
    FaultRule,
    InjectedFault,
    injected,
)
from repro.robustness.policy import RetryPolicy
from repro.serve import AdvisorServer, run_portfolio
from repro.serve.requests import ERROR_CODES, Response
from repro.workloads import tpox

FAST_RETRIES = RetryPolicy(sleep=lambda seconds: None)
BUDGET = 50_000

SITES = st.sampled_from(
    [
        "optimizer",
        "optimizer.evaluate",
        "optimizer.enumerate",
        "optimizer.plan",
        "statistics",
        "statistics.runstats",
        "statistics.derive",
    ]
)

RULES = st.builds(
    FaultRule,
    site=SITES,
    rate=st.floats(min_value=0.0, max_value=1.0),
)

ALGORITHMS = st.sampled_from(
    ["greedy", "greedy_heuristics", "topdown_full", "dp", "ilp"]
)


def small_database():
    return tpox.build_database(
        num_securities=12, num_orders=12, num_customers=6, seed=7
    )


SMALL_WORKLOAD = tpox.tpox_workload(num_securities=12, seed=7).subset(6)


@settings(max_examples=25, deadline=None)
@given(
    rules=st.lists(RULES, min_size=1, max_size=3),
    seed=st.integers(min_value=0, max_value=2**16),
    algorithm=ALGORITHMS,
)
def test_recommend_never_raises_unhandled(rules, seed, algorithm):
    database = small_database()
    advisor = IndexAdvisor(
        database,
        Workload(SMALL_WORKLOAD.entries),
        session=WhatIfSession(database, retry_policy=FAST_RETRIES),
    )
    with injected(FaultInjector(rules, seed=seed)):
        try:
            recommendation = advisor.recommend(BUDGET, algorithm=algorithm)
        except FatalAdvisorError:
            return  # the one allowed failure mode
    assert isinstance(recommendation, Recommendation)
    assert recommendation.search.size_bytes <= BUDGET
    assert recommendation.search.benefit >= 0.0 or recommendation.degraded
    json.dumps(recommendation.to_dict())  # always serializable


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**16),
    algorithm=ALGORITHMS,
)
def test_chaos_schedules_replay_deterministically(seed, algorithm):
    """The same fault seed must reproduce the same outcome -- the
    property that makes chaos failures debuggable."""
    def run():
        database = small_database()
        advisor = IndexAdvisor(
            database,
            Workload(SMALL_WORKLOAD.entries),
            session=WhatIfSession(database, retry_policy=FAST_RETRIES),
        )
        rules = [FaultRule(site="optimizer", rate=0.2)]
        with injected(FaultInjector(rules, seed=seed)):
            try:
                recommendation = advisor.recommend(BUDGET, algorithm=algorithm)
            except FatalAdvisorError as exc:
                return ("fatal", str(exc))
        return (
            "ok",
            recommendation.search.benefit,
            recommendation.session_stats["retries"],
            recommendation.session_stats["degraded_estimates"],
            [str(c.pattern) for c in recommendation.configuration],
        )

    assert run() == run()


def test_degraded_ilp_still_beats_degraded_greedy():
    """PR 8 satellite: with every optimizer evaluation failing
    (rate=1.0 pins the degradation deterministically regardless of call
    order), ``ilp`` must still return a valid configuration whose
    benefit -- scored on the same degraded estimates -- is at least the
    degraded greedy baseline's."""
    rules = [
        FaultRule(
            site="optimizer.evaluate",
            rate=1.0,
            exception=lambda site, index: InjectedFault(site, 0),
        )
    ]

    def run(algorithm):
        database = small_database()
        advisor = IndexAdvisor(
            database,
            Workload(SMALL_WORKLOAD.entries),
            session=WhatIfSession(database, retry_policy=FAST_RETRIES),
        )
        with injected(FaultInjector(rules, seed=5)):
            return advisor.recommend(BUDGET, algorithm=algorithm)

    ilp = run("ilp")
    greedy = run("greedy_heuristics")
    assert isinstance(ilp, Recommendation)
    assert ilp.degraded and greedy.degraded
    assert len(ilp.configuration) > 0
    assert ilp.search.size_bytes <= BUDGET
    assert ilp.search.benefit >= greedy.search.benefit - 1e-9
    json.dumps(ilp.to_dict())


# ---------------------------------------------------------------------------
# PR 4: the same chaos properties against the parallel session
# ---------------------------------------------------------------------------

def _parallel_session(database):
    """Thread executor + min_batch=1 so every fan-out path (including
    single-job batches) runs under injection."""
    return ParallelWhatIfSession(
        database,
        retry_policy=FAST_RETRIES,
        workers=2,
        executor="thread",
        min_batch=1,
    )


@settings(max_examples=20, deadline=None)
@given(
    rules=st.lists(RULES, min_size=1, max_size=3),
    seed=st.integers(min_value=0, max_value=2**16),
    algorithm=ALGORITHMS,
)
def test_parallel_recommend_never_raises_unhandled(rules, seed, algorithm):
    database = small_database()
    session = _parallel_session(database)
    advisor = IndexAdvisor(
        database, Workload(SMALL_WORKLOAD.entries), session=session
    )
    try:
        with injected(FaultInjector(rules, seed=seed)):
            try:
                recommendation = advisor.recommend(BUDGET, algorithm=algorithm)
            except FatalAdvisorError:
                return  # the one allowed failure mode, parallel included
    finally:
        session.close()
    assert isinstance(recommendation, Recommendation)
    assert recommendation.search.size_bytes <= BUDGET
    json.dumps(recommendation.to_dict())


def test_parallel_degraded_merge_matches_serial():
    """Every Evaluate-mode call failing (rate=1.0) forces the heuristic
    fallback in every worker; the merged degraded counters, costs, and
    configuration must equal the serial session's.  The rule pins the
    fault message (call indices depend on thread interleaving)."""
    rules = [
        FaultRule(
            site="optimizer.evaluate",
            rate=1.0,
            exception=lambda site, index: InjectedFault(site, 0),
        )
    ]

    def run(session_factory):
        database = small_database()
        session = session_factory(database)
        advisor = IndexAdvisor(
            database, Workload(SMALL_WORKLOAD.entries), session=session
        )
        try:
            with injected(FaultInjector(rules, seed=3)):
                recommendation = advisor.recommend(BUDGET, algorithm="greedy")
        finally:
            session.close()
        data = recommendation.to_dict()
        data.pop("elapsed_seconds")
        data["session"].pop("phase_seconds", None)
        data["session"].pop("workers", None)
        return data

    serial = run(
        lambda db: WhatIfSession(db, retry_policy=FAST_RETRIES)
    )
    parallel = run(_parallel_session)
    assert parallel["degraded"] is True
    assert parallel["session"]["degraded_estimates"] > 0
    assert parallel == serial


def test_parallel_checkpoint_resumes_mid_fanout(tmp_path):
    """A call budget expiring between parallel fan-outs leaves a
    checkpoint; a parallel rerun resumes from it and lands on the same
    configuration as an unbounded serial run.  (Scale and budget mirror
    the serial resume test in test_robustness_runtime.py -- big enough
    that greedy accepts steps before the budget expires.)"""
    path = str(tmp_path / "parallel.ckpt")
    workload = tpox.tpox_workload(num_securities=120, seed=42)

    def big_database():
        return tpox.build_database(
            num_securities=120, num_orders=120, num_customers=60, seed=42
        )

    database = big_database()
    session = _parallel_session(database)
    first = IndexAdvisor(
        database, Workload(workload.entries), session=session
    ).recommend(
        BUDGET,
        algorithm="greedy_heuristics",
        optimizer_call_budget=58,
        checkpoint_path=path,
    )
    session.close()
    assert first.truncated

    database2 = big_database()
    session2 = _parallel_session(database2)
    resumed = IndexAdvisor(
        database2, Workload(workload.entries), session=session2
    ).recommend(BUDGET, algorithm="greedy_heuristics", checkpoint_path=path)
    session2.close()
    assert resumed.search.resumed
    assert not resumed.truncated

    database3 = big_database()
    clean = IndexAdvisor(
        database3,
        Workload(workload.entries),
        session=WhatIfSession(database3, retry_policy=FAST_RETRIES),
    ).recommend(BUDGET, algorithm="greedy_heuristics")
    assert [str(c.pattern) for c in resumed.configuration] == [
        str(c.pattern) for c in clean.configuration
    ]
    assert resumed.search.benefit == clean.search.benefit

# ---------------------------------------------------------------------------
# PR 9: the serving front end under the same chaos discipline
# ---------------------------------------------------------------------------

QUERY_TEXTS = [e.statement.describe() for e in SMALL_WORKLOAD.entries]
SERVE_TIMEOUT = 120


def _serve(coro):
    """Every serve chaos scenario is hang-guarded: a faulted request
    that deadlocked the event loop would trip the wait_for, not CI."""
    return asyncio.run(asyncio.wait_for(coro, timeout=SERVE_TIMEOUT))


def test_faulted_portfolio_lane_degrades_to_survivors_best():
    """Killing exactly the first ``serve.portfolio`` lane (greedy) must
    degrade the retry ladder to the next strategy's standalone result --
    the portfolio never surfaces the fault and never falls below the
    survivors' best."""
    rules = [
        FaultRule(
            site="serve.portfolio",
            at={0},
            exception=lambda site, index: InjectedFault(site, 0),
        )
    ]
    database = small_database()
    with injected(FaultInjector(rules, seed=5)):
        winner = run_portfolio(
            database, Workload(SMALL_WORKLOAD.entries), BUDGET, mode="retry"
        )
    stats = winner.portfolio_stats
    assert stats["strategies_failed"] == 1
    assert stats["strategies"][0]["error_type"] == "InjectedFault"
    assert stats["winner"] == "greedy_heuristics"
    assert any("failed" in line for line in winner.diagnostics)

    clean_db = small_database()
    standalone = IndexAdvisor(
        clean_db,
        Workload(SMALL_WORKLOAD.entries),
        session=WhatIfSession(clean_db),
    ).recommend(BUDGET, algorithm="greedy_heuristics")
    assert winner.search.benefit == standalone.search.benefit
    assert winner.ddl == standalone.ddl
    json.dumps(winner.to_dict())


def test_all_lanes_faulted_is_a_typed_response_never_a_hang():
    """Every tournament lane faulted: the server's recommend endpoint
    must answer with a typed ``advisor-error`` response -- not an
    unhandled exception, not a hang, not a bare 500."""
    rules = [
        FaultRule(
            site="serve.portfolio",
            rate=1.0,
            exception=lambda site, index: InjectedFault(site, 0),
        )
    ]

    async def scenario():
        async with AdvisorServer(small_database()) as server:
            return await server.recommend(QUERY_TEXTS, BUDGET)

    with injected(FaultInjector(rules, seed=9)):
        response = _serve(scenario())
    assert isinstance(response, Response)
    assert not response.ok
    assert response.code == "advisor-error"
    assert "injected" in response.error
    json.dumps(response.to_dict())


@settings(max_examples=15, deadline=None)
@given(
    rate=st.floats(min_value=0.0, max_value=1.0),
    seed=st.integers(min_value=0, max_value=2**16),
)
def test_request_faults_always_typed_never_hang(rate, seed):
    """Faults at the ``serve.request`` admission boundary, at any rate
    and seed: every response is still a typed :class:`Response` (ok or
    a taxonomy code), the server never raises, and rejected requests
    leave no partial state (storage counters equal a fault-free run's
    for the requests that did commit)."""
    rules = [
        FaultRule(
            site="serve.request",
            rate=rate,
            exception=lambda site, index: InjectedFault(site, 0),
        )
    ]
    schedule = [{"kind": "query", "text": text} for text in QUERY_TEXTS[:3]]
    schedule.append(
        {
            "kind": "dml",
            "text": "insert into SDOC value "
            "'<Security><Symbol>CHAOS</Symbol></Security>'",
        }
    )

    async def scenario():
        async with AdvisorServer(small_database()) as server:
            responses = await server.run_schedule(schedule, clients=3)
            return responses, server

    with injected(FaultInjector(rules, seed=seed)):
        responses, server = _serve(scenario())
    for response in responses:
        assert isinstance(response, Response)
        if not response.ok:
            assert response.code in ERROR_CODES
            assert response.seq is None  # nothing committed
    committed = [r for r in responses if r.kind == "dml" and r.ok]
    assert server.stats()["writes"] == len(committed)
    json.dumps([response.to_dict() for response in responses])


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_serve_chaos_replays_deterministically(seed):
    """The same fault seed against the same schedule reproduces the
    same responses -- serve chaos failures are debuggable replays, like
    every other chaos site."""
    rules = [FaultRule(site="serve.request", rate=0.5)]
    schedule = [
        {"kind": "query", "text": QUERY_TEXTS[0]},
        {
            "kind": "dml",
            "text": "insert into SDOC value "
            "'<Security><Symbol>RPL</Symbol></Security>'",
        },
        {"kind": "query", "text": QUERY_TEXTS[1]},
    ]

    async def scenario():
        async with AdvisorServer(small_database()) as server:
            return await server.run_schedule(schedule, clients=2)

    def run_once():
        with injected(FaultInjector(rules, seed=seed)):
            return [r.comparable() for r in _serve(scenario())]

    assert run_once() == run_once()
