"""Tests for bulk index loading and incremental-maintenance equivalence."""

import pytest

from repro.storage import Database, IndexDefinition, IndexValueType, PathIndex
from repro.xmlmodel import parse_document
from repro.xpath import parse_pattern

DOCS = [
    f"<S><V>{(i * 7) % 13}</V><W>text{i}</W></S>" for i in range(25)
]


def parsed_docs():
    return [parse_document(text, doc_id=i) for i, text in enumerate(DOCS)]


class TestBulkLoad:
    @pytest.mark.parametrize(
        "pattern,value_type",
        [
            ("/S/V", IndexValueType.NUMERIC),
            ("/S/V", IndexValueType.STRING),
            ("/S/*", IndexValueType.STRING),
        ],
    )
    def test_bulk_equals_incremental(self, pattern, value_type):
        definition = IndexDefinition("i", "C", parse_pattern(pattern), value_type)
        incremental = PathIndex(definition)
        for document in parsed_docs():
            incremental.insert_document(document)
        bulk = PathIndex(definition)
        bulk.bulk_load(parsed_docs())
        assert bulk.entries == incremental.entries

    def test_bulk_returns_count(self):
        definition = IndexDefinition(
            "i", "C", parse_pattern("/S/V"), IndexValueType.NUMERIC
        )
        index = PathIndex(definition)
        assert index.bulk_load(parsed_docs()) == 25

    def test_bulk_then_incremental_maintenance(self):
        db = Database()
        db.create_collection("C")
        for text in DOCS:
            db.insert_document("C", text)
        index = db.create_index(
            IndexDefinition("i", "C", parse_pattern("/S/V"), IndexValueType.NUMERIC)
        )
        db.insert_document("C", "<S><V>99</V></S>")
        assert index.entry_count() == 26
        keys = [e[0] for e in index.entries]
        assert keys == sorted(keys)  # order maintained through the insert
