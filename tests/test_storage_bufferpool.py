"""Tests for the buffer pool simulation."""

import pytest

from repro import IndexAdvisor, Workload
from repro.query import parse_statement
from repro.storage.bufferpool import (
    BufferPool,
    PagedExecutor,
    PoolStats,
)
from repro.workloads import tpox


class TestBufferPool:
    def test_miss_then_hit(self):
        pool = BufferPool(capacity_pages=4)
        assert pool.access(("p", 1)) is False
        assert pool.access(("p", 1)) is True
        assert pool.stats.hits == 1
        assert pool.stats.misses == 1
        assert pool.stats.hit_ratio == 0.5

    def test_lru_eviction(self):
        pool = BufferPool(capacity_pages=2)
        pool.access(("p", 1))
        pool.access(("p", 2))
        pool.access(("p", 1))  # 1 becomes most recent
        pool.access(("p", 3))  # evicts 2
        assert pool.access(("p", 1)) is True
        assert pool.access(("p", 2)) is False  # was evicted

    def test_capacity_bound(self):
        pool = BufferPool(capacity_pages=3)
        for i in range(10):
            pool.access(("p", i))
        assert pool.resident_pages() == 3

    def test_invalid_capacity(self):
        with pytest.raises(ValueError):
            BufferPool(0)

    def test_reset_and_clear(self):
        pool = BufferPool(4)
        pool.access(("p", 1))
        pool.reset_stats()
        assert pool.stats.accesses == 0
        assert pool.resident_pages() == 1
        pool.clear()
        assert pool.resident_pages() == 0

    def test_empty_stats(self):
        assert PoolStats().hit_ratio == 0.0


@pytest.fixture()
def paged_world():
    db = tpox.build_database(
        num_securities=80, num_orders=20, num_customers=10, seed=77
    )
    statement = parse_statement(
        f"""for $s in X('SDOC')/Security
            where $s/Symbol = "{tpox.symbol_for(7)}"
            return $s"""
    )
    return db, statement


class TestPagedExecutor:
    def test_scan_touches_every_document(self, paged_world):
        db, statement = paged_world
        pool = BufferPool(capacity_pages=10_000)
        executor = PagedExecutor(db, pool)
        outcome = executor.execute(statement)
        # at least one page per SDOC document
        assert outcome.page_accesses >= len(db.collection("SDOC"))
        assert outcome.result.rows == 1

    def test_cold_pool_all_misses(self, paged_world):
        db, statement = paged_world
        pool = BufferPool(capacity_pages=10_000)
        outcome = PagedExecutor(db, pool).execute(statement)
        assert outcome.physical_reads == outcome.page_accesses

    def test_warm_pool_hits(self, paged_world):
        db, statement = paged_world
        pool = BufferPool(capacity_pages=10_000)
        executor = PagedExecutor(db, pool)
        executor.execute(statement)
        warm = executor.execute(statement)
        assert warm.physical_reads == 0
        assert warm.hit_ratio == 1.0

    def test_small_pool_keeps_missing(self, paged_world):
        db, statement = paged_world
        pool = BufferPool(capacity_pages=4)
        executor = PagedExecutor(db, pool)
        executor.execute(statement)
        rerun = executor.execute(statement)
        # the scan working set far exceeds 4 pages -> LRU thrashes
        assert rerun.physical_reads > rerun.page_accesses * 0.5

    def test_index_shrinks_working_set(self, paged_world):
        """The central claim the simulation supports: with the recommended
        index, repeated query runs touch a few pages instead of the whole
        collection."""
        db, statement = paged_world
        workload = Workload.from_statements([statement])
        pool = BufferPool(capacity_pages=10_000)
        executor = PagedExecutor(db, pool)
        cold_scan = executor.execute(statement)

        advisor = IndexAdvisor(db, workload)
        advisor.create_indexes(advisor.recommend(budget_bytes=100_000))
        pool.clear()
        executor = PagedExecutor(db, pool)
        cold_indexed = executor.execute(statement)
        assert cold_indexed.page_accesses < cold_scan.page_accesses / 5
        assert cold_indexed.result.used_indexes
