"""Unit tests for the cost model."""

import pytest

from repro.optimizer.cost import CostConstants, CostModel
from repro.optimizer.rewriter import PathRequest
from repro.storage import Database, IndexDefinition, IndexValueType
from repro.xpath import parse_pattern
from repro.xpath.ast import Literal


@pytest.fixture()
def model(security_db):
    return CostModel(security_db.runstats("SDOC"))


def definition(pattern, value_type=IndexValueType.STRING, name="d"):
    return IndexDefinition(name, "SDOC", parse_pattern(pattern), value_type, True)


class TestBaseQuantities:
    def test_doc_count(self, model):
        assert model.doc_count == 30

    def test_avg_nodes_per_doc(self, model):
        assert model.avg_nodes_per_doc > 5


class TestCollectionScan:
    def test_scales_with_docs(self, security_db):
        small = CostModel(security_db.runstats("SDOC"))
        big_db = Database()
        big_db.create_collection("SDOC")
        for i in range(90):
            big_db.insert_document("SDOC", "<Security><Symbol>X</Symbol></Security>")
        big = CostModel(big_db.runstats("SDOC"))
        # 3x the docs, but smaller docs; per-doc overhead still dominates
        assert big.collection_scan_cost() > small.collection_scan_cost()

    def test_positive(self, model):
        assert model.collection_scan_cost() > 0


class TestIndexAccess:
    def test_selective_eq_cheap(self, model):
        request = PathRequest(
            parse_pattern("/Security/Symbol"), "=", Literal("SYM003")
        )
        access = model.index_access(definition("/Security/Symbol"), request)
        assert access.candidate_docs <= 2
        assert access.scan_cost < model.collection_scan_cost()

    def test_unselective_range_touches_more(self, model):
        narrow = model.index_access(
            definition("/Security/Yield", IndexValueType.NUMERIC),
            PathRequest(parse_pattern("/Security/Yield"), ">", Literal(9.0)),
        )
        wide = model.index_access(
            definition("/Security/Yield", IndexValueType.NUMERIC),
            PathRequest(parse_pattern("/Security/Yield"), ">", Literal(0.0)),
        )
        assert wide.touched_entries > narrow.touched_entries
        assert wide.candidate_docs >= narrow.candidate_docs

    def test_general_index_touches_more_but_same_docs(self, model):
        """The path-filter-inside-the-index behaviour: a broad index pays
        more entry CPU for the same request but fetches the same docs."""
        request = PathRequest(
            parse_pattern("/Security/Symbol"), "=", Literal("SYM003")
        )
        specific = model.index_access(definition("/Security/Symbol"), request)
        general = model.index_access(definition("/Security//*"), request)
        assert general.touched_entries >= specific.touched_entries
        assert general.candidate_docs == pytest.approx(
            specific.candidate_docs, abs=1.0
        )
        assert general.scan_cost >= specific.scan_cost

    def test_existence_scans_whole_index(self, model):
        request = PathRequest(parse_pattern("/Security/SecInfo"))
        access = model.index_access(definition("/Security/SecInfo"), request)
        assert access.touched_entries == 30  # one SecInfo per doc

    def test_candidate_docs_never_exceed_doc_count(self, model):
        request = PathRequest(parse_pattern("/Security//*"))
        access = model.index_access(definition("/Security//*"), request)
        assert access.candidate_docs <= model.doc_count


class TestComposites:
    def test_anded_docs_independence(self, model):
        docs = model.anded_docs([15.0, 10.0])
        assert docs == pytest.approx(15.0 * 10.0 / 30.0)

    def test_anded_docs_empty_is_all(self, model):
        assert model.anded_docs([]) == model.doc_count

    def test_fetch_cost_linear(self, model):
        assert model.fetch_cost(20) == pytest.approx(2 * model.fetch_cost(10))

    def test_request_result_docs_capped(self, model):
        request = PathRequest(parse_pattern("/Security/Yield"), ">=", Literal(0.0))
        assert model.request_result_docs(request) <= model.doc_count

    def test_insert_cost_grows_with_nodes(self, model):
        assert model.insert_cost(100) > model.insert_cost(10)

    def test_custom_constants_respected(self, security_db):
        cheap = CostModel(
            security_db.runstats("SDOC"), CostConstants(doc_overhead=0.01)
        )
        pricey = CostModel(
            security_db.runstats("SDOC"), CostConstants(doc_overhead=10.0)
        )
        assert pricey.collection_scan_cost() > cheap.collection_scan_cost()


class TestPlanNodes:
    def test_used_index_names(self, security_db):
        from repro.optimizer.plans import (
            Fetch,
            IndexAnding,
            IndexScan,
            used_index_names,
        )

        request = PathRequest(
            parse_pattern("/Security/Symbol"), "=", Literal("A")
        )
        scans = [
            IndexScan(definition("/Security/Symbol", name="a"), request),
            IndexScan(definition("/Security/Yield", IndexValueType.NUMERIC, "b"),
                      PathRequest(parse_pattern("/Security/Yield"), ">", Literal(1.0))),
        ]
        plan = Fetch(IndexAnding(scans), "SDOC")
        assert used_index_names(plan) == ("a", "b")

    def test_explain_indents_children(self, security_db):
        from repro.optimizer.plans import CollectionScan, Fetch

        plan = Fetch(CollectionScan("SDOC"), "SDOC")
        lines = plan.explain().splitlines()
        assert lines[0].startswith("FETCH")
        assert lines[1].startswith("  COLLECTION SCAN")
