"""Tests for database persistence."""

import json
import os

import pytest

from repro.robustness.errors import PersistError
from repro.robustness.faults import FaultInjector, FaultRule, injected
from repro.storage import Database, IndexDefinition, IndexValueType
from repro.storage.persist import load_database, save_database
from repro.xmlmodel import serialize
from repro.xpath import parse_pattern


@pytest.fixture()
def populated_db():
    db = Database("mydb")
    db.create_collection("SDOC")
    db.create_collection("EMPTY")
    for i in range(5):
        db.insert_document(
            "SDOC", f"<Security><Symbol>S{i}</Symbol><Yield>{i}.5</Yield></Security>"
        )
    db.create_index(
        IndexDefinition(
            "iy", "SDOC", parse_pattern("/Security/Yield"), IndexValueType.NUMERIC
        )
    )
    return db


class TestRoundTrip:
    def test_documents_survive(self, populated_db, tmp_path):
        save_database(populated_db, str(tmp_path / "db"))
        loaded = load_database(str(tmp_path / "db"))
        assert loaded.name == "mydb"
        assert set(loaded.collections) == {"SDOC", "EMPTY"}
        original = [serialize(d.root) for d in populated_db.collection("SDOC")]
        restored = [serialize(d.root) for d in loaded.collection("SDOC")]
        assert original == restored

    def test_indexes_rebuilt(self, populated_db, tmp_path):
        save_database(populated_db, str(tmp_path / "db"))
        loaded = load_database(str(tmp_path / "db"))
        index = loaded.index("iy")
        assert index.entry_count() == 5
        assert index.definition.value_type is IndexValueType.NUMERIC
        assert str(index.definition.pattern) == "/Security/Yield"

    def test_virtual_definitions_not_persisted(self, populated_db, tmp_path):
        populated_db.catalog.add(
            IndexDefinition(
                "v", "SDOC", parse_pattern("//*"), IndexValueType.STRING, virtual=True
            )
        )
        save_database(populated_db, str(tmp_path / "db"))
        loaded = load_database(str(tmp_path / "db"))
        assert "v" not in loaded.catalog

    def test_deleted_documents_not_persisted(self, populated_db, tmp_path):
        populated_db.delete_document("SDOC", 2)
        save_database(populated_db, str(tmp_path / "db"))
        loaded = load_database(str(tmp_path / "db"))
        assert len(loaded.collection("SDOC")) == 4

    def test_resave_overwrites_stale_documents(self, populated_db, tmp_path):
        root = str(tmp_path / "db")
        save_database(populated_db, root)
        populated_db.delete_document("SDOC", 0)
        populated_db.delete_document("SDOC", 1)
        save_database(populated_db, root)
        loaded = load_database(root)
        assert len(loaded.collection("SDOC")) == 3

    def test_empty_collection_round_trip(self, populated_db, tmp_path):
        save_database(populated_db, str(tmp_path / "db"))
        loaded = load_database(str(tmp_path / "db"))
        assert len(loaded.collection("EMPTY")) == 0


class TestErrors:
    def test_missing_database(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_database(str(tmp_path / "nope"))

    def test_bad_format_version(self, tmp_path):
        root = tmp_path / "db"
        root.mkdir()
        (root / "database.json").write_text(
            '{"format_version": 999, "name": "x", "collections": []}'
        )
        with pytest.raises(ValueError):
            load_database(str(root))


class TestHardening:
    """PersistError (with the offending path) instead of raw
    KeyError/JSONDecodeError; atomic temp-file + rename writes."""

    def test_corrupt_metadata_names_the_file(self, populated_db, tmp_path):
        root = str(tmp_path / "db")
        save_database(populated_db, root)
        meta_path = os.path.join(root, "database.json")
        with open(meta_path, "w") as handle:
            handle.write('{"name": "trunca')  # simulated torn write
        with pytest.raises(PersistError) as excinfo:
            load_database(root)
        assert meta_path in str(excinfo.value)

    def test_metadata_missing_collections_key(self, populated_db, tmp_path):
        root = str(tmp_path / "db")
        save_database(populated_db, root)
        meta_path = os.path.join(root, "database.json")
        with open(meta_path, "w") as handle:
            json.dump({"format_version": 1, "name": "x"}, handle)
        with pytest.raises(PersistError) as excinfo:
            load_database(root)
        assert meta_path in str(excinfo.value)

    def test_corrupt_catalog_names_the_file(self, populated_db, tmp_path):
        root = str(tmp_path / "db")
        save_database(populated_db, root)
        catalog_path = os.path.join(root, "catalog.json")
        with open(catalog_path, "w") as handle:
            json.dump([{"name": "iy"}], handle)  # missing keys
        with pytest.raises(PersistError) as excinfo:
            load_database(root)
        assert catalog_path in str(excinfo.value)

    def test_corrupt_document_names_the_file(self, populated_db, tmp_path):
        root = str(tmp_path / "db")
        save_database(populated_db, root)
        doc_path = os.path.join(root, "collections", "SDOC", "doc_00000000.xml")
        with open(doc_path, "w") as handle:
            handle.write("<Security><unclosed>")
        with pytest.raises(PersistError) as excinfo:
            load_database(root)
        assert doc_path in str(excinfo.value)

    def test_save_leaves_no_temp_files(self, populated_db, tmp_path):
        root = tmp_path / "db"
        save_database(populated_db, str(root))
        save_database(populated_db, str(root))  # resave over existing
        leftovers = [
            os.path.join(dirpath, name)
            for dirpath, _, names in os.walk(root)
            for name in names
            if name.startswith(".tmp_") or name.endswith("~")
        ]
        assert leftovers == []

    def test_injected_save_fault_becomes_persist_error(
        self, populated_db, tmp_path
    ):
        with injected(FaultInjector([FaultRule(site="persist.save")])):
            with pytest.raises(PersistError):
                save_database(populated_db, str(tmp_path / "db"))

    def test_injected_load_fault_becomes_persist_error(
        self, populated_db, tmp_path
    ):
        root = str(tmp_path / "db")
        save_database(populated_db, root)
        with injected(FaultInjector([FaultRule(site="persist.load")])):
            with pytest.raises(PersistError):
                load_database(root)

    def test_load_fault_is_replayable(self, populated_db, tmp_path):
        root = str(tmp_path / "db")
        save_database(populated_db, root)
        with injected(
            FaultInjector([FaultRule(site="persist.load", rate=0.5)], seed=11)
        ):
            try:
                load_database(root)
                first = "ok"
            except PersistError:
                first = "fault"
        with injected(
            FaultInjector([FaultRule(site="persist.load", rate=0.5)], seed=11)
        ):
            try:
                load_database(root)
                second = "ok"
            except PersistError:
                second = "fault"
        assert first == second
