"""Tests for database persistence."""

import os

import pytest

from repro.storage import Database, IndexDefinition, IndexValueType
from repro.storage.persist import load_database, save_database
from repro.xmlmodel import serialize
from repro.xpath import parse_pattern


@pytest.fixture()
def populated_db():
    db = Database("mydb")
    db.create_collection("SDOC")
    db.create_collection("EMPTY")
    for i in range(5):
        db.insert_document(
            "SDOC", f"<Security><Symbol>S{i}</Symbol><Yield>{i}.5</Yield></Security>"
        )
    db.create_index(
        IndexDefinition(
            "iy", "SDOC", parse_pattern("/Security/Yield"), IndexValueType.NUMERIC
        )
    )
    return db


class TestRoundTrip:
    def test_documents_survive(self, populated_db, tmp_path):
        save_database(populated_db, str(tmp_path / "db"))
        loaded = load_database(str(tmp_path / "db"))
        assert loaded.name == "mydb"
        assert set(loaded.collections) == {"SDOC", "EMPTY"}
        original = [serialize(d.root) for d in populated_db.collection("SDOC")]
        restored = [serialize(d.root) for d in loaded.collection("SDOC")]
        assert original == restored

    def test_indexes_rebuilt(self, populated_db, tmp_path):
        save_database(populated_db, str(tmp_path / "db"))
        loaded = load_database(str(tmp_path / "db"))
        index = loaded.index("iy")
        assert index.entry_count() == 5
        assert index.definition.value_type is IndexValueType.NUMERIC
        assert str(index.definition.pattern) == "/Security/Yield"

    def test_virtual_definitions_not_persisted(self, populated_db, tmp_path):
        populated_db.catalog.add(
            IndexDefinition(
                "v", "SDOC", parse_pattern("//*"), IndexValueType.STRING, virtual=True
            )
        )
        save_database(populated_db, str(tmp_path / "db"))
        loaded = load_database(str(tmp_path / "db"))
        assert "v" not in loaded.catalog

    def test_deleted_documents_not_persisted(self, populated_db, tmp_path):
        populated_db.delete_document("SDOC", 2)
        save_database(populated_db, str(tmp_path / "db"))
        loaded = load_database(str(tmp_path / "db"))
        assert len(loaded.collection("SDOC")) == 4

    def test_resave_overwrites_stale_documents(self, populated_db, tmp_path):
        root = str(tmp_path / "db")
        save_database(populated_db, root)
        populated_db.delete_document("SDOC", 0)
        populated_db.delete_document("SDOC", 1)
        save_database(populated_db, root)
        loaded = load_database(root)
        assert len(loaded.collection("SDOC")) == 3

    def test_empty_collection_round_trip(self, populated_db, tmp_path):
        save_database(populated_db, str(tmp_path / "db"))
        loaded = load_database(str(tmp_path / "db"))
        assert len(loaded.collection("EMPTY")) == 0


class TestErrors:
    def test_missing_database(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_database(str(tmp_path / "nope"))

    def test_bad_format_version(self, tmp_path):
        root = tmp_path / "db"
        root.mkdir()
        (root / "database.json").write_text(
            '{"format_version": 999, "name": "x", "collections": []}'
        )
        with pytest.raises(ValueError):
            load_database(str(root))
