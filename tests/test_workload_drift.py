"""Tests for the workload drift generator."""

import pytest

from repro.query import Query, Workload
from repro.workloads import tpox
from repro.workloads.drift import drift_workload


@pytest.fixture()
def workload(tpox_db):
    return tpox.tpox_workload(num_securities=120, seed=42)


class TestDrift:
    def test_deterministic(self, tpox_db, workload):
        a = drift_workload(tpox_db, workload, seed=7)
        b = drift_workload(tpox_db, workload, seed=7)
        assert [e.statement.describe() for e in a] == [
            e.statement.describe() for e in b
        ]

    def test_seeds_differ(self, tpox_db, workload):
        a = drift_workload(tpox_db, workload, seed=1)
        b = drift_workload(tpox_db, workload, seed=2)
        assert [e.statement.describe() for e in a] != [
            e.statement.describe() for e in b
        ]

    def test_same_size_and_frequencies(self, tpox_db, workload):
        drifted = drift_workload(tpox_db, workload, seed=3)
        assert len(drifted) == len(workload)
        assert [e.frequency for e in drifted] == [e.frequency for e in workload]

    def test_something_actually_drifts(self, tpox_db, workload):
        drifted = drift_workload(tpox_db, workload, seed=3)
        changed = sum(
            1
            for before, after in zip(workload, drifted)
            if before.statement.describe() != after.statement.describe()
        )
        assert changed >= len(workload) // 3

    def test_drifted_queries_still_parseable_structures(self, tpox_db, workload):
        drifted = drift_workload(tpox_db, workload, seed=4)
        for entry in drifted:
            assert isinstance(entry.statement, Query)
            for clause in entry.statement.where:
                if clause.is_comparison:
                    assert clause.literal is not None

    def test_drifted_paths_exist_in_data(self, tpox_db, workload):
        """Sibling drift must target elements that occur in the data."""
        from repro.optimizer.rewriter import extract_path_requests

        drifted = drift_workload(tpox_db, workload, seed=5)
        stats = tpox_db.runstats("SDOC")
        for entry in drifted:
            if entry.statement.collection != "SDOC":
                continue
            for request in extract_path_requests(entry.statement):
                assert any(
                    request.pattern.matches(path) for path in stats.path_counts
                ), f"drifted pattern {request.pattern} matches no data path"

    def test_drifted_queries_executable(self, tpox_db, workload):
        from repro import Executor

        executor = Executor(tpox_db)
        drifted = drift_workload(tpox_db, workload, seed=6)
        for entry in drifted:
            result = executor.execute(entry.statement)
            assert result.docs_examined > 0

    def test_zero_probabilities_no_change(self, tpox_db, workload):
        same = drift_workload(
            tpox_db, workload, seed=1,
            literal_probability=0.0, sibling_probability=0.0,
        )
        assert [e.statement.describe() for e in same] == [
            e.statement.describe() for e in workload
        ]

    def test_updates_pass_through(self, tpox_db):
        workload = Workload.from_statements(
            ["insert into SDOC value '<Security/>'"]
        )
        drifted = drift_workload(tpox_db, workload, seed=1)
        assert drifted.entries[0].statement is workload.entries[0].statement


class TestDriftReplay:
    """Seeded drift is a *replayable* event stream: the same seed must
    reproduce the same drifted statements on every run, and the cluster
    layer underneath must assign the same documents to the same shards
    -- otherwise drift experiments on clusters are not comparable."""

    def test_seeded_replay_is_deterministic_across_replays(
        self, tpox_db, workload
    ):
        replays = [
            [
                e.statement.describe()
                for e in drift_workload(tpox_db, workload, seed=7)
            ]
            for _ in range(3)
        ]
        assert replays[0] == replays[1] == replays[2]

    def test_drifted_workload_routes_identically_across_runs(self, workload):
        """Two identically built clusters route the same drifted
        workload to the same (shard, replica) pairs."""
        from repro.cluster import Cluster
        from repro.workloads import tpox as tpox_module

        def route_once():
            db = tpox_module.build_database(
                num_securities=60, num_orders=60, num_customers=30, seed=9
            )
            cluster = Cluster.from_database(db, shards=2, replicas=2)
            drifted = drift_workload(db, workload, seed=11)
            return cluster.router.route_workload(drifted)

        assert route_once() == route_once()


class TestShardKeyStability:
    """Shard assignment is a pure function of the document key -- pinned
    golden values, and identical placement across two builds."""

    def test_shard_of_key_is_pinned(self):
        from repro.cluster import shard_of_key

        assert [shard_of_key(k, 4) for k in range(8)] == [
            0, 1, 2, 3, 0, 1, 2, 3,
        ]
        assert [shard_of_key(k, 3) for k in (0, 10, 100, 1000)] == [
            0, 1, 1, 1,
        ]

    def test_same_build_places_documents_identically(self):
        from repro.cluster import Cluster
        from repro.workloads import tpox as tpox_module
        from repro.xmlmodel.serializer import serialize

        def placement():
            db = tpox_module.build_database(
                num_securities=30, num_orders=30, num_customers=15, seed=5
            )
            cluster = Cluster.from_database(db, shards=3, replicas=1)
            return {
                (name, shard): tuple(
                    serialize(d.root)
                    for d in cluster.replica_database(shard, 0).collection(name)
                )
                for name in db.collections
                for shard in range(3)
            }

        assert placement() == placement()

    def test_resharding_does_not_reorder_documents(self):
        """Keys are assigned in insertion order, so shard s holds
        exactly the documents whose original position is congruent to s
        (mod shards), in their original relative order."""
        from repro.cluster import Cluster
        from repro.workloads import tpox as tpox_module
        from repro.xmlmodel.serializer import serialize

        db = tpox_module.build_database(
            num_securities=20, num_orders=20, num_customers=10, seed=5
        )
        originals = [serialize(d.root) for d in db.collection("SDOC")]
        cluster = Cluster.from_database(db, shards=2, replicas=1)
        for shard in range(2):
            held = [
                serialize(d.root)
                for d in cluster.replica_database(shard, 0).collection("SDOC")
            ]
            assert held == originals[shard::2]


class TestDriftWithJoins:
    def test_join_queries_pass_through_unchanged(self, tpox_db):
        from repro.workloads import tpox as tpox_module

        wl = Workload.from_statements(
            tpox_module.tpox_join_queries(num_securities=120, seed=42)
        )
        drifted = drift_workload(tpox_db, wl, seed=1)
        assert [e.statement.describe() for e in drifted] == [
            e.statement.describe() for e in wl
        ]


class TestDriftTexts:
    """Text-level drift replay: ``drift_texts`` must line up with the
    original stream arrival-for-arrival and produce replayable syntax."""

    def test_unparse_round_trips_undrifted_queries(self, tpox_db, workload):
        from repro.query.parser import parse_statement
        from repro.workloads.drift import unparse_query

        for entry in workload:
            if not isinstance(entry.statement, Query):
                continue
            rebuilt = parse_statement(unparse_query(entry.statement))
            assert rebuilt.collection == entry.statement.collection
            assert str(rebuilt.binding_path) == (
                str(entry.statement.binding_path)
            )
            assert len(rebuilt.where) == len(entry.statement.where)
            assert rebuilt.return_paths == entry.statement.return_paths

    def test_drift_texts_lines_up_and_stays_parseable(self, tpox_db):
        from repro.query.parser import parse_statement
        from repro.workloads.drift import drift_texts
        from repro.workloads.stream import drifting_stream

        texts, __ = drifting_stream(num_statements=60, seed=3)
        drifted = drift_texts(tpox_db, texts, seed=3)
        assert len(drifted) == len(texts)
        changed = sum(a != b for a, b in zip(texts, drifted))
        assert changed > 0
        for text in drifted:
            parse_statement(text)

    def test_drift_texts_is_deterministic(self, tpox_db):
        from repro.workloads.drift import drift_texts
        from repro.workloads.stream import drifting_stream

        texts, __ = drifting_stream(num_statements=40, seed=3)
        assert drift_texts(tpox_db, texts, seed=9) == (
            drift_texts(tpox_db, texts, seed=9)
        )

    def test_non_queries_pass_through(self, tpox_db):
        from repro.workloads.drift import drift_texts

        texts = [
            'delete from SDOC where /Security/Symbol = "AA0001"',
            "complete gibberish",
        ]
        assert drift_texts(tpox_db, texts, seed=1) == texts
