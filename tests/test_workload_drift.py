"""Tests for the workload drift generator."""

import pytest

from repro.query import Query, Workload
from repro.workloads import tpox
from repro.workloads.drift import drift_workload


@pytest.fixture()
def workload(tpox_db):
    return tpox.tpox_workload(num_securities=120, seed=42)


class TestDrift:
    def test_deterministic(self, tpox_db, workload):
        a = drift_workload(tpox_db, workload, seed=7)
        b = drift_workload(tpox_db, workload, seed=7)
        assert [e.statement.describe() for e in a] == [
            e.statement.describe() for e in b
        ]

    def test_seeds_differ(self, tpox_db, workload):
        a = drift_workload(tpox_db, workload, seed=1)
        b = drift_workload(tpox_db, workload, seed=2)
        assert [e.statement.describe() for e in a] != [
            e.statement.describe() for e in b
        ]

    def test_same_size_and_frequencies(self, tpox_db, workload):
        drifted = drift_workload(tpox_db, workload, seed=3)
        assert len(drifted) == len(workload)
        assert [e.frequency for e in drifted] == [e.frequency for e in workload]

    def test_something_actually_drifts(self, tpox_db, workload):
        drifted = drift_workload(tpox_db, workload, seed=3)
        changed = sum(
            1
            for before, after in zip(workload, drifted)
            if before.statement.describe() != after.statement.describe()
        )
        assert changed >= len(workload) // 3

    def test_drifted_queries_still_parseable_structures(self, tpox_db, workload):
        drifted = drift_workload(tpox_db, workload, seed=4)
        for entry in drifted:
            assert isinstance(entry.statement, Query)
            for clause in entry.statement.where:
                if clause.is_comparison:
                    assert clause.literal is not None

    def test_drifted_paths_exist_in_data(self, tpox_db, workload):
        """Sibling drift must target elements that occur in the data."""
        from repro.optimizer.rewriter import extract_path_requests

        drifted = drift_workload(tpox_db, workload, seed=5)
        stats = tpox_db.runstats("SDOC")
        for entry in drifted:
            if entry.statement.collection != "SDOC":
                continue
            for request in extract_path_requests(entry.statement):
                assert any(
                    request.pattern.matches(path) for path in stats.path_counts
                ), f"drifted pattern {request.pattern} matches no data path"

    def test_drifted_queries_executable(self, tpox_db, workload):
        from repro import Executor

        executor = Executor(tpox_db)
        drifted = drift_workload(tpox_db, workload, seed=6)
        for entry in drifted:
            result = executor.execute(entry.statement)
            assert result.docs_examined > 0

    def test_zero_probabilities_no_change(self, tpox_db, workload):
        same = drift_workload(
            tpox_db, workload, seed=1,
            literal_probability=0.0, sibling_probability=0.0,
        )
        assert [e.statement.describe() for e in same] == [
            e.statement.describe() for e in workload
        ]

    def test_updates_pass_through(self, tpox_db):
        workload = Workload.from_statements(
            ["insert into SDOC value '<Security/>'"]
        )
        drifted = drift_workload(tpox_db, workload, seed=1)
        assert drifted.entries[0].statement is workload.entries[0].statement


class TestDriftWithJoins:
    def test_join_queries_pass_through_unchanged(self, tpox_db):
        from repro.workloads import tpox as tpox_module

        wl = Workload.from_statements(
            tpox_module.tpox_join_queries(num_securities=120, seed=42)
        )
        drifted = drift_workload(tpox_db, wl, seed=1)
        assert [e.statement.describe() for e in drifted] == [
            e.statement.describe() for e in wl
        ]
