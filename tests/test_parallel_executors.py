"""Executor and engine edge cases (ISSUE PR 4 satellite).

Covers worker-count/executor parsing, chunk geometry, degenerate batch
shapes (empty workload, single statement, more workers than statements),
pickling of compiled-pattern state across process boundaries (the
``GLOBAL_TABLE`` re-interning path exercised by a spawn pool), and
pool-failure / interrupt cleanup.
"""

import pickle

import pytest

from repro.core.advisor import IndexAdvisor
from repro.optimizer.session import WhatIfSession
from repro.parallel import ParallelWhatIfSession, create_session
from repro.parallel.executors import (
    PoolBrokenError,
    WorkerPool,
    available_workers,
    chunk_count,
    chunk_spans,
    resolve_executor,
    resolve_workers,
    workers_from_env,
)
from repro.query.parser import parse_statement
from repro.query.workload import Workload
from repro.workloads import tpox
from repro.xpath.patterns import parse_pattern


def small_db():
    return tpox.build_database(
        num_securities=16, num_orders=16, num_customers=8, seed=11
    )


SMALL_WORKLOAD = tpox.tpox_workload(num_securities=16, seed=11)


# ---------------------------------------------------------------------------
# Worker-count and executor parsing
# ---------------------------------------------------------------------------

def test_resolve_workers_accepts_counts_and_keywords():
    assert resolve_workers(None, default=3) == 3
    assert resolve_workers(0) == 0
    assert resolve_workers(4) == 4
    assert resolve_workers("4") == 4
    assert resolve_workers(" 2 ") == 2
    assert resolve_workers("serial") == 0
    assert resolve_workers("off") == 0
    assert resolve_workers("") == 0
    assert resolve_workers("auto") == available_workers()
    assert resolve_workers("auto") >= 1


@pytest.mark.parametrize("bad", [-1, "-2", "many", 1.5, True, False])
def test_resolve_workers_rejects_junk(bad):
    with pytest.raises(ValueError):
        resolve_workers(bad)


def test_workers_from_env():
    assert workers_from_env({}) == 0
    assert workers_from_env({"REPRO_WORKERS": "3"}) == 3
    assert workers_from_env({"REPRO_WORKERS": "serial"}) == 0


def test_resolve_executor_kinds_and_start_methods():
    assert resolve_executor(None, environ={}) == ("process", None)
    assert resolve_executor("thread") == ("thread", None)
    assert resolve_executor("serial") == ("serial", None)
    assert resolve_executor("spawn") == ("process", "spawn")
    assert resolve_executor("fork") == ("process", "fork")
    assert resolve_executor(None, environ={"REPRO_EXECUTOR": "thread"}) == (
        "thread",
        None,
    )
    with pytest.raises(ValueError):
        resolve_executor("quantum")


def test_create_session_dispatches_on_worker_count(monkeypatch):
    db = small_db()
    monkeypatch.delenv("REPRO_WORKERS", raising=False)
    assert type(create_session(db)) is WhatIfSession
    session = create_session(db, workers=2, executor="thread")
    assert isinstance(session, ParallelWhatIfSession)
    session.close()
    monkeypatch.setenv("REPRO_WORKERS", "2")
    monkeypatch.setenv("REPRO_EXECUTOR", "thread")
    session = create_session(db)
    assert isinstance(session, ParallelWhatIfSession)
    assert session.workers == 2
    session.close()


# ---------------------------------------------------------------------------
# Chunk geometry
# ---------------------------------------------------------------------------

def test_chunk_spans_cover_contiguously():
    for count in (0, 1, 5, 17, 100):
        for chunks in (1, 3, 8):
            spans = chunk_spans(count, chunks)
            assert spans[0][0] == 0
            assert spans[-1][1] == count
            for (_, prev_end), (start, end) in zip(spans, spans[1:]):
                assert start == prev_end
                assert end >= start
            sizes = [end - start for start, end in spans]
            if count >= chunks:
                assert max(sizes) - min(sizes) <= 1


def test_chunk_count_bounds():
    assert chunk_count(0, 4) == 1
    assert chunk_count(3, 4) == 3  # never more chunks than tasks
    assert chunk_count(100, 2, chunks_per_worker=4) == 8


# ---------------------------------------------------------------------------
# Degenerate batch shapes
# ---------------------------------------------------------------------------

def test_empty_workload_and_empty_batches():
    db = small_db()
    session = ParallelWhatIfSession(db, workers=2, executor="thread")
    try:
        assert session.evaluate_batch([]) == []
        assert session.cost_batch([]) == []
        assert session.enumerate_batch([]) == []
        advisor = IndexAdvisor(db, Workload([]), session=session)
        recommendation = advisor.recommend(100_000)
        assert len(recommendation.configuration) == 0
    finally:
        session.close()


def test_single_statement_and_workers_exceeding_statements():
    """One statement, four workers: the batch runs (inline, below
    min_batch) and matches the serial session exactly."""
    entry = SMALL_WORKLOAD.entries[0]
    serial_db = small_db()
    serial = WhatIfSession(serial_db)
    expected = serial.cost(entry.statement)

    db = small_db()
    session = ParallelWhatIfSession(db, workers=4, executor="thread")
    try:
        costs = session.cost_batch([(entry.statement, ())])
        assert costs == [expected]
        assert session.counters.optimizer_calls == 1
        # And with min_batch=1 the pool path runs even for one task.
        session2 = ParallelWhatIfSession(
            db, workers=4, executor="thread", min_batch=1
        )
        try:
            assert session2.cost_batch([(entry.statement, ())]) == [expected]
            assert session2.stats()["workers"]["parallel_batches"] == 1
        finally:
            session2.close()
    finally:
        session.close()


def test_duplicate_statements_count_cache_hits_like_serial():
    statement = SMALL_WORKLOAD.entries[0].statement
    db = small_db()
    session = ParallelWhatIfSession(
        db, workers=2, executor="thread", min_batch=1
    )
    try:
        costs = session.cost_batch([(statement, ())] * 5)
        assert len(set(costs)) == 1
        assert session.counters.cache_misses == 1
        assert session.counters.cache_hits == 4
        assert session.counters.optimizer_calls == 1
    finally:
        session.close()


# ---------------------------------------------------------------------------
# Pickling across process boundaries
# ---------------------------------------------------------------------------

def test_pattern_pickles_by_reparsing():
    """Patterns pickle as their canonical text so the receiving process
    re-interns against ITS global path table (ids differ across
    processes; bitmap state must not travel)."""
    pattern = parse_pattern("/Security/SecInfo//Sector")
    clone = pickle.loads(pickle.dumps(pattern))
    assert str(clone) == str(pattern)
    assert clone == pattern
    assert clone.covers(parse_pattern("/Security/SecInfo/Industrial/Sector"))


def test_statement_pickles_and_reoptimizes_identically():
    statement = parse_statement(
        "for $s in X('SDOC')/Security where $s/Yield > 4.0 "
        "return $s/Symbol"
    )
    clone = pickle.loads(pickle.dumps(statement))
    db = small_db()
    session = WhatIfSession(db)
    assert session.cost(clone) == WhatIfSession(small_db()).cost(statement)


def test_statistics_pickle_drops_interning_caches():
    db = small_db()
    stats = db.runstats("SDOC")
    pattern = parse_pattern("/Security//Sector")
    stats.matching_paths(pattern)  # warm the caches
    clone = pickle.loads(pickle.dumps(stats))
    assert clone._path_ids == []
    assert clone._matching_cache == {}
    # Rebuilt caches give identical answers.
    assert sorted(clone.matching_paths(pattern)) == sorted(
        stats.matching_paths(pattern)
    )


@pytest.mark.skipif(
    "spawn" not in __import__("multiprocessing").get_all_start_methods(),
    reason="spawn start method unavailable",
)
def test_spawn_executor_reinterns_compiled_state():
    """A spawn worker re-imports everything from scratch -- fresh
    ``GLOBAL_TABLE``, no inherited interning -- and must still produce
    the serial costs (the hard pickling case; fork can hide bugs here).
    """
    statements = [e.statement for e in SMALL_WORKLOAD.entries[:3]]
    serial = WhatIfSession(small_db())
    expected = [serial.cost(s) for s in statements]

    session = ParallelWhatIfSession(
        small_db(), workers=1, executor="spawn", min_batch=1
    )
    try:
        session.register_statements(statements)
        assert session.cost_batch([(s, ()) for s in statements]) == expected
        assert session.stats()["workers"]["parallel_batches"] == 1
        assert session.stats()["workers"]["pool_failures"] == 0
    finally:
        session.close()


# ---------------------------------------------------------------------------
# Pool failure and interrupt cleanup
# ---------------------------------------------------------------------------

def test_pool_failure_falls_back_to_serial():
    """A dead pool costs a ``pool_failures`` tick, never correctness."""
    statements = [e.statement for e in SMALL_WORKLOAD.entries[:4]]
    serial = WhatIfSession(small_db())
    expected = [serial.cost(s) for s in statements]

    session = ParallelWhatIfSession(
        small_db(), workers=2, executor="thread", min_batch=1
    )
    try:
        def broken_dispatch(jobs):
            raise PoolBrokenError("injected pool death")

        session._dispatch = broken_dispatch
        assert session.cost_batch([(s, ()) for s in statements]) == expected
        stats = session.stats()["workers"]
        assert stats["pool_failures"] == 1
        assert session.counters.optimizer_calls == len(statements)
    finally:
        session.close()


def test_keyboard_interrupt_shuts_the_pool_down():
    statements = [e.statement for e in SMALL_WORKLOAD.entries[:4]]
    session = ParallelWhatIfSession(
        small_db(), workers=2, executor="thread", min_batch=1
    )
    try:
        runtime = session._runtime()

        def interrupted(chunk):
            raise KeyboardInterrupt()

        original = runtime.evaluate_chunk
        runtime.evaluate_chunk = interrupted
        with pytest.raises(KeyboardInterrupt):
            session.cost_batch([(s, ()) for s in statements])
        assert session._pool is None  # no orphaned executor
        # The session recovers: the next batch rebuilds the pool.
        runtime.evaluate_chunk = original
        costs = session.cost_batch([(s, ()) for s in statements])
        assert len(costs) == len(statements)
    finally:
        session.close()


def test_worker_pool_run_serial_kind_wraps_exceptions():
    pool = WorkerPool("serial", 1)
    assert pool.run(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
    with pytest.raises(PoolBrokenError):
        pool.run(lambda x: 1 / 0, [1])


def test_worker_pool_shutdown_is_idempotent():
    pool = WorkerPool("thread", 2)
    assert pool.run(lambda x: x * 2, [1, 2]) == [2, 4]
    pool.shutdown()
    pool.shutdown()
    # A fresh run after shutdown lazily rebuilds the executor.
    assert pool.run(lambda x: x * 3, [1]) == [3]
    pool.shutdown()


def test_close_is_idempotent_and_invalidate_rebuilds_snapshot():
    db = small_db()
    statement = SMALL_WORKLOAD.entries[0].statement
    session = ParallelWhatIfSession(
        db, workers=2, executor="thread", min_batch=1
    )
    try:
        before = session.cost_batch([(statement, ())])
        session.invalidate()
        after = session.cost_batch([(statement, ())], use_cache=False)
        assert before == after
    finally:
        session.close()
        session.close()
