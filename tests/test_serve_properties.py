"""Property tests (PR 9 satellite): under *any* seeded adversarial
interleaving of queries, DML and advise requests, the server never
serves a torn epoch.

"Never a torn epoch" is checked with the strongest oracle available:
the serial-replay differential.  If a read had returned state from a
half-committed write -- rows from one epoch, statistics from another --
its response could not equal the response of a serial replay at its
watermark, because serial replays only ever see fully-committed states.
Both the schedule and the interleaving are pure functions of hypothesis
-drawn values (``SeededScheduler``), so any counterexample shrinks to a
minimal schedule + seed pair and replays exactly.
"""

import asyncio

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.serve import AdvisorServer, SeededScheduler
from repro.serve.server import serial_order
from repro.workloads import tpox

TIMEOUT = 120


def small_database():
    return tpox.build_database(
        num_securities=12, num_orders=12, num_customers=6, seed=7
    )


SMALL_WORKLOAD = tpox.tpox_workload(num_securities=12, seed=7).subset(6)
QUERY_TEXTS = [e.statement.describe() for e in SMALL_WORKLOAD.entries]
SYMBOLS = ("PA0", "PA1", "PA2")

#: The op pool schedules draw from.  Deletes of absent symbols are
#: legal (0 rows) so any op sequence is a valid schedule.
OPS = (
    [{"kind": "query", "text": text} for text in QUERY_TEXTS[:4]]
    + [
        {
            "kind": "dml",
            "text": "insert into SDOC value "
            f"'<Security><Symbol>{symbol}</Symbol></Security>'",
        }
        for symbol in SYMBOLS
    ]
    + [
        {
            "kind": "dml",
            "text": f'delete from SDOC where /Security/Symbol = "{symbol}"',
        }
        for symbol in SYMBOLS[:2]
    ]
)

SCHEDULES = st.lists(
    st.sampled_from(range(len(OPS))), min_size=2, max_size=8
)


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=TIMEOUT))


async def adversarial_run(schedule, seed):
    database = small_database()
    scheduler = SeededScheduler(seed=seed)
    server = AdvisorServer(database, scheduler=scheduler)
    async with server:
        responses = await scheduler.drive(
            [server.dispatch(request) for request in schedule]
        )
    return server, responses, scheduler


async def serial_replay(requests):
    database = small_database()
    server = AdvisorServer(database)
    async with server:
        responses = await server.run_schedule(requests, clients=1)
    return server, responses


@settings(max_examples=25, deadline=None)
@given(ops=SCHEDULES, seed=st.integers(min_value=0, max_value=2**16))
def test_no_torn_epoch_under_any_interleaving(ops, seed):
    schedule = [OPS[index] for index in ops]
    server, responses, scheduler = run(adversarial_run(schedule, seed))

    # 1. Liveness and typed handling: every request completed ok.
    assert all(response.ok for response in responses), [
        (r.kind, r.code, r.error) for r in responses if not r.ok
    ]

    # 2. Every response carries a consistent epoch token: reads only
    #    return after the gate validated their token, so the gate never
    #    counted a torn read *into* a response (torn attempts retried).
    reads = [r for r in responses if r.kind == "query"]
    assert all(r.epoch is not None and r.seq is not None for r in responses)
    assert server.gate.stats()["reads_validated"] >= len(reads)

    # 3. The differential oracle: the concurrent run is bit-identical to
    #    its serial replay, so no response leaked a half-committed state.
    order = serial_order(responses)
    assert sorted(order) == list(range(len(schedule)))
    replay_server, replayed = run(
        serial_replay([schedule[index] for index in order])
    )
    for position, index in enumerate(order):
        assert (
            responses[index].comparable() == replayed[position].comparable()
        )
    assert server.journal == replay_server.journal
    assert (
        server.database.storage_stats()
        == replay_server.database.storage_stats()
    )


@settings(max_examples=10, deadline=None)
@given(ops=SCHEDULES, seed=st.integers(min_value=0, max_value=2**16))
def test_schedules_are_replayable_by_seed(ops, seed):
    """Shrinkability rests on determinism: the same (schedule, seed)
    pair reproduces the same interleaving trace and the same responses,
    so hypothesis can minimize any counterexample it finds."""
    schedule = [OPS[index] for index in ops]
    first_server, first, first_sched = run(adversarial_run(schedule, seed))
    again_server, again, again_sched = run(adversarial_run(schedule, seed))
    assert first_sched.trace == again_sched.trace
    assert [r.comparable() for r in first] == [
        r.comparable() for r in again
    ]
    assert first_server.journal == again_server.journal
    assert first_server.gate.stats() == again_server.gate.stats()


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=2**16))
def test_writer_never_starves_and_reads_retry_through(seed):
    """A pure write burst against concurrent readers: all writes commit
    (each exactly once, in journal order 0..n-1) and every reader
    eventually validates -- refused/torn reads retry, they never error
    out or return partial state."""
    schedule = [{"kind": "query", "text": QUERY_TEXTS[0]}]
    for index in range(4):
        schedule.append(
            {
                "kind": "dml",
                "text": "insert into SDOC value "
                f"'<Security><Symbol>B{index}</Symbol></Security>'",
            }
        )
        schedule.append({"kind": "query", "text": QUERY_TEXTS[1]})
    server, responses, _ = run(adversarial_run(schedule, seed))
    assert all(response.ok for response in responses)
    writes = [r for r in responses if r.kind == "dml"]
    assert sorted(r.seq for r in writes) == list(range(4))
    assert [entry["seq"] for entry in server.journal] == list(range(4))
    assert server.gate.stats()["writes_gated"] == 4
