"""Tests for collections, the database object, and the catalog."""

import pytest

from repro.storage import Catalog, Database, IndexDefinition, IndexValueType
from repro.xmlmodel.nodes import element
from repro.xpath import parse_pattern


class TestCollection:
    def test_insert_and_get(self, security_db):
        col = security_db.collection("SDOC")
        assert len(col) == 30
        assert col.get(0).root.name == "Security"

    def test_insert_tree(self):
        db = Database()
        col = db.create_collection("C")
        doc_id = col.insert_tree(element("a", element("b", text="x")))
        assert col.get(doc_id).root.name == "a"

    def test_doc_ids_dense(self, security_db):
        col = security_db.collection("SDOC")
        assert [d.doc_id for d in col] == list(range(30))

    def test_delete_and_iteration(self):
        db = Database()
        db.create_collection("C")
        for i in range(3):
            db.insert_document("C", f"<a><v>{i}</v></a>")
        db.delete_document("C", 1)
        col = db.collection("C")
        assert len(col) == 2
        assert [d.doc_id for d in col] == [0, 2]
        with pytest.raises(KeyError):
            col.get(1)

    def test_get_out_of_range(self):
        db = Database()
        db.create_collection("C")
        with pytest.raises(KeyError):
            db.collection("C").get(5)


class TestDatabase:
    def test_duplicate_collection_rejected(self):
        db = Database()
        db.create_collection("C")
        with pytest.raises(ValueError):
            db.create_collection("C")

    def test_unknown_collection(self):
        with pytest.raises(KeyError):
            Database().collection("nope")

    def test_create_index_builds_entries(self):
        db = Database()
        db.create_collection("C")
        db.insert_document("C", "<a><v>1</v></a>")
        db.insert_document("C", "<a><v>2</v></a>")
        index = db.create_index(
            IndexDefinition("i1", "C", parse_pattern("/a/v"), IndexValueType.NUMERIC)
        )
        assert index.entry_count() == 2

    def test_insert_maintains_indexes(self):
        db = Database()
        db.create_collection("C")
        index = db.create_index(
            IndexDefinition("i1", "C", parse_pattern("/a/v"), IndexValueType.NUMERIC)
        )
        db.insert_document("C", "<a><v>7</v></a>")
        assert index.entry_count() == 1
        assert index.lookup_eq(7.0) != []

    def test_delete_maintains_indexes(self):
        db = Database()
        db.create_collection("C")
        doc_id = None
        db.insert_document("C", "<a><v>7</v></a>")
        index = db.create_index(
            IndexDefinition("i1", "C", parse_pattern("/a/v"), IndexValueType.NUMERIC)
        )
        db.delete_document("C", 0)
        assert index.entry_count() == 0

    def test_drop_index(self):
        db = Database()
        db.create_collection("C")
        db.create_index(
            IndexDefinition("i1", "C", parse_pattern("/a"), IndexValueType.STRING)
        )
        db.drop_index("i1")
        assert "i1" not in db.catalog
        with pytest.raises(KeyError):
            db.index("i1")

    def test_drop_all_indexes(self):
        db = Database()
        db.create_collection("C")
        for i in range(3):
            db.create_index(
                IndexDefinition(f"i{i}", "C", parse_pattern("/a"), IndexValueType.STRING)
            )
        db.drop_all_indexes()
        assert len(db.catalog) == 0
        assert db.indexes == {}


class TestCatalog:
    def definition(self, name="x", virtual=False):
        return IndexDefinition(
            name, "C", parse_pattern("/a/b"), IndexValueType.STRING, virtual
        )

    def test_add_get_remove(self):
        catalog = Catalog()
        catalog.add(self.definition("x"))
        assert catalog.get("x").name == "x"
        catalog.remove("x")
        assert "x" not in catalog

    def test_duplicate_rejected(self):
        catalog = Catalog()
        catalog.add(self.definition("x"))
        with pytest.raises(ValueError):
            catalog.add(self.definition("x"))

    def test_remove_missing(self):
        with pytest.raises(KeyError):
            Catalog().remove("nope")

    def test_definitions_for_filters_virtual(self):
        catalog = Catalog()
        catalog.add(self.definition("real", virtual=False))
        catalog.add(self.definition("virt", virtual=True))
        names = [d.name for d in catalog.definitions_for("C", include_virtual=False)]
        assert names == ["real"]
        names = [d.name for d in catalog.definitions_for("C", include_virtual=True)]
        assert set(names) == {"real", "virt"}

    def test_remove_virtual(self):
        catalog = Catalog()
        catalog.add(self.definition("real", virtual=False))
        catalog.add(self.definition("virt", virtual=True))
        catalog.remove_virtual()
        assert "virt" not in catalog
        assert "real" in catalog

    def test_fresh_name_unique(self):
        catalog = Catalog()
        name1 = catalog.fresh_name("idx")
        catalog.add(
            IndexDefinition(name1, "C", parse_pattern("/a"), IndexValueType.STRING)
        )
        name2 = catalog.fresh_name("idx")
        assert name1 != name2

    def test_ddl_rendering(self):
        ddl = self.definition("x").ddl()
        assert "CREATE INDEX x" in ddl
        assert "XMLPATTERN '/a/b'" in ddl
        assert "VARCHAR" in ddl
        numeric = IndexDefinition(
            "y", "C", parse_pattern("/a"), IndexValueType.NUMERIC
        ).ddl()
        assert "DOUBLE" in numeric
