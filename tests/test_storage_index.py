"""Tests for partial path indexes, including property-based lookup checks."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.catalog import IndexDefinition
from repro.storage.index import IndexValueType, PathIndex, estimate_levels
from repro.xmlmodel import parse_document
from repro.xpath import parse_pattern
from repro.xpath.ast import Literal


def build_index(pattern, value_type, docs):
    definition = IndexDefinition("i", "C", parse_pattern(pattern), value_type)
    index = PathIndex(definition)
    for i, text in enumerate(docs):
        index.insert_document(parse_document(text, doc_id=i))
    return index


SAMPLE_DOCS = [
    "<S><Y>4.5</Y><N>alpha</N></S>",
    "<S><Y>2.0</Y><N>beta</N></S>",
    "<S><Y>7.25</Y><N>alpha</N></S>",
    "<S><Y>not-a-number</Y><N>gamma</N></S>",
]


class TestIndexBuild:
    def test_numeric_index_skips_non_numeric(self):
        index = build_index("/S/Y", IndexValueType.NUMERIC, SAMPLE_DOCS)
        assert index.entry_count() == 3  # "not-a-number" excluded

    def test_string_index_keeps_everything(self):
        index = build_index("/S/Y", IndexValueType.STRING, SAMPLE_DOCS)
        assert index.entry_count() == 4

    def test_partial_index_only_matching_paths(self):
        index = build_index("/S/N", IndexValueType.STRING, SAMPLE_DOCS)
        assert index.entry_count() == 4
        assert all(isinstance(e[0], str) for e in index.entries)

    def test_wildcard_pattern(self):
        index = build_index("/S/*", IndexValueType.STRING, SAMPLE_DOCS)
        assert index.entry_count() == 8  # Y and N of each doc

    def test_attribute_pattern(self):
        docs = ['<S id="x"/>', '<S id="y"/>']
        index = build_index("/S/@id", IndexValueType.STRING, docs)
        assert sorted(e[0] for e in index.entries) == ["x", "y"]

    def test_entries_sorted(self):
        index = build_index("/S/Y", IndexValueType.NUMERIC, SAMPLE_DOCS)
        keys = [e[0] for e in index.entries]
        assert keys == sorted(keys)

    def test_remove_document(self):
        index = build_index("/S/Y", IndexValueType.NUMERIC, SAMPLE_DOCS)
        doc = parse_document(SAMPLE_DOCS[0], doc_id=0)
        removed = index.remove_document(doc)
        assert removed == 1
        assert index.entry_count() == 2


class TestLookups:
    def test_lookup_eq(self):
        index = build_index("/S/N", IndexValueType.STRING, SAMPLE_DOCS)
        assert {d for d, _ in index.lookup_eq("alpha")} == {0, 2}

    def test_lookup_eq_missing(self):
        index = build_index("/S/N", IndexValueType.STRING, SAMPLE_DOCS)
        assert index.lookup_eq("nope") == []

    def test_lookup_range_numeric(self):
        index = build_index("/S/Y", IndexValueType.NUMERIC, SAMPLE_DOCS)
        docs = {d for d, _ in index.lookup_range(low=2.0, high=5.0)}
        assert docs == {0, 1}

    def test_lookup_range_exclusive(self):
        index = build_index("/S/Y", IndexValueType.NUMERIC, SAMPLE_DOCS)
        docs = {d for d, _ in index.lookup_range(low=2.0, low_inclusive=False)}
        assert docs == {0, 2}

    @pytest.mark.parametrize(
        "op,literal,expected",
        [
            ("=", 4.5, {0}),
            ("<", 4.5, {1}),
            ("<=", 4.5, {0, 1}),
            (">", 4.5, {2}),
            (">=", 4.5, {0, 2}),
            ("!=", 4.5, {1, 2}),
        ],
    )
    def test_lookup_op_numeric(self, op, literal, expected):
        index = build_index("/S/Y", IndexValueType.NUMERIC, SAMPLE_DOCS)
        assert {d for d, _ in index.lookup_op(op, Literal(literal))} == expected

    def test_lookup_op_bad_operator(self):
        index = build_index("/S/Y", IndexValueType.NUMERIC, SAMPLE_DOCS)
        with pytest.raises(ValueError):
            index.lookup_op("~", Literal(1.0))

    def test_string_coercion_of_numeric_literal(self):
        docs = ["<S><N>4</N></S>"]
        index = build_index("/S/N", IndexValueType.STRING, docs)
        assert index.lookup_op("=", Literal(4.0)) == [(0, 2)]

    def test_all_entries_structural(self):
        index = build_index("/S/Y", IndexValueType.STRING, SAMPLE_DOCS)
        assert len(index.all_entries()) == 4


class TestSizing:
    def test_levels_monotone(self):
        assert estimate_levels(0) == 1
        assert estimate_levels(1) == 1
        assert estimate_levels(255) == 1
        assert estimate_levels(257) == 2
        assert estimate_levels(256 * 256 + 1) == 3

    def test_size_empty(self):
        index = build_index("/S/Y", IndexValueType.NUMERIC, [])
        assert index.size_bytes() == 0

    def test_size_grows_with_entries(self):
        small = build_index("/S/Y", IndexValueType.NUMERIC, SAMPLE_DOCS[:2])
        large = build_index("/S/Y", IndexValueType.NUMERIC, SAMPLE_DOCS * 5)
        assert large.size_bytes() > small.size_bytes()

    def test_distinct_keys(self):
        index = build_index("/S/N", IndexValueType.STRING, SAMPLE_DOCS)
        assert index.distinct_keys() == 3  # alpha, beta, gamma


# ---------------------------------------------------------------------------
# Property-based: index lookups agree with brute-force filtering
# ---------------------------------------------------------------------------

@given(
    values=st.lists(
        st.floats(min_value=-1000, max_value=1000, allow_nan=False),
        min_size=1,
        max_size=40,
    ),
    probe=st.floats(min_value=-1000, max_value=1000, allow_nan=False),
    op=st.sampled_from(["=", "<", "<=", ">", ">=", "!="]),
)
@settings(max_examples=150, deadline=None)
def test_lookup_matches_brute_force(values, probe, op):
    docs = [f"<S><Y>{v!r}</Y></S>" for v in values]
    index = build_index("/S/Y", IndexValueType.NUMERIC, docs)
    got = sorted(d for d, _ in index.lookup_op(op, Literal(probe)))

    def check(v):
        return {
            "=": v == probe,
            "!=": v != probe,
            "<": v < probe,
            "<=": v <= probe,
            ">": v > probe,
            ">=": v >= probe,
        }[op]

    expected = sorted(
        i for i, v in enumerate(values) if check(float(repr(v)))
    )
    assert got == expected
