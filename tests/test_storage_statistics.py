"""Tests for data statistics and derived virtual-index statistics.

The key invariant (Section III) is that virtual-index statistics derived
from data statistics agree with the statistics of the really-built index.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage import Database, IndexDefinition, IndexValueType
from repro.storage.statistics import (
    PathValueSummary,
    _string_selectivity,
    _summary_selectivity,
)
from repro.xpath import parse_pattern
from repro.xpath.ast import Literal


def make_db(docs):
    db = Database("t")
    db.create_collection("C")
    for text in docs:
        db.insert_document("C", text)
    return db


SAMPLE_DOCS = [
    f"<S><Y>{y}</Y><N>{'alpha' if y < 5 else 'beta'}</N><Sub><L>x{y}</L></Sub></S>"
    for y in range(10)
]


class TestCollection:
    def test_doc_and_node_counts(self):
        db = make_db(SAMPLE_DOCS)
        stats = db.runstats("C")
        assert stats.doc_count == 10
        assert stats.total_nodes == sum(
            d.node_count() for d in db.collection("C")
        )

    def test_path_counts(self):
        stats = make_db(SAMPLE_DOCS).runstats("C")
        assert stats.path_counts[("S",)] == 10
        assert stats.path_counts[("S", "Y")] == 10
        assert stats.path_counts[("S", "Sub", "L")] == 10

    def test_attribute_paths_recorded(self):
        stats = make_db(['<S id="a"/>', '<S id="b"/>']).runstats("C")
        assert stats.path_counts[("S", "@id")] == 2

    def test_statistics_cached_and_delta_maintained(self):
        db = make_db(SAMPLE_DOCS)
        first = db.runstats("C")
        assert db.runstats("C") is first
        rescans_before = db.stats_rescans
        db.insert_document("C", "<S><Y>99</Y></S>")
        # DML is absorbed as a synopsis delta into the *live* statistics
        # object -- no invalidation, no rescan on the next probe.
        second = db.runstats("C")
        assert second is first
        assert second.doc_count == 11
        assert second.path_counts[("S", "Y")] == 11
        assert db.stats_rescans == rescans_before
        assert db.stats_delta_applies >= 1


class TestDerivedIndexStatistics:
    @pytest.mark.parametrize(
        "pattern,value_type",
        [
            ("/S/Y", IndexValueType.NUMERIC),
            ("/S/Y", IndexValueType.STRING),
            ("/S/N", IndexValueType.STRING),
            ("/S/*", IndexValueType.STRING),
            ("/S//*", IndexValueType.STRING),
            ("//L", IndexValueType.STRING),
        ],
    )
    def test_derived_matches_real_index(self, pattern, value_type):
        db = make_db(SAMPLE_DOCS)
        derived = db.runstats("C").derive_index_statistics(
            parse_pattern(pattern), value_type
        )
        real = db.create_index(
            IndexDefinition("real", "C", parse_pattern(pattern), value_type)
        )
        assert derived.entry_count == real.entry_count()
        assert derived.size_bytes == real.size_bytes()
        assert derived.levels == real.levels()

    def test_numeric_excludes_non_numeric(self):
        db = make_db(["<S><V>1</V></S>", "<S><V>abc</V></S>"])
        stats = db.runstats("C")
        derived = stats.derive_index_statistics(
            parse_pattern("/S/V"), IndexValueType.NUMERIC
        )
        assert derived.entry_count == 1

    def test_empty_pattern_zero(self):
        stats = make_db(SAMPLE_DOCS).runstats("C")
        derived = stats.derive_index_statistics(
            parse_pattern("/Nope"), IndexValueType.STRING
        )
        assert derived.entry_count == 0
        assert derived.size_bytes == 0


class TestSelectivity:
    def test_numeric_range(self):
        stats = make_db(SAMPLE_DOCS).runstats("C")
        sel = stats.selectivity(parse_pattern("/S/Y"), ">", Literal(4.5))
        assert sel == pytest.approx(0.5)

    def test_numeric_equality(self):
        stats = make_db(SAMPLE_DOCS).runstats("C")
        sel = stats.selectivity(parse_pattern("/S/Y"), "=", Literal(3.0))
        assert sel == pytest.approx(0.1)

    def test_string_equality(self):
        stats = make_db(SAMPLE_DOCS).runstats("C")
        sel = stats.selectivity(parse_pattern("/S/N"), "=", Literal("alpha"))
        assert sel == pytest.approx(0.5)

    def test_string_missing_value_falls_back_to_distinct(self):
        stats = make_db(SAMPLE_DOCS).runstats("C")
        sel = stats.selectivity(parse_pattern("/S/N"), "=", Literal("nope"))
        assert 0 < sel <= 0.5

    def test_numeric_type_population(self):
        """Selectivity of a NUMERIC index over a mixed pattern must be
        relative to numeric entries only (the regression behind the
        all-index anomaly)."""
        docs = ["<S><Y>1</Y><N>abc</N></S>"] * 10
        stats = make_db(docs).runstats("C")
        sel = stats.selectivity(
            parse_pattern("/S/*"), "<=", Literal(5.0), IndexValueType.NUMERIC
        )
        assert sel == pytest.approx(1.0)  # all numeric entries satisfy

    def test_selectivity_empty_pattern(self):
        stats = make_db(SAMPLE_DOCS).runstats("C")
        assert stats.selectivity(parse_pattern("/Nope"), "=", Literal(1.0)) == 0.0

    def test_cardinality_with_and_without_predicate(self):
        stats = make_db(SAMPLE_DOCS).runstats("C")
        assert stats.cardinality(parse_pattern("/S/Y"), None, None) == 10
        assert stats.cardinality(
            parse_pattern("/S/Y"), ">", Literal(4.5)
        ) == pytest.approx(5.0)


class TestStringSelectivity:
    """Ordered / prefix / substring string predicates (the branches below
    the equality fast path in ``_string_selectivity``)."""

    WORDS = ["apple", "banana", "cherry", "date"]

    def _summary(self, values):
        summary = PathValueSummary()
        for value in values:
            summary.observe(value)
        summary.finalize()
        return summary

    @pytest.mark.parametrize(
        "op,expected",
        [
            ("<", 0.25),   # strictly below "banana": apple
            ("<=", 0.5),   # apple, banana
            (">", 0.5),    # cherry, date
            (">=", 0.75),  # banana, cherry, date
        ],
    )
    def test_ordered_ops_pure_strings(self, op, expected):
        summary = self._summary(self.WORDS)
        sel = _string_selectivity(summary, op, "banana")
        assert sel == pytest.approx(expected)

    def test_ordered_ops_scaled_by_string_fraction(self):
        """Mixed data: the sample fraction conditions on string values, so
        the result scales by the non-numeric share of the population."""
        summary = self._summary(self.WORDS + ["1", "2", "3", "4"])
        # 4 of 8 values are strings; half the strings are <= "banana".
        assert _string_selectivity(summary, "<=", "banana") == pytest.approx(
            0.5 * 0.5
        )
        assert _string_selectivity(summary, ">", "banana") == pytest.approx(
            0.5 * 0.5
        )

    def test_starts_with_counts_prefix_range(self):
        summary = self._summary(["ab", "abc", "abd", "b", "c", "cd"])
        assert _string_selectivity(summary, "starts-with", "ab") == (
            pytest.approx(0.5)
        )
        assert _string_selectivity(summary, "starts-with", "zz") == 0.0

    def test_starts_with_mixed_numeric(self):
        summary = self._summary(["ab", "abc", "9", "10"])
        # Both strings carry the prefix; strings are half the population.
        assert _string_selectivity(summary, "starts-with", "ab") == (
            pytest.approx(0.5)
        )

    def test_contains_counts_sample_hits(self):
        summary = self._summary(["xay", "aa", "bbb", "ccc"])
        assert _string_selectivity(summary, "contains", "a") == (
            pytest.approx(0.5)
        )
        assert _string_selectivity(summary, "contains", "zz") == 0.0

    def test_contains_mixed_numeric(self):
        summary = self._summary(["xay", "bbb", "5", "6"])
        assert _string_selectivity(summary, "contains", "a") == (
            pytest.approx(0.5 * 0.5)
        )

    @pytest.mark.parametrize("op", ["<", "<=", ">", ">=", "starts-with", "contains"])
    def test_numeric_only_population_has_empty_string_sample(self, op):
        summary = self._summary(["1", "2", "3"])
        assert _string_selectivity(summary, op, "a") == 0.0

    def test_empty_summary_short_circuits(self):
        summary = PathValueSummary()
        assert _summary_selectivity(summary, "<", Literal("a")) == 0.0
        assert _summary_selectivity(summary, "=", Literal(1.0)) == 0.0

    def test_unsupported_operator_raises(self):
        summary = self._summary(self.WORDS)
        with pytest.raises(ValueError):
            _string_selectivity(summary, "~", "a")


class TestPathValueSummary:
    def test_observe_numeric(self):
        summary = PathValueSummary()
        for v in ["1", "2", "3"]:
            summary.observe(v)
        summary.finalize()
        assert summary.numeric_count == 3
        assert summary.numeric_min == 1.0
        assert summary.numeric_max == 3.0
        assert summary.distinct == 3

    def test_observe_mixed(self):
        summary = PathValueSummary()
        summary.observe("abc")
        summary.observe("4.5")
        summary.finalize()
        assert summary.numeric_count == 1
        assert summary.string_sample == ["abc"]
        assert summary.numeric_sample == [4.5]

    def test_avg_string_bytes(self):
        summary = PathValueSummary()
        summary.observe("ab")
        summary.observe("abcd")
        assert summary.avg_string_bytes == 3.0


@given(
    values=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=60),
    threshold=st.integers(min_value=0, max_value=50),
)
@settings(max_examples=100, deadline=None)
def test_selectivity_matches_exact_fraction(values, threshold):
    """With fewer values than the sample cap, selectivity is exact."""
    docs = [f"<S><V>{v}</V></S>" for v in values]
    stats = make_db(docs).runstats("C")
    sel = stats.selectivity(parse_pattern("/S/V"), "<", Literal(float(threshold)))
    exact = sum(1 for v in values if v < threshold) / len(values)
    assert sel == pytest.approx(exact)


class TestDocumentFrequency:
    def test_counts_documents_not_nodes(self):
        # each doc has THREE V nodes; document frequency must still be 5
        docs = ["<S><V>1</V><V>2</V><V>3</V></S>"] * 5
        stats = make_db(docs).runstats("C")
        assert stats.path_doc_counts[("S", "V")] == 5
        assert stats.path_counts[("S", "V")] == 15
        assert stats.document_frequency(parse_pattern("/S/V")) == 5.0

    def test_predicate_caps_at_satisfying(self):
        docs = [f"<S><V>{i}</V></S>" for i in range(10)]
        stats = make_db(docs).runstats("C")
        df = stats.document_frequency(parse_pattern("/S/V"), "<", Literal(3.0))
        assert df == pytest.approx(3.0)

    def test_capped_at_collection_size(self):
        docs = ["<S><V>1</V><V>1</V></S>"] * 4
        stats = make_db(docs).runstats("C")
        df = stats.document_frequency(parse_pattern("/S/V"), "=", Literal(1.0))
        assert df == 4.0  # 8 satisfying nodes, 4 documents

    def test_partial_presence(self):
        docs = ["<S><V>1</V></S>", "<S><W>1</W></S>", "<S><V>2</V></S>"]
        stats = make_db(docs).runstats("C")
        assert stats.path_doc_counts[("S", "V")] == 2
        assert stats.document_frequency(parse_pattern("/S/V")) == 2.0

    def test_recursive_paths_capped_per_path(self):
        from repro.workloads import recursive as rec

        db = rec.build_database(num_parts=30, max_depth=3, seed=5)
        stats = db.runstats("PARTS")
        df = stats.document_frequency(parse_pattern("//Material"))
        assert df <= 30  # never exceeds the collection size

    def test_matching_paths_memoized(self):
        stats = make_db(SAMPLE_DOCS).runstats("C")
        first = stats.matching_paths(parse_pattern("/S/*"))
        second = stats.matching_paths(parse_pattern("/S/*"))
        assert first is second  # cached object
