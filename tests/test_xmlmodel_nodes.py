"""Tests for the XML node model."""

import pytest

from repro.xmlmodel.nodes import NodeKind, XmlDocument, XmlNode, element


def build_security() -> XmlNode:
    return element(
        "Security",
        element("Symbol", text="IBM"),
        element("Yield", text="4.5"),
        element(
            "SecInfo",
            element("Industrial", element("Sector", text="Energy")),
        ),
        id="s1",
    )


class TestXmlNode:
    def test_element_construction(self):
        node = element("Symbol", text="IBM")
        assert node.kind is NodeKind.ELEMENT
        assert node.name == "Symbol"
        assert node.children[0].kind is NodeKind.TEXT

    def test_append_child_sets_parent(self):
        parent = XmlNode(NodeKind.ELEMENT, name="a")
        child = XmlNode(NodeKind.ELEMENT, name="b")
        parent.append_child(child)
        assert child.parent is parent
        assert parent.children == [child]

    def test_append_attribute_rejected(self):
        parent = XmlNode(NodeKind.ELEMENT, name="a")
        attr = XmlNode(NodeKind.ATTRIBUTE, name="x", value="1")
        with pytest.raises(ValueError):
            parent.append_child(attr)

    def test_set_attribute(self):
        node = element("Security", id="s1")
        attr = node.attribute("id")
        assert attr is not None
        assert attr.value == "s1"
        assert attr.parent is node

    def test_set_attribute_on_text_rejected(self):
        text = XmlNode(NodeKind.TEXT, value="x")
        with pytest.raises(ValueError):
            text.set_attribute("a", "b")

    def test_attribute_missing_returns_none(self):
        assert element("a").attribute("nope") is None

    def test_child_elements_skips_text(self):
        node = element("a", element("b"), text="hello")
        names = [c.name for c in node.child_elements()]
        assert names == ["b"]

    def test_descendants_or_self_document_order(self):
        root = build_security()
        names = [n.name for n in root.descendants_or_self()]
        assert names == [
            "Security",
            "Symbol",
            "Yield",
            "SecInfo",
            "Industrial",
            "Sector",
        ]

    def test_string_value_concatenates_text(self):
        root = element("a", element("b", text="x"), element("c", text="y"))
        assert root.string_value() == "xy"

    def test_string_value_of_attribute(self):
        node = element("a", id="42")
        assert node.attribute("id").string_value() == "42"

    def test_typed_value_numeric(self):
        assert element("Yield", text=" 4.5 ").typed_value() == 4.5

    def test_typed_value_string(self):
        assert element("Symbol", text="IBM").typed_value() == "IBM"

    def test_tag_path(self):
        root = build_security()
        sector = list(root.descendants_or_self())[-1]
        assert sector.tag_path() == ("Security", "SecInfo", "Industrial", "Sector")

    def test_tag_path_of_attribute(self):
        root = build_security()
        doc = XmlDocument(root)
        attr = root.attribute("id")
        assert attr.tag_path() == ("Security", "@id")


class TestXmlDocument:
    def test_root_property(self):
        doc = XmlDocument(build_security())
        assert doc.root.name == "Security"

    def test_rejects_non_element_root(self):
        with pytest.raises(ValueError):
            XmlDocument(XmlNode(NodeKind.TEXT, value="x"))

    def test_node_ids_are_document_order(self):
        doc = XmlDocument(build_security())
        ids = [n.node_id for n in doc.nodes]
        assert ids == list(range(len(doc.nodes)))
        # the document node is id 0, root element id 1
        assert doc.nodes[0].kind is NodeKind.DOCUMENT
        assert doc.nodes[1] is doc.root

    def test_attribute_before_children_in_order(self):
        doc = XmlDocument(build_security())
        attr = doc.root.attribute("id")
        first_child = next(doc.root.child_elements())
        assert attr.node_id < first_child.node_id

    def test_nodes_indexable_by_id(self):
        doc = XmlDocument(build_security())
        for node in doc.nodes:
            assert doc.nodes[node.node_id] is node

    def test_counts(self):
        doc = XmlDocument(build_security())
        assert doc.element_count() == 6
        # 1 document + 6 elements + 1 attribute + 3 text nodes
        assert doc.node_count() == 11
