"""Unit tests of the serving front end (PR 9): the epoch gate, tenant
admission, typed responses, the portfolio modes, and the ConfigError
bugfix regression (junk ``REPRO_WORKERS`` inside a request task becomes
a typed ``config`` response / CLI exit 2, never a bare traceback)."""

import asyncio
import json

import pytest

from repro.cli import main
from repro.query.workload import Workload
from repro.robustness.errors import AdmissionRejected, ConfigError
from repro.serve import (
    AdvisorServer,
    AdmissionController,
    TenantPolicy,
    run_portfolio,
)
from repro.serve.portfolio import perturbed_specs
from repro.serve.server import normalized_recommendation, serial_order
from repro.storage.database import EpochGate
from repro.workloads import tpox

TIMEOUT = 120


def small_database():
    return tpox.build_database(
        num_securities=12, num_orders=12, num_customers=6, seed=7
    )


SMALL_WORKLOAD = tpox.tpox_workload(num_securities=12, seed=7).subset(6)
QUERY_TEXTS = [e.statement.describe() for e in SMALL_WORKLOAD.entries]
BUDGET = 50_000


def run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=TIMEOUT))


# ---------------------------------------------------------------------------
# EpochGate
# ---------------------------------------------------------------------------

class TestEpochGate:
    def test_read_validates_when_nothing_moved(self):
        db = small_database()
        gate = EpochGate(db)
        token = gate.read_view(["SDOC"])
        assert token is not None
        assert gate.validate(token)
        assert gate.stats()["reads_validated"] == 1

    def test_concurrent_write_tears_the_read(self):
        db = small_database()
        gate = EpochGate(db)
        token = gate.read_view(["SDOC"])
        db.insert_document("SDOC", "<Security><Symbol>T</Symbol></Security>")
        assert not gate.validate(token)
        assert gate.stats()["reads_torn"] == 1

    def test_active_writer_refuses_new_reads(self):
        db = small_database()
        gate = EpochGate(db)
        gate.begin_write("SDOC")
        assert gate.read_view(["SDOC"]) is None
        assert gate.read_view(["ODOC"]) is not None  # other collections fine
        gate.end_write("SDOC")
        assert gate.read_view(["SDOC"]) is not None
        assert gate.stats()["reads_refused"] == 1

    def test_validate_fails_while_writer_active(self):
        db = small_database()
        gate = EpochGate(db)
        token = gate.read_view(["SDOC"])
        gate.begin_write("SDOC")
        assert not gate.validate(token)
        gate.end_write("SDOC")

    def test_nested_writers_unwind(self):
        gate = EpochGate(small_database())
        gate.begin_write("SDOC")
        gate.begin_write("SDOC")
        gate.end_write("SDOC")
        assert gate.writing("SDOC")
        gate.end_write("SDOC")
        assert not gate.writing("SDOC")

    def test_unknown_collection_reads_epoch_zero(self):
        gate = EpochGate(small_database())
        assert gate.epochs(["NOPE"]) == (("NOPE", 0),)


# ---------------------------------------------------------------------------
# Admission control
# ---------------------------------------------------------------------------

class TestAdmission:
    def test_in_flight_limit_rejects_typed(self):
        control = AdmissionController(
            default=TenantPolicy(max_in_flight=1)
        )
        with control.admit("alpha", "query"):
            with pytest.raises(AdmissionRejected) as excinfo:
                with control.admit("alpha", "query"):
                    pass  # pragma: no cover - admission must refuse
        assert excinfo.value.tenant == "alpha"
        assert excinfo.value.reason == "in-flight-limit"
        # the slot was released: a new request is admitted again
        with control.admit("alpha", "query"):
            pass
        assert control.stats()["alpha"]["rejected"] == 1

    def test_quota_pool_exhaustion_rejects_advise_requests(self):
        control = AdmissionController(
            default=TenantPolicy(search_call_quota=10)
        )
        control.charge_calls("alpha", 10)
        with pytest.raises(AdmissionRejected) as excinfo:
            with control.admit("alpha", "recommend"):
                pass  # pragma: no cover
        assert excinfo.value.reason == "quota-exhausted"
        # queries are not metered by the search quota
        with control.admit("alpha", "query"):
            pass

    def test_limits_clamp_deadline_and_expose_quota(self):
        control = AdmissionController(
            default=TenantPolicy(search_call_quota=100, deadline_seconds=2.0)
        )
        control.charge_calls("alpha", 30)
        deadline, calls = control.limits_for("alpha", 5.0)
        assert deadline == 2.0
        assert calls == 70
        deadline, _ = control.limits_for("alpha", 0.5)
        assert deadline == 0.5

    def test_tenants_are_isolated(self):
        control = AdmissionController(
            default=TenantPolicy(search_call_quota=10)
        )
        control.charge_calls("alpha", 10)
        with control.admit("beta", "recommend"):
            pass
        assert control.quota_remaining("alpha") == 0
        assert control.quota_remaining("beta") == 10


# ---------------------------------------------------------------------------
# Endpoints
# ---------------------------------------------------------------------------

class TestEndpoints:
    def test_query_roundtrip_and_read_purity(self):
        db = small_database()

        async def scenario():
            async with AdvisorServer(db) as server:
                before = db.storage_stats()
                responses = [
                    await server.query(text) for text in QUERY_TEXTS
                ]
                return before, db.storage_stats(), responses

        before, after, responses = run(scenario())
        assert all(r.ok for r in responses)
        assert before == after  # reads never move storage counters
        first = responses[0]
        assert first.epoch is not None and first.seq == 0
        assert "statistics" in first.value
        json.dumps(first.to_dict())

    def test_dml_bumps_epoch_and_journals(self):
        db = small_database()

        async def scenario():
            async with AdvisorServer(db) as server:
                insert = await server.dml(
                    "insert into SDOC value "
                    "'<Security><Symbol>NEW</Symbol></Security>'"
                )
                delete = await server.dml(
                    'delete from SDOC where /Security/Symbol = "NEW"'
                )
                return insert, delete, list(server.journal)

        insert, delete, journal = run(scenario())
        assert insert.ok and delete.ok
        assert insert.seq == 0 and delete.seq == 1
        assert delete.epoch[0][1] == insert.epoch[0][1] + 1
        assert [entry["seq"] for entry in journal] == [0, 1]
        assert delete.value["rows"] == 1

    def test_wrong_statement_kind_is_bad_request(self):
        db = small_database()

        async def scenario():
            async with AdvisorServer(db) as server:
                return (
                    await server.query(
                        "insert into SDOC value '<Security/>'"
                    ),
                    await server.dml(QUERY_TEXTS[0]),
                    await server.query("not a statement at all ("),
                    await server.query(
                        "for $x in X('NOPE')/a where $x/b = \"1\" return $x"
                    ),
                )

        misrouted_dml, misrouted_query, junk, unknown = run(scenario())
        for response in (misrouted_dml, misrouted_query, junk, unknown):
            assert not response.ok
            assert response.code == "bad-request"

    def test_internal_backstop_never_raises(self, monkeypatch):
        db = small_database()
        server = AdvisorServer(db)
        monkeypatch.setattr(
            server, "_do_query", lambda text: 1 / 0  # not even async
        )

        async def scenario():
            await server.start()
            return await server.query(QUERY_TEXTS[0])

        response = run(scenario())
        assert not response.ok and response.code == "internal"

    def test_whatif_costs_on_snapshot(self):
        db = small_database()

        async def scenario():
            async with AdvisorServer(db) as server:
                return await server.whatif(
                    QUERY_TEXTS, ["/Security/Symbol"], "SDOC"
                )

        response = run(scenario())
        assert response.ok
        assert response.value["total_benefit"] >= 0.0
        assert len(response.value["impacts"]) == len(QUERY_TEXTS)

    def test_recommend_carries_portfolio_telemetry(self):
        db = small_database()

        async def scenario():
            async with AdvisorServer(db, mode="tournament") as server:
                return await server.recommend(QUERY_TEXTS, BUDGET)

        response = run(scenario())
        assert response.ok
        portfolio = response.value["portfolio"]
        assert portfolio["mode"] == "tournament"
        assert {s["algorithm"] for s in portfolio["strategies"]} == {
            "greedy", "greedy_heuristics", "ilp"
        }
        assert any(s.get("winner") for s in portfolio["strategies"])
        # wall-clock fields are stripped from the comparable value
        assert "elapsed_seconds" not in response.value
        json.dumps(response.to_dict())

    def test_quota_exhaustion_rejects_next_advise_request(self):
        db = small_database()

        async def scenario():
            server = AdvisorServer(
                db, default_policy=TenantPolicy(search_call_quota=1)
            )
            async with server:
                first = await server.whatif(
                    QUERY_TEXTS, ["/Security/Symbol"], "SDOC"
                )
                second = await server.whatif(
                    QUERY_TEXTS, ["/Security/Symbol"], "SDOC"
                )
                third = await server.recommend(QUERY_TEXTS, BUDGET)
                return first, second, third, server.admission.stats()

        first, second, third, tenants = run(scenario())
        assert first.ok  # admitted while quota remained...
        for response in (second, third):  # ...its charge exhausted the pool
            assert not response.ok
            assert response.code == "rejected"
            assert "quota" in response.error
        assert tenants["default"]["quota_remaining"] == 0

    def test_serial_order_places_reads_at_watermarks(self):
        db = small_database()
        schedule = [
            {"kind": "query", "text": QUERY_TEXTS[0]},
            {
                "kind": "dml",
                "text": "insert into SDOC value "
                "'<Security><Symbol>W1</Symbol></Security>'",
            },
            {"kind": "query", "text": QUERY_TEXTS[1]},
        ]

        async def scenario():
            async with AdvisorServer(db) as server:
                return await server.run_schedule(schedule, clients=1)

        responses = run(scenario())
        assert [r.ok for r in responses] == [True, True, True]
        assert serial_order(responses) == [0, 1, 2]
        assert responses[0].seq == 0  # read before the write committed
        assert responses[2].seq == 1  # read after it


# ---------------------------------------------------------------------------
# Portfolio modes
# ---------------------------------------------------------------------------

class TestPortfolio:
    def test_tournament_beats_every_standalone_strategy(self):
        from repro.core.advisor import IndexAdvisor
        from repro.optimizer.session import WhatIfSession

        winner = run_portfolio(
            small_database(),
            Workload(SMALL_WORKLOAD.entries),
            BUDGET,
            mode="tournament",
        )
        for algorithm in ("greedy", "greedy_heuristics", "ilp"):
            db = small_database()
            standalone = IndexAdvisor(
                db,
                Workload(SMALL_WORKLOAD.entries),
                session=WhatIfSession(db),
            ).recommend(BUDGET, algorithm=algorithm)
            assert (
                winner.search.benefit
                >= standalone.search.benefit - 1e-9
            )
        assert winner.search.size_bytes <= BUDGET
        assert winner.portfolio_stats["winner"]

    def test_retry_mode_stops_at_first_clean_success(self):
        winner = run_portfolio(
            small_database(),
            Workload(SMALL_WORKLOAD.entries),
            BUDGET,
            mode="retry",
        )
        # the first strategy succeeded untruncated, so only one lane ran
        assert len(winner.portfolio_stats["strategies"]) == 1
        assert winner.portfolio_stats["strategies"][0]["label"] == "greedy"

    def test_evolutionary_population_is_seed_deterministic(self):
        first = perturbed_specs(("greedy", "ilp"), seed=3, generation=1,
                                population=4)
        again = perturbed_specs(("greedy", "ilp"), seed=3, generation=1,
                                population=4)
        other = perturbed_specs(("greedy", "ilp"), seed=4, generation=1,
                                population=4)
        assert first == again
        assert first != other
        for spec in first:
            assert 0.05 <= spec.beta <= 0.25
            assert 0.85 <= spec.budget_fraction <= 1.0

    def test_evolutionary_result_at_least_base_strategies(self):
        winner = run_portfolio(
            small_database(),
            Workload(SMALL_WORKLOAD.entries),
            BUDGET,
            mode="evolutionary",
            seed=11,
            generations=2,
        )
        strategies = winner.portfolio_stats["strategies"]
        base = [s for s in strategies if s["generation"] == 0]
        assert len(base) == 3
        assert all(
            winner.search.benefit >= s["benefit"] - 1e-9
            for s in strategies
            if "benefit" in s
        )
        assert winner.search.size_bytes <= BUDGET

    def test_rejects_unknown_mode_and_strategy(self):
        workload = Workload(SMALL_WORKLOAD.entries)
        with pytest.raises(ValueError, match="portfolio mode"):
            run_portfolio(small_database(), workload, BUDGET, mode="best")
        with pytest.raises(ValueError, match="strategy"):
            run_portfolio(
                small_database(), workload, BUDGET,
                strategies=("greedy", "quantum"),
            )

    def test_ddl_matches_a_standalone_run(self):
        """Concurrent lanes must not leak racy catalog names into the
        winner's DDL: it is re-derived as if its search ran alone."""
        from repro.core.advisor import IndexAdvisor
        from repro.optimizer.session import WhatIfSession

        winner = run_portfolio(
            small_database(),
            Workload(SMALL_WORKLOAD.entries),
            BUDGET,
            mode="tournament",
        )
        algorithm = winner.search.algorithm
        db = small_database()
        standalone = IndexAdvisor(
            db,
            Workload(SMALL_WORKLOAD.entries),
            session=WhatIfSession(db),
        ).recommend(BUDGET, algorithm=algorithm)
        assert winner.ddl == standalone.ddl


# ---------------------------------------------------------------------------
# The ConfigError bugfix (satellite): junk env inside a request task
# ---------------------------------------------------------------------------

class TestConfigErrorPropagation:
    def test_junk_workers_env_is_a_typed_config_response(self, monkeypatch):
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        db = small_database()

        async def scenario():
            async with AdvisorServer(db) as server:
                return await server.recommend(QUERY_TEXTS, BUDGET)

        response = run(scenario())
        assert not response.ok
        assert response.code == "config"
        assert "REPRO_WORKERS" in response.error

    def test_portfolio_raises_config_error_when_all_lanes_hit_it(
        self, monkeypatch
    ):
        import repro.serve.portfolio as portfolio_module

        def doomed_lane(database, entries, spec, *args, **kwargs):
            return portfolio_module.VariantOutcome(
                spec,
                error="invalid REPRO_WORKERS value 'lots'",
                error_type="ConfigError",
            )

        monkeypatch.setattr(portfolio_module, "_run_variant", doomed_lane)
        with pytest.raises(ConfigError):
            run_portfolio(
                small_database(),
                Workload(SMALL_WORKLOAD.entries),
                BUDGET,
                mode="retry",
            )

    def test_cli_exits_2_on_junk_workers_env(
        self, monkeypatch, tmp_path, capsys
    ):
        from repro.storage.persist import save_database

        dbdir = tmp_path / "db"
        save_database(small_database(), str(dbdir))
        workload_path = tmp_path / "wl.xq"
        workload_path.write_text(
            "\n;\n".join(QUERY_TEXTS) + "\n", encoding="utf-8"
        )
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        code = main(
            [
                "recommend", str(dbdir),
                "--workload", str(workload_path),
                "--budget", str(BUDGET),
            ]
        )
        assert code == 2
        assert "REPRO_WORKERS" in capsys.readouterr().err

    def test_cli_portfolio_mode_exits_2_on_junk_workers_env(
        self, monkeypatch, tmp_path, capsys
    ):
        # Regression: the --mode path resolved --workers without ever
        # consulting $REPRO_WORKERS, so junk env sailed through to a
        # successful recommendation instead of a typed exit 2.
        from repro.storage.persist import save_database

        dbdir = tmp_path / "db"
        save_database(small_database(), str(dbdir))
        workload_path = tmp_path / "wl.xq"
        workload_path.write_text(
            "\n;\n".join(QUERY_TEXTS) + "\n", encoding="utf-8"
        )
        monkeypatch.setenv("REPRO_WORKERS", "lots")
        code = main(
            [
                "recommend", str(dbdir),
                "--workload", str(workload_path),
                "--budget", str(BUDGET),
                "--mode", "tournament",
            ]
        )
        assert code == 2
        assert "REPRO_WORKERS" in capsys.readouterr().err


def test_normalized_recommendation_strips_wall_clock():
    winner = run_portfolio(
        small_database(),
        Workload(SMALL_WORKLOAD.entries),
        BUDGET,
        mode="tournament",
    )
    data = normalized_recommendation(winner)
    assert "elapsed_seconds" not in data
    assert "phase_seconds" not in data["session"]
    assert all(
        "elapsed_seconds" not in s for s in data["portfolio"]["strategies"]
    )
    json.dumps(data)
