"""Unit tests for the cluster layer: sharding, replication, config
parsing, workload partitioning, routing, and divergent tuning."""

import pytest

from repro.cluster import (
    Cluster,
    Router,
    divergence,
    partition_workload,
    replicas_from_env,
    resolve_replicas,
    resolve_shards,
    shard_of_key,
    shards_from_env,
    statement_signature,
    tune_cluster,
)
from repro.query.workload import Workload
from repro.robustness.errors import AdvisorError, ConfigError
from repro.storage.database import Database, StorageTarget, resolve_database
from repro.workloads import tpox

DOC = "<Security><Symbol>A{i}</Symbol><Yield>{i}.5</Yield></Security>"


def small_cluster(shards=2, replicas=2, docs=8):
    cluster = Cluster(shards=shards, replicas=replicas)
    cluster.create_collection("SDOC")
    for i in range(docs):
        cluster.insert_document("SDOC", DOC.format(i=i))
    return cluster


# ---------------------------------------------------------------------------
# Sharding
# ---------------------------------------------------------------------------

class TestSharding:
    def test_shard_of_key_is_pure_and_stable(self):
        assert [shard_of_key(k, 3) for k in range(7)] == [0, 1, 2, 0, 1, 2, 0]
        assert all(shard_of_key(k, 1) == 0 for k in range(10))

    def test_documents_land_on_key_mod_shards(self):
        cluster = small_cluster(shards=3, replicas=1, docs=9)
        for shard in range(3):
            assert (
                len(cluster.replica_database(shard, 0).collection("SDOC")) == 3
            )
        assert cluster.documents_routed == [3, 3, 3]
        assert cluster.total_documents("SDOC") == 9

    def test_replicas_of_a_shard_hold_identical_documents(self):
        from repro.xmlmodel.serializer import serialize

        cluster = small_cluster(shards=2, replicas=3)
        for shard in range(2):
            texts = {
                tuple(
                    serialize(d.root)
                    for d in cluster.replica_database(shard, r).collection(
                        "SDOC"
                    )
                )
                for r in range(3)
            }
            assert len(texts) == 1

    def test_insert_returns_dense_keys(self):
        cluster = small_cluster(docs=0)
        keys = [
            cluster.insert_document("SDOC", DOC.format(i=i)) for i in range(5)
        ]
        assert keys == [0, 1, 2, 3, 4]

    def test_delete_by_key_removes_from_all_replicas(self):
        cluster = small_cluster(shards=2, replicas=2, docs=6)
        cluster.delete_document("SDOC", 4)  # key 4 lives on shard 0
        assert cluster.total_documents("SDOC") == 5
        for r in range(2):
            assert len(cluster.replica_database(0, r).collection("SDOC")) == 2
        with pytest.raises(KeyError):
            cluster.delete_document("SDOC", 4)

    def test_key_for_round_trips(self):
        cluster = small_cluster(shards=2, replicas=1, docs=6)
        for key in range(6):
            shard = shard_of_key(key, 2)
            local = key // 2
            assert cluster.key_for("SDOC", shard, local) == key
        with pytest.raises(KeyError):
            cluster.key_for("SDOC", 0, 99)

    def test_from_database_preserves_documents_and_indexes(self):
        db = tpox.build_database(
            num_securities=10, num_orders=10, num_customers=5, seed=3
        )
        from repro.storage.catalog import IndexDefinition
        from repro.storage.index import IndexValueType
        from repro.xpath.patterns import parse_pattern

        db.create_index(
            IndexDefinition(
                name="ix1",
                collection="SDOC",
                pattern=parse_pattern("/Security/Symbol"),
                value_type=IndexValueType.STRING,
                virtual=False,
            )
        )
        cluster = Cluster.from_database(db, shards=2, replicas=2)
        for name, collection in db.collections.items():
            assert cluster.total_documents(name) == len(collection)
        for __, __, replica in cluster.all_databases():
            assert "ix1" in replica.indexes


# ---------------------------------------------------------------------------
# StorageTarget protocol
# ---------------------------------------------------------------------------

class TestProtocol:
    def test_database_and_cluster_satisfy_protocol(self):
        assert isinstance(Database(), StorageTarget)
        assert isinstance(Cluster(), StorageTarget)

    def test_resolve_database(self):
        db = Database()
        assert resolve_database(db) is db
        cluster = Cluster(shards=2, replicas=2)
        assert resolve_database(cluster) is cluster.primary
        sentinel = object()
        assert resolve_database(sentinel) is sentinel

    def test_touch_fans_out_and_counters_read_primary(self):
        cluster = small_cluster()
        before = cluster.modification_count
        cluster.touch("SDOC")
        assert cluster.modification_count == before + 1
        for __, __, database in cluster.all_databases():
            assert database.collection_epochs["SDOC"] > 0

    def test_storage_stats_sum_over_replicas(self):
        cluster = small_cluster(shards=2, replicas=2)
        for __, __, database in cluster.all_databases():
            database.runstats("SDOC")
        assert cluster.storage_stats()["stats_rescans"] == 4


# ---------------------------------------------------------------------------
# Config parsing
# ---------------------------------------------------------------------------

class TestConfig:
    @pytest.mark.parametrize("resolve", [resolve_shards, resolve_replicas])
    def test_accepts_ints_strings_and_defaults(self, resolve):
        assert resolve(None) == 1
        assert resolve("") == 1
        assert resolve(4) == 4
        assert resolve(" 8 ") == 8

    @pytest.mark.parametrize("junk", ["lots", "3.5", 0, -1, True, 99999])
    def test_junk_raises_config_error(self, junk):
        with pytest.raises(ConfigError):
            resolve_shards(junk)

    def test_config_error_is_value_error_and_advisor_error(self):
        with pytest.raises(ValueError):
            resolve_shards("junk")
        with pytest.raises(AdvisorError):
            resolve_replicas("junk")

    def test_env_parsing_names_the_variable(self):
        assert shards_from_env({}) == 1
        assert shards_from_env({"REPRO_SHARDS": "3"}) == 3
        assert replicas_from_env({"REPRO_REPLICAS": "2"}) == 2
        with pytest.raises(ConfigError) as info:
            shards_from_env({"REPRO_SHARDS": "many"})
        assert "REPRO_SHARDS" in str(info.value)
        with pytest.raises(ConfigError) as info:
            replicas_from_env({"REPRO_REPLICAS": "-2"})
        assert "REPRO_REPLICAS" in str(info.value)

    def test_workers_env_raises_config_error(self):
        from repro.parallel import workers_from_env

        with pytest.raises(ConfigError) as info:
            workers_from_env({"REPRO_WORKERS": "a few"})
        assert "REPRO_WORKERS" in str(info.value)


# ---------------------------------------------------------------------------
# Workload partitioning
# ---------------------------------------------------------------------------

def _tpox_workload():
    return tpox.tpox_workload(num_securities=40, seed=7)


def tpox_cluster(shards=1, replicas=2):
    db = tpox.build_database(
        num_securities=40, num_orders=40, num_customers=20, seed=7
    )
    return Cluster.from_database(db, shards=shards, replicas=replicas)


class TestPartitioning:
    def test_partition_is_deterministic(self):
        workload = _tpox_workload()
        a = partition_workload(workload, 3)
        b = partition_workload(workload, 3)
        assert [
            [e.statement.describe() for e in part] for part in a
        ] == [[e.statement.describe() for e in part] for part in b]

    def test_partition_covers_everything_once(self):
        workload = _tpox_workload()
        parts = partition_workload(workload, 3)
        total = sum(len(part) for part in parts)
        assert total == len(workload)

    def test_same_signature_stays_together(self):
        workload = _tpox_workload()
        parts = partition_workload(workload, 2)
        seen = {}
        for index, part in enumerate(parts):
            for entry in part:
                signature = statement_signature(entry.statement)
                assert seen.setdefault(signature, index) == index

    def test_single_part_is_identity(self):
        workload = _tpox_workload()
        (only,) = partition_workload(workload, 1)
        assert [e.statement.describe() for e in only] == [
            e.statement.describe() for e in workload
        ]

    def test_more_parts_than_signatures_leaves_empties(self):
        workload = Workload.from_statements(
            ["for $s in X('SDOC')/Security return $s/Symbol"]
        )
        parts = partition_workload(workload, 4)
        assert len(parts) == 4
        assert sum(len(p) for p in parts) == 1

    def test_divergence_bounds(self):
        assert divergence([]) == 0.0
        assert divergence([frozenset({"a"}), frozenset({"a"})]) == 0.0
        assert divergence([frozenset({"a"}), frozenset({"b"})]) == 1.0


# ---------------------------------------------------------------------------
# Routing
# ---------------------------------------------------------------------------

class TestRouter:
    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError):
            Router(small_cluster(), policy="random")

    def test_round_robin_cycles_per_shard(self):
        cluster = small_cluster(shards=1, replicas=3)
        router = Router(cluster, policy="round_robin")
        workload = _tpox_workload()
        picks = [
            router.route(entry.statement, 0) for entry in workload.entries[:6]
        ]
        assert picks == [0, 1, 2, 0, 1, 2]
        assert router.fallback_routed == 6

    def test_cost_routing_prefers_the_indexed_replica(self):
        cluster = tpox_cluster(shards=1, replicas=2)
        workload = _tpox_workload()
        tune_cluster(cluster, workload, 250_000, divergent=True)
        router = cluster.router
        router.reset_counters()
        plans = router.route_workload(workload)
        assert len(plans) == len(workload)
        counters = router.counters()
        assert counters["cost_routed"] == len(workload)
        assert counters["fallback_routed"] == 0
        # Divergent configs: with distinct index sets both replicas get
        # traffic, each statement at its cheaper home.
        assert len(counters["statements_routed"]) == 2

    def test_routing_cache_hits_accumulate_on_reroute(self):
        cluster = tpox_cluster(shards=1, replicas=2)
        workload = _tpox_workload()
        router = cluster.router
        router.route_workload(workload)
        first = router.counters()["routing_cache_hits"]
        router.route_workload(workload)
        assert router.counters()["routing_cache_hits"] > first

    def test_single_replica_short_circuits_but_counts(self):
        cluster = small_cluster(shards=2, replicas=1)
        router = cluster.router
        entry = _tpox_workload().entries[0]
        plan = router.route_statement(entry.statement)
        assert plan == [(0, 0), (1, 0)]
        assert router.counters()["cost_routed"] == 2

    def test_uniform_ties_spread_by_load(self):
        cluster = tpox_cluster(shards=1, replicas=3)
        router = cluster.router
        workload = _tpox_workload()
        for entry in workload.entries[:6]:
            router.route(entry.statement, 0, frequency=1.0)
        routed = router.counters()["statements_routed"]
        # No indexes anywhere: every replica prices every statement the
        # same, so the load tie-breaker must spread the traffic.
        assert len(routed) == 3


# ---------------------------------------------------------------------------
# Divergent tuning
# ---------------------------------------------------------------------------

class TestTuning:
    def test_uniform_mode_has_zero_divergence(self):
        cluster = tpox_cluster(shards=1, replicas=2)
        result = tune_cluster(
            cluster, _tpox_workload(), 250_000, divergent=False
        )
        assert result.mode == "uniform"
        assert result.divergence_score == 0.0
        assert cluster.tuning_mode == "uniform"
        s0 = {
            str(d.pattern)
            for d in cluster.replica_database(0, 0).catalog.all_definitions()
        }
        s1 = {
            str(d.pattern)
            for d in cluster.replica_database(0, 1).catalog.all_definitions()
        }
        assert s0 == s1

    def test_divergent_mode_diverges(self):
        cluster = tpox_cluster(shards=1, replicas=2)
        result = tune_cluster(
            cluster, _tpox_workload(), 250_000, divergent=True
        )
        assert result.mode == "divergent"
        assert result.divergence_score > 0.0
        assert cluster.divergence_score == result.divergence_score

    def test_result_reports_and_serializes(self):
        import json

        cluster = tpox_cluster(shards=1, replicas=2)
        result = tune_cluster(
            cluster, _tpox_workload(), 250_000, divergent=True
        )
        payload = json.loads(json.dumps(result.to_dict()))
        assert payload["mode"] == "divergent"
        assert len(payload["tunings"]) == 2
        assert "divergence" in result.report().lower()
        for tuning in result.tunings:
            assert (
                tuning.recommendation.cluster_stats["divergence_score"]
                == round(result.divergence_score, 4)
            )

    def test_create_false_builds_nothing(self):
        cluster = tpox_cluster(shards=1, replicas=2)
        tune_cluster(
            cluster, _tpox_workload(), 250_000, divergent=True, create=False
        )
        for __, __, database in cluster.all_databases():
            assert not database.indexes
