"""Tests for the optimizer: index matching, the three modes, plan choice."""

import pytest

from repro.optimizer import (
    CollectionScan,
    Fetch,
    IndexAnding,
    IndexScan,
    Optimizer,
    OptimizerMode,
    index_matches_request,
)
from repro.optimizer.rewriter import PathRequest
from repro.query import parse_statement
from repro.storage import Database, IndexDefinition, IndexValueType
from repro.xpath import parse_pattern
from repro.xpath.ast import Literal


def definition(pattern, value_type=IndexValueType.STRING, name="i", virtual=True):
    return IndexDefinition(name, "SDOC", parse_pattern(pattern), value_type, virtual)


class TestIndexMatching:
    def test_exact_match(self):
        req = PathRequest(parse_pattern("/a/b"), "=", Literal("x"))
        assert index_matches_request(definition("/a/b"), req)

    def test_covering_match(self):
        req = PathRequest(parse_pattern("/a/b"), "=", Literal("x"))
        assert index_matches_request(definition("/a/*"), req)
        assert index_matches_request(definition("//*"), req)

    def test_non_covering_no_match(self):
        req = PathRequest(parse_pattern("/a//b"), "=", Literal("x"))
        assert not index_matches_request(definition("/a/b"), req)

    def test_type_mismatch_no_match(self):
        req = PathRequest(parse_pattern("/a/b"), ">", Literal(4.0))
        assert not index_matches_request(
            definition("/a/b", IndexValueType.STRING), req
        )
        assert index_matches_request(
            definition("/a/b", IndexValueType.NUMERIC), req
        )

    def test_existence_needs_string_index(self):
        req = PathRequest(parse_pattern("/a/b"))
        assert index_matches_request(definition("/a/b", IndexValueType.STRING), req)
        assert not index_matches_request(
            definition("/a/b", IndexValueType.NUMERIC), req
        )


class TestEnumerateMode:
    def test_paper_candidates(self, security_db):
        optimizer = Optimizer(security_db)
        q2 = parse_statement(
            """for $sec in SECURITY('SDOC')/Security[Yield>4.5]
               where $sec/SecInfo/*/Sector = "Energy"
               return $sec"""
        )
        result = optimizer.optimize(q2, OptimizerMode.ENUMERATE)
        found = {str(c.pattern): c.value_type for c in result.candidates}
        assert found == {
            "/Security/Yield": IndexValueType.NUMERIC,
            "/Security/SecInfo/*/Sector": IndexValueType.STRING,
        }

    def test_enumerate_produces_no_plan(self, security_db):
        optimizer = Optimizer(security_db)
        result = optimizer.optimize(
            parse_statement("COLLECTION('SDOC')/Security[Yield>1]"),
            OptimizerMode.ENUMERATE,
        )
        assert result.plan is None
        assert "no plan" in result.explain()

    def test_attribute_candidates_enumerated(self, security_db):
        optimizer = Optimizer(security_db)
        result = optimizer.optimize(
            parse_statement(
                """for $s in X('SDOC')/Security where $s/@id = "s1" return $s"""
            ),
            OptimizerMode.ENUMERATE,
        )
        assert [str(c.pattern) for c in result.candidates] == ["/Security/@id"]

    def test_counts_as_optimizer_call(self, security_db):
        optimizer = Optimizer(security_db)
        before = optimizer.calls
        optimizer.optimize(
            parse_statement("COLLECTION('SDOC')/Security[Yield>1]"),
            OptimizerMode.ENUMERATE,
        )
        assert optimizer.calls == before + 1


class TestNormalMode:
    def query(self):
        return parse_statement(
            """for $s in X('SDOC')/Security where $s/Symbol = "SYM003" return $s"""
        )

    def test_no_indexes_collection_scan(self, security_db):
        optimizer = Optimizer(security_db)
        result = optimizer.optimize(self.query())
        assert isinstance(result.plan, Fetch)
        assert isinstance(result.plan.source, CollectionScan)
        assert result.used_indexes == ()

    def test_virtual_indexes_invisible_in_normal_mode(self, security_db):
        optimizer = Optimizer(security_db)
        virtual = definition("/Security/Symbol", name="v1", virtual=True)
        result = optimizer.optimize(
            self.query(), OptimizerMode.NORMAL, [virtual]
        )
        assert result.used_indexes == ()

    def test_real_index_used(self):
        db = Database()
        db.create_collection("SDOC")
        for i in range(50):
            db.insert_document(
                "SDOC", f"<Security><Symbol>SYM{i:03d}</Symbol></Security>"
            )
        db.create_index(
            IndexDefinition(
                "isym", "SDOC", parse_pattern("/Security/Symbol"),
                IndexValueType.STRING, virtual=False,
            )
        )
        optimizer = Optimizer(db)
        result = optimizer.optimize(
            parse_statement(
                """for $s in X('SDOC')/Security where $s/Symbol = "SYM003" return $s"""
            )
        )
        assert result.used_indexes == ("isym",)


class TestEvaluateMode:
    def test_virtual_config_lowers_cost(self, security_db):
        optimizer = Optimizer(security_db)
        query = parse_statement(
            """for $s in X('SDOC')/Security where $s/Symbol = "SYM003" return $s"""
        )
        base = optimizer.optimize(query, OptimizerMode.EVALUATE, ())
        with_index = optimizer.optimize(
            query,
            OptimizerMode.EVALUATE,
            [definition("/Security/Symbol", name="v1")],
        )
        assert with_index.estimated_cost < base.estimated_cost
        assert with_index.used_indexes == ("v1",)

    def test_index_never_used_if_not_cheaper(self, security_db):
        optimizer = Optimizer(security_db)
        # unselective predicate: Yield >= 0 matches everything
        query = parse_statement(
            "for $s in X('SDOC')/Security where $s/Yield >= 0 return $s"
        )
        result = optimizer.optimize(
            query,
            OptimizerMode.EVALUATE,
            [definition("/Security/Yield", IndexValueType.NUMERIC, "vy")],
        )
        assert isinstance(result.plan.source, CollectionScan)

    def test_index_anding_on_two_predicates(self, security_db):
        optimizer = Optimizer(security_db)
        query = parse_statement(
            """for $s in X('SDOC')/Security[Yield>8.5]
               where $s/SecInfo/*/Sector = "Energy" return $s"""
        )
        result = optimizer.optimize(
            query,
            OptimizerMode.EVALUATE,
            [
                definition("/Security/Yield", IndexValueType.NUMERIC, "vy"),
                definition("/Security/SecInfo/*/Sector", IndexValueType.STRING, "vs"),
            ],
        )
        assert isinstance(result.plan.source, IndexAnding)
        assert set(result.used_indexes) == {"vy", "vs"}

    def test_redundant_indexes_only_one_used(self, security_db):
        """Two indexes answering the same predicate: the plan uses one --
        the redundancy the paper's heuristics exploit."""
        optimizer = Optimizer(security_db)
        query = parse_statement(
            """for $s in X('SDOC')/Security where $s/Symbol = "SYM003" return $s"""
        )
        result = optimizer.optimize(
            query,
            OptimizerMode.EVALUATE,
            [
                definition("/Security/Symbol", name="specific"),
                definition("/Security/*", name="general"),
            ],
        )
        assert result.used_indexes == ("specific",)

    def test_general_index_costlier_than_specific(self, security_db):
        optimizer = Optimizer(security_db)
        query = parse_statement(
            """for $s in X('SDOC')/Security where $s/Symbol = "SYM003" return $s"""
        )
        specific = optimizer.optimize(
            query, OptimizerMode.EVALUATE, [definition("/Security/Symbol", name="s")]
        )
        general = optimizer.optimize(
            query, OptimizerMode.EVALUATE, [definition("/Security//*", name="g")]
        )
        assert specific.estimated_cost <= general.estimated_cost

    def test_wrong_collection_defs_ignored(self, security_db):
        optimizer = Optimizer(security_db)
        query = parse_statement(
            """for $s in X('SDOC')/Security where $s/Symbol = "SYM003" return $s"""
        )
        other = IndexDefinition(
            "o", "OTHER", parse_pattern("/Security/Symbol"),
            IndexValueType.STRING, True,
        )
        result = optimizer.optimize(query, OptimizerMode.EVALUATE, [other])
        assert result.used_indexes == ()


class TestUpdateStatements:
    def test_insert_cost_independent_of_indexes(self, security_db):
        """DB2 behaviour: optimizer cost of an insert excludes index
        maintenance (the advisor charges mc separately)."""
        optimizer = Optimizer(security_db)
        insert = parse_statement(
            "insert into SDOC value '<Security><Symbol>X</Symbol></Security>'"
        )
        base = optimizer.optimize(insert, OptimizerMode.EVALUATE, ())
        with_index = optimizer.optimize(
            insert, OptimizerMode.EVALUATE, [definition("//*", name="u")]
        )
        assert base.estimated_cost == with_index.estimated_cost

    def test_delete_benefits_from_index(self, security_db):
        optimizer = Optimizer(security_db)
        delete = parse_statement(
            'delete from SDOC where /Security/Symbol = "SYM003"'
        )
        base = optimizer.optimize(delete, OptimizerMode.EVALUATE, ())
        with_index = optimizer.optimize(
            delete, OptimizerMode.EVALUATE, [definition("/Security/Symbol", name="v")]
        )
        assert with_index.estimated_cost < base.estimated_cost


class TestPlanExplain:
    def test_explain_renders_tree(self, security_db):
        optimizer = Optimizer(security_db)
        result = optimizer.optimize(
            parse_statement(
                """for $s in X('SDOC')/Security where $s/Symbol = "A" return $s"""
            ),
            OptimizerMode.EVALUATE,
            [definition("/Security/Symbol", name="v1")],
        )
        text = result.explain()
        assert "FETCH" in text
        assert "INDEX SCAN v1" in text
        assert "cost=" in text
