"""The snapshot engine's differential contract (ISSUE PR 10).

Three layers of pinning:

1. **Store bit-identity** -- a :class:`SnapshotStore` snapshot must be
   bit-identical to a fresh ``pickle.loads(pickle.dumps(database))``
   round-trip in both serialized forms (:func:`partitioned_dumps` raw
   equality and whole-graph :func:`canonical_dumps`), under ANY
   interleaving of DML, DDL, runstats, statistics invalidation, lazy
   summary repair, and LRU evictions (hypothesis drives the op stream).
2. **Re-serialization accounting** -- repeat snapshots at unchanged
   epochs serialize nothing; DML on one collection re-serializes only
   that collection (the PR's headline perf claims, pinned as counter
   equalities, not timings).
3. **Consumers** -- the serve layer's request snapshots and the
   parallel engine's delta-shipped process workers produce results
   bit-identical to their store-less baselines, and the EpochGate's
   read-retry backoff (satellite 1) makes validated reads dominate
   under the seeded adversarial scheduler.
"""

import asyncio
import pickle

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.advisor import IndexAdvisor
from repro.optimizer.session import WhatIfSession
from repro.parallel import ParallelWhatIfSession
from repro.query.workload import Workload
from repro.serve import AdvisorServer, SeededScheduler
from repro.storage import IndexDefinition, IndexValueType
from repro.storage.snapshots import (
    SnapshotStore,
    canonical_dumps,
    partitioned_dumps,
)
from repro.workloads import tpox
from repro.xpath import parse_pattern

TIMEOUT = 180
BUDGET = 50_000


def build_database():
    return tpox.build_database(
        num_securities=12, num_orders=12, num_customers=6, seed=7
    )


WORKLOAD = tpox.tpox_workload(num_securities=12, seed=7).subset(6)
QUERY_TEXTS = [e.statement.describe() for e in WORKLOAD.entries]

SECURITY = (
    "<Security><Symbol>ZZ9999</Symbol><Yield>9.9</Yield></Security>"
)
ORDER = "<FIXML><Order><OrdQty>17</OrdQty></Order></FIXML>"


def fresh_round_trip(database):
    """The store-less baseline: one whole-database pickle round-trip."""
    return pickle.loads(pickle.dumps(database, pickle.HIGHEST_PROTOCOL))


def assert_bit_identical(snapshot, baseline):
    """Both serialized forms of the bit-identity contract."""
    assert partitioned_dumps(snapshot) == partitioned_dumps(baseline)
    assert canonical_dumps(snapshot) == canonical_dumps(baseline)


# ---------------------------------------------------------------------------
# Store bit-identity
# ---------------------------------------------------------------------------


class TestStoreBitIdentity:
    def test_snapshot_equals_fresh_round_trip(self):
        database = build_database()
        store = SnapshotStore()
        assert_bit_identical(
            store.snapshot(database), fresh_round_trip(database)
        )

    def test_snapshot_after_each_mutation_kind(self):
        """Walk every mutation kind and re-check identity after each."""
        database = build_database()
        store = SnapshotStore()
        mutations = [
            lambda: database.runstats("SDOC"),
            lambda: database.insert_document("SDOC", SECURITY),
            lambda: database.delete_document("SDOC", 0),
            lambda: database.create_index(
                IndexDefinition(
                    "snap_idx",
                    "SDOC",
                    parse_pattern("/Security/Yield"),
                    IndexValueType.NUMERIC,
                )
            ),
            lambda: database.drop_index("snap_idx"),
            lambda: database.invalidate_statistics("SDOC"),
        ]
        for mutate in mutations:
            mutate()
            assert_bit_identical(
                store.snapshot(database), fresh_round_trip(database)
            )

    def test_snapshot_of_snapshot_is_pure_cache_hits(self):
        """A composed snapshot inherits its source's token: snapshotting
        it again serializes nothing and stays bit-identical."""
        database = build_database()
        database.runstats("SDOC")
        store = SnapshotStore()
        first = store.snapshot(database)
        before = store.stats()["serializations"]
        second = store.snapshot(first)
        assert store.stats()["serializations"] == before
        assert_bit_identical(second, fresh_round_trip(database))

    def test_evictions_do_not_break_identity(self):
        """A budget too small to hold the blobs forces evictions and
        re-serializations -- never wrong bytes."""
        database = build_database()
        database.runstats("SDOC")
        store = SnapshotStore(budget_bytes=1)
        for _ in range(3):
            assert_bit_identical(
                store.snapshot(database), fresh_round_trip(database)
            )
        assert store.stats()["evictions"] > 0


#: The hypothesis op alphabet: (label, mutator).  Each op is keyed by
#: integers drawn per-example so the stream stays shrinkable.
def _apply_op(database, op, payload):
    collections = sorted(database.collections)
    name = collections[payload % len(collections)]
    if op == 0:
        text = SECURITY if name == "SDOC" else ORDER
        database.insert_document(name, text)
    elif op == 1:
        live = [
            doc_id
            for doc_id, document in enumerate(
                database.collections[name].documents
            )
            if document is not None
        ]
        if live:
            database.delete_document(name, live[payload % len(live)])
    elif op == 2:
        database.runstats(name)
    elif op == 3:
        database.invalidate_statistics(name)
    elif op == 4:
        index_name = f"hyp_idx_{payload}"
        if index_name not in database.indexes:
            database.create_index(
                IndexDefinition(
                    index_name,
                    "SDOC",
                    parse_pattern("/Security/Symbol"),
                    IndexValueType.STRING,
                )
            )
    elif op == 5:
        for index_name in list(database.indexes):
            database.drop_index(index_name)
            break


@settings(max_examples=20, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=0, max_value=7),
        ),
        min_size=1,
        max_size=8,
    ),
    budget=st.sampled_from([1, 10_000, SnapshotStore().budget_bytes]),
    snapshot_every_step=st.booleans(),
)
def test_any_interleaving_stays_bit_identical(
    ops, budget, snapshot_every_step
):
    """For ANY op stream (DML, DDL, runstats, invalidation) and ANY
    budget (including one forcing evictions on every snapshot), the
    store's snapshot equals the fresh round-trip -- whether the store
    snapshotted at every step (warm, mostly hits) or only at the end
    (cold keys for every intermediate state)."""
    database = build_database()
    store = SnapshotStore(budget_bytes=budget)
    for op, payload in ops:
        _apply_op(database, op, payload)
        if snapshot_every_step:
            assert_bit_identical(
                store.snapshot(database), fresh_round_trip(database)
            )
    assert_bit_identical(store.snapshot(database), fresh_round_trip(database))


@settings(max_examples=10, deadline=None)
@given(
    ops=st.lists(
        st.tuples(
            st.integers(min_value=0, max_value=5),
            st.integers(min_value=0, max_value=7),
        ),
        min_size=1,
        max_size=5,
    )
)
def test_whatif_probes_between_ops_stay_bit_identical(ops):
    """What-if probing mutates statistics lazily (dirty-summary repair
    moves the mutation stamp without an epoch bump) -- the store must
    track it.  Probe between every op and re-check identity."""
    database = build_database()
    store = SnapshotStore()
    statement = WORKLOAD.entries[0].statement
    for op, payload in ops:
        _apply_op(database, op, payload)
        session = WhatIfSession(database)
        with session.evaluating(()) as scope:
            scope.result(statement)
        assert_bit_identical(
            store.snapshot(database), fresh_round_trip(database)
        )


# ---------------------------------------------------------------------------
# Re-serialization accounting (the perf claims as counter equalities)
# ---------------------------------------------------------------------------


class TestReserializationAccounting:
    def test_unchanged_epoch_serializes_nothing(self):
        """Repeat snapshots at unchanged epochs are pure cache hits --
        the 'repeat advise at unchanged epoch = zero re-pickles' gate."""
        database = build_database()
        database.runstats("SDOC")
        store = SnapshotStore()
        store.snapshot(database)
        baseline = store.stats()
        for _ in range(5):
            store.snapshot(database)
        after = store.stats()
        assert after["serializations"] == baseline["serializations"]
        assert after["misses"] == baseline["misses"]
        assert (
            after["hits"]
            == baseline["hits"] + 5 * len(database.collections)
        )

    def test_dml_reserializes_only_the_touched_collection(self):
        """Satellite 2's regression: DML on SDOC must not re-serialize
        ODOC/CDOC (the old ``_snapshot_payload`` re-pickled the world)."""
        database = build_database()
        store = SnapshotStore()
        store.snapshot(database)
        before = store.stats()
        database.insert_document("SDOC", SECURITY)
        store.snapshot(database)
        after = store.stats()
        assert after["serializations"] == before["serializations"] + 1
        assert after["misses"] == before["misses"] + 1
        untouched = len(database.collections) - 1
        assert after["hits"] == before["hits"] + untouched

    def test_runstats_moves_only_its_collection_key(self):
        """Statistics transitions (appear/mutate/disappear) re-key only
        their collection, without any epoch bump."""
        database = build_database()
        store = SnapshotStore()
        store.snapshot(database)
        before = store.stats()
        epochs = dict(database.collection_epochs)
        database.runstats("ODOC")
        assert dict(database.collection_epochs) == epochs
        store.snapshot(database)
        after = store.stats()
        assert after["serializations"] == before["serializations"] + 1

    def test_delta_ships_only_moved_keys(self):
        """The parallel engine's delta payload after single-collection
        DML carries exactly the touched collection."""
        database = build_database()
        store = SnapshotStore()
        store.blobs(database)
        base_keys = store.current_keys(database)
        database.insert_document("SDOC", SECURITY)
        changed, removed = store.delta(database, base_keys)
        assert sorted(changed) == ["SDOC"]
        assert removed == ()


# ---------------------------------------------------------------------------
# Parallel consumer: delta-shipped process workers
# ---------------------------------------------------------------------------


def _normalized(recommendation):
    data = recommendation.to_dict()
    data.pop("elapsed_seconds", None)
    session = dict(data.get("session", {}))
    for key in ("phase_seconds", "workers", "storage", "snapshots"):
        session.pop(key, None)
    data["session"] = session
    return data


def _advise_twice_with_dml(session_factory):
    """Two advisor runs over ONE session with single-collection DML in
    between -- the delta protocol's canonical shape.  The build skews
    bytes toward the unqueried collections so the touched collection
    (SDOC, the one every workload query reads) both invalidates cached
    costs AND stays under the rebase fraction: the second dispatch must
    ship a real delta, not a rebase and not a pure cache replay."""
    database = tpox.build_database(
        num_securities=12, num_orders=60, num_customers=30, seed=7
    )
    workload = Workload(list(WORKLOAD.entries))
    session = session_factory(database)
    try:
        first = _normalized(
            IndexAdvisor(database, workload, session=session).recommend(
                BUDGET
            )
        )
        database.insert_document("SDOC", SECURITY)
        second = _normalized(
            IndexAdvisor(database, workload, session=session).recommend(
                BUDGET
            )
        )
        return first, second, session
    finally:
        session.close()


class TestParallelConsumer:
    def test_process_workers_delta_ship_bit_identical(self):
        serial = _advise_twice_with_dml(WhatIfSession)[:2]
        store = SnapshotStore()
        first, second, session = _advise_twice_with_dml(
            lambda db: ParallelWhatIfSession(
                db,
                workers=2,
                executor="process",
                min_batch=1,
                snapshot_store=store,
            )
        )
        assert (first, second) == serial
        assert first != second  # the DML must actually matter
        shipping = session.stats()["workers"]["shipping"]
        assert shipping["base_ships"] == 1  # the pool was never rebuilt
        assert shipping["delta_syncs"] >= 1
        assert shipping["rebases"] == 0
        assert shipping["legacy_ships"] == 0
        # the whole point: the delta cost a fraction of a re-ship
        assert shipping["delta_bytes"] < shipping["base_bytes"] / 3

    def test_legacy_full_payload_escape_hatch_bit_identical(self):
        serial = _advise_twice_with_dml(WhatIfSession)[:2]
        first, second, session = _advise_twice_with_dml(
            lambda db: ParallelWhatIfSession(
                db,
                workers=2,
                executor="process",
                min_batch=1,
                delta_ship=False,
            )
        )
        assert (first, second) == serial
        shipping = session.stats()["workers"]["shipping"]
        assert shipping["legacy_ships"] >= 2  # DML re-shipped the world
        assert shipping["base_ships"] == 0


# ---------------------------------------------------------------------------
# Serve consumer: request snapshots + gate backoff (satellite 1)
# ---------------------------------------------------------------------------


def _run(coro):
    return asyncio.run(asyncio.wait_for(coro, timeout=TIMEOUT))


class TestServeConsumer:
    def test_server_snapshot_is_store_backed_and_bit_identical(self):
        async def scenario():
            async with AdvisorServer(build_database()) as server:
                snapshot, _token, _retries, _seq = await server._snapshot(
                    list(server.database.collections)
                )
                return server, snapshot

        server, snapshot = _run(scenario())
        assert_bit_identical(snapshot, fresh_round_trip(server.database))
        assert server.snapshots.stats()["compositions"] >= 1

    def test_repeat_advise_at_unchanged_epoch_serializes_nothing(self):
        """The serve-path headline: after the first advise request warms
        the store, repeats (and portfolio lanes) re-pickle nothing."""

        async def scenario():
            async with AdvisorServer(
                build_database(), mode="tournament"
            ) as server:
                first = await server.recommend(QUERY_TEXTS, BUDGET)
                warm = server.snapshots.stats()["serializations"]
                second = await server.recommend(QUERY_TEXTS, BUDGET)
                return first, second, warm, server.snapshots.stats()

        first, second, warm, stats = _run(scenario())
        assert first.ok and second.ok
        assert first.value == second.value
        assert stats["serializations"] == warm
        assert stats["compositions"] > 1  # lanes composed, from cache

    @staticmethod
    def _contended_schedule(rounds: int = 3):
        """Reads racing writes: one DML per query in round 0, then
        write-free read rounds (the BENCH_PR9 traffic shape)."""
        schedule = []
        for round_index in range(rounds):
            for index, text in enumerate(QUERY_TEXTS):
                schedule.append({"kind": "query", "text": text})
                if round_index == 0:
                    schedule.append(
                        {
                            "kind": "dml",
                            "text": "insert into SDOC value "
                            f"'<Security><Symbol>B{index}</Symbol>"
                            "</Security>'",
                        }
                    )
        return schedule

    @staticmethod
    async def _legacy_backoff(self, attempt, site):
        """The pre-backoff retry loop: one bare yield, no wait."""
        await self._yield(site)

    @pytest.mark.parametrize("seed", range(4))
    def test_backoff_beats_immediate_retry_under_seeded_scheduler(
        self, seed, monkeypatch
    ):
        """Satellite 1, the deterministic half: on the SAME seeded
        adversarial schedule, bounded backoff must waste strictly fewer
        read attempts (torn + refused) than the old immediate-retry
        loop -- the scheduler makes both runs pure functions of the
        seed, so this is an exact regression pin, not a timing test."""
        schedule = self._contended_schedule()

        async def scenario():
            scheduler = SeededScheduler(seed=seed)
            server = AdvisorServer(build_database(), scheduler=scheduler)
            async with server:
                responses = await scheduler.drive(
                    [server.dispatch(request) for request in schedule]
                )
            assert all(response.ok for response in responses)
            return server.gate.stats()

        with_backoff = _run(scenario())
        monkeypatch.setattr(
            AdvisorServer, "_read_backoff", self._legacy_backoff
        )
        legacy = _run(scenario())
        assert legacy["reads_backoff_waits"] == 0
        assert with_backoff["reads_backoff_waits"] > 0
        wasted = with_backoff["reads_torn"] + with_backoff["reads_refused"]
        legacy_wasted = legacy["reads_torn"] + legacy["reads_refused"]
        assert wasted < legacy_wasted, (with_backoff, legacy)
        # every read still validates, in both worlds
        reads = sum(1 for r in schedule if r["kind"] == "query")
        assert with_backoff["reads_validated"] == reads
        assert legacy["reads_validated"] == reads

    def test_backoff_makes_validated_reads_dominate_free_running(self):
        """Satellite 1, the BENCH_PR9-shaped half: under free-running
        concurrent clients the old loop wasted more attempts than it
        validated (32 torn + 54 refused vs 40 validated); with backoff
        validated reads must dominate torn + refused."""
        schedule = self._contended_schedule(rounds=4)

        async def scenario():
            server = AdvisorServer(build_database())
            async with server:
                responses = await server.run_schedule(schedule, clients=4)
            assert all(response.ok for response in responses)
            return server.gate.stats()

        stats = _run(scenario())
        wasted = stats["reads_torn"] + stats["reads_refused"]
        assert stats["reads_validated"] > wasted, stats
