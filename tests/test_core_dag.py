"""Tests for the generalization DAG."""

import pytest

from repro.core.candidates import CandidateSet
from repro.core.dag import CandidateDag
from repro.core.generalization import generalize_candidates
from repro.storage.index import IndexValueType
from repro.xpath import parse_pattern


def make_set(patterns, generals=()):
    candidates = CandidateSet()
    for text in patterns:
        candidates.get_or_add(parse_pattern(text), IndexValueType.STRING, "C")
    for text in generals:
        candidates.get_or_add(
            parse_pattern(text), IndexValueType.STRING, "C", general=True
        )
    return candidates


class TestDagStructure:
    def test_parent_child_links(self):
        candidates = make_set(
            ["/Security/Symbol", "/Security/SecInfo/*/Sector"],
            generals=["/Security//*"],
        )
        dag = CandidateDag(candidates)
        general = candidates.get(("/Security//*", IndexValueType.STRING))
        children = {str(c.pattern) for c in dag.children(general)}
        assert children == {"/Security/Symbol", "/Security/SecInfo/*/Sector"}
        basic = candidates.get(("/Security/Symbol", IndexValueType.STRING))
        assert [str(p.pattern) for p in dag.parents(basic)] == ["/Security//*"]

    def test_roots(self):
        candidates = make_set(
            ["/Security/Symbol", "/Security/SecInfo/*/Sector", "/Other/Path"],
            generals=["/Security//*"],
        )
        dag = CandidateDag(candidates)
        roots = {str(c.pattern) for c in dag.roots()}
        assert roots == {"/Security//*", "/Other/Path"}

    def test_transitive_reduction(self):
        """With /a/b < /a/* < /a//*, the widest pattern's direct child is
        the middle one only."""
        candidates = make_set(["/a/b"], generals=["/a/*", "/a//*"])
        dag = CandidateDag(candidates)
        widest = candidates.get(("/a//*", IndexValueType.STRING))
        assert [str(c.pattern) for c in dag.children(widest)] == ["/a/*"]
        middle = candidates.get(("/a/*", IndexValueType.STRING))
        assert [str(c.pattern) for c in dag.children(middle)] == ["/a/b"]

    def test_descendants(self):
        candidates = make_set(["/a/b"], generals=["/a/*", "/a//*"])
        dag = CandidateDag(candidates)
        widest = candidates.get(("/a//*", IndexValueType.STRING))
        descendants = {str(c.pattern) for c in dag.descendants(widest)}
        assert descendants == {"/a/*", "/a/b"}

    def test_types_separate_in_dag(self):
        candidates = CandidateSet()
        candidates.get_or_add(parse_pattern("/a/b"), IndexValueType.NUMERIC, "C")
        candidates.get_or_add(
            parse_pattern("/a/*"), IndexValueType.STRING, "C", general=True
        )
        dag = CandidateDag(candidates)
        general = candidates.get(("/a/*", IndexValueType.STRING))
        assert dag.children(general) == []

    def test_equivalent_patterns_no_cycle(self):
        """Mutually-covering patterns must not create parent/child cycles."""
        # /a//b and /a//*/b... use /a/*/b vs /a//b: //b covers /*/b strictly.
        candidates = make_set([], generals=["/a//b", "/a/*/b"])
        dag = CandidateDag(candidates)
        wide = candidates.get(("/a//b", IndexValueType.STRING))
        narrow = candidates.get(("/a/*/b", IndexValueType.STRING))
        assert narrow in dag.children(wide) or dag.children(wide) == [narrow]
        assert dag.children(narrow) == []

    def test_from_generalization_pipeline(self, tpox_db, tpox_wl):
        from repro.core.candidates import enumerate_basic_candidates
        from repro.optimizer import Optimizer

        candidates = enumerate_basic_candidates(Optimizer(tpox_db), tpox_wl)
        generalize_candidates(candidates)
        dag = CandidateDag(candidates)
        roots = dag.roots()
        assert roots
        # every basic candidate is reachable from some root
        reachable = set()
        for root in roots:
            reachable.add(root.key)
            reachable.update(c.key for c in dag.descendants(root))
        assert {c.key for c in candidates} <= reachable
