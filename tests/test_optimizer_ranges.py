"""Tests for range-request merging (one range scan for paired bounds)."""

import pytest

from repro import (
    Executor,
    IndexDefinition,
    IndexValueType,
    Optimizer,
    OptimizerMode,
)
from repro.optimizer import IndexScan
from repro.optimizer.rewriter import (
    PathRequest,
    RangeRequest,
    extract_path_requests,
    merge_range_requests,
)
from repro.query import parse_statement
from repro.xpath import parse_pattern
from repro.xpath.ast import Literal

BETWEEN = """for $s in X('SDOC')/Security
             where $s/Yield >= 2.5 and $s/Yield <= 4.5 return $s"""


class TestMerging:
    def test_pair_merged(self):
        requests = extract_path_requests(parse_statement(BETWEEN))
        merged = merge_range_requests(requests)
        assert len(merged) == 1
        (interval,) = merged
        assert isinstance(interval, RangeRequest)
        assert interval.low == Literal(2.5)
        assert interval.high == Literal(4.5)
        assert interval.low_inclusive and interval.high_inclusive

    def test_exclusive_bounds_preserved(self):
        requests = extract_path_requests(
            parse_statement(
                "for $s in X('SDOC')/Security where $s/Yield > 2 and $s/Yield < 5 return $s"
            )
        )
        (interval,) = merge_range_requests(requests)
        assert not interval.low_inclusive and not interval.high_inclusive
        assert ">" in str(interval) and "<" in str(interval)

    def test_single_bound_passes_through(self):
        requests = extract_path_requests(
            parse_statement("COLLECTION('SDOC')/Security[Yield>2]")
        )
        merged = merge_range_requests(requests)
        assert merged == requests

    def test_different_patterns_not_merged(self):
        requests = extract_path_requests(
            parse_statement(
                "for $s in X('SDOC')/Security where $s/Yield > 2 and $s/PE < 5 return $s"
            )
        )
        merged = merge_range_requests(requests)
        assert all(isinstance(r, PathRequest) for r in merged)

    def test_equality_not_merged(self):
        requests = extract_path_requests(
            parse_statement(
                'for $s in X(\'SDOC\')/Security where $s/Yield > 2 and $s/Symbol = "A" return $s'
            )
        )
        merged = merge_range_requests(requests)
        kinds = {type(r) for r in merged}
        assert kinds == {PathRequest}

    def test_mixed_type_bounds_rejected(self):
        with pytest.raises(ValueError):
            RangeRequest(
                parse_pattern("/a"), Literal(1.0), True, Literal("z"), True
            )

    def test_range_request_type(self):
        interval = RangeRequest(
            parse_pattern("/a"), Literal(1.0), True, Literal(2.0), True
        )
        assert interval.value_type is IndexValueType.NUMERIC
        assert interval.is_comparison


class TestRangePlans:
    def test_single_leg_for_between(self, security_db):
        optimizer = Optimizer(security_db)
        result = optimizer.optimize(
            parse_statement(BETWEEN),
            OptimizerMode.EVALUATE,
            [
                IndexDefinition(
                    "vy", "SDOC", parse_pattern("/Security/Yield"),
                    IndexValueType.NUMERIC, True,
                )
            ],
        )
        assert isinstance(result.plan.source, IndexScan)  # ONE leg, no IXAND
        assert isinstance(result.plan.source.request, RangeRequest)

    def test_range_cheaper_than_two_probes(self, security_db):
        """The merged plan costs at most what two separate probes would."""
        optimizer = Optimizer(security_db)
        definition = IndexDefinition(
            "vy", "SDOC", parse_pattern("/Security/Yield"),
            IndexValueType.NUMERIC, True,
        )
        merged_cost = optimizer.optimize(
            parse_statement(BETWEEN), OptimizerMode.EVALUATE, [definition]
        ).estimated_cost
        single = optimizer.optimize(
            parse_statement(
                "for $s in X('SDOC')/Security where $s/Yield >= 2.5 return $s"
            ),
            OptimizerMode.EVALUATE,
            [definition],
        ).estimated_cost
        assert merged_cost <= single + 1.0  # narrower interval, no extra probe

    def test_execution_equivalence(self, security_db):
        query = parse_statement(BETWEEN)
        baseline = Executor(security_db).execute(query, collect_output=True)
        security_db.create_index(
            IndexDefinition(
                "ry", "SDOC", parse_pattern("/Security/Yield"),
                IndexValueType.NUMERIC,
            )
        )
        try:
            indexed = Executor(security_db).execute(query, collect_output=True)
            assert sorted(indexed.output) == sorted(baseline.output)
            assert indexed.docs_examined == baseline.rows
            # entries scanned equals exactly the in-range entries
            assert indexed.index_entries_scanned == baseline.rows
        finally:
            security_db.drop_index("ry")

    def test_contradictory_interval_empty(self, security_db):
        query = parse_statement(
            "for $s in X('SDOC')/Security where $s/Yield >= 9 and $s/Yield <= 1 return $s"
        )
        security_db.create_index(
            IndexDefinition(
                "ry2", "SDOC", parse_pattern("/Security/Yield"),
                IndexValueType.NUMERIC,
            )
        )
        try:
            result = Executor(security_db).execute(query)
            assert result.rows == 0
        finally:
            security_db.drop_index("ry2")
