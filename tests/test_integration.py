"""Cross-layer integration tests: realistic end-to-end scenarios."""

import pytest

from repro import (
    Database,
    Executor,
    IndexAdvisor,
    Optimizer,
    OptimizerMode,
    Workload,
)
from repro.core.whatif import analyze
from repro.storage.persist import load_database, save_database
from repro.workloads import tpox, xmark


class TestPaperWalkthrough:
    """The paper's Sections III-V running example, end to end."""

    @pytest.fixture()
    def db(self):
        return tpox.build_database(
            num_securities=100, num_orders=10, num_customers=10, seed=1
        )

    @pytest.fixture()
    def workload(self):
        return Workload.from_statements(
            [
                f"""for $sec in SECURITY('SDOC')/Security
                    where $sec/Symbol = "{tpox.symbol_for(5)}"
                    return $sec""",
                """for $sec in SECURITY('SDOC')/Security[Yield>4.5]
                   where $sec/SecInfo/*/Sector = "Energy"
                   return <Security>{$sec/Name}</Security>""",
            ]
        )

    def test_table1_candidates(self, db, workload):
        """Table I: basic candidates C1-C3, generalized candidate C4."""
        advisor = IndexAdvisor(db, workload)
        patterns = {str(c.pattern): c for c in advisor.candidates}
        assert "/Security/Symbol" in patterns  # C1
        assert "/Security/SecInfo/*/Sector" in patterns  # C2
        assert "/Security/Yield" in patterns  # C3
        assert "/Security//*" in patterns  # C4
        assert patterns["/Security//*"].general

    def test_subconfiguration_example(self, db, workload):
        """Section VI-C: C1 alone, C2+C3 grouped (both from Q2)."""
        advisor = IndexAdvisor(db, workload)
        from repro.core.config import IndexConfiguration
        from repro.storage.index import IndexValueType

        candidates = advisor.candidates
        c1 = candidates.get(("/Security/Symbol", IndexValueType.STRING))
        c2 = candidates.get(("/Security/SecInfo/*/Sector", IndexValueType.STRING))
        c3 = candidates.get(("/Security/Yield", IndexValueType.NUMERIC))
        groups = advisor.evaluator._sub_configurations(
            IndexConfiguration([c1, c2, c3])
        )
        group_keys = sorted(
            tuple(sorted(str(c.pattern) for c in group)) for group in groups
        )
        assert group_keys == [
            ("/Security/SecInfo/*/Sector", "/Security/Yield"),
            ("/Security/Symbol",),
        ]

    def test_recommendation_round_trip(self, db, workload):
        advisor = IndexAdvisor(db, workload)
        recommendation = advisor.recommend(budget_bytes=50_000)
        advisor.create_indexes(recommendation)
        executor = Executor(db)
        for entry in workload:
            result = executor.execute(entry.statement)
            assert result.used_indexes  # every query runs on an index
            assert result.docs_examined < 100


class TestPersistedTuningSession:
    def test_recommend_save_reload_execute(self, tmp_path):
        db = tpox.build_database(
            num_securities=80, num_orders=40, num_customers=20, seed=5
        )
        workload = tpox.tpox_workload(num_securities=80, seed=5)
        advisor = IndexAdvisor(db, workload)
        recommendation = advisor.recommend(budget_bytes=80_000)
        advisor.create_indexes(recommendation)
        save_database(db, str(tmp_path / "db"))

        reloaded = load_database(str(tmp_path / "db"))
        executor = Executor(reloaded)
        used = set()
        for entry in workload.queries():
            used.update(executor.execute(entry.statement).used_indexes)
        assert used  # rebuilt indexes are picked up by the optimizer


class TestXmarkEndToEnd:
    def test_advise_create_execute(self, xmark_db):
        workload = xmark.xmark_workload(seed=7)
        advisor = IndexAdvisor(xmark_db, workload)
        recommendation = advisor.recommend(budget_bytes=150_000)
        assert recommendation.estimated_speedup > 1.0
        report = analyze(xmark_db, workload, recommendation.configuration)
        assert report.total_benefit > 0
        # at least half the queries see an indexed plan
        indexed = sum(1 for impact in report.impacts if impact.used_indexes)
        assert indexed >= len(workload) / 2


class TestMixedCollectionIsolation:
    def test_indexes_only_match_their_collection(self):
        db = Database()
        db.create_collection("A")
        db.create_collection("B")
        for i in range(20):
            db.insert_document("A", f"<r><v>{i}</v></r>")
            db.insert_document("B", f"<r><v>{i}</v></r>")
        workload = Workload.from_statements(
            ["for $x in C('A')/r where $x/v = 7 return $x"]
        )
        advisor = IndexAdvisor(db, workload)
        recommendation = advisor.recommend(budget_bytes=10_000)
        assert all(c.collection == "A" for c in recommendation.configuration)

    def test_cross_collection_statements_cost_independently(self):
        db = Database()
        db.create_collection("A")
        db.create_collection("B")
        for i in range(30):
            db.insert_document("A", f"<r><v>{i}</v></r>")
        db.insert_document("B", "<r><v>0</v></r>")
        optimizer = Optimizer(db)
        from repro.query import parse_statement

        cost_a = optimizer.optimize(
            parse_statement("for $x in C('A')/r where $x/v = 7 return $x")
        ).estimated_cost
        cost_b = optimizer.optimize(
            parse_statement("for $x in C('B')/r where $x/v = 7 return $x")
        ).estimated_cost
        assert cost_a > cost_b  # 30 docs vs 1 doc


class TestAdvisorIdempotence:
    def test_same_inputs_same_recommendation(self, tpox_db, tpox_wl):
        recs = [
            IndexAdvisor(tpox_db, tpox_wl).recommend(
                budget_bytes=40_000, algorithm="topdown_full"
            )
            for __ in range(2)
        ]
        assert recs[0].configuration.keys == recs[1].configuration.keys
        assert recs[0].search.benefit == pytest.approx(recs[1].search.benefit)
