"""Tests for workload compression (PR 7): exact / template / cluster
modes, stream-order determinism, and the reconciliation property -- a
recommendation tuned on a compressed workload scores within a pinned
epsilon of the uncompressed recommendation on the full stream.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.advisor import IndexAdvisor
from repro.core.compression import (
    COMPRESSION_MODES,
    DEFAULT_CLUSTER_SIMILARITY,
    CompressionStats,
    compress_workload,
    coverage_signature,
)
from repro.query.workload import Workload
from repro.workloads import tpox

#: Pinned reconciliation tolerance (relative): the compressed-workload
#: recommendation's full-stream benefit vs the uncompressed one.  On
#: the suite workloads the two are float-identical; 2% is the contract.
RECONCILE_EPSILON = 0.02


def _literal_varied_workload(seeds=(0, 1)):
    """TPoX query stream where each seed redraws every literal -- many
    distinct texts, few templates."""
    texts = []
    for seed in seeds:
        texts.extend(tpox.tpox_queries(120, seed=seed))
    return Workload.from_statements(texts)


class TestModes:
    def test_mode_registry(self):
        assert COMPRESSION_MODES == ("off", "exact", "template", "cluster")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown compression mode"):
            compress_workload(Workload(), "zip")
        with pytest.raises(ValueError, match="unknown compression mode"):
            IndexAdvisor(None, Workload(), compress="zip")

    def test_off_is_identity(self):
        workload = _literal_varied_workload()
        compressed, stats = compress_workload(workload, "off")
        assert compressed is workload
        assert stats.mode == "off"
        assert stats.representatives == len(workload)
        assert stats.ratio == 0.0
        assert not stats.approximate

    def test_exact_merges_duplicates_in_order(self):
        texts = list(tpox.tpox_queries(120, seed=0))
        workload = Workload.from_statements(texts + texts[:3])
        compressed, stats = compress_workload(workload, "exact")
        assert len(compressed) == len(texts)
        # First-occurrence order is preserved, duplicates sum.
        assert [
            e.statement.describe() for e in compressed
        ] == [e.statement.describe() for e in workload.entries[: len(texts)]]
        assert compressed.entries[0].frequency == 2.0
        assert stats.merged_groups == 3
        assert not stats.approximate
        assert stats.original_weight == len(texts) + 3

    def test_template_collapses_literal_variants(self):
        workload = _literal_varied_workload(seeds=(0, 1, 2))
        compressed, stats = compress_workload(workload, "template")
        # 11 queries per seed, but two template pairs share a request
        # shape -- 9 distinct templates.
        assert len(compressed) == 9
        assert stats.approximate
        assert stats.representatives == 9
        assert stats.ratio == pytest.approx(1 - 9 / 33)
        assert sum(e.frequency for e in compressed) == 33

    def test_cluster_at_least_as_strong_as_template(self):
        workload = _literal_varied_workload(seeds=(0, 1, 2))
        template, _ = compress_workload(workload, "template")
        cluster, stats = compress_workload(workload, "cluster")
        assert len(cluster) <= len(template)
        assert stats.approximate

    def test_cluster_pools_overlapping_signatures(self):
        statements = [
            'for $s in SECURITY(\'SDOC\')/Security where $s/Symbol = "A" return $s',
            'for $s in SECURITY(\'SDOC\')/Security where $s/Symbol = "B" '
            "and $s/Yield > 3 return $s",
        ]
        workload = Workload.from_statements(statements)
        signatures = [
            coverage_signature(e.statement) for e in workload
        ]
        # Jaccard 0.5: {Symbol} vs {Symbol, Yield} -- at the threshold.
        assert len(signatures[0] & signatures[1]) == 1
        compressed, stats = compress_workload(workload, "cluster")
        assert len(compressed) == 1
        # The richer-signature statement is the representative.
        assert "Yield" in compressed.entries[0].statement.describe()
        assert compressed.entries[0].frequency == 2.0
        assert stats.merged_groups == 1

    def test_cluster_never_pools_across_collections_or_kinds(self):
        statements = [
            'for $s in SECURITY(\'SDOC\')/Security where $s/Symbol = "A" return $s',
            'for $o in ORDER(\'ODOC\')/FIXML where $o/Symbol = "A" return $o',
            'delete from SDOC where /Security/Symbol = "A"',
        ]
        compressed, _ = compress_workload(
            Workload.from_statements(statements), "cluster"
        )
        assert len(compressed) == 3

    def test_stats_round_trip(self):
        _, stats = compress_workload(_literal_varied_workload(), "cluster")
        assert isinstance(stats, CompressionStats)
        as_dict = stats.to_dict()
        assert as_dict["mode"] == "cluster"
        assert set(as_dict) == {
            "mode",
            "original_statements",
            "original_weight",
            "representatives",
            "merged_groups",
            "ratio",
            "approximate",
        }


class TestStreamOrderDeterminism:
    """Template/cluster output is independent of arrival order -- the
    representative is picked by stable key sort, not first occurrence."""

    @pytest.mark.parametrize("mode", ["template", "cluster"])
    def test_reordered_stream_same_output(self, mode):
        texts = []
        for seed in (0, 1, 2, 3):
            texts.extend(tpox.tpox_queries(120, seed=seed))
        forward = Workload.from_statements(texts)
        backward = Workload.from_statements(list(reversed(texts)))
        a, stats_a = compress_workload(forward, mode)
        b, stats_b = compress_workload(backward, mode)
        assert [
            (e.statement.describe(), e.frequency) for e in a
        ] == [(e.statement.describe(), e.frequency) for e in b]
        assert stats_a == stats_b

    @given(seed=st.integers(0, 2 ** 31))
    @settings(max_examples=20, deadline=None)
    def test_shuffled_stream_same_output(self, seed):
        import random

        texts = []
        for s in (0, 1, 2):
            texts.extend(tpox.tpox_queries(120, seed=s))
        random.Random(seed).shuffle(texts)
        compressed, _ = compress_workload(
            Workload.from_statements(texts), "cluster"
        )
        baseline, _ = compress_workload(
            Workload.from_statements(sorted(texts)), "cluster"
        )
        assert [
            (e.statement.describe(), e.frequency) for e in compressed
        ] == [(e.statement.describe(), e.frequency) for e in baseline]


class TestReconciliationProperty:
    """Recommending on the compressed workload, then reconciling on the
    full stream, lands within RECONCILE_EPSILON of the uncompressed
    recommendation's benefit."""

    def _check(self, database, workload, mode):
        uncompressed = IndexAdvisor(database, workload, compress="off")
        try:
            total = sum(
                c.size_bytes for c in uncompressed.candidates.basics()
            )
            budget = int(total * 0.5)
            reference = uncompressed.recommend(
                budget, algorithm="greedy_heuristics"
            )
        finally:
            uncompressed.session.close()
        advisor = IndexAdvisor(database, workload, compress=mode)
        try:
            recommendation = advisor.recommend(
                budget, algorithm="greedy_heuristics"
            )
        finally:
            advisor.session.close()
        stats = recommendation.compression_stats
        assert stats["mode"] == mode
        reconciled = stats["reconciled"]
        assert reconciled["workload_statements"] == len(workload)
        tolerance = RECONCILE_EPSILON * max(1.0, reference.search.benefit)
        assert (
            abs(reconciled["benefit"] - reference.search.benefit)
            <= tolerance
        ), (
            f"reconciled {reconciled['benefit']} vs uncompressed "
            f"{reference.search.benefit} (mode {mode})"
        )

    @pytest.mark.parametrize("mode", ["template", "cluster"])
    def test_suite_workloads(self, tpox_db, tpox_wl, mode):
        self._check(tpox_db, tpox_wl, mode)

    @given(
        seeds=st.lists(
            st.integers(0, 15), min_size=2, max_size=3, unique=True
        ),
        mode=st.sampled_from(["template", "cluster"]),
    )
    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    def test_literal_varied_streams(self, tpox_db, seeds, mode):
        self._check(tpox_db, _literal_varied_workload(seeds), mode)


class TestAdvisorSurface:
    def test_recommendation_carries_compression_stats(
        self, tpox_db, tpox_wl
    ):
        advisor = IndexAdvisor(tpox_db, tpox_wl, compress="cluster")
        try:
            recommendation = advisor.recommend(
                50_000, algorithm="greedy_heuristics"
            )
        finally:
            advisor.session.close()
        as_dict = recommendation.to_dict()
        assert as_dict["compression"]["mode"] == "cluster"
        assert "reconciled" in as_dict["compression"]
        report = recommendation.stats_report()
        assert "compression" in report
        assert "reconciled" in report

    def test_off_mode_has_no_compression_block(self, tpox_db, tpox_wl):
        advisor = IndexAdvisor(tpox_db, tpox_wl)
        try:
            recommendation = advisor.recommend(
                50_000, algorithm="greedy_heuristics"
            )
        finally:
            advisor.session.close()
        assert "compression" not in recommendation.to_dict()

    def test_cluster_similarity_one_keeps_templates_apart(self):
        workload = _literal_varied_workload(seeds=(0, 1))
        loose, _ = compress_workload(workload, "cluster")
        strict, _ = compress_workload(
            workload, "cluster", cluster_similarity=1.000001
        )
        assert len(strict) >= len(loose)
