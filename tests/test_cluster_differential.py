"""Differential harness pinning a 1x1 cluster to a single database.

The contract (ISSUE PR 6): a ``Cluster(shards=1, replicas=1)`` standing
in for a ``Database`` must be **bit-identical** -- same recommended
configuration, same costs, same instrumentation counters -- with only
timing, the scheduling-dependent stats blocks, and the cluster's own
counters block excluded.  Every run builds its own database from the
same seed so catalog name counters match too.  A 2-shard/2-replica
smoke leg checks the scaled topology stays *correct* (results, DML,
routing) even where bit-identity no longer applies.
"""

import json

import pytest

from repro.cluster import Cluster, ClusterExecutor, tune_cluster
from repro.core.advisor import IndexAdvisor
from repro.optimizer.executor import Executor, create_executor
from repro.query.model import JoinQuery
from repro.query.workload import Workload
from repro.workloads import synthetic, tpox, xmark

BUDGET = 250_000

#: Fields that legitimately differ between runs: wall-clock timing, the
#: per-worker scheduling block, the storage-engine counters (resharding
#: re-inserts every document, so delta/rescan counts differ from the
#: original build), and the cluster's own counters block (absent on a
#: plain database by definition).
TIMING_KEYS = ("elapsed_seconds",)
SESSION_TIMING_KEYS = ("phase_seconds", "workers", "storage")
TARGET_KEYS = ("cluster",)


def normalized(recommendation) -> dict:
    """``to_dict()`` minus timing, scheduling, and target-shape fields."""
    data = recommendation.to_dict()
    for key in TIMING_KEYS + TARGET_KEYS:
        data.pop(key, None)
    session = dict(data.get("session", {}))
    for key in SESSION_TIMING_KEYS:
        session.pop(key, None)
    data["session"] = session
    return data


def build_tpox():
    db = tpox.build_database(
        num_securities=40, num_orders=40, num_customers=20, seed=7
    )
    return db, tpox.tpox_workload(num_securities=40, seed=7)


def build_synthetic():
    db = tpox.build_database(
        num_securities=40, num_orders=40, num_customers=20, seed=7
    )
    workload = Workload([])
    for query in synthetic.random_path_queries(db, "SDOC", 8, seed=5):
        workload.add(query)
    return db, workload


def build_xmark():
    db = xmark.build_database(
        num_items=30, num_persons=30, num_auctions=30, seed=7
    )
    return db, xmark.xmark_workload(seed=7)


BENCHMARKS = {
    "tpox": build_tpox,
    "synthetic": build_synthetic,
    "xmark": build_xmark,
}


def run_recommendation(build, cluster: bool, algorithm="topdown_full"):
    database, workload = build()
    target = Cluster.from_database(database) if cluster else database
    advisor = IndexAdvisor(target, workload)
    try:
        return normalized(advisor.recommend(BUDGET, algorithm=algorithm))
    finally:
        advisor.session.close()


# ---------------------------------------------------------------------------
# 1x1 cluster == single database: recommendations
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("bench_name", sorted(BENCHMARKS))
def test_one_by_one_cluster_is_bit_identical(bench_name):
    build = BENCHMARKS[bench_name]
    baseline = run_recommendation(build, cluster=False)
    assert run_recommendation(build, cluster=True) == baseline, (
        f"{bench_name}: 1x1 cluster diverged from single database"
    )


@pytest.mark.parametrize(
    "algorithm", ["greedy", "greedy_heuristics", "dp", "topdown_lite"]
)
def test_algorithms_are_bit_identical_on_cluster(algorithm):
    build = BENCHMARKS["tpox"]
    baseline = run_recommendation(build, cluster=False, algorithm=algorithm)
    assert run_recommendation(build, cluster=True, algorithm=algorithm) == baseline


def test_counters_match_database_exactly():
    """Spell out the counter identity (the subtle part of the contract)
    rather than relying only on the dict comparison."""
    build = BENCHMARKS["tpox"]
    single = run_recommendation(build, cluster=False)
    clustered = run_recommendation(build, cluster=True)
    for key in (
        "optimizer_calls",
        "cache_hits",
        "cache_misses",
        "benefit",
        "workload_cost_before",
        "workload_cost_after",
    ):
        assert clustered[key] == single[key], key
    assert clustered["session"] == single["session"]


def test_cluster_block_present_and_serializable():
    """The cluster recommendation carries the counters block the plain
    database one omits -- and the whole payload stays JSON-clean."""
    database, workload = build_tpox()
    advisor = IndexAdvisor(Cluster.from_database(database), workload)
    try:
        payload = json.loads(json.dumps(advisor.recommend(BUDGET).to_dict()))
    finally:
        advisor.session.close()
    assert payload["cluster"]["shards"] == 1
    assert payload["cluster"]["replicas"] == 1
    assert payload["cluster"]["documents_routed"]["s0"] > 0


def test_plain_database_omits_cluster_block():
    database, workload = build_tpox()
    advisor = IndexAdvisor(database, workload)
    try:
        payload = advisor.recommend(BUDGET).to_dict()
    finally:
        advisor.session.close()
    assert "cluster" not in payload


# ---------------------------------------------------------------------------
# 1x1 cluster == single database: execution
# ---------------------------------------------------------------------------

def _execution_signature(executor, workload):
    rows = []
    for entry in workload:
        result = executor.execute(entry.statement, collect_output=True)
        rows.append(
            (
                result.rows,
                result.docs_examined,
                result.index_entries_scanned,
                tuple(result.used_indexes),
                tuple(result.output),
            )
        )
    return rows


def test_one_by_one_execution_is_bit_identical():
    database, workload = build_tpox()
    single = _execution_signature(Executor(database), workload)

    database2, workload2 = build_tpox()
    cluster = Cluster.from_database(database2)
    clustered = _execution_signature(create_executor(cluster), workload2)
    assert clustered == single


def test_one_by_one_execution_with_indexes_is_bit_identical():
    database, workload = build_tpox()
    advisor = IndexAdvisor(database, workload)
    advisor.create_indexes(advisor.recommend(BUDGET))
    advisor.session.close()
    single = _execution_signature(Executor(database), workload)

    database2, workload2 = build_tpox()
    cluster = Cluster.from_database(database2)
    advisor2 = IndexAdvisor(cluster, workload2)
    advisor2.create_indexes(advisor2.recommend(BUDGET))
    advisor2.session.close()
    clustered = _execution_signature(create_executor(cluster), workload2)
    assert clustered == single


def test_one_by_one_dml_is_bit_identical():
    """Inserts and deletes through the cluster executor leave the data
    (and follow-up recommendations) exactly where the single-database
    executor leaves them."""
    insert = (
        "insert into SDOC value '<Security><Symbol>ZZ9999</Symbol>"
        "<Yield>9.9</Yield></Security>'"
    )
    delete = "delete from SDOC where /Security/Symbol = 'ZZ9999'"

    def run(cluster: bool):
        database, workload = build_tpox()
        target = Cluster.from_database(database) if cluster else database
        executor = create_executor(target)
        dml = Workload.from_statements([insert, insert, delete])
        signature = _execution_signature(executor, dml)
        advisor = IndexAdvisor(target, workload)
        try:
            return signature, normalized(advisor.recommend(BUDGET))
        finally:
            advisor.session.close()

    assert run(cluster=True) == run(cluster=False)


# ---------------------------------------------------------------------------
# 2x2 smoke: the scaled topology stays correct
# ---------------------------------------------------------------------------

def test_two_by_two_smoke():
    database, workload = build_tpox()
    expected_docs = {
        name: len(collection)
        for name, collection in database.collections.items()
    }
    single_results = {}
    executor = Executor(database)
    for entry in workload:
        if isinstance(entry.statement, JoinQuery):
            continue  # joins execute per shard (co-partitioned semantics)
        result = executor.execute(entry.statement, collect_output=True)
        single_results[entry.statement.describe()] = (
            result.rows,
            sorted(result.output),
        )

    database2, _ = build_tpox()
    cluster = Cluster.from_database(database2, shards=2, replicas=2)
    for name, count in expected_docs.items():
        assert cluster.total_documents(name) == count
    result = tune_cluster(cluster, workload, BUDGET, divergent=True)
    assert result.mode == "divergent"
    assert 0.0 <= result.divergence_score <= 1.0

    cluster_executor = ClusterExecutor(cluster)
    for entry in workload:
        if isinstance(entry.statement, JoinQuery):
            continue
        gathered = cluster_executor.execute(
            entry.statement, collect_output=True
        )
        rows, output = single_results[entry.statement.describe()]
        assert gathered.rows == rows, entry.statement.describe()
        assert sorted(gathered.output) == output

    counters = cluster.router.counters()
    assert counters["policy"] == "cost"
    assert counters["cost_routed"] > 0
    routed = counters["statements_routed"]
    assert set(routed) <= {"s0r0", "s0r1", "s1r0", "s1r1"}
    assert sum(routed.values()) > 0
    stats = cluster.cluster_stats()
    assert stats["shards"] == 2 and stats["replicas"] == 2
    assert sum(stats["documents_routed"].values()) == sum(
        expected_docs.values()
    )


def test_two_by_two_dml_keeps_replicas_in_sync():
    database, _ = build_tpox()
    cluster = Cluster.from_database(database, shards=2, replicas=2)
    executor = ClusterExecutor(cluster)
    before = cluster.total_documents("SDOC")
    insert = (
        "insert into SDOC value '<Security><Symbol>ZZ9999</Symbol>"
        "<Yield>9.9</Yield></Security>'"
    )
    for statement in Workload.from_statements([insert, insert, insert]):
        executor.execute(statement.statement)
    assert cluster.total_documents("SDOC") == before + 3
    deleted = executor.execute(
        Workload.from_statements(
            ["delete from SDOC where /Security/Symbol = 'ZZ9999'"]
        ).entries[0].statement
    )
    assert deleted.rows == 3
    assert cluster.total_documents("SDOC") == before
    # Every replica of each shard holds exactly the shard's documents.
    for shard in range(cluster.num_shards):
        counts = {
            len(cluster.replica_database(shard, r).collection("SDOC"))
            for r in range(cluster.num_replicas)
        }
        assert len(counts) == 1, f"replicas of shard {shard} diverged"
