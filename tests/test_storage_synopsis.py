"""Differential tests for the incremental storage engine (synopsis PR).

The equivalence contract (docs/performance.md): delta-maintained
:class:`DataStatistics` must agree with :func:`collect_statistics_rescan`
-- the original node-by-node scan, kept as the reference -- after ANY
interleaving of inserts and deletes:

* exact quantities (counts, doc counts, totals) identically, always;
* bounded summary structures (samples, distinct sets, string
  frequencies, min/max) identically *at the probe boundary*: a keyed
  ``stats.summaries[path]`` access repairs a dirty summary from the live
  synopses before returning it, after which it equals the rescan summary
  field for field;
* ``path_counts`` key order identically (pattern aggregation order, and
  therefore float summation order, is part of bit-identity).

Real index maintenance rides the same synopses; after every DML
operation each built index must hold exactly the entries a from-scratch
``bulk_load`` would.
"""

import pickle

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.optimizer.session import WhatIfSession
from repro.query import parse_statement
from repro.storage import Database, IndexDefinition, IndexValueType
from repro.storage.index import PathIndex, _walk_with_paths
from repro.storage.statistics import collect_statistics_rescan
from repro.storage.synopsis import build_synopsis, get_synopsis
from repro.xmlmodel.parser import parse_document
from repro.xpath import parse_pattern
from repro.xpath.ast import Literal

# ---------------------------------------------------------------------------
# Random document generation (no "nan"/"inf": float("nan") would poison
# sample-sort determinism, and neither scan path treats them specially).
# ---------------------------------------------------------------------------

TAGS = ("a", "b", "c")
TEXTS = ("", "red", "blue", "x y", "007", "-3.5", "42", "zz9")

texts = st.sampled_from(TEXTS)


@st.composite
def elements(draw, depth=0):
    tag = draw(st.sampled_from(TAGS))
    attrs = draw(
        st.lists(
            st.tuples(st.sampled_from(("id", "k")), texts),
            max_size=2,
            unique_by=lambda item: item[0],
        )
    )
    text = draw(texts)
    children = (
        []
        if depth >= 2
        else draw(st.lists(elements(depth=depth + 1), max_size=3))
    )
    attr_text = "".join(f' {name}="{value}"' for name, value in attrs)
    body = text + "".join(children)
    return f"<{tag}{attr_text}>{body}</{tag}>"


documents = elements()

ops = st.lists(
    st.tuples(st.sampled_from(("insert", "delete")), documents, st.integers(0, 99)),
    min_size=1,
    max_size=8,
)

PROBE_PATTERNS = ("//a", "//b", "/a//*", "//@id")


# ---------------------------------------------------------------------------
# Differential assertions
# ---------------------------------------------------------------------------

def assert_summaries_equal(live, reference, tag_path):
    """Probe one summary through the cleaning access and compare every
    field against the rescan reference."""
    probed = live.summaries[tag_path]  # keyed access repairs if dirty
    expected = reference.summaries[tag_path]
    assert probed.dirty is False
    assert probed.count == expected.count
    assert probed.numeric_count == expected.numeric_count
    assert probed.numeric_min == expected.numeric_min
    assert probed.numeric_max == expected.numeric_max
    assert probed.total_string_bytes == expected.total_string_bytes
    assert probed.numeric_sample == expected.numeric_sample
    assert probed.string_sample == expected.string_sample
    assert probed.string_freq == expected.string_freq
    assert probed._distinct == expected._distinct
    assert probed.distinct == expected.distinct
    assert probed.avg_string_bytes == expected.avg_string_bytes


def assert_stats_match_rescan(db, name="C"):
    live = db.runstats(name)
    reference = collect_statistics_rescan(db.collection(name))
    assert live.doc_count == reference.doc_count
    assert live.total_nodes == reference.total_nodes
    assert live.total_elements == reference.total_elements
    # Key order is part of the contract (float summation order).
    assert list(live.path_counts) == list(reference.path_counts)
    assert live.path_counts == reference.path_counts
    assert live.path_doc_counts == reference.path_doc_counts
    for tag_path in reference.path_counts:
        assert_summaries_equal(live, reference, tag_path)
    for text in PROBE_PATTERNS:
        pattern = parse_pattern(text)
        assert live.matching_paths(pattern) == reference.matching_paths(pattern)
        assert live.document_frequency(pattern) == reference.document_frequency(
            pattern
        )
        for value_type in IndexValueType:
            assert live.derive_index_statistics(
                pattern, value_type
            ) == reference.derive_index_statistics(pattern, value_type)
        for op, literal in (
            ("=", Literal(7.0)),
            (">=", Literal("blue")),
            ("starts-with", Literal("x")),
        ):
            assert live.selectivity(pattern, op, literal) == reference.selectivity(
                pattern, op, literal
            )


def assert_indexes_match_bulk_load(db, name="C"):
    for index in db.indexes.values():
        if index.definition.collection != name:
            continue
        fresh = PathIndex(index.definition)
        fresh.bulk_load(db.collection(name))
        assert index.entries == fresh.entries, index.definition.name


def apply_op(db, op, name="C"):
    kind, text, pick = op
    collection = db.collection(name)
    live_ids = [d.doc_id for d in collection]
    if kind == "delete" and live_ids:
        db.delete_document(name, live_ids[pick % len(live_ids)])
    else:
        db.insert_document(name, text)


# ---------------------------------------------------------------------------
# The hypothesis harness: random DML interleavings
# ---------------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(initial=st.lists(documents, min_size=1, max_size=4), dml=ops)
def test_dml_deltas_match_rescan(initial, dml):
    db = Database("t")
    db.create_collection("C")
    for text in initial:
        db.insert_document("C", text)
    db.runstats("C")  # prime delta-capable statistics
    db.create_index(
        IndexDefinition("sx", "C", parse_pattern("//*"), IndexValueType.STRING)
    )
    db.create_index(
        IndexDefinition("nx", "C", parse_pattern("//b"), IndexValueType.NUMERIC)
    )
    rescans_before = db.stats_rescans
    for op in dml:
        apply_op(db, op)
        assert_stats_match_rescan(db)
        assert_indexes_match_bulk_load(db)
    # The whole interleaving was absorbed as deltas: the only rescan on
    # record is the priming one.
    assert db.stats_rescans == rescans_before
    assert db.stats_delta_applies >= len(dml)


@settings(max_examples=15, deadline=None)
@given(initial=st.lists(documents, min_size=2, max_size=4), dml=ops)
def test_stats_primed_after_dml_match_rescan(initial, dml):
    """Statistics first collected AFTER the DML (one synopsis merge over
    the surviving documents) also equal the reference rescan."""
    db = Database("t")
    db.create_collection("C")
    for text in initial:
        db.insert_document("C", text)
    for op in dml:
        apply_op(db, op)
    assert_stats_match_rescan(db)


# ---------------------------------------------------------------------------
# The synopsis itself
# ---------------------------------------------------------------------------

@settings(max_examples=30, deadline=None)
@given(text=documents)
def test_synopsis_mirrors_reference_walk(text):
    """One synopsis walk records exactly the (path, node, value) stream of
    the reference walk, grouped by first-seen path."""
    document = parse_document(text, 0)
    synopsis = build_synopsis(document)
    seen = {}
    order = []
    for node, tag_path in _walk_with_paths(document):
        if tag_path not in seen:
            seen[tag_path] = ([], [])
            order.append(tag_path)
        ids, values = seen[tag_path]
        ids.append(node.node_id)
        values.append(
            node.string_value() if node.name == tag_path[-1] else node.value or ""
        )
    assert synopsis.tag_paths == order
    for slot, tag_path in enumerate(synopsis.tag_paths):
        ids, values = seen[tag_path]
        assert synopsis.node_ids[slot] == ids
        assert synopsis.node_ids[slot] == sorted(ids)  # document order
        assert synopsis.values[slot] == values
        count, numeric, string_bytes = synopsis.deltas[slot]
        assert count == len(values)
        assert string_bytes == sum(len(v) for v in values)
    assert synopsis.node_count == document.node_count()


def test_synopsis_pickle_roundtrip():
    document = parse_document("<a id='7'><b>4.5</b><c>red</c></a>", 3)
    synopsis = get_synopsis(document)
    synopsis.path_ids()  # populate the process-local cache
    clone = pickle.loads(pickle.dumps(synopsis))
    assert clone.tag_paths == synopsis.tag_paths
    assert clone.node_ids == synopsis.node_ids
    assert clone.values == synopsis.values
    assert clone.deltas == synopsis.deltas
    assert clone.node_count == synopsis.node_count
    assert clone.element_count == synopsis.element_count
    assert clone._path_ids is None  # interned ids never cross processes
    assert clone.slot_of(("a", "b")) == synopsis.slot_of(("a", "b"))
    assert clone.path_ids() == synopsis.path_ids()  # same process, same table


def test_document_pickle_drops_cached_synopsis():
    document = parse_document("<a><b>1</b></a>", 5)
    get_synopsis(document)
    clone = pickle.loads(pickle.dumps(document))
    assert clone._synopsis is None
    assert clone.doc_id == 5
    assert [n.node_id for n in clone.nodes] == [
        n.node_id for n in document.nodes
    ]
    assert get_synopsis(clone).values == get_synopsis(document).values


# ---------------------------------------------------------------------------
# Rebuild-on-dirty bookkeeping
# ---------------------------------------------------------------------------

def test_delete_marks_dirty_and_probe_rebuilds_targeted():
    db = Database("t")
    db.create_collection("C")
    for y in range(6):
        db.insert_document("C", f"<a><b>{y}</b><c>w{y}</c></a>")
    stats = db.runstats("C")
    db.delete_document("C", 2)
    assert dict.__getitem__(stats.summaries, ("a", "b")).dirty
    assert db.storage_stats()["summary_rebuilds"] == 0
    probed = stats.summaries[("a", "b")]  # probe boundary: targeted rebuild
    assert not probed.dirty
    assert probed.count == 5
    assert probed.numeric_sample == [0.0, 1.0, 3.0, 4.0, 5.0]
    assert db.storage_stats()["summary_rebuilds"] == 1
    # Only the probed path was rebuilt; the sibling stays dirty until read.
    assert dict.__getitem__(stats.summaries, ("a", "c")).dirty
    assert db.storage_stats()["stats_rescans"] == 1  # the priming runstats


def test_insert_only_dml_never_dirties_summaries():
    db = Database("t")
    db.create_collection("C")
    db.insert_document("C", "<a><b>1</b></a>")
    stats = db.runstats("C")
    for y in range(20):
        db.insert_document("C", f"<a><b>{y}</b></a>")
    assert all(
        not summary.dirty for summary in dict.values(stats.summaries)
    )
    assert db.storage_stats()["summary_rebuilds"] == 0


# ---------------------------------------------------------------------------
# Epoch-scoped what-if cache invalidation
# ---------------------------------------------------------------------------

def _epoch_db():
    db = Database("t")
    db.create_collection("C")
    db.create_collection("D")
    for i in range(4):
        db.insert_document("C", f"<a><b>{i}</b></a>")
        db.insert_document("D", f"<x><y>{i}</y></x>")
    return db


def test_dml_invalidates_only_touched_collections():
    db = _epoch_db()
    session = WhatIfSession(db)
    on_c = parse_statement("COLLECTION('C')/a/b")
    on_d = parse_statement("COLLECTION('D')/x/y")
    session.cost(on_c)
    session.cost(on_d)
    misses = session.counters.cache_misses
    db.insert_document("C", "<a><b>9</b></a>")
    # D's epoch did not move: its cached result must survive the sync.
    assert session.cost(on_d) == session.cost(on_d)
    assert session.counters.cache_misses == misses
    # C's epoch moved: its entry was dropped and is recomputed.
    session.cost(on_c)
    assert session.counters.cache_misses == misses + 1


def test_bare_touch_invalidates_everything():
    db = _epoch_db()
    session = WhatIfSession(db)
    on_c = parse_statement("COLLECTION('C')/a/b")
    on_d = parse_statement("COLLECTION('D')/x/y")
    session.cost(on_c)
    session.cost(on_d)
    misses = session.counters.cache_misses
    db.touch()  # global change: every epoch bumps
    session.cost(on_c)
    session.cost(on_d)
    assert session.counters.cache_misses == misses + 2


def test_index_ddl_scopes_to_its_collection():
    db = _epoch_db()
    session = WhatIfSession(db)
    on_c = parse_statement("COLLECTION('C')/a/b")
    on_d = parse_statement("COLLECTION('D')/x/y")
    session.cost(on_c)
    session.cost(on_d)
    misses = session.counters.cache_misses
    db.create_index(
        IndexDefinition("cx", "C", parse_pattern("/a/b"), IndexValueType.STRING)
    )
    session.cost(on_d)  # untouched collection: still cached
    assert session.counters.cache_misses == misses
    session.cost(on_c)  # index visibility changed: recomputed
    assert session.counters.cache_misses == misses + 1
