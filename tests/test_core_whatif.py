"""Tests for what-if analysis and workload compression."""

import pytest

from repro.core.compression import compress, compression_ratio
from repro.core.config import IndexConfiguration
from repro.core.whatif import analyze
from repro.query import Workload, parse_statement


class TestWhatIf:
    def test_report_structure(self, tpox_advisor, tpox_db, tpox_wl):
        rec = tpox_advisor.recommend(budget_bytes=40_000, algorithm="greedy_heuristics")
        report = analyze(tpox_db, tpox_wl, rec.configuration)
        assert len(report.impacts) == len(tpox_wl)
        assert report.total_benefit > 0
        for impact in report.impacts:
            assert impact.cost_after <= impact.cost_before + 1e-9
            assert impact.speedup >= 1.0

    def test_consistent_with_evaluator(self, tpox_advisor, tpox_db, tpox_wl):
        rec = tpox_advisor.recommend(budget_bytes=40_000, algorithm="greedy_heuristics")
        report = analyze(tpox_db, tpox_wl, rec.configuration)
        expected = tpox_advisor.evaluator.raw_benefit(rec.configuration)
        assert report.total_benefit == pytest.approx(expected)

    def test_unused_indexes_detected(self, tpox_db, tpox_wl, tpox_advisor):
        from repro.core.candidates import CandidateIndex
        from repro.storage.index import IndexValueType
        from repro.xpath import parse_pattern

        useless = CandidateIndex(
            parse_pattern("/Nothing/Here"), IndexValueType.STRING, "SDOC"
        )
        useless.size_bytes = 10
        report = analyze(tpox_db, tpox_wl, IndexConfiguration([useless]))
        assert report.unused_indexes() == ["whatif_0"]
        assert report.total_benefit == 0.0

    def test_summary_renders(self, tpox_db, tpox_wl, tpox_advisor):
        rec = tpox_advisor.recommend(budget_bytes=40_000, algorithm="greedy_heuristics")
        text = analyze(tpox_db, tpox_wl, rec.configuration).summary()
        assert "total benefit" in text
        assert "speedup" in text

    def test_empty_configuration(self, tpox_db, tpox_wl):
        report = analyze(tpox_db, tpox_wl, IndexConfiguration())
        assert report.total_benefit == 0.0
        assert report.unused_indexes() == []


class TestCompression:
    def q(self, symbol):
        return (
            f"""for $s in X('SDOC')/Security where $s/Symbol = "{symbol}" return $s"""
        )

    def test_exact_duplicates_merged(self):
        wl = Workload.from_statements([self.q("A"), self.q("A"), self.q("B")])
        compressed = compress(wl)
        assert len(compressed) == 2
        assert compressed.entries[0].frequency == 2.0

    def test_frequencies_summed(self):
        wl = Workload.from_statements(
            [self.q("A"), self.q("A")], frequencies=[3.0, 4.0]
        )
        compressed = compress(wl)
        assert compressed.entries[0].frequency == 7.0

    def test_template_merging(self):
        wl = Workload.from_statements([self.q("A"), self.q("B"), self.q("C")])
        exact = compress(wl)
        assert len(exact) == 3  # different literals, exact keeps all
        template = compress(wl, by_template=True)
        assert len(template) == 1
        assert template.entries[0].frequency == 3.0

    def test_template_distinguishes_operators(self):
        wl = Workload.from_statements(
            [
                "for $s in X('SDOC')/Security where $s/Yield > 1 return $s",
                "for $s in X('SDOC')/Security where $s/Yield = 1 return $s",
            ]
        )
        assert len(compress(wl, by_template=True)) == 2

    def test_template_distinguishes_collections(self):
        wl = Workload.from_statements(
            [
                "for $s in X('SDOC')/Security where $s/Yield > 1 return $s",
                "for $s in X('OTHER')/Security where $s/Yield > 1 return $s",
            ]
        )
        assert len(compress(wl, by_template=True)) == 2

    def test_updates_participate(self):
        wl = Workload.from_statements(
            ["insert into SDOC value '<a/>'", "insert into SDOC value '<a/>'"]
        )
        assert len(compress(wl)) == 1

    def test_order_preserved(self):
        wl = Workload.from_statements([self.q("A"), self.q("B"), self.q("A")])
        compressed = compress(wl)
        assert [e.statement.describe() for e in compressed.entries] == [
            wl.entries[0].statement.describe(),
            wl.entries[1].statement.describe(),
        ]

    def test_compression_ratio(self):
        wl = Workload.from_statements([self.q("A")] * 4)
        compressed = compress(wl)
        assert compression_ratio(wl, compressed) == pytest.approx(0.75)
        assert compression_ratio(Workload(), Workload()) == 0.0

    def test_compressed_workload_same_recommendation(self, tpox_db):
        """Advisor output is invariant under exact compression."""
        from repro import IndexAdvisor

        raw = Workload.from_statements(
            [self.q("SYM001")] * 5
            + ["for $s in X('SDOC')/Security where $s/Yield > 5 return $s"] * 3
        )
        compressed = compress(raw)
        rec_raw = IndexAdvisor(tpox_db, raw).recommend(
            budget_bytes=50_000, algorithm="greedy_heuristics"
        )
        rec_compressed = IndexAdvisor(tpox_db, compressed).recommend(
            budget_bytes=50_000, algorithm="greedy_heuristics"
        )
        assert rec_raw.configuration.keys == rec_compressed.configuration.keys
        assert rec_raw.search.benefit == pytest.approx(rec_compressed.search.benefit)
