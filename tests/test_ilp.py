"""Tests for the ILP cost-atom search (PR 7).

The load-bearing contract is the differential: ``ilp`` benefit is >=
``greedy_heuristics`` benefit on every suite workload and on seeded
random workloads -- by construction (the searcher returns the better of
the two true benefits), so these tests pin that the construction
actually holds end to end.
"""

import pytest

from repro.core.benefit import ConfigurationEvaluator
from repro.core.candidates import enumerate_basic_candidates
from repro.core.generalization import generalize_candidates
from repro.core.ilp import (
    Atom,
    build_atom_matrix,
    ilp_search,
    solve_lp,
)
from repro.core.search import ALGORITHMS, greedy_search_with_heuristics
from repro.optimizer.session import WhatIfSession
from repro.robustness.budget import SearchBudget
from repro.workloads import synthetic, tpox, xmark


def _inputs(database, workload):
    """(candidates, evaluator, total basic size) over one shared
    what-if session -- the same wiring the advisor uses."""
    session = WhatIfSession(database)
    candidates = enumerate_basic_candidates(session, workload)
    generalize_candidates(candidates)
    candidates.compute_sizes(database)
    evaluator = ConfigurationEvaluator(database, session, workload)
    all_size = sum(c.size_bytes for c in candidates.basics())
    return candidates, evaluator, all_size


@pytest.fixture()
def tpox_inputs(tpox_db, tpox_wl):
    return _inputs(tpox_db, tpox_wl)


class TestSolveLp:
    def test_simple_knapsack_relaxation(self):
        # maximize 3x + 2y  s.t.  x + y <= 1.5, x <= 1, y <= 1
        solved = solve_lp(
            [3.0, 2.0],
            [[(0, 1.0), (1, 1.0)], [(0, 1.0)], [(1, 1.0)]],
            [1.5, 1.0, 1.0],
        )
        assert solved is not None
        value, values = solved
        assert value == pytest.approx(4.0)
        assert values[0] == pytest.approx(1.0)
        assert values[1] == pytest.approx(0.5)

    def test_slack_optimum_at_origin(self):
        solved = solve_lp([-1.0, -2.0], [[(0, 1.0), (1, 1.0)]], [5.0])
        assert solved is not None
        value, values = solved
        assert value == pytest.approx(0.0)
        assert values == [0.0, 0.0]

    def test_unbounded_returns_none(self):
        assert solve_lp([1.0], [], []) is None

    def test_binding_budget_row(self):
        # maximize x + y  s.t.  2x + 2y <= 2  ->  x + y = 1
        solved = solve_lp(
            [1.0, 1.0], [[(0, 2.0), (1, 2.0)]], [2.0]
        )
        assert solved is not None
        value, values = solved
        assert value == pytest.approx(1.0)
        assert sum(values) == pytest.approx(1.0)


class TestAtomMatrix:
    def test_atoms_reference_pool_and_save(self, tpox_inputs):
        candidates, evaluator, _ = tpox_inputs
        pool = evaluator.ranked_positive_candidates(candidates)[:16]
        atoms = build_atom_matrix(pool, evaluator)
        assert atoms, "TPoX workload must produce cost atoms"
        positions = range(len(evaluator.workload.entries))
        for atom in atoms:
            assert atom.statement in positions
            assert atom.saving > 0
            assert all(0 <= j < len(pool) for j in atom.members)
            assert tuple(sorted(atom.members)) == atom.members

    def test_pair_atoms_dominate_their_singletons(self, tpox_inputs):
        candidates, evaluator, _ = tpox_inputs
        pool = evaluator.ranked_positive_candidates(candidates)[:16]
        atoms = build_atom_matrix(pool, evaluator)
        singles = {
            (atom.statement, atom.members[0]): atom.saving
            for atom in atoms
            if len(atom.members) == 1
        }
        pairs = [atom for atom in atoms if len(atom.members) == 2]
        for atom in pairs:
            best_member = max(
                singles.get((atom.statement, j), 0.0)
                for j in atom.members
            )
            assert atom.saving > best_member

    def test_deterministic(self, tpox_db, tpox_wl):
        first = _inputs(tpox_db, tpox_wl)
        second = _inputs(tpox_db, tpox_wl)
        for inputs in (first, second):
            candidates, evaluator, _ = inputs
        pools = []
        matrices = []
        for candidates, evaluator, _ in (first, second):
            pool = evaluator.ranked_positive_candidates(candidates)[:16]
            pools.append([c.key for c in pool])
            matrices.append(build_atom_matrix(pool, evaluator))
        assert pools[0] == pools[1]
        assert matrices[0] == matrices[1]


class TestIlpSearch:
    def test_registered(self):
        assert "ilp" in ALGORITHMS

    def test_budget_respected(self, tpox_inputs):
        candidates, evaluator, all_size = tpox_inputs
        for fraction in (0.2, 0.5, 1.0):
            budget = int(all_size * fraction)
            result = ilp_search(candidates, evaluator, budget)
            assert result.size_bytes <= budget
            assert result.algorithm == "ilp"

    def test_zero_budget_empty_config(self, tpox_inputs):
        candidates, evaluator, _ = tpox_inputs
        result = ilp_search(candidates, evaluator, 0)
        assert len(result.configuration) == 0
        assert result.benefit == 0.0

    def test_deterministic(self, tpox_db, tpox_wl):
        results = []
        for _ in range(2):
            candidates, evaluator, all_size = _inputs(tpox_db, tpox_wl)
            result = ilp_search(candidates, evaluator, all_size // 2)
            results.append(
                ([c.key for c in result.configuration], result.benefit)
            )
        assert results[0] == results[1]

    def test_deadline_falls_back_to_greedy_truncated(self, tpox_inputs):
        candidates, evaluator, all_size = tpox_inputs
        budget = SearchBudget(deadline_seconds=1e-9)
        result = ilp_search(
            candidates, evaluator, all_size // 2, budget=budget
        )
        assert result.algorithm == "ilp"
        assert result.truncated
        assert "deadline" in result.truncated_reason


class TestIlpVsGreedyDifferential:
    """ilp benefit >= greedy benefit, on every suite workload."""

    def _assert_dominates(self, database, workload, fractions=(0.2, 0.5, 1.0)):
        candidates, evaluator, all_size = _inputs(database, workload)
        for fraction in fractions:
            budget = int(all_size * fraction)
            ilp = ilp_search(candidates, evaluator, budget)
            greedy = greedy_search_with_heuristics(
                candidates, evaluator, budget
            )
            assert ilp.benefit >= greedy.benefit, (
                f"ilp {ilp.benefit} < greedy {greedy.benefit} "
                f"at fraction {fraction}"
            )

    def test_tpox(self, tpox_db, tpox_wl):
        self._assert_dominates(tpox_db, tpox_wl)

    def test_tpox_with_updates(self, tpox_db):
        workload = tpox.tpox_workload(
            num_securities=120, seed=42, include_updates=True
        )
        self._assert_dominates(tpox_db, workload)

    def test_xmark(self, xmark_db):
        self._assert_dominates(xmark_db, xmark.xmark_workload(seed=7))

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_seeded_random_workloads(self, tpox_db, seed):
        workload = synthetic.synthetic_workload(
            tpox_db, "SDOC", count=10, seed=seed
        )
        self._assert_dominates(tpox_db, workload, fractions=(0.3, 0.8))
