"""Tests for candidate enumeration and the candidate set."""

import pytest

from repro.core.candidates import (
    CandidateIndex,
    CandidateSet,
    enumerate_basic_candidates,
)
from repro.optimizer import Optimizer
from repro.query import Workload
from repro.storage.index import IndexValueType
from repro.xpath import parse_pattern


class TestCandidateSet:
    def test_get_or_add_dedupes(self):
        candidates = CandidateSet()
        a = candidates.get_or_add(parse_pattern("/a/b"), IndexValueType.STRING, "C")
        b = candidates.get_or_add(parse_pattern("/a/b"), IndexValueType.STRING, "C")
        assert a is b
        assert len(candidates) == 1

    def test_same_pattern_different_type_distinct(self):
        candidates = CandidateSet()
        candidates.get_or_add(parse_pattern("/a/b"), IndexValueType.STRING, "C")
        candidates.get_or_add(parse_pattern("/a/b"), IndexValueType.NUMERIC, "C")
        assert len(candidates) == 2

    def test_basics_vs_generals(self):
        candidates = CandidateSet()
        candidates.get_or_add(parse_pattern("/a/b"), IndexValueType.STRING, "C")
        candidates.get_or_add(
            parse_pattern("/a/*"), IndexValueType.STRING, "C", general=True
        )
        assert len(candidates.basics()) == 1
        assert len(candidates.generals()) == 1

    def test_covers_requires_same_type(self):
        general = CandidateIndex(
            parse_pattern("/a/*"), IndexValueType.STRING, "C"
        )
        numeric = CandidateIndex(
            parse_pattern("/a/b"), IndexValueType.NUMERIC, "C"
        )
        assert not general.covers(numeric)

    def test_definition_materialization(self):
        candidate = CandidateIndex(
            parse_pattern("/a/b"), IndexValueType.NUMERIC, "C"
        )
        definition = candidate.definition("x", virtual=True)
        assert definition.virtual
        assert definition.collection == "C"
        assert str(definition.pattern) == "/a/b"

    def test_compute_sizes(self, security_db):
        candidates = CandidateSet()
        candidate = candidates.get_or_add(
            parse_pattern("/Security/Symbol"), IndexValueType.STRING, "SDOC"
        )
        candidates.compute_sizes(security_db)
        expected = security_db.runstats("SDOC").derive_index_statistics(
            candidate.pattern, candidate.value_type
        )
        assert candidate.size_bytes == expected.size_bytes > 0


class TestEnumeration:
    def test_tpox_basic_candidates(self, tpox_db, tpox_wl):
        optimizer = Optimizer(tpox_db)
        candidates = enumerate_basic_candidates(optimizer, tpox_wl)
        patterns = {str(c.pattern) for c in candidates}
        # the paper's running-example candidates are present
        assert "/Security/Symbol" in patterns
        assert "/Security/Yield" in patterns
        assert "/Security/SecInfo/*/Sector" in patterns
        assert all(not c.general for c in candidates)

    def test_affected_sets_point_to_statements(self, tpox_db, tpox_wl):
        optimizer = Optimizer(tpox_db)
        candidates = enumerate_basic_candidates(optimizer, tpox_wl)
        symbol = candidates.get(("/Security/Symbol", IndexValueType.STRING))
        # queries Q1, Q2, Q3 all filter on Symbol
        assert symbol.affected == {0, 1, 2}

    def test_one_optimizer_call_per_statement(self, tpox_db, tpox_wl):
        optimizer = Optimizer(tpox_db)
        before = optimizer.calls
        enumerate_basic_candidates(optimizer, tpox_wl)
        assert optimizer.calls - before == len(tpox_wl)

    def test_shared_candidates_merge_affected(self, security_db):
        workload = Workload.from_statements(
            [
                """for $s in X('SDOC')/Security where $s/Yield > 1 return $s""",
                """for $s in X('SDOC')/Security where $s/Yield < 9 return $s""",
            ]
        )
        candidates = enumerate_basic_candidates(Optimizer(security_db), workload)
        (candidate,) = list(candidates)
        assert candidate.affected == {0, 1}

    def test_insert_statements_produce_nothing(self, security_db):
        workload = Workload.from_statements(
            ["insert into SDOC value '<Security/>'"]
        )
        candidates = enumerate_basic_candidates(Optimizer(security_db), workload)
        assert len(candidates) == 0

    def test_delete_statements_produce_candidates(self, security_db):
        workload = Workload.from_statements(
            ['delete from SDOC where /Security/Symbol = "X"']
        )
        candidates = enumerate_basic_candidates(Optimizer(security_db), workload)
        assert {str(c.pattern) for c in candidates} == {"/Security/Symbol"}
