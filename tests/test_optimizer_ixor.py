"""Tests for index ORing (disjunctive predicates served by index union)."""

import pytest

from repro import (
    Database,
    Executor,
    IndexAdvisor,
    IndexDefinition,
    IndexValueType,
    Optimizer,
    OptimizerMode,
    Workload,
)
from repro.optimizer import IndexOring
from repro.optimizer.rewriter import (
    DisjunctiveRequest,
    extract_all_requests,
    extract_disjunctive_requests,
    extract_path_requests,
)
from repro.query import parse_statement
from repro.xpath import parse_pattern

OR_QUERY = """for $s in X('SDOC')/Security[Symbol="SYM003" or Symbol="SYM007"]
              return $s"""
MIXED_OR = """COLLECTION('SDOC')/Security[Yield>9.4 or SecInfo/*/Sector="Energy"]"""


def definition(name, pattern, value_type=IndexValueType.STRING):
    return IndexDefinition(name, "SDOC", parse_pattern(pattern), value_type, True)


class TestRewriter:
    def test_disjunction_extracted(self):
        query = parse_statement(OR_QUERY)
        assert extract_path_requests(query) == []
        (disjunction,) = extract_disjunctive_requests(query)
        assert len(disjunction.alternatives) == 2
        assert {str(a.pattern) for a in disjunction.alternatives} == {
            "/Security/Symbol"
        }

    def test_all_requests_flattens_branches(self):
        query = parse_statement(MIXED_OR)
        requests = extract_all_requests(query)
        patterns = {str(r.pattern) for r in requests}
        assert patterns == {"/Security/Yield", "/Security/SecInfo/*/Sector"}

    def test_uncovered_branch_defeats_disjunction(self):
        # contains() is not indexable, so the whole OR is residual-only
        query = parse_statement(
            """COLLECTION('SDOC')/Security[Yield>9 or contains(Name,"x")]"""
        )
        assert extract_disjunctive_requests(query) == []
        assert extract_path_requests(query) == []

    def test_and_branch_contributes_superset_conjunct(self):
        query = parse_statement(
            """COLLECTION('SDOC')/Security[Symbol="A" or Yield>9 and PE<10]"""
        )
        (disjunction,) = extract_disjunctive_requests(query)
        branch_patterns = [str(a.pattern) for a in disjunction.alternatives]
        assert "/Security/Symbol" in branch_patterns
        # the AND branch is represented by one of its conjuncts
        assert any(
            p in ("/Security/Yield", "/Security/PE") for p in branch_patterns
        )

    def test_disjunctive_request_validation(self):
        from repro.optimizer.rewriter import PathRequest

        with pytest.raises(ValueError):
            DisjunctiveRequest((PathRequest(parse_pattern("/a")),))


class TestPlanning:
    def test_ixor_plan_chosen(self, security_db):
        optimizer = Optimizer(security_db)
        query = parse_statement(OR_QUERY)
        result = optimizer.optimize(
            query,
            OptimizerMode.EVALUATE,
            [definition("vsym", "/Security/Symbol")],
        )
        assert isinstance(result.plan.source, IndexOring)
        assert result.used_indexes == ("vsym", "vsym")
        assert "IXOR" in result.explain()

    def test_ixor_cheaper_than_scan(self, security_db):
        optimizer = Optimizer(security_db)
        query = parse_statement(OR_QUERY)
        base = optimizer.optimize(query, OptimizerMode.EVALUATE, ())
        indexed = optimizer.optimize(
            query,
            OptimizerMode.EVALUATE,
            [definition("vsym", "/Security/Symbol")],
        )
        assert indexed.estimated_cost < base.estimated_cost

    def test_branches_may_use_different_indexes(self, security_db):
        optimizer = Optimizer(security_db)
        query = parse_statement(MIXED_OR)
        result = optimizer.optimize(
            query,
            OptimizerMode.EVALUATE,
            [
                definition("vy", "/Security/Yield", IndexValueType.NUMERIC),
                definition("vs", "/Security/SecInfo/*/Sector"),
            ],
        )
        assert set(result.used_indexes) == {"vy", "vs"}

    def test_missing_branch_index_no_ixor(self, security_db):
        optimizer = Optimizer(security_db)
        query = parse_statement(MIXED_OR)
        result = optimizer.optimize(
            query,
            OptimizerMode.EVALUATE,
            [definition("vy", "/Security/Yield", IndexValueType.NUMERIC)],
        )
        assert result.used_indexes == ()  # falls back to collection scan


class TestExecution:
    def test_results_identical_with_ixor(self, security_db):
        query = parse_statement(OR_QUERY)
        baseline = Executor(security_db).execute(query, collect_output=True)
        assert baseline.rows == 2
        security_db.create_index(
            IndexDefinition(
                "isym_or", "SDOC", parse_pattern("/Security/Symbol"),
                IndexValueType.STRING,
            )
        )
        try:
            indexed = Executor(security_db).execute(query, collect_output=True)
            assert sorted(indexed.output) == sorted(baseline.output)
            assert indexed.docs_examined == 2
            assert "isym_or" in indexed.used_indexes
        finally:
            security_db.drop_index("isym_or")

    def test_ixor_with_extra_conjunct(self, security_db):
        query = parse_statement(
            """for $s in X('SDOC')/Security[Symbol="SYM003" or Symbol="SYM007"]
               where $s/Yield > 3 return $s"""
        )
        baseline = Executor(security_db).execute(query, collect_output=True)
        for name, pattern, vt in (
            ("ix1", "/Security/Symbol", IndexValueType.STRING),
            ("ix2", "/Security/Yield", IndexValueType.NUMERIC),
        ):
            security_db.create_index(
                IndexDefinition(name, "SDOC", parse_pattern(pattern), vt)
            )
        try:
            indexed = Executor(security_db).execute(query, collect_output=True)
            assert sorted(indexed.output) == sorted(baseline.output)
        finally:
            security_db.drop_index("ix1")
            security_db.drop_index("ix2")


class TestAdvisorWithDisjunctions:
    def test_or_query_drives_recommendation(self, security_db):
        workload = Workload.from_statements([OR_QUERY])
        advisor = IndexAdvisor(security_db, workload)
        patterns = {str(c.pattern) for c in advisor.candidates.basics()}
        assert "/Security/Symbol" in patterns
        recommendation = advisor.recommend(budget_bytes=100_000)
        assert len(recommendation.configuration) == 1
        assert recommendation.estimated_speedup > 1.5
