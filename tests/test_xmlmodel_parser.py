"""Tests for the from-scratch XML parser."""

import pytest

from repro.xmlmodel import XmlParseError, parse_document, parse_fragment, serialize
from repro.xmlmodel.nodes import NodeKind


class TestBasicParsing:
    def test_simple_element(self):
        root = parse_fragment("<a/>")
        assert root.name == "a"
        assert root.children == []

    def test_nested_elements(self):
        root = parse_fragment("<a><b><c/></b></a>")
        assert root.children[0].name == "b"
        assert root.children[0].children[0].name == "c"

    def test_text_content(self):
        root = parse_fragment("<a>hello</a>")
        assert root.string_value() == "hello"

    def test_whitespace_only_text_dropped(self):
        root = parse_fragment("<a>\n  <b/>\n</a>")
        assert all(c.kind is NodeKind.ELEMENT for c in root.children)

    def test_mixed_content_preserved(self):
        root = parse_fragment("<a>x<b>y</b>z</a>")
        assert root.string_value() == "xyz"

    def test_attributes_double_and_single_quotes(self):
        root = parse_fragment("""<a x="1" y='2'/>""")
        assert root.attribute("x").value == "1"
        assert root.attribute("y").value == "2"

    def test_attribute_with_spaces_around_equals(self):
        root = parse_fragment('<a x = "1"/>')
        assert root.attribute("x").value == "1"

    def test_names_with_namespace_prefix(self):
        root = parse_fragment("<ns:a><ns:b/></ns:a>")
        assert root.name == "ns:a"
        assert root.children[0].name == "ns:b"

    def test_names_with_dots_and_dashes(self):
        root = parse_fragment("<a-b.c/>")
        assert root.name == "a-b.c"


class TestEntitiesAndSpecials:
    def test_predefined_entities_in_text(self):
        root = parse_fragment("<a>&lt;x&gt; &amp; &quot;y&quot; &apos;z&apos;</a>")
        assert root.string_value() == "<x> & \"y\" 'z'"

    def test_numeric_character_references(self):
        root = parse_fragment("<a>&#65;&#x42;</a>")
        assert root.string_value() == "AB"

    def test_entities_in_attributes(self):
        root = parse_fragment('<a x="&amp;&lt;"/>')
        assert root.attribute("x").value == "&<"

    def test_cdata_section(self):
        root = parse_fragment("<a><![CDATA[<not> & parsed]]></a>")
        assert root.string_value() == "<not> & parsed"

    def test_comments_skipped(self):
        root = parse_fragment("<a><!-- comment --><b/></a>")
        assert [c.name for c in root.child_elements()] == ["b"]

    def test_xml_declaration_and_doctype(self):
        root = parse_fragment(
            '<?xml version="1.0"?><!DOCTYPE a><a><b/></a>'
        )
        assert root.name == "a"

    def test_processing_instruction_in_content(self):
        root = parse_fragment("<a><?pi data?><b/></a>")
        assert [c.name for c in root.child_elements()] == ["b"]


class TestErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "<a>",  # missing end tag
            "<a></b>",  # mismatched tags
            "<a",  # truncated start tag
            "<a x=1/>",  # unquoted attribute
            "<a>&unknown;</a>",  # unknown entity
            "<a>&#xZZ;</a>",  # bad char reference
            "<a/><b/>",  # two roots
            "",  # empty
            "just text",  # no element
            '<a x="1" x="2"/>',  # duplicate attribute
            "<a><!-- unterminated </a>",
            "<a><![CDATA[ unterminated </a>",
        ],
    )
    def test_malformed_inputs_raise(self, text):
        with pytest.raises(XmlParseError):
            parse_fragment(text)

    def test_error_carries_position(self):
        with pytest.raises(XmlParseError) as excinfo:
            parse_fragment("<a>\n<b></c></a>")
        assert excinfo.value.line == 2


class TestRoundTrip:
    @pytest.mark.parametrize(
        "text",
        [
            "<a/>",
            "<a>text</a>",
            '<a x="1"><b>y</b><c/></a>',
            "<a>&lt;escaped&gt;</a>",
            '<Security id="s1"><Symbol>A&amp;B</Symbol></Security>',
        ],
    )
    def test_parse_serialize_parse_is_stable(self, text):
        once = serialize(parse_fragment(text))
        twice = serialize(parse_fragment(once))
        assert once == twice

    def test_parse_document_assigns_ids(self):
        doc = parse_document("<a><b/><c/></a>", doc_id=9)
        assert doc.doc_id == 9
        assert doc.nodes[0].kind is NodeKind.DOCUMENT
        assert doc.root.name == "a"
