"""Tests for the five configuration search algorithms."""

import pytest

from repro.core.benefit import ConfigurationEvaluator
from repro.core.candidates import enumerate_basic_candidates
from repro.core.generalization import generalize_candidates
from repro.core.search import (
    ALGORITHMS,
    dynamic_programming_search,
    greedy_search,
    greedy_search_with_heuristics,
    top_down_full,
    top_down_lite,
)
from repro.optimizer import Optimizer
from repro.storage.index import IndexValueType


@pytest.fixture()
def searchers_input(tpox_db, tpox_wl):
    optimizer = Optimizer(tpox_db)
    candidates = enumerate_basic_candidates(optimizer, tpox_wl)
    generalize_candidates(candidates)
    candidates.compute_sizes(tpox_db)
    evaluator = ConfigurationEvaluator(tpox_db, optimizer, tpox_wl)
    all_size = sum(c.size_bytes for c in candidates.basics())
    return candidates, evaluator, all_size


ALL_SEARCHERS = [
    greedy_search,
    greedy_search_with_heuristics,
    top_down_lite,
    top_down_full,
    dynamic_programming_search,
]


class TestCommonProperties:
    @pytest.mark.parametrize("searcher", ALL_SEARCHERS)
    def test_budget_respected(self, searchers_input, searcher):
        candidates, evaluator, all_size = searchers_input
        for fraction in (0.2, 0.5, 1.0):
            budget = int(all_size * fraction)
            result = searcher(candidates, evaluator, budget)
            assert result.size_bytes <= budget

    @pytest.mark.parametrize("searcher", ALL_SEARCHERS)
    def test_zero_budget_empty_config(self, searchers_input, searcher):
        candidates, evaluator, _ = searchers_input
        result = searcher(candidates, evaluator, 0)
        assert len(result.configuration) == 0
        assert result.benefit == 0.0

    @pytest.mark.parametrize("searcher", ALL_SEARCHERS)
    def test_nonnegative_benefit(self, searchers_input, searcher):
        candidates, evaluator, all_size = searchers_input
        result = searcher(candidates, evaluator, all_size)
        assert result.benefit >= 0.0

    @pytest.mark.parametrize("searcher", ALL_SEARCHERS)
    def test_result_metadata(self, searchers_input, searcher):
        candidates, evaluator, all_size = searchers_input
        result = searcher(candidates, evaluator, all_size // 2)
        assert result.elapsed_seconds >= 0
        assert result.optimizer_calls >= 0
        assert result.general_count + result.specific_count == len(
            result.configuration
        )
        assert result.algorithm in ALGORITHMS
        assert result.algorithm in result.summary()

    @pytest.mark.parametrize("searcher", ALL_SEARCHERS)
    def test_speedup_grows_with_budget(self, searchers_input, searcher):
        candidates, evaluator, all_size = searchers_input
        benefits = [
            searcher(candidates, evaluator, int(all_size * f)).benefit
            for f in (0.25, 0.5, 1.0)
        ]
        assert benefits == sorted(benefits)


class TestGreedyVsHeuristics:
    def test_heuristics_avoid_redundant_generals(self, searchers_input):
        """At a budget around the all-basic size, plain greedy may spend
        space on general indexes that duplicate chosen specifics; the
        heuristic search must not end up worse."""
        candidates, evaluator, all_size = searchers_input
        plain = greedy_search(candidates, evaluator, all_size)
        smart = greedy_search_with_heuristics(candidates, evaluator, all_size)
        assert smart.benefit >= plain.benefit - 1e-9

    def test_heuristics_conservative_about_generals(self, searchers_input):
        """Table IV: greedy-with-heuristics recommends (almost) no general
        indexes."""
        candidates, evaluator, all_size = searchers_input
        result = greedy_search_with_heuristics(candidates, evaluator, 2 * all_size)
        assert result.general_count <= 1

    def test_beta_zero_blocks_bigger_generals(self, searchers_input):
        candidates, evaluator, all_size = searchers_input
        strict = greedy_search_with_heuristics(
            candidates, evaluator, 2 * all_size, beta=0.0
        )
        loose = greedy_search_with_heuristics(
            candidates, evaluator, 2 * all_size, beta=10.0
        )
        assert strict.general_count <= loose.general_count


class TestTopDown:
    def test_recommends_generals_with_space(self, searchers_input):
        """Table IV: top down recommends more general indexes the more
        disk space it has."""
        candidates, evaluator, all_size = searchers_input
        small = top_down_lite(candidates, evaluator, int(all_size * 0.4))
        big = top_down_lite(candidates, evaluator, all_size * 4)
        assert big.general_count >= small.general_count
        assert big.general_count >= 1

    def test_full_and_lite_respect_budget(self, searchers_input):
        candidates, evaluator, all_size = searchers_input
        for budget in (all_size // 3, all_size, all_size * 3):
            for searcher in (top_down_lite, top_down_full):
                assert searcher(candidates, evaluator, budget).size_bytes <= budget

    def test_drops_zero_benefit_candidates(self, searchers_input):
        """Preprocessing removes candidates the optimizer never uses."""
        candidates, evaluator, all_size = searchers_input
        result = top_down_full(candidates, evaluator, all_size * 10)
        for chosen in result.configuration:
            assert evaluator.standalone_benefit(chosen) > 0

    def test_full_makes_more_optimizer_calls_than_lite(self, tpox_db, tpox_wl):
        """With cold caches, full's per-step configuration evaluations
        cost more optimizer calls than lite's standalone sums."""
        candidates, evaluator, all_size = None, None, None
        results = {}
        for searcher in (top_down_lite, top_down_full):
            optimizer = Optimizer(tpox_db)
            candidates = enumerate_basic_candidates(optimizer, tpox_wl)
            generalize_candidates(candidates)
            candidates.compute_sizes(tpox_db)
            evaluator = ConfigurationEvaluator(tpox_db, optimizer, tpox_wl)
            all_size = sum(c.size_bytes for c in candidates.basics())
            results[searcher] = searcher(
                candidates, evaluator, int(all_size * 0.5)
            )
        assert (
            results[top_down_full].optimizer_calls
            >= results[top_down_lite].optimizer_calls
        )


class TestDynamicProgramming:
    def test_dp_at_least_greedy_on_standalone_objective(self, searchers_input):
        """DP is exact for the interaction-free knapsack, so its sum of
        standalone benefits must match or beat greedy's."""
        candidates, evaluator, all_size = searchers_input
        for fraction in (0.3, 0.6, 1.0):
            budget = int(all_size * fraction)
            dp = dynamic_programming_search(candidates, evaluator, budget)
            greedy = greedy_search(candidates, evaluator, budget)
            dp_standalone = sum(
                evaluator.standalone_benefit(c) for c in dp.configuration
            )
            greedy_standalone = sum(
                evaluator.standalone_benefit(c) for c in greedy.configuration
            )
            assert dp_standalone >= greedy_standalone - 1e-9

    def test_dp_respects_quantized_budget(self, searchers_input):
        candidates, evaluator, all_size = searchers_input
        result = dynamic_programming_search(candidates, evaluator, all_size // 2)
        assert result.size_bytes <= all_size // 2


class TestRegistry:
    def test_all_algorithms_registered(self):
        assert set(ALGORITHMS) == {
            "greedy",
            "greedy_heuristics",
            "topdown_lite",
            "topdown_full",
            "dp",
            "exhaustive",
            "ilp",
        }


class TestExhaustiveOracle:
    """Exhaustive search as ground truth on a small candidate pool."""

    @pytest.fixture()
    def small_input(self, security_db):
        from repro.core.candidates import enumerate_basic_candidates
        from repro.query import Workload

        workload = Workload.from_statements(
            [
                """for $s in X('SDOC')/Security where $s/Symbol = "SYM003" return $s""",
                """for $s in X('SDOC')/Security[Yield>4.5]
                   where $s/SecInfo/*/Sector = "Energy" return $s""",
                """for $s in X('SDOC')/Security where $s/Yield < 2 return $s""",
            ]
        )
        optimizer = Optimizer(security_db)
        candidates = enumerate_basic_candidates(optimizer, workload)
        generalize_candidates(candidates)
        candidates.compute_sizes(security_db)
        evaluator = ConfigurationEvaluator(security_db, optimizer, workload)
        all_size = sum(c.size_bytes for c in candidates.basics())
        return candidates, evaluator, all_size

    def test_exhaustive_respects_budget(self, small_input):
        from repro.core.search import exhaustive_search

        candidates, evaluator, all_size = small_input
        result = exhaustive_search(candidates, evaluator, all_size // 2)
        assert result.size_bytes <= all_size // 2

    def test_no_algorithm_beats_exhaustive(self, small_input):
        from repro.core.search import exhaustive_search

        candidates, evaluator, all_size = small_input
        for budget in (all_size // 2, all_size):
            optimum = exhaustive_search(candidates, evaluator, budget)
            for name, searcher in ALGORITHMS.items():
                if name == "exhaustive":
                    continue
                result = searcher(candidates, evaluator, budget)
                assert result.benefit <= optimum.benefit + 1e-9, name

    def test_heuristics_near_optimal_here(self, small_input):
        from repro.core.search import exhaustive_search

        candidates, evaluator, all_size = small_input
        optimum = exhaustive_search(candidates, evaluator, all_size)
        heuristic = greedy_search_with_heuristics(candidates, evaluator, all_size)
        assert heuristic.benefit >= 0.9 * optimum.benefit

    def test_limit_enforced(self, searchers_input):
        from repro.core.search import EXHAUSTIVE_LIMIT, exhaustive_search

        candidates, evaluator, all_size = searchers_input
        if len(list(candidates)) <= EXHAUSTIVE_LIMIT:
            pytest.skip("candidate set unexpectedly small")
        with pytest.raises(ValueError):
            exhaustive_search(candidates, evaluator, all_size)
