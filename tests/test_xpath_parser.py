"""Tests for the XPath lexer and parser."""

import pytest

from repro.xpath.ast import (
    Axis,
    ComparisonPredicate,
    ExistsPredicate,
    Literal,
    LocationPath,
    Step,
)
from repro.xpath.lexer import TokenKind, XPathLexError, tokenize
from repro.xpath.parser import XPathSyntaxError, parse_comparison, parse_xpath


class TestLexer:
    def test_separators(self):
        kinds = [t.kind for t in tokenize("/a//b")]
        assert kinds == [
            TokenKind.SLASH,
            TokenKind.NAME,
            TokenKind.DOUBLE_SLASH,
            TokenKind.NAME,
            TokenKind.END,
        ]

    def test_operators(self):
        texts = [t.text for t in tokenize("a<=b") if t.kind is TokenKind.OP]
        assert texts == ["<="]
        texts = [t.text for t in tokenize("a!=b") if t.kind is TokenKind.OP]
        assert texts == ["!="]

    def test_string_literals(self):
        tokens = tokenize("'hello world'")
        assert tokens[0].kind is TokenKind.STRING
        assert tokens[0].text == "hello world"

    def test_number_literal(self):
        tokens = tokenize("4.5")
        assert tokens[0].kind is TokenKind.NUMBER
        assert tokens[0].text == "4.5"

    def test_negative_number(self):
        tokens = tokenize("-3")
        assert tokens[0].kind is TokenKind.NUMBER

    def test_unterminated_string_raises(self):
        with pytest.raises(XPathLexError):
            tokenize("'oops")

    def test_bare_bang_raises(self):
        with pytest.raises(XPathLexError):
            tokenize("a!b")


class TestPathParsing:
    def test_absolute_child_path(self):
        path = parse_xpath("/Security/Symbol")
        assert path.absolute
        assert [s.name_test for s in path.steps] == ["Security", "Symbol"]
        assert all(s.axis is Axis.CHILD for s in path.steps)

    def test_descendant_axis(self):
        path = parse_xpath("//Yield")
        assert path.steps[0].axis is Axis.DESCENDANT

    def test_mixed_axes(self):
        path = parse_xpath("/a//b/c")
        assert [s.axis for s in path.steps] == [
            Axis.CHILD,
            Axis.DESCENDANT,
            Axis.CHILD,
        ]

    def test_wildcard(self):
        path = parse_xpath("/Security/*/Sector")
        assert path.steps[1].is_wildcard

    def test_attribute_step(self):
        path = parse_xpath("/Order/@ID")
        assert path.steps[-1].name_test == "@ID"
        assert path.steps[-1].is_attribute

    def test_attribute_must_be_last(self):
        with pytest.raises((XPathSyntaxError, ValueError)):
            parse_xpath("/Order/@ID/x")

    def test_relative_path(self):
        path = parse_xpath("SecInfo/Sector")
        assert not path.absolute
        assert len(path.steps) == 2

    def test_dot_is_empty_relative(self):
        path = parse_xpath(".")
        assert not path.absolute
        assert path.steps == ()

    def test_roundtrip_str(self):
        for text in ["/a/b", "//a", "/a//b/*", "/a/@id", "a/b"]:
            assert str(parse_xpath(text)) == text


class TestPredicates:
    def test_comparison_predicate(self):
        path = parse_xpath("/Security[Yield>4.5]")
        (pred,) = path.steps[0].predicates
        assert isinstance(pred, ComparisonPredicate)
        assert pred.op == ">"
        assert pred.literal == Literal(4.5)
        assert str(pred.path) == "Yield"

    def test_string_comparison(self):
        path = parse_xpath('/Security[Symbol="IBM"]')
        (pred,) = path.steps[0].predicates
        assert pred.literal == Literal("IBM")
        assert not pred.literal.is_number

    def test_exists_predicate(self):
        path = parse_xpath("/Security[SecInfo]")
        (pred,) = path.steps[0].predicates
        assert isinstance(pred, ExistsPredicate)

    def test_predicate_with_nested_path(self):
        path = parse_xpath('/Security[SecInfo/*/Sector="Energy"]')
        (pred,) = path.steps[0].predicates
        assert str(pred.path) == "SecInfo/*/Sector"

    def test_multiple_predicates_on_step(self):
        path = parse_xpath('/Security[Yield>4.5][Symbol="A"]')
        assert len(path.steps[0].predicates) == 2

    def test_predicate_at_middle_step(self):
        path = parse_xpath("/a/b[c=1]/d")
        assert path.steps[1].predicates

    def test_attribute_in_predicate(self):
        path = parse_xpath('/Order[@ID="7"]')
        (pred,) = path.steps[0].predicates
        assert str(pred.path) == "@ID"

    def test_without_predicates_strips(self):
        path = parse_xpath("/Security[Yield>4.5]/Symbol")
        stripped = path.without_predicates()
        assert not stripped.has_predicates()
        assert str(stripped) == "/Security/Symbol"

    def test_predicates_must_be_relative(self):
        with pytest.raises(XPathSyntaxError):
            parse_xpath("/a[/b=1]")


class TestParseComparison:
    def test_comparison_expression(self):
        path, op, literal = parse_comparison("/Security/Yield >= 4.5")
        assert str(path) == "/Security/Yield"
        assert op == ">="
        assert literal == Literal(4.5)

    def test_missing_operator_raises(self):
        with pytest.raises(XPathSyntaxError):
            parse_comparison("/Security/Yield")

    def test_trailing_garbage_raises(self):
        with pytest.raises(XPathSyntaxError):
            parse_comparison("/a = 1 extra")


class TestAstInvariants:
    def test_concat(self):
        base = parse_xpath("/Security")
        rel = parse_xpath("SecInfo/Sector")
        joined = base.concat(rel)
        assert str(joined) == "/Security/SecInfo/Sector"

    def test_concat_absolute_rejected(self):
        with pytest.raises(ValueError):
            parse_xpath("/a").concat(parse_xpath("/b"))

    def test_bad_operator_rejected(self):
        with pytest.raises(ValueError):
            ComparisonPredicate(
                LocationPath((), absolute=False), "~", Literal(1.0)
            )

    def test_literal_str_forms(self):
        assert str(Literal(4.0)) == "4"
        assert str(Literal(4.5)) == "4.5"
        assert str(Literal("x")) == '"x"'
