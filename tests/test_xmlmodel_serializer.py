"""Tests for the XML serializer, including property-based round trips."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.xmlmodel import parse_fragment, serialize
from repro.xmlmodel.nodes import NodeKind, XmlNode, element


class TestBasics:
    def test_empty_element_self_closes(self):
        assert serialize(element("a")) == "<a/>"

    def test_text_content(self):
        assert serialize(element("a", text="hi")) == "<a>hi</a>"

    def test_attributes(self):
        assert serialize(element("a", x="1")) == '<a x="1"/>'

    def test_escaping_text(self):
        node = element("a", text="<&>")
        assert serialize(node) == "<a>&lt;&amp;&gt;</a>"

    def test_escaping_attribute_quotes(self):
        node = element("a", x='say "hi" & go')
        assert '&quot;' in serialize(node)
        assert "&amp;" in serialize(node)

    def test_nested(self):
        node = element("a", element("b", text="x"), element("c"))
        assert serialize(node) == "<a><b>x</b><c/></a>"

    def test_document_node(self):
        from repro.xmlmodel.nodes import XmlDocument

        doc = XmlDocument(element("a", element("b")))
        assert serialize(doc.document_node) == "<a><b/></a>"

    def test_attribute_node_alone(self):
        node = element("a", x="1")
        assert serialize(node.attributes[0]) == 'x="1"'

    def test_pretty_indents(self):
        node = element("a", element("b", element("c")))
        text = serialize(node, pretty=True)
        lines = text.splitlines()
        assert lines[0] == "<a>"
        assert lines[1].startswith("  <b>")


# ---------------------------------------------------------------------------
# Property-based: parse(serialize(tree)) == tree
# ---------------------------------------------------------------------------

NAMES = st.sampled_from(["a", "b", "c", "item", "ns:x"])
TEXTS = st.text(
    alphabet=st.characters(
        blacklist_categories=("Cs", "Cc"), max_codepoint=0x2FF
    ),
    min_size=1,
    max_size=12,
).filter(lambda t: t.strip())
ATTR_VALUES = st.text(
    alphabet=st.characters(blacklist_categories=("Cs", "Cc"), max_codepoint=0x2FF),
    max_size=10,
)


@st.composite
def trees(draw, depth=3):
    node = XmlNode(NodeKind.ELEMENT, name=draw(NAMES))
    for attr_name in draw(st.lists(st.sampled_from(["p", "q"]), max_size=2, unique=True)):
        node.set_attribute(attr_name, draw(ATTR_VALUES))
    if depth > 0:
        for __ in range(draw(st.integers(0, 3))):
            if draw(st.booleans()):
                node.append_child(draw(trees(depth=depth - 1)))
            else:
                node.append_child(XmlNode(NodeKind.TEXT, value=draw(TEXTS)))
    return node


def canonical(node: XmlNode):
    """Structure-equality key: whitespace-only text dropped and adjacent
    text nodes coalesced (parsing merges them, as any XML parser does)."""
    if node.kind is NodeKind.TEXT:
        return ("text", node.value)
    children = []
    for child in node.children:
        if child.kind is NodeKind.TEXT:
            if not (child.value or "").strip():
                continue
            if children and children[-1][0] == "text":
                children[-1] = ("text", children[-1][1] + (child.value or ""))
                continue
            children.append(("text", child.value or ""))
        else:
            children.append(canonical(child))
    return (
        "element",
        node.name,
        tuple(sorted((a.name, a.value) for a in node.attributes)),
        tuple(children),
    )


@given(tree=trees())
@settings(max_examples=200, deadline=None)
def test_serialize_parse_round_trip(tree):
    text = serialize(tree)
    reparsed = parse_fragment(text)
    assert canonical(reparsed) == canonical(tree)


@given(tree=trees())
@settings(max_examples=100, deadline=None)
def test_serialization_is_deterministic(tree):
    assert serialize(tree) == serialize(tree)
