"""Edge cases and failure-mode tests across the stack."""

import pytest

from repro import (
    Database,
    Executor,
    IndexAdvisor,
    IndexDefinition,
    IndexValueType,
    Optimizer,
    OptimizerMode,
    Workload,
)
from repro.core.benefit import ConfigurationEvaluator
from repro.core.config import IndexConfiguration
from repro.query import parse_statement
from repro.xpath import parse_pattern


class TestEmptyWorlds:
    def test_advisor_on_empty_workload(self, security_db):
        advisor = IndexAdvisor(security_db, Workload())
        recommendation = advisor.recommend(budget_bytes=10_000)
        assert len(recommendation.configuration) == 0
        assert recommendation.estimated_speedup == pytest.approx(1.0)

    def test_advisor_on_empty_collection(self):
        db = Database()
        db.create_collection("E")
        workload = Workload.from_statements(
            ["for $x in C('E')/a where $x/b = 1 return $x"]
        )
        advisor = IndexAdvisor(db, workload)
        recommendation = advisor.recommend(budget_bytes=10_000)
        # the pattern is enumerated, but an index on no data has no size
        # and no benefit
        assert recommendation.search.size_bytes == 0

    def test_query_on_empty_collection(self):
        db = Database()
        db.create_collection("E")
        result = Executor(db).execute(
            parse_statement("for $x in C('E')/a where $x/b = 1 return $x")
        )
        assert result.rows == 0
        assert result.docs_examined == 0

    def test_optimizer_unknown_collection(self, security_db):
        statement = parse_statement("COLLECTION('NOPE')/a")
        with pytest.raises(KeyError):
            Optimizer(security_db).optimize(statement)

    def test_workload_only_updates(self, security_db):
        workload = Workload.from_statements(
            ["insert into SDOC value '<Security/>'"]
        )
        advisor = IndexAdvisor(security_db, workload)
        recommendation = advisor.recommend(budget_bytes=10_000)
        assert len(recommendation.configuration) == 0


class TestBudgetEdges:
    def test_negative_budget_like_zero(self, tpox_advisor):
        recommendation = tpox_advisor.recommend(budget_bytes=-5)
        assert len(recommendation.configuration) == 0

    def test_budget_smaller_than_any_index(self, tpox_advisor):
        recommendation = tpox_advisor.recommend(budget_bytes=10)
        assert len(recommendation.configuration) == 0

    def test_enormous_budget_finite_config(self, tpox_advisor):
        recommendation = tpox_advisor.recommend(budget_bytes=10**12)
        assert len(recommendation.configuration) <= len(tpox_advisor.candidates)


class TestDegenerateQueries:
    def test_predicate_no_match_in_data(self, security_db):
        result = Executor(security_db).execute(
            parse_statement(
                'for $s in X(\'SDOC\')/Security where $s/Symbol = "ZZZZZ" return $s'
            )
        )
        assert result.rows == 0

    def test_predicate_on_missing_path(self, security_db):
        statement = parse_statement(
            "for $s in X('SDOC')/Security where $s/No/Such/Path = 1 return $s"
        )
        assert Executor(security_db).execute(statement).rows == 0
        # and the optimizer survives costing it with a virtual index on it
        optimizer = Optimizer(security_db)
        definition = IndexDefinition(
            "v", "SDOC", parse_pattern("/Security/No/Such/Path"),
            IndexValueType.NUMERIC, virtual=True,
        )
        result = optimizer.optimize(statement, OptimizerMode.EVALUATE, [definition])
        assert result.estimated_cost >= 0

    def test_contradictory_predicates(self, security_db):
        statement = parse_statement(
            "for $s in X('SDOC')/Security where $s/Yield > 5 and $s/Yield < 1 return $s"
        )
        assert Executor(security_db).execute(statement).rows == 0

    def test_same_path_range_conjunction(self, security_db):
        statement = parse_statement(
            "for $s in X('SDOC')/Security where $s/Yield >= 2.5 and $s/Yield <= 4.5 return $s"
        )
        result = Executor(security_db).execute(statement, collect_output=True)
        assert result.rows > 0


class TestEvaluatorEdges:
    def test_benefit_of_foreign_collection_candidate(self, security_db):
        from repro.core.candidates import CandidateIndex

        workload = Workload.from_statements(
            ["for $s in X('SDOC')/Security where $s/Yield > 5 return $s"]
        )
        evaluator = ConfigurationEvaluator(
            security_db, Optimizer(security_db), workload
        )
        foreign = CandidateIndex(
            parse_pattern("/Other/Thing"), IndexValueType.STRING, "OTHER"
        )
        foreign.size_bytes = 10
        # never crashes; contributes nothing
        assert evaluator.benefit(IndexConfiguration([foreign])) == 0.0

    def test_duplicate_candidates_in_config_collapse(self, tpox_advisor):
        candidates = tpox_advisor.candidates.basics()
        config = IndexConfiguration([candidates[0], candidates[0]])
        assert len(config) == 1

    def test_speedup_of_empty_config_is_one(self, tpox_advisor):
        evaluator = tpox_advisor.evaluator
        assert evaluator.estimated_speedup(IndexConfiguration()) == pytest.approx(1.0)


class TestIndexEdges:
    def test_index_on_pattern_matching_nothing(self, security_db):
        index = security_db.create_index(
            IndexDefinition(
                "inone", "SDOC", parse_pattern("/No/Match"), IndexValueType.STRING
            )
        )
        try:
            assert index.entry_count() == 0
            assert index.size_bytes() == 0
            assert index.lookup_eq("x") == []
        finally:
            security_db.drop_index("inone")

    def test_reinserting_same_document_text_separate_entries(self):
        db = Database()
        db.create_collection("C")
        index = db.create_index(
            IndexDefinition("i", "C", parse_pattern("/a/v"), IndexValueType.NUMERIC)
        )
        db.insert_document("C", "<a><v>1</v></a>")
        db.insert_document("C", "<a><v>1</v></a>")
        assert index.entry_count() == 2
        assert len(index.lookup_eq(1.0)) == 2
