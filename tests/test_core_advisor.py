"""End-to-end tests for the IndexAdvisor front end."""

import pytest

from repro import Database, Executor, IndexAdvisor, Workload
from repro.core.config import IndexConfiguration
from repro.query import parse_statement
from repro.workloads import tpox


class TestRecommendation:
    def test_recommendation_structure(self, tpox_advisor):
        rec = tpox_advisor.recommend(budget_bytes=30_000, algorithm="greedy_heuristics")
        assert rec.search.size_bytes <= 30_000
        assert rec.estimated_speedup >= 1.0
        assert rec.workload_cost_after <= rec.workload_cost_before
        assert len(rec.ddl) == len(rec.configuration)
        for stmt in rec.ddl:
            assert stmt.startswith("CREATE INDEX")
        report = rec.report()
        assert "Estimated speedup" in report
        assert "greedy_heuristics" in report

    def test_unknown_algorithm_rejected(self, tpox_advisor):
        with pytest.raises(ValueError):
            tpox_advisor.recommend(budget_bytes=1000, algorithm="quantum")

    def test_all_algorithms_run(self, tpox_advisor):
        for algorithm in ("greedy", "greedy_heuristics", "topdown_lite",
                          "topdown_full", "dp"):
            rec = tpox_advisor.recommend(budget_bytes=25_000, algorithm=algorithm)
            assert rec.search.algorithm == algorithm

    def test_all_index_configuration(self, tpox_advisor):
        config = tpox_advisor.all_index_configuration()
        assert len(config) == len(tpox_advisor.candidates.basics())
        assert config.general_count() == 0

    def test_generalize_flag_off(self, tpox_db, tpox_wl):
        advisor = IndexAdvisor(tpox_db, tpox_wl, generalize=False)
        assert advisor.candidates.generals() == []

    def test_big_budget_approaches_all_index(self, tpox_advisor):
        all_cfg = tpox_advisor.all_index_configuration()
        all_speedup = tpox_advisor.evaluate_configuration(all_cfg)
        rec = tpox_advisor.recommend(
            budget_bytes=all_cfg.size_bytes(), algorithm="greedy_heuristics"
        )
        assert rec.estimated_speedup == pytest.approx(all_speedup, rel=0.15)


class TestMaterialization:
    def make_advisor(self):
        db = tpox.build_database(
            num_securities=60, num_orders=60, num_customers=30, seed=3
        )
        workload = tpox.tpox_workload(num_securities=60, seed=3)
        return IndexAdvisor(db, workload), db, workload

    def test_create_and_drop_indexes(self):
        advisor, db, _ = self.make_advisor()
        rec = advisor.recommend(budget_bytes=50_000, algorithm="greedy_heuristics")
        names = advisor.create_indexes(rec)
        assert len(names) == len(rec.configuration)
        for name in names:
            assert db.index(name).entry_count() >= 0
            assert not db.catalog.get(name).virtual
        advisor.drop_created_indexes()
        for name in names:
            assert name not in db.catalog

    def test_recommended_indexes_actually_used(self):
        """Tight coupling promise: recommended indexes appear in real
        execution plans."""
        advisor, db, workload = self.make_advisor()
        rec = advisor.recommend(budget_bytes=100_000, algorithm="greedy_heuristics")
        advisor.create_indexes(rec)
        executor = Executor(db)
        used = set()
        for entry in workload.queries():
            used.update(executor.execute(entry.statement).used_indexes)
        assert used  # at least some queries ran on recommended indexes

    def test_actual_speedup_positive(self):
        """Executing with the recommended configuration must examine far
        fewer documents than without."""
        advisor, db, workload = self.make_advisor()
        executor = Executor(db)
        docs_before = sum(
            executor.execute(e.statement).docs_examined
            for e in workload.queries()
        )
        rec = advisor.recommend(budget_bytes=100_000, algorithm="greedy_heuristics")
        advisor.create_indexes(rec)
        executor_after = Executor(db)
        docs_after = sum(
            executor_after.execute(e.statement).docs_examined
            for e in workload.queries()
        )
        assert docs_after < docs_before / 2

    def test_results_unchanged_by_recommendation(self):
        advisor, db, workload = self.make_advisor()
        executor = Executor(db)
        before = [
            sorted(executor.execute(e.statement, collect_output=True).output)
            for e in workload.queries()
        ]
        rec = advisor.recommend(budget_bytes=100_000, algorithm="topdown_full")
        advisor.create_indexes(rec)
        executor_after = Executor(db)
        after = [
            sorted(executor_after.execute(e.statement, collect_output=True).output)
            for e in workload.queries()
        ]
        assert before == after


class TestUpdateAwareness:
    def test_update_heavy_workload_shrinks_recommendation(self):
        db = tpox.build_database(
            num_securities=60, num_orders=60, num_customers=30, seed=3
        )
        queries = tpox.tpox_workload(num_securities=60, seed=3)
        read_only_rec = IndexAdvisor(db, queries).recommend(
            budget_bytes=200_000, algorithm="greedy_heuristics"
        )
        churny = tpox.tpox_workload(
            num_securities=60, seed=3, include_updates=True,
            update_frequency=500.0,
        )
        churny_rec = IndexAdvisor(db, churny).recommend(
            budget_bytes=200_000, algorithm="greedy_heuristics"
        )
        assert len(churny_rec.configuration) <= len(read_only_rec.configuration)
