"""System-level property-based tests.

These encode the contracts the whole reproduction leans on:

* adding a virtual index never makes the optimizer's estimate worse;
* the efficient benefit evaluation equals naive whole-workload evaluation
  for arbitrary configurations;
* execution results are invariant under arbitrary subsets of the
  recommended indexes.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import Database, Executor, IndexAdvisor, Optimizer, OptimizerMode, Workload
from repro.core.benefit import ConfigurationEvaluator
from repro.core.config import IndexConfiguration
from repro.workloads import tpox

# ---------------------------------------------------------------------------
# Shared small world (module scope keeps hypothesis fast)
# ---------------------------------------------------------------------------


@pytest.fixture(scope="module")
def world():
    db = tpox.build_database(
        num_securities=60, num_orders=40, num_customers=20, seed=17
    )
    workload = tpox.tpox_workload(num_securities=60, seed=17)
    advisor = IndexAdvisor(db, workload)
    candidates = list(advisor.candidates)
    return db, workload, advisor, candidates


SUBSET = st.lists(st.integers(min_value=0, max_value=200), max_size=6)


def pick(candidates, indices):
    return [candidates[i % len(candidates)] for i in indices]


@given(indices=SUBSET, extra=st.integers(min_value=0, max_value=200))
@settings(
    max_examples=60,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_adding_virtual_index_never_hurts(world, indices, extra):
    """EVALUATE-mode estimates are monotone: a superset of virtual indexes
    never yields a more expensive plan for any query."""
    db, workload, advisor, candidates = world
    optimizer = advisor.optimizer
    base_candidates = pick(candidates, indices)
    bigger = base_candidates + [candidates[extra % len(candidates)]]
    base_defs = [c.definition(f"a{i}") for i, c in enumerate(base_candidates)]
    bigger_defs = [c.definition(f"b{i}") for i, c in enumerate(bigger)]
    for entry in workload.queries()[:4]:
        cost_base = optimizer.optimize(
            entry.statement, OptimizerMode.EVALUATE, base_defs
        ).estimated_cost
        cost_bigger = optimizer.optimize(
            entry.statement, OptimizerMode.EVALUATE, bigger_defs
        ).estimated_cost
        assert cost_bigger <= cost_base + 1e-9


@given(indices=SUBSET)
@settings(
    max_examples=30,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_fast_benefit_equals_naive(world, indices):
    db, workload, __, candidates = world
    config = IndexConfiguration(pick(candidates, indices))
    fast = ConfigurationEvaluator(db, Optimizer(db), workload)
    naive = ConfigurationEvaluator(db, Optimizer(db), workload, naive=True)
    assert fast.benefit(config) == pytest.approx(naive.benefit(config))


@given(indices=SUBSET)
@settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.function_scoped_fixture],
)
def test_execution_results_invariant_under_indexes(world, indices):
    """Whatever subset of candidate indexes is physically built, every
    query returns exactly the same rows."""
    db, workload, __, candidates = world
    chosen = {c.key: c for c in pick(candidates, indices)}.values()
    names = []
    try:
        for i, candidate in enumerate(chosen):
            name = db.catalog.fresh_name("prop")
            db.create_index(candidate.definition(name, virtual=False))
            names.append(name)
        executor = Executor(db)
        for entry in workload.queries()[:5]:
            result = executor.execute(entry.statement, collect_output=True)
            baseline = _baseline_outputs(db, entry.statement)
            assert sorted(result.output) == baseline
    finally:
        for name in names:
            db.drop_index(name)


_BASELINE_CACHE = {}


def _baseline_outputs(db, statement):
    key = statement.describe()
    if key not in _BASELINE_CACHE:
        bare = Database("baseline")
        # reuse the same collections (read-only) but no indexes
        bare.collections = db.collections
        _BASELINE_CACHE[key] = sorted(
            Executor(bare).execute(statement, collect_output=True).output
        )
    return _BASELINE_CACHE[key]
