"""Differential harness pinning the parallel engine to the serial one.

The contract (ISSUE PR 4): for every worker count and executor,
``IndexAdvisor.recommend()`` through a :class:`ParallelWhatIfSession`
must be **bit-identical** to the serial :class:`WhatIfSession` run --
same configuration, same costs, same instrumentation counters -- with
only timing and the scheduling-dependent ``workers`` stats block
excluded.  Every run builds its own database from the same seed so
catalog name counters match too.
"""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.advisor import IndexAdvisor
from repro.optimizer.session import WhatIfSession
from repro.parallel import ParallelWhatIfSession
from repro.query.workload import Workload
from repro.workloads import synthetic, tpox, xmark

BUDGET = 250_000

#: Fields that legitimately differ between runs: wall-clock timing, the
#: per-worker scheduling stats, the storage-engine counters (process
#: workers rebuild summaries in their own database copies, so the
#: parent's rebuild counter depends on the executor kind), and the
#: snapshot-engine cache counters (only sessions that shipped a process
#: pool have them at all).
TIMING_KEYS = ("elapsed_seconds",)
SESSION_TIMING_KEYS = ("phase_seconds", "workers", "storage", "snapshots")

#: The matrix the ISSUE pins: serial session, then 1/2/4 workers.
WORKER_COUNTS = (None, 1, 2, 4)


def normalized(recommendation) -> dict:
    """``to_dict()`` minus timing and worker-scheduling fields."""
    data = recommendation.to_dict()
    for key in TIMING_KEYS:
        data.pop(key, None)
    session = dict(data.get("session", {}))
    for key in SESSION_TIMING_KEYS:
        session.pop(key, None)
    data["session"] = session
    return data


def build_tpox():
    db = tpox.build_database(
        num_securities=40, num_orders=40, num_customers=20, seed=7
    )
    return db, tpox.tpox_workload(num_securities=40, seed=7)


def build_synthetic():
    db = tpox.build_database(
        num_securities=40, num_orders=40, num_customers=20, seed=7
    )
    workload = Workload([])
    for query in synthetic.random_path_queries(db, "SDOC", 8, seed=5):
        workload.add(query)
    return db, workload


def build_xmark():
    db = xmark.build_database(
        num_items=30, num_persons=30, num_auctions=30, seed=7
    )
    return db, xmark.xmark_workload(seed=7)


BENCHMARKS = {
    "tpox": build_tpox,
    "synthetic": build_synthetic,
    "xmark": build_xmark,
}


def run_recommendation(
    build, workers, algorithm="topdown_full", executor="thread", **kwargs
):
    """One full advisor run over a freshly built database."""
    database, workload = build()
    if workers is None:
        session = WhatIfSession(database)
    else:
        session = ParallelWhatIfSession(
            database, workers=workers, executor=executor, **kwargs
        )
    advisor = IndexAdvisor(database, workload, session=session)
    try:
        return normalized(advisor.recommend(BUDGET, algorithm=algorithm))
    finally:
        session.close()


@pytest.mark.parametrize("bench_name", sorted(BENCHMARKS))
def test_worker_counts_are_bit_identical(bench_name):
    build = BENCHMARKS[bench_name]
    baseline = run_recommendation(build, None)
    for workers in WORKER_COUNTS[1:]:
        assert run_recommendation(build, workers) == baseline, (
            f"{bench_name}: workers={workers} diverged from serial"
        )


@pytest.mark.parametrize(
    "algorithm", ["greedy", "greedy_heuristics", "dp", "topdown_lite"]
)
def test_algorithms_are_bit_identical_at_two_workers(algorithm):
    build = BENCHMARKS["tpox"]
    serial = run_recommendation(build, None, algorithm=algorithm)
    parallel = run_recommendation(build, 2, algorithm=algorithm)
    assert parallel == serial


@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
def test_executors_are_bit_identical(executor):
    """Every executor kind -- including a real process pool with snapshot
    shipping -- reproduces the serial recommendation."""
    build = BENCHMARKS["tpox"]
    baseline = run_recommendation(build, None)
    assert run_recommendation(build, 2, executor=executor) == baseline


def test_counters_match_serial_exactly():
    """Spell out the counter identity (the subtle part of the contract)
    rather than relying only on the dict comparison."""
    build = BENCHMARKS["tpox"]
    serial = run_recommendation(build, None)
    parallel = run_recommendation(build, 4, min_batch=1)
    for key in (
        "optimizer_calls",
        "cache_hits",
        "cache_misses",
        "benefit",
        "workload_cost_before",
        "workload_cost_after",
    ):
        assert parallel[key] == serial[key], key
    assert parallel["session"] == serial["session"]


def test_recommendation_is_json_serializable_with_workers():
    build = BENCHMARKS["tpox"]
    database, workload = build()
    advisor = IndexAdvisor(database, workload, workers=2, executor="thread")
    try:
        recommendation = advisor.recommend(BUDGET)
        payload = json.loads(json.dumps(recommendation.to_dict()))
    finally:
        advisor.session.close()
    workers = payload["session"]["workers"]
    assert workers["requested"] == 2
    assert workers["executor"] == "thread"
    assert workers["parallel_tasks"] >= 0
    assert workers["pool_failures"] == 0


#: Mid-run DML applied between two advisor runs over one session: an
#: insert into SDOC and the delete of its first document.  Statistics
#: absorb both as synopsis deltas; the session invalidates only the
#: SDOC-dependent cache entries (epoch-scoped).
def _apply_dml(database):
    database.insert_document(
        "SDOC",
        "<Security><Symbol>ZZ9999</Symbol><Yield>9.9</Yield></Security>",
    )
    database.delete_document("SDOC", 0)


def run_recommendation_after_dml(build, workers, executor="thread"):
    """Two advisor runs over ONE session with DML in between; returns both
    normalized recommendations."""
    database, workload = build()
    if workers is None:
        session = WhatIfSession(database)
    else:
        session = ParallelWhatIfSession(
            database, workers=workers, executor=executor
        )
    try:
        first = normalized(
            IndexAdvisor(database, workload, session=session).recommend(BUDGET)
        )
        _apply_dml(database)
        second = normalized(
            IndexAdvisor(database, workload, session=session).recommend(BUDGET)
        )
        return first, second
    finally:
        session.close()


def test_mid_run_dml_stays_bit_identical_across_workers():
    """After DML lands between two runs on the same session -- delta
    statistics, epoch-scoped invalidation, stale-snapshot drop -- every
    worker count still reproduces the serial pair exactly."""
    build = BENCHMARKS["tpox"]
    baseline = run_recommendation_after_dml(build, None)
    assert baseline[0] != baseline[1]  # the DML must actually matter
    for workers in WORKER_COUNTS[1:]:
        assert run_recommendation_after_dml(build, workers) == baseline, (
            f"workers={workers} diverged from serial after mid-run DML"
        )


@pytest.mark.parametrize("executor", ["serial", "thread", "process"])
def test_mid_run_dml_executors_are_bit_identical(executor):
    build = BENCHMARKS["tpox"]
    baseline = run_recommendation_after_dml(build, None)
    assert run_recommendation_after_dml(build, 2, executor=executor) == baseline


# ---------------------------------------------------------------------------
# Property: random workloads and budgets, parallel == serial
# ---------------------------------------------------------------------------

_PROPERTY_DB = tpox.build_database(
    num_securities=16, num_orders=16, num_customers=8, seed=11
)
_PROPERTY_WL = tpox.tpox_workload(num_securities=16, seed=11)


@settings(max_examples=12, deadline=None)
@given(
    picks=st.lists(
        st.integers(min_value=0, max_value=len(_PROPERTY_WL.entries) - 1),
        min_size=1,
        max_size=6,
    ),
    budget=st.integers(min_value=10_000, max_value=500_000),
    workers=st.sampled_from([1, 2, 4]),
    algorithm=st.sampled_from(["greedy", "topdown_full"]),
)
def test_random_workloads_parallel_equals_serial(
    picks, budget, workers, algorithm
):
    """For ANY workload subset (duplicates allowed -- they exercise the
    cache-hit accounting) and ANY disk budget, the parallel session's
    costs and counters equal the serial session's."""
    entries = [_PROPERTY_WL.entries[i] for i in picks]

    def run(session_factory):
        database = tpox.build_database(
            num_securities=16, num_orders=16, num_customers=8, seed=11
        )
        session = session_factory(database)
        advisor = IndexAdvisor(
            database, Workload(list(entries)), session=session
        )
        try:
            return normalized(advisor.recommend(budget, algorithm=algorithm))
        finally:
            session.close()

    serial = run(WhatIfSession)
    parallel = run(
        lambda db: ParallelWhatIfSession(
            db, workers=workers, executor="thread", min_batch=1
        )
    )
    assert parallel == serial


@settings(max_examples=8, deadline=None)
@given(
    picks=st.lists(
        st.integers(min_value=0, max_value=len(_PROPERTY_WL.entries) - 1),
        min_size=1,
        max_size=5,
    ),
    workers=st.sampled_from([2, 3]),
)
def test_batch_costs_equal_serial_costs(picks, workers):
    """Session-level property: ``cost_batch`` through the parallel
    engine returns exactly the serial per-call costs, and leaves the
    counters in the same state."""
    statements = [_PROPERTY_WL.entries[i].statement for i in picks]

    serial = WhatIfSession(_PROPERTY_DB)
    serial_costs = [serial.cost(s) for s in statements]

    parallel = ParallelWhatIfSession(
        _PROPERTY_DB, workers=workers, executor="thread", min_batch=1
    )
    try:
        batch_costs = parallel.cost_batch([(s, ()) for s in statements])
    finally:
        parallel.close()

    assert batch_costs == serial_costs
    assert parallel.counters.optimizer_calls == serial.counters.optimizer_calls
    assert parallel.counters.cache_hits == serial.counters.cache_hits
    assert parallel.counters.cache_misses == serial.counters.cache_misses
