"""Tests for two-collection equi-joins: parsing, planning, execution,
and advisor integration."""

import pytest

from repro import (
    Database,
    Executor,
    IndexAdvisor,
    IndexDefinition,
    IndexValueType,
    Optimizer,
    OptimizerMode,
    Workload,
)
from repro.optimizer.plans import NestedLoopJoin
from repro.query import QuerySyntaxError, parse_statement
from repro.query.model import JoinQuery
from repro.xpath import evaluate_path, parse_pattern, parse_xpath

JOIN_TEXT = """
for $o in ORDER('ODOC')/FIXML/Order, $s in SECURITY('SDOC')/Security
where $o/Instrmt/@Sym = $s/Symbol and $s/Yield > 7.5
return <r>{$o/@ID}{$s/Symbol}</r>
"""


@pytest.fixture(scope="module")
def join_db():
    from repro.workloads import tpox

    return tpox.build_database(
        num_securities=100, num_orders=120, num_customers=20, seed=42
    )


def brute_force_pairs(db, outer_binding, outer_key, inner_binding, inner_key,
                      inner_filter=None):
    """Reference nested-loop join for result verification."""
    pairs = []
    for od in db.collection("ODOC"):
        for onode in evaluate_path(od, parse_xpath(outer_binding)):
            okeys = {
                n.string_value()
                for n in evaluate_path(onode, parse_xpath(outer_key))
            }
            if not okeys:
                continue
            for sd in db.collection("SDOC"):
                for snode in evaluate_path(sd, parse_xpath(inner_binding)):
                    if inner_filter and not inner_filter(snode):
                        continue
                    skeys = {
                        n.string_value()
                        for n in evaluate_path(snode, parse_xpath(inner_key))
                    }
                    if okeys & skeys:
                        pairs.append((onode, snode))
    return pairs


class TestJoinParsing:
    def test_builds_join_query(self):
        join = parse_statement(JOIN_TEXT)
        assert isinstance(join, JoinQuery)
        assert join.left.collection == "ODOC"
        assert join.right.collection == "SDOC"
        assert str(join.left_join_path) == "Instrmt/@Sym"
        assert str(join.right_join_path) == "Symbol"

    def test_side_filters_routed(self):
        join = parse_statement(JOIN_TEXT)
        assert join.left.where == ()
        assert [str(w) for w in join.right.where] == ["${var}/Yield > 7.5"]

    def test_return_paths_routed(self):
        join = parse_statement(JOIN_TEXT)
        assert [str(p) for p in join.left.return_paths] == ["@ID"]
        assert [str(p) for p in join.right.return_paths] == ["Symbol"]

    def test_secondary_vars_attach_to_their_side(self):
        join = parse_statement(
            """for $o in X('ODOC')/FIXML/Order, $s in Y('SDOC')/Security
               for $i in $o/Instrmt
               where $i/@Sym = $s/Symbol return $o"""
        )
        assert str(join.left_join_path) == "Instrmt/@Sym"
        # the secondary binding added an existence clause on the left side
        assert any(str(w.path) == "Instrmt" for w in join.left.where)

    def test_missing_join_condition_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_statement(
                "for $a in X('A')/r, $b in Y('B')/r where $a/v > 1 return $a"
            )

    def test_two_join_conditions_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_statement(
                """for $a in X('A')/r, $b in Y('B')/r
                   where $a/v = $b/v and $a/w = $b/w return $a"""
            )

    def test_three_collections_rejected(self):
        with pytest.raises(QuerySyntaxError):
            parse_statement(
                "for $a in X('A')/r, $b in Y('B')/r, $c in Z('C')/r "
                "where $a/v = $b/v return $a"
            )

    def test_aggregates_rejected_in_joins(self):
        with pytest.raises(QuerySyntaxError):
            parse_statement(
                """for $a in X('A')/r, $b in Y('B')/r
                   where $a/v = $b/v return count($a/x)"""
            )

    def test_swapped(self):
        join = parse_statement(JOIN_TEXT)
        flipped = join.swapped()
        assert flipped.left is join.right
        assert flipped.right_join_path is join.left_join_path


class TestJoinPlanning:
    def test_plan_is_nested_loop(self, join_db):
        result = Optimizer(join_db).optimize(parse_statement(JOIN_TEXT))
        assert isinstance(result.plan, NestedLoopJoin)
        assert result.plan.strategy in ("hash", "index-nlj")
        assert "NLJOIN" in result.explain()

    def test_virtual_join_key_index_considered(self, join_db):
        optimizer = Optimizer(join_db)
        join = parse_statement(JOIN_TEXT)
        base = optimizer.optimize(join, OptimizerMode.EVALUATE, ())
        with_key = optimizer.optimize(
            join,
            OptimizerMode.EVALUATE,
            [
                IndexDefinition(
                    "vsym", "ODOC",
                    parse_pattern("/FIXML/Order/Instrmt/@Sym"),
                    IndexValueType.STRING, True,
                ),
                IndexDefinition(
                    "vy", "SDOC", parse_pattern("/Security/Yield"),
                    IndexValueType.NUMERIC, True,
                ),
            ],
        )
        assert with_key.estimated_cost <= base.estimated_cost

    def test_enumerate_covers_both_sides(self, join_db):
        result = Optimizer(join_db).optimize(
            parse_statement(JOIN_TEXT), OptimizerMode.ENUMERATE
        )
        found = {(str(c.pattern), c.collection) for c in result.candidates}
        assert ("/FIXML/Order/Instrmt/@Sym", "ODOC") in found
        assert ("/Security/Symbol", "SDOC") in found
        assert ("/Security/Yield", "SDOC") in found


class TestJoinExecution:
    def test_hash_join_matches_brute_force(self, join_db):
        result = Executor(join_db).execute(
            parse_statement(JOIN_TEXT), collect_output=True
        )
        expected = brute_force_pairs(
            join_db, "/FIXML/Order", "Instrmt/@Sym", "/Security", "Symbol",
            inner_filter=lambda s: any(
                float(n.string_value()) > 7.5
                for n in evaluate_path(s, parse_xpath("Yield"))
            ),
        )
        assert result.rows == len(expected)

    def test_output_side_order_stable(self, join_db):
        """Output columns follow the statement, not the plan orientation."""
        result = Executor(join_db).execute(
            parse_statement(JOIN_TEXT), collect_output=True
        )
        for row in result.output:
            order_id, symbol = [part.strip() for part in row.split("|")]
            assert order_id.startswith("100")  # order IDs are 100xxx
            assert not symbol.startswith("100")

    def test_results_invariant_under_indexes(self, join_db):
        join = parse_statement(JOIN_TEXT)
        baseline = Executor(join_db).execute(join, collect_output=True)
        created = []
        for name, col, pattern, vt in (
            ("jx1", "ODOC", "/FIXML/Order/Instrmt/@Sym", IndexValueType.STRING),
            ("jx2", "SDOC", "/Security/Symbol", IndexValueType.STRING),
            ("jx3", "SDOC", "/Security/Yield", IndexValueType.NUMERIC),
        ):
            join_db.create_index(
                IndexDefinition(name, col, parse_pattern(pattern), vt)
            )
            created.append(name)
        try:
            indexed = Executor(join_db).execute(join, collect_output=True)
            assert sorted(indexed.output) == sorted(baseline.output)
        finally:
            for name in created:
                join_db.drop_index(name)

    def test_index_nlj_chosen_with_selective_outer(self):
        """A selective outer side + a big inner side makes the index
        nested-loop orientation win, probing far fewer documents."""
        db = Database()
        db.create_collection("SMALL")
        db.create_collection("BIG")
        db.insert_document("SMALL", "<k><v>key7</v></k>")
        for i in range(400):
            db.insert_document(
                "BIG", f"<r><key>key{i % 40}</key><pad>{'x' * 50}</pad></r>"
            )
        db.create_index(
            IndexDefinition(
                "bigkey", "BIG", parse_pattern("/r/key"), IndexValueType.STRING
            )
        )
        join = parse_statement(
            "for $a in X('SMALL')/k, $b in Y('BIG')/r "
            "where $a/v = $b/key return $b"
        )
        result = Optimizer(db).optimize(join)
        assert result.plan.strategy == "index-nlj"
        executed = Executor(db).execute(join, collect_output=True)
        assert executed.rows == 10  # 400 / 40 occurrences of key7
        assert executed.docs_examined < 30  # 1 outer + 10 probed inner docs

    def test_empty_outer_side(self, join_db):
        join = parse_statement(
            """for $o in ORDER('ODOC')/FIXML/Order, $s in SECURITY('SDOC')/Security
               where $o/Instrmt/@Sym = $s/Symbol and $o/@Acct = "NOPE"
               return $o"""
        )
        assert Executor(join_db).execute(join).rows == 0


class TestJoinAdvisor:
    def test_candidates_on_both_collections(self, join_db):
        workload = Workload.from_statements([JOIN_TEXT])
        advisor = IndexAdvisor(join_db, workload)
        collections = {c.collection for c in advisor.candidates.basics()}
        assert collections == {"ODOC", "SDOC"}

    def test_recommendation_helps_join(self, join_db):
        workload = Workload.from_statements([JOIN_TEXT])
        advisor = IndexAdvisor(join_db, workload)
        recommendation = advisor.recommend(budget_bytes=10**6)
        assert recommendation.estimated_speedup > 1.0


class TestJoinIntegration:
    def test_cli_executes_join(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "db")
        main(["generate", path, "--benchmark", "tpox", "--scale", "40"])
        capsys.readouterr()
        assert main([
            "query", path,
            "for $o in X('ODOC')/FIXML/Order, $s in Y('SDOC')/Security "
            "where $o/Instrmt/@Sym = $s/Symbol and $s/Yield > 8 return $s/Symbol",
        ]) == 0
        out = capsys.readouterr().out
        assert "rows" in out

    def test_whatif_on_join_workload(self, join_db):
        from repro.core.whatif import analyze

        workload = Workload.from_statements([JOIN_TEXT])
        advisor = IndexAdvisor(join_db, workload)
        recommendation = advisor.recommend(budget_bytes=10**6)
        report = analyze(join_db, workload, recommendation.configuration)
        assert report.total_benefit > 0

    def test_paged_executor_charges_joins(self, join_db):
        """Joins are page-charged: a hash join touches every inner page,
        so the join's footprint covers both collections."""
        from repro.storage.bufferpool import BufferPool, PagedExecutor

        executor = PagedExecutor(join_db, BufferPool(100_000))
        outcome = executor.execute(parse_statement(JOIN_TEXT))
        assert outcome.result.rows > 0
        min_docs = min(
            len(join_db.collection("ODOC")), len(join_db.collection("SDOC"))
        )
        assert outcome.page_accesses >= min_docs  # at least a page per doc
        warm = executor.execute(parse_statement(JOIN_TEXT))
        assert warm.hit_ratio > 0.9  # working set resident on the rerun

    def test_compression_handles_joins(self):
        from repro.core.compression import compress

        wl = Workload.from_statements([JOIN_TEXT, JOIN_TEXT])
        assert len(compress(wl)) == 1

    def test_benefit_fast_equals_naive_with_joins(self, join_db):
        from repro.core.benefit import ConfigurationEvaluator
        from repro.core.config import IndexConfiguration

        workload = Workload.from_statements([JOIN_TEXT])
        advisor = IndexAdvisor(join_db, workload)
        candidates = list(advisor.candidates)
        fast = ConfigurationEvaluator(join_db, Optimizer(join_db), workload)
        naive = ConfigurationEvaluator(
            join_db, Optimizer(join_db), workload, naive=True
        )
        for size in (1, 2, len(candidates)):
            config = IndexConfiguration(candidates[:size])
            assert fast.benefit(config) == pytest.approx(naive.benefit(config))
