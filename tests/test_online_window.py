"""Tests for the daemon's sliding statement window, the drift metric,
and the online policy's typed validation."""

import pytest

from repro.online.policy import OnlinePolicy
from repro.online.window import StatementWindow, drift_distance
from repro.robustness.errors import ConfigError

SYMBOL = "for $s in X('SDOC')/Security where $s/Symbol = \"A{}\" return $s"
YIELD = "for $s in X('SDOC')/Security where $s/Yield > {} return $s/Name"
SECTOR = (
    "for $s in X('SDOC')/Security "
    'where $s/SecInfo/*/Sector = "{}" return $s/Symbol'
)


class TestStatementWindow:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            StatementWindow(0)

    def test_eviction_keeps_the_newest_texts(self):
        window = StatementWindow(3)
        for i in range(5):
            assert window.ingest(SYMBOL.format(i))
        assert len(window) == 3
        assert window.ingested == 5
        assert window.texts() == [SYMBOL.format(i) for i in (2, 3, 4)]

    def test_duplicate_texts_merge_into_frequency(self):
        window = StatementWindow(10)
        for _ in range(4):
            window.ingest(SYMBOL.format(1))
        window.ingest(YIELD.format(5))
        assert len(window) == 5
        assert window.distinct == 2
        workload = window.workload()
        frequencies = {
            entry.statement.describe(): entry.frequency for entry in workload
        }
        assert frequencies[SYMBOL.format(1)] == 4.0
        assert frequencies[YIELD.format(5)] == 1.0

    def test_workload_order_is_stable_under_arrival_order(self):
        texts = [SYMBOL.format(2), YIELD.format(5), SYMBOL.format(1)]
        forward, backward = StatementWindow(10), StatementWindow(10)
        for text in texts:
            forward.ingest(text)
        for text in reversed(texts):
            backward.ingest(text)
        describe = lambda w: [
            entry.statement.describe() for entry in w.workload()
        ]
        assert describe(forward) == describe(backward)

    def test_unparseable_text_is_rejected_with_diagnostic(self):
        window = StatementWindow(5)
        assert not window.ingest("this is not xquery")
        assert len(window) == 0
        assert window.rejected == 1
        assert "unparseable" in window.diagnostics[0]

    def test_unknown_collection_is_rejected_with_diagnostic(self):
        window = StatementWindow(5, collections=lambda: {"SDOC"})
        assert window.ingest(SYMBOL.format(1))
        assert not window.ingest(
            "for $o in X('ODOC')/FIXML/Order return $o"
        )
        assert window.rejected == 1
        assert "ODOC" in window.diagnostics[0]

    def test_signature_distribution_is_normalized(self):
        window = StatementWindow(10)
        for _ in range(3):
            window.ingest(SYMBOL.format(1))
        window.ingest(YIELD.format(5))
        distribution = window.signature_distribution()
        assert sum(distribution.values()) == pytest.approx(1.0)
        assert max(distribution.values()) == pytest.approx(0.75)

    def test_drift_distance_extremes(self):
        window = StatementWindow(10)
        window.ingest(SYMBOL.format(1))
        same = window.signature_distribution()
        assert drift_distance(same, same) == 0.0
        other = StatementWindow(10)
        other.ingest(SECTOR.format("Energy"))
        disjoint = other.signature_distribution()
        if set(same) & set(disjoint):
            pytest.skip("signatures unexpectedly overlap")
        assert drift_distance(same, disjoint) == pytest.approx(1.0)

    def test_drift_from_none_baseline_is_none(self):
        window = StatementWindow(10)
        window.ingest(SYMBOL.format(1))
        assert window.drift_from(None) is None

    def test_texts_replace_round_trip(self):
        window = StatementWindow(5)
        for i in range(3):
            window.ingest(SYMBOL.format(i))
        clone = StatementWindow(5)
        clone.replace(window.texts())
        assert clone.texts() == window.texts()
        assert clone.signature_distribution() == (
            window.signature_distribution()
        )

    def test_memoization_is_pruned_on_full_eviction(self):
        window = StatementWindow(2)
        window.ingest(SYMBOL.format(1))
        window.ingest(SYMBOL.format(2))
        window.ingest(SYMBOL.format(3))
        assert SYMBOL.format(1) not in window._parsed
        assert SYMBOL.format(1) not in window._signatures


class TestOnlinePolicyValidation:
    def good(self, **overrides):
        return OnlinePolicy(budget_bytes=100_000, **overrides)

    def test_valid_policy_round_trips(self):
        policy = self.good().validate()
        assert policy.to_dict()["budget_bytes"] == 100_000

    @pytest.mark.parametrize(
        "overrides, option",
        [
            ({"budget_bytes": 0}, "budget-bytes"),
            ({"algorithm": "nope"}, "algorithm"),
            ({"fallback_algorithm": "nope"}, "fallback-algorithm"),
            ({"window_capacity": 0}, "window"),
            ({"cycle_interval": 0}, "cycle-interval"),
            ({"drift_threshold": 1.5}, "drift-threshold"),
            ({"min_relative_improvement": -0.1}, "min-improvement"),
            ({"cooldown_cycles": -1}, "cooldown"),
            ({"max_flaps_per_index": -1}, "max-flaps"),
            ({"cycle_deadline_seconds": -2.0}, "cycle-deadline"),
            ({"cycle_call_budget": 0}, "cycle-call-budget"),
            ({"compress": "zip"}, "compress"),
            ({"retries": -1}, "retries"),
            ({"retry_backoff_seconds": -1.0}, "retry-backoff"),
            ({"watchdog_limit": 0}, "watchdog-limit"),
            ({"rollback_tolerance": -1e-9}, "rollback-tolerance"),
        ],
    )
    def test_bad_knob_raises_config_error(self, overrides, option):
        overrides.pop("budget_bytes", None)
        policy = (
            OnlinePolicy(budget_bytes=0)
            if option == "budget-bytes"
            else self.good(**overrides)
        )
        with pytest.raises(ConfigError) as excinfo:
            policy.validate()
        assert excinfo.value.option == option
        assert isinstance(excinfo.value, ValueError)  # CLI-friendly

    def test_string_budgets_resolve_like_the_cli(self):
        policy = self.good(
            cycle_deadline_seconds="none", cycle_call_budget="250"
        ).validate()
        assert policy.cycle_deadline_seconds is None
        assert policy.cycle_call_budget == 250
