"""Unit tests for the fault-injection harness, retry policy, search
checkpoint, and search budget (src/repro/robustness)."""

import json
import os

import pytest

from repro.core.candidates import FALLBACK_CANDIDATE_SIZE, CandidateSet
from repro.robustness.budget import SearchBudget
from repro.robustness.checkpoint import (
    CheckpointState,
    SearchCheckpoint,
    resolve_candidates,
)
from repro.robustness.errors import (
    BudgetExhausted,
    FatalAdvisorError,
    OptimizerTimeout,
    PersistError,
    RetryableOptimizerError,
    StatisticsUnavailable,
    WorkloadParseError,
)
from repro.robustness.faults import (
    FaultInjector,
    FaultRule,
    InjectedFault,
    InjectedIOError,
    from_env,
    injected,
    maybe_inject,
)
from repro.robustness.policy import NO_RETRY, RetryPolicy
from repro.storage.index import IndexValueType
from repro.xpath.patterns import parse_pattern


# ---------------------------------------------------------------------------
# FaultRule / FaultInjector
# ---------------------------------------------------------------------------

class TestFaultRule:
    def test_exact_and_prefix_matching(self):
        rule = FaultRule(site="optimizer")
        assert rule.matches("optimizer")
        assert rule.matches("optimizer.evaluate")
        assert not rule.matches("optimizers")
        assert not rule.matches("statistics.runstats")

    def test_bad_rate_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(site="optimizer", rate=1.5)

    def test_bad_kind_rejected(self):
        with pytest.raises(ValueError):
            FaultRule(site="optimizer", kind="explode")


class TestFaultInjector:
    def test_exact_schedule_with_at(self):
        injector = FaultInjector([FaultRule(site="optimizer", at={1, 3})])
        outcomes = []
        for _ in range(5):
            try:
                injector.check("optimizer.evaluate")
                outcomes.append("ok")
            except InjectedFault:
                outcomes.append("fault")
        assert outcomes == ["ok", "fault", "ok", "fault", "ok"]
        assert injector.total_injected() == 2

    def test_rate_schedule_is_deterministic_per_seed(self):
        def schedule(seed):
            injector = FaultInjector(
                [FaultRule(site="optimizer", rate=0.5)], seed=seed
            )
            outcome = []
            for _ in range(50):
                try:
                    injector.check("optimizer.evaluate")
                    outcome.append(0)
                except InjectedFault:
                    outcome.append(1)
            return outcome

        assert schedule(7) == schedule(7)
        assert schedule(7) != schedule(8)

    def test_schedule_is_independent_of_site_interleaving(self):
        """The decision sequence for one site must not change when other
        sites are called in between (per-(rule, site) RNG streams)."""
        def run(interleave):
            injector = FaultInjector(
                [FaultRule(site="optimizer", rate=0.5)], seed=3
            )
            outcome = []
            for i in range(30):
                if interleave and i % 2:
                    try:
                        injector.check("optimizer.plan")
                    except InjectedFault:
                        pass
                try:
                    injector.check("optimizer.evaluate")
                    outcome.append(0)
                except InjectedFault:
                    outcome.append(1)
            return outcome

        assert run(False) == run(True)

    def test_limit_caps_injections(self):
        injector = FaultInjector([FaultRule(site="optimizer", limit=2)])
        faults = 0
        for _ in range(10):
            try:
                injector.check("optimizer.evaluate")
            except InjectedFault:
                faults += 1
        assert faults == 2

    def test_stall_kind_sleeps_without_failing(self):
        injector = FaultInjector(
            [FaultRule(site="optimizer", kind="stall", stall_seconds=0.5)]
        )
        slept = []
        injector._sleep = slept.append
        injector.check("optimizer.evaluate")  # no exception
        assert slept == [0.5]

    def test_default_exception_maps_site_families(self):
        injector = FaultInjector([FaultRule(site="statistics")])
        with pytest.raises(StatisticsUnavailable):
            injector.check("statistics.runstats")
        injector = FaultInjector([FaultRule(site="persist")])
        with pytest.raises(InjectedIOError):
            injector.check("persist.save")
        injector = FaultInjector([FaultRule(site="workload")])
        with pytest.raises(WorkloadParseError):
            injector.check("workload.parse")
        injector = FaultInjector([FaultRule(site="optimizer")])
        with pytest.raises(InjectedFault) as excinfo:
            injector.check("optimizer.evaluate")
        assert isinstance(excinfo.value, RetryableOptimizerError)

    def test_injected_context_manager_restores_previous(self):
        inner = FaultInjector([FaultRule(site="optimizer")])
        with injected(inner):
            with pytest.raises(InjectedFault):
                maybe_inject("optimizer.evaluate")
        maybe_inject("optimizer.evaluate")  # no injector: no-op

    def test_from_env(self):
        injector = from_env(
            {
                "REPRO_FAULT_SEED": "1337",
                "REPRO_FAULT_RATE": "0.25",
                "REPRO_FAULT_SITES": "optimizer.evaluate, persist",
            }
        )
        assert injector.seed == 1337
        assert [rule.site for rule in injector.rules] == [
            "optimizer.evaluate",
            "persist",
        ]
        assert all(rule.rate == 0.25 for rule in injector.rules)

    def test_from_env_unset_returns_none(self):
        assert from_env({}) is None


# ---------------------------------------------------------------------------
# RetryPolicy
# ---------------------------------------------------------------------------

class TestRetryPolicy:
    def _policy(self, **kwargs):
        kwargs.setdefault("sleep", lambda seconds: None)
        return RetryPolicy(**kwargs)

    def test_succeeds_after_transient_failures(self):
        attempts = []

        def call():
            attempts.append(1)
            if len(attempts) < 3:
                raise RetryableOptimizerError("transient")
            return "result"

        retries = []
        policy = self._policy(max_attempts=3)
        assert policy.run(call, on_retry=retries.append) == "result"
        assert len(attempts) == 3
        assert len(retries) == 2

    def test_raises_after_exhausting_attempts(self):
        def call():
            raise RetryableOptimizerError("always")

        policy = self._policy(max_attempts=3)
        with pytest.raises(RetryableOptimizerError):
            policy.run(call)

    def test_non_retryable_error_propagates_immediately(self):
        attempts = []

        def call():
            attempts.append(1)
            raise FatalAdvisorError("boom")

        policy = self._policy(max_attempts=5)
        with pytest.raises(FatalAdvisorError):
            policy.run(call)
        assert len(attempts) == 1

    def test_backoff_delays_grow_and_cap(self):
        policy = RetryPolicy(
            max_attempts=5,
            base_delay_seconds=0.01,
            backoff_multiplier=2.0,
            max_delay_seconds=0.03,
        )
        assert list(policy.delays()) == [0.01, 0.02, 0.03, 0.03]

    def test_overlong_call_becomes_timeout(self):
        ticks = iter([0.0, 10.0, 10.0, 10.1])  # first call takes 10s
        policy = self._policy(
            max_attempts=2,
            call_timeout_seconds=1.0,
            clock=lambda: next(ticks),
        )
        calls = []

        def call():
            calls.append(1)
            return "slow-but-ok"

        retries = []
        assert policy.run(call, on_retry=retries.append) == "slow-but-ok"
        assert len(calls) == 2
        assert len(retries) == 1
        assert isinstance(retries[0], OptimizerTimeout)

    def test_no_retry_policy_is_single_shot(self):
        attempts = []

        def call():
            attempts.append(1)
            raise RetryableOptimizerError("x")

        with pytest.raises(RetryableOptimizerError):
            NO_RETRY.run(call)
        assert len(attempts) == 1

    def test_zero_attempts_rejected(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_attempts=0)


# ---------------------------------------------------------------------------
# SearchCheckpoint
# ---------------------------------------------------------------------------

class TestSearchCheckpoint:
    def _state(self, **kwargs):
        defaults = dict(
            algorithm="greedy",
            budget_bytes=1000,
            candidate_keys=[("/Security/Symbol", "string")],
            benefit=12.5,
            cursor=3,
        )
        defaults.update(kwargs)
        return CheckpointState(**defaults)

    def test_roundtrip(self, tmp_path):
        checkpoint = SearchCheckpoint(str(tmp_path / "ckpt.json"))
        assert checkpoint.load() is None
        checkpoint.write(self._state())
        loaded = checkpoint.load()
        assert loaded == self._state()
        assert checkpoint.writes == 1

    def test_write_is_atomic(self, tmp_path):
        path = tmp_path / "ckpt.json"
        checkpoint = SearchCheckpoint(str(path))
        checkpoint.write(self._state())
        checkpoint.write(self._state(cursor=9))
        leftovers = [p for p in os.listdir(tmp_path) if p != "ckpt.json"]
        assert leftovers == []
        assert checkpoint.load().cursor == 9

    def test_corrupt_checkpoint_raises_persist_error_with_path(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text("{ not json")
        with pytest.raises(PersistError) as excinfo:
            SearchCheckpoint(str(path)).load()
        assert str(path) in str(excinfo.value)

    def test_version_mismatch_raises(self, tmp_path):
        path = tmp_path / "ckpt.json"
        path.write_text(json.dumps({"version": 999, "algorithm": "greedy"}))
        with pytest.raises(PersistError):
            SearchCheckpoint(str(path)).load()

    def test_clear(self, tmp_path):
        checkpoint = SearchCheckpoint(str(tmp_path / "ckpt.json"))
        checkpoint.write(self._state())
        checkpoint.clear()
        assert checkpoint.load() is None
        checkpoint.clear()  # idempotent

    def test_injected_save_fault_becomes_persist_error(self, tmp_path):
        checkpoint = SearchCheckpoint(str(tmp_path / "ckpt.json"))
        with injected(FaultInjector([FaultRule(site="persist.save")])):
            with pytest.raises(PersistError):
                checkpoint.write(self._state())


class TestResolveCandidates:
    def _candidates(self):
        candidates = CandidateSet()
        candidates.get_or_add(
            parse_pattern("/Security/Symbol"), IndexValueType.STRING, "SDOC"
        )
        candidates.get_or_add(
            parse_pattern("/Security/Yield"), IndexValueType.NUMERIC, "SDOC"
        )
        return candidates

    def test_resolves_live_objects(self):
        candidates = self._candidates()
        resolved = resolve_candidates(
            [("/Security/Symbol", "string")], candidates
        )
        assert len(resolved) == 1
        assert str(resolved[0].pattern) == "/Security/Symbol"

    def test_stale_key_returns_none(self):
        resolved = resolve_candidates(
            [("/Gone/Path", "string")], self._candidates()
        )
        assert resolved is None


# ---------------------------------------------------------------------------
# SearchBudget
# ---------------------------------------------------------------------------

class _FakeCounters:
    def __init__(self):
        self.optimizer_calls = 0


class _FakeSession:
    def __init__(self):
        self.counters = _FakeCounters()


class TestSearchBudget:
    def test_unbounded_budget_never_exhausts(self):
        budget = SearchBudget()
        assert not budget.bounded
        assert budget.exhausted() is None
        budget.check()  # no raise

    def test_deadline_expiry(self):
        ticks = iter([0.0, 0.5, 1.5])
        budget = SearchBudget(deadline_seconds=1.0, clock=lambda: next(ticks))
        assert budget.exhausted() is None
        with pytest.raises(BudgetExhausted):
            budget.check()
        # sticky after first expiry, without touching the clock again
        assert "deadline" in budget.exhausted()

    def test_call_budget_expiry(self):
        session = _FakeSession()
        session.counters.optimizer_calls = 10
        budget = SearchBudget(optimizer_call_budget=5, session=session)
        assert budget.exhausted() is None
        session.counters.optimizer_calls = 15
        assert "optimizer-call budget" in budget.exhausted()
        assert budget.calls_used() == 5

    def test_call_budget_requires_session(self):
        with pytest.raises(ValueError):
            SearchBudget(optimizer_call_budget=5)

    def test_invalid_limits_rejected(self):
        with pytest.raises(ValueError):
            SearchBudget(deadline_seconds=0)
        with pytest.raises(ValueError):
            SearchBudget(optimizer_call_budget=-1, session=_FakeSession())

    def test_restore_filters_algorithm_budget_and_completion(self, tmp_path):
        checkpoint = SearchCheckpoint(str(tmp_path / "ckpt.json"))
        budget = SearchBudget(checkpoint=checkpoint)
        assert budget.restore("greedy", 1000) is None  # nothing stored
        checkpoint.write(
            CheckpointState(
                algorithm="greedy", budget_bytes=1000, candidate_keys=[]
            )
        )
        assert budget.restore("greedy", 1000) is not None
        assert budget.restore("topdown_full", 1000) is None
        assert budget.restore("greedy", 2000) is None
        checkpoint.write(
            CheckpointState(
                algorithm="greedy",
                budget_bytes=1000,
                candidate_keys=[],
                completed=True,
            )
        )
        assert budget.restore("greedy", 1000) is None


# ---------------------------------------------------------------------------
# Degraded candidate sizing
# ---------------------------------------------------------------------------

class TestDegradedCandidateSizing:
    def test_compute_sizes_degrades_when_statistics_unavailable(self, tpox_db):
        candidates = CandidateSet()
        candidates.get_or_add(
            parse_pattern("/Security/Symbol"), IndexValueType.STRING, "SDOC"
        )
        degraded = []
        with injected(FaultInjector([FaultRule(site="statistics")])):
            candidates.compute_sizes(
                tpox_db, on_degraded=lambda c, exc: degraded.append(c)
            )
        (candidate,) = list(candidates)
        assert len(degraded) == 1
        assert candidate.size_bytes >= FALLBACK_CANDIDATE_SIZE
