"""Integration tests of the resilient advisor runtime: graceful
degradation, the zero-fault regression pin, anytime search, and
checkpoint/resume (ISSUE acceptance criteria)."""

import json
import time

import pytest

from repro.baselines.decoupled import HeuristicCostModel
from repro.core.advisor import IndexAdvisor, Recommendation
from repro.optimizer.session import WhatIfSession
from repro.query.workload import Workload
from repro.robustness.errors import (
    FatalAdvisorError,
    RetryableOptimizerError,
    WorkloadParseError,
)
from repro.robustness.faults import FaultInjector, FaultRule, from_env, injected
from repro.robustness.policy import RetryPolicy

FAST_RETRIES = RetryPolicy(sleep=lambda seconds: None)
BUDGET = 200_000

#: The CI chaos-smoke job runs this suite with REPRO_FAULT_* set; the
#: zero-fault pins are meaningless there (retries legitimately occur).
ENV_CHAOS = from_env() is not None
no_env_chaos = pytest.mark.skipif(
    ENV_CHAOS, reason="REPRO_FAULT_* chaos environment active"
)


def make_advisor(db, wl, **session_kwargs):
    session_kwargs.setdefault("retry_policy", FAST_RETRIES)
    return IndexAdvisor(db, wl, session=WhatIfSession(db, **session_kwargs))


# ---------------------------------------------------------------------------
# Zero-fault regression pin (bit-identical to the pre-robustness seed)
# ---------------------------------------------------------------------------

class TestZeroFaultPin:
    """With no injector installed, the robustness layer must be invisible:
    these values were captured on the seed before the layer existed."""

    PINS = {
        "greedy": (518.4088158333333, 144483, 66, 66, 17),
        "greedy_heuristics": (518.4088158333334, 46502, 65, 65, 12),
        "topdown_full": (502.0308633589483, 132096, 59, 59, 6),
    }

    @no_env_chaos
    @pytest.mark.parametrize("algorithm", sorted(PINS))
    def test_recommendation_is_bit_identical(self, tpox_db, tpox_wl, algorithm):
        benefit, size, calls, misses, count = self.PINS[algorithm]
        recommendation = IndexAdvisor(tpox_db, tpox_wl).recommend(
            BUDGET, algorithm=algorithm
        )
        stats = recommendation.session_stats
        assert recommendation.search.benefit == benefit
        assert recommendation.search.size_bytes == size
        assert stats["optimizer_calls"] == calls
        assert stats["cache_misses"] == misses
        assert len(recommendation.configuration) == count
        assert stats["retries"] == 0
        assert stats["degraded_estimates"] == 0
        assert not recommendation.degraded
        assert not recommendation.truncated
        assert recommendation.diagnostics == []


# ---------------------------------------------------------------------------
# Graceful degradation
# ---------------------------------------------------------------------------

class TestGracefulDegradation:
    def test_transient_faults_are_retried_to_the_same_answer(
        self, tpox_db, tpox_wl
    ):
        """A fault that clears within the retry budget must not change
        the recommendation at all (only the retry counter)."""
        advisor = make_advisor(tpox_db, tpox_wl)
        rule = FaultRule(site="optimizer.evaluate", at={3, 10}, limit=2)
        with injected(FaultInjector([rule])):
            recommendation = advisor.recommend(
                BUDGET, algorithm="greedy_heuristics"
            )
        pin = TestZeroFaultPin.PINS["greedy_heuristics"]
        assert recommendation.search.benefit == pin[0]
        assert recommendation.session_stats["retries"] == 2
        assert recommendation.session_stats["degraded_estimates"] == 0
        assert not recommendation.degraded

    def test_total_evaluate_failure_still_recommends(self, tpox_db, tpox_wl):
        """ISSUE acceptance: 100% failure on optimizer evaluations must
        still produce a (degraded) recommendation, reported in
        to_dict()."""
        advisor = make_advisor(tpox_db, tpox_wl)
        with injected(FaultInjector([FaultRule(site="optimizer.evaluate")])):
            recommendation = advisor.recommend(
                BUDGET, algorithm="greedy_heuristics"
            )
        assert isinstance(recommendation, Recommendation)
        assert len(recommendation.configuration) > 0
        assert recommendation.degraded
        stats = recommendation.session_stats
        assert stats["degraded_estimates"] > 0
        assert stats["retries"] >= stats["degraded_estimates"]
        assert stats["degraded_samples"]
        payload = recommendation.to_dict()
        assert payload["degraded"] is True
        assert payload["session"]["degraded_estimates"] > 0
        json.dumps(payload)  # must stay serializable

    def test_degraded_costs_come_from_the_heuristic_model(self, tpox_db):
        wl = Workload.from_statements(
            ["for $s in X('SDOC')/Security return $s/Symbol"]
        )
        session = WhatIfSession(tpox_db, retry_policy=FAST_RETRIES)
        with injected(FaultInjector([FaultRule(site="optimizer.evaluate")])):
            result = session.evaluate(wl.entries[0].statement)
        assert result.degraded
        expected = HeuristicCostModel(tpox_db).estimate_cost(
            wl.entries[0].statement
        )
        assert result.estimated_cost == expected
        assert session.is_degraded
        assert session.counters.optimizer_calls == 0  # no successful call

    def test_fallback_failure_is_fatal(self, tpox_db, tpox_wl):
        def broken_estimator(statement, definitions=()):
            raise RuntimeError("fallback is broken too")

        advisor = make_advisor(
            tpox_db, tpox_wl, fallback_estimator=broken_estimator
        )
        with injected(FaultInjector([FaultRule(site="optimizer.evaluate")])):
            with pytest.raises(FatalAdvisorError):
                advisor.recommend(BUDGET, algorithm="greedy_heuristics")

    def test_unknown_algorithm_is_still_a_value_error(self, tpox_db, tpox_wl):
        with pytest.raises(ValueError):
            IndexAdvisor(tpox_db, tpox_wl).recommend(BUDGET, algorithm="nope")


# ---------------------------------------------------------------------------
# Anytime search
# ---------------------------------------------------------------------------

class TestAnytimeSearch:
    def test_deadline_returns_valid_truncated_recommendation(
        self, tpox_db, tpox_wl
    ):
        """ISSUE acceptance: a deadline around 10% of the unbounded wall
        time still yields a valid recommendation with
        0 <= benefit <= unbounded benefit."""
        started = time.monotonic()
        unbounded = IndexAdvisor(tpox_db, tpox_wl).recommend(
            BUDGET, algorithm="greedy_heuristics"
        )
        wall = time.monotonic() - started
        bounded = IndexAdvisor(tpox_db, tpox_wl).recommend(
            BUDGET,
            algorithm="greedy_heuristics",
            deadline_seconds=max(wall * 0.1, 0.001),
        )
        assert isinstance(bounded, Recommendation)
        assert 0.0 <= bounded.search.benefit <= unbounded.search.benefit + 1e-9
        assert bounded.search.size_bytes <= BUDGET
        if bounded.truncated:
            assert "deadline" in bounded.search.truncated_reason
            assert "TRUNCATED" in bounded.report()

    def test_call_budget_truncates(self, tpox_db, tpox_wl):
        recommendation = IndexAdvisor(tpox_db, tpox_wl).recommend(
            BUDGET, algorithm="greedy_heuristics", optimizer_call_budget=58
        )
        assert recommendation.truncated
        assert "optimizer-call budget" in recommendation.search.truncated_reason
        pin = TestZeroFaultPin.PINS["greedy_heuristics"]
        assert 0.0 <= recommendation.search.benefit <= pin[0]
        assert recommendation.search.size_bytes <= BUDGET
        assert recommendation.to_dict()["truncated"] is True

    @no_env_chaos
    def test_generous_budget_is_not_truncated(self, tpox_db, tpox_wl):
        recommendation = IndexAdvisor(tpox_db, tpox_wl).recommend(
            BUDGET,
            algorithm="greedy_heuristics",
            deadline_seconds=600.0,
            optimizer_call_budget=100_000,
        )
        pin = TestZeroFaultPin.PINS["greedy_heuristics"]
        assert not recommendation.truncated
        assert recommendation.search.benefit == pin[0]

    @pytest.mark.parametrize(
        "algorithm", ["greedy", "topdown_lite", "topdown_full", "dp"]
    )
    def test_every_algorithm_survives_a_tiny_deadline(
        self, tpox_db, tpox_wl, algorithm
    ):
        recommendation = IndexAdvisor(tpox_db, tpox_wl).recommend(
            BUDGET, algorithm=algorithm, deadline_seconds=0.0001
        )
        assert isinstance(recommendation, Recommendation)
        assert recommendation.truncated
        assert recommendation.search.benefit >= 0.0
        assert recommendation.search.size_bytes <= BUDGET


# ---------------------------------------------------------------------------
# Checkpoint / resume
# ---------------------------------------------------------------------------

class TestCheckpointResume:
    def test_truncated_run_resumes_to_the_unbounded_answer(
        self, tpox_wl, tmp_path
    ):
        from repro.workloads import tpox

        path = str(tmp_path / "search.ckpt")
        db1 = tpox.build_database(
            num_securities=120, num_orders=120, num_customers=60, seed=42
        )
        first = IndexAdvisor(db1, tpox_wl).recommend(
            BUDGET,
            algorithm="greedy_heuristics",
            optimizer_call_budget=58,
            checkpoint_path=path,
        )
        assert first.truncated
        assert len(first.configuration) > 0

        db2 = tpox.build_database(
            num_securities=120, num_orders=120, num_customers=60, seed=42
        )
        second = IndexAdvisor(db2, tpox_wl).recommend(
            BUDGET, algorithm="greedy_heuristics", checkpoint_path=path
        )
        pin = TestZeroFaultPin.PINS["greedy_heuristics"]
        assert second.search.resumed
        assert not second.truncated
        assert second.search.benefit == pytest.approx(pin[0])
        assert second.to_dict()["resumed"] is True

    def test_completed_checkpoint_is_not_resumed(self, tpox_db, tpox_wl, tmp_path):
        path = str(tmp_path / "search.ckpt")
        advisor = IndexAdvisor(tpox_db, tpox_wl)
        first = advisor.recommend(
            BUDGET, algorithm="greedy_heuristics", checkpoint_path=path
        )
        assert not first.truncated
        second = advisor.recommend(
            BUDGET, algorithm="greedy_heuristics", checkpoint_path=path
        )
        assert not second.search.resumed
        assert second.search.benefit == first.search.benefit

    def test_checkpoint_for_other_algorithm_is_ignored(
        self, tpox_db, tpox_wl, tmp_path
    ):
        path = str(tmp_path / "search.ckpt")
        advisor = IndexAdvisor(tpox_db, tpox_wl)
        truncated = advisor.recommend(
            BUDGET,
            algorithm="greedy_heuristics",
            optimizer_call_budget=58,
            checkpoint_path=path,
        )
        assert truncated.truncated
        other = advisor.recommend(
            BUDGET, algorithm="greedy", checkpoint_path=path
        )
        assert not other.search.resumed


# ---------------------------------------------------------------------------
# Lenient workload ingestion
# ---------------------------------------------------------------------------

class TestWorkloadIngestion:
    GOOD = "for $s in X('SDOC')/Security return $s/Symbol"
    TEXT = f"{GOOD}\n;\nthis is not xquery at all\n;\n{GOOD}\n; @ 4\n"

    def test_lenient_mode_skips_with_diagnostics(self):
        workload = Workload.from_text(self.TEXT)
        assert len(workload) == 2
        assert len(workload.diagnostics) == 1
        assert "statement 2" in workload.diagnostics[0]
        assert workload.entries[1].frequency == 4.0

    def test_strict_mode_raises_with_statement_number(self):
        with pytest.raises(WorkloadParseError) as excinfo:
            Workload.from_text(self.TEXT, strict=True)
        assert "statement 2" in str(excinfo.value)

    def test_bad_frequency_is_a_diagnostic(self):
        workload = Workload.from_text(f"{self.GOOD}\n; @ chewy\n")
        assert len(workload) == 0
        assert "frequency" in workload.diagnostics[0]

    def test_injected_parse_fault_skips_statement(self):
        with injected(
            FaultInjector([FaultRule(site="workload.parse", at={0})])
        ):
            workload = Workload.from_text(self.TEXT)
        assert len(workload) == 1  # statement 1 injected, 2 malformed
        assert len(workload.diagnostics) == 2

    def test_diagnostics_flow_into_the_recommendation(self, tpox_db):
        workload = Workload.from_text(self.TEXT)
        recommendation = IndexAdvisor(tpox_db, workload).recommend(
            BUDGET, algorithm="greedy_heuristics"
        )
        assert recommendation.diagnostics == workload.diagnostics
        assert recommendation.to_dict()["diagnostics"] == workload.diagnostics
        assert "Diagnostic" in recommendation.report()


# ---------------------------------------------------------------------------
# Corrupt / truncated checkpoint files (PR 8 satellite)
# ---------------------------------------------------------------------------

class TestCorruptCheckpoint:
    def half_written(self, tmp_path):
        """A checkpoint whose write died halfway through the payload."""
        from repro.robustness.checkpoint import (
            CheckpointState,
            SearchCheckpoint,
        )

        path = str(tmp_path / "search.ckpt")
        checkpoint = SearchCheckpoint(path)
        checkpoint.write(
            CheckpointState(
                algorithm="greedy_heuristics",
                budget_bytes=BUDGET,
                candidate_keys=[("/Security/Symbol", "string")],
                cursor=3,
            )
        )
        with open(path) as handle:
            payload = handle.read()
        with open(path, "w") as handle:
            handle.write(payload[: len(payload) // 2])
        return checkpoint

    def test_load_raises_typed_persist_error(self, tmp_path):
        from repro.robustness.errors import PersistError

        checkpoint = self.half_written(tmp_path)
        with pytest.raises(PersistError) as excinfo:
            checkpoint.load()
        assert "corrupt search checkpoint" in str(excinfo.value)
        assert checkpoint.path in str(excinfo.value)

    def test_load_for_resume_degrades_with_diagnostic(self, tmp_path):
        checkpoint = self.half_written(tmp_path)
        state, diagnostic = checkpoint.load_for_resume()
        assert state is None
        assert diagnostic.startswith("checkpoint ignored")

    @no_env_chaos
    def test_recommend_falls_back_to_a_fresh_search(
        self, tpox_db, tpox_wl, tmp_path
    ):
        """A half-written checkpoint must not poison the search: the
        advisor degrades to a fresh run, surfaces the diagnostic, and
        still lands on the unbounded answer."""
        checkpoint = self.half_written(tmp_path)
        recommendation = IndexAdvisor(tpox_db, tpox_wl).recommend(
            BUDGET,
            algorithm="greedy_heuristics",
            checkpoint_path=checkpoint.path,
        )
        assert not recommendation.search.resumed
        pin = TestZeroFaultPin.PINS["greedy_heuristics"]
        assert recommendation.search.benefit == pin[0]
        assert any(
            "checkpoint ignored" in d for d in recommendation.diagnostics
        )
        assert any(
            "checkpoint ignored" in d
            for d in recommendation.to_dict()["diagnostics"]
        )
