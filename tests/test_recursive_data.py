"""Tests on recursive documents (Section I: "XML elements can be
recursive").

Recursion makes one tag occur at many depths: descendant patterns match
unboundedly many rooted paths, specific patterns only one.  These tests
verify the whole stack behaves: pattern matching, statistics, candidate
enumeration, generalization, recommendation, and execution equivalence.
"""

import pytest

from repro import Executor, IndexAdvisor, IndexDefinition, IndexValueType, Workload
from repro.workloads import recursive
from repro.xpath import parse_pattern


@pytest.fixture(scope="module")
def bom_db():
    return recursive.build_database(num_parts=80, max_depth=4, seed=23)


@pytest.fixture(scope="module")
def bom_wl():
    return recursive.recursive_workload(seed=23)


class TestRecursiveData:
    def test_materials_at_multiple_depths(self, bom_db):
        stats = bom_db.runstats("PARTS")
        material_paths = [
            path for path in stats.path_counts if path[-1] == "Material"
        ]
        depths = {len(path) for path in material_paths}
        assert len(depths) >= 3  # Material occurs at several depths

    def test_descendant_pattern_matches_all_depths(self, bom_db):
        stats = bom_db.runstats("PARTS")
        pattern = parse_pattern("//Material")
        matched = stats.matching_paths(pattern)
        assert len(matched) >= 3
        specific = parse_pattern("/Part/Material")
        assert len(stats.matching_paths(specific)) == 1

    def test_recursive_pattern_containment(self):
        assert parse_pattern("//Part").covers(parse_pattern("/Part/SubParts/Part"))
        assert parse_pattern("/Part//Part").covers(
            parse_pattern("/Part/SubParts/Part/SubParts/Part")
        )
        assert not parse_pattern("/Part/SubParts/Part").covers(
            parse_pattern("/Part//Part")
        )


class TestRecursiveIndexing:
    def test_descendant_index_covers_all_depths(self, bom_db):
        index = bom_db.create_index(
            IndexDefinition(
                "imat_all", "PARTS", parse_pattern("//Material"),
                IndexValueType.STRING,
            )
        )
        specific = bom_db.create_index(
            IndexDefinition(
                "imat_top", "PARTS", parse_pattern("/Part/Material"),
                IndexValueType.STRING,
            )
        )
        try:
            assert index.entry_count() > specific.entry_count()
            assert specific.entry_count() == len(bom_db.collection("PARTS"))
        finally:
            bom_db.drop_index("imat_all")
            bom_db.drop_index("imat_top")

    def test_derived_stats_match_reality_on_recursion(self, bom_db):
        pattern = parse_pattern("/Part//Weight")
        derived = bom_db.runstats("PARTS").derive_index_statistics(
            pattern, IndexValueType.NUMERIC
        )
        index = bom_db.create_index(
            IndexDefinition("iw", "PARTS", pattern, IndexValueType.NUMERIC)
        )
        try:
            assert derived.entry_count == index.entry_count()
            assert derived.size_bytes == index.size_bytes()
        finally:
            bom_db.drop_index("iw")


class TestRecursiveAdvisor:
    def test_candidates_include_descendant_patterns(self, bom_db, bom_wl):
        advisor = IndexAdvisor(bom_db, bom_wl)
        patterns = {str(c.pattern) for c in advisor.candidates.basics()}
        assert "/Part//Material" in patterns
        assert "/Part/Material" in patterns  # the top-level-only query
        assert "/Part/SubParts//Weight" in patterns

    def test_generalization_on_recursive_candidates(self, bom_db, bom_wl):
        """/Part//Material + /Part/Material generalize to /Part//Material
        (already present) -- and deeper merges stay sound."""
        advisor = IndexAdvisor(bom_db, bom_wl)
        for general in advisor.candidates.generals():
            for basic in advisor.candidates.basics():
                if general.covers(basic):
                    assert general.pattern.covers(basic.pattern)

    def test_recommend_and_execute(self, bom_db, bom_wl):
        advisor = IndexAdvisor(bom_db, bom_wl)
        recommendation = advisor.recommend(budget_bytes=200_000)
        assert recommendation.estimated_speedup > 1.0
        executor = Executor(bom_db)
        baseline = [
            sorted(executor.execute(e.statement, collect_output=True).output)
            for e in bom_wl.queries()
        ]
        advisor.create_indexes(recommendation)
        try:
            executor = Executor(bom_db)
            for position, entry in enumerate(bom_wl.queries()):
                result = executor.execute(entry.statement, collect_output=True)
                assert sorted(result.output) == baseline[position]
        finally:
            advisor.drop_created_indexes()

    def test_descendant_index_serves_all_depth_query(self, bom_db):
        """A selective query probing all depths gets the descendant-axis
        index recommended."""
        workload = Workload.from_statements(
            ["""for $p in PARTS('PARTS')/Part where $p//Part/@id = "p70_1" return $p"""]
        )
        advisor = IndexAdvisor(bom_db, workload)
        recommendation = advisor.recommend(budget_bytes=500_000)
        patterns = {str(c.pattern) for c in recommendation.configuration}
        assert "/Part//Part/@id" in patterns

    def test_unselective_descendant_query_gets_nothing(self, bom_db):
        """Tight coupling also means knowing when an index will NOT help:
        //Material = "steel" matches nearly every document, so the advisor
        recommends nothing rather than a useless index."""
        workload = Workload.from_statements(
            ["""for $p in PARTS('PARTS')/Part where $p//Material = "steel" return $p"""]
        )
        advisor = IndexAdvisor(bom_db, workload)
        # the candidate IS enumerated ...
        assert {str(c.pattern) for c in advisor.candidates.basics()} == {
            "/Part//Material"
        }
        # ... but the optimizer-evaluated benefit is ~zero, so it is not
        # recommended even with an unlimited budget
        recommendation = advisor.recommend(budget_bytes=10_000_000)
        assert len(recommendation.configuration) == 0
