"""Tests for the command-line interface."""

import json
import os

import pytest

from repro.cli import main, read_workload_file
from repro.storage.persist import load_database

QUERY = "for $s in X('SDOC')/Security where $s/Yield > 9 return $s/Symbol"


@pytest.fixture()
def dbdir(tmp_path):
    path = str(tmp_path / "db")
    assert main(["generate", path, "--benchmark", "tpox", "--scale", "30",
                 "--seed", "3"]) == 0
    return path


class TestGenerate:
    def test_generate_tpox(self, tmp_path, capsys):
        path = str(tmp_path / "fresh")
        assert main(["generate", path, "--benchmark", "tpox",
                     "--scale", "30", "--seed", "3"]) == 0
        out = capsys.readouterr().out
        assert "generated tpox database" in out
        db = load_database(path)
        assert len(db.collection("SDOC")) == 30

    def test_generate_xmark(self, tmp_path, capsys):
        path = str(tmp_path / "xm")
        assert main(["generate", path, "--benchmark", "xmark", "--scale", "10"]) == 0
        db = load_database(path)
        assert set(db.collections) == {"IDOC", "PDOC", "ADOC"}


class TestQueryAndExplain:
    def test_query(self, dbdir, capsys):
        assert main(["query", dbdir, QUERY]) == 0
        out = capsys.readouterr().out
        assert "rows" in out
        assert "documents examined" in out

    def test_query_limit(self, dbdir, capsys):
        assert main(["query", dbdir, "COLLECTION('SDOC')/Security/Symbol",
                     "--limit", "2"]) == 0
        out = capsys.readouterr().out
        assert "(truncated)" in out

    def test_explain(self, dbdir, capsys):
        assert main(["explain", dbdir, QUERY, "--enumerate"]) == 0
        out = capsys.readouterr().out
        assert "COLLECTION SCAN" in out
        assert "/Security/Yield (numerical)" in out

    def test_stats(self, dbdir, capsys):
        assert main(["stats", dbdir, "SDOC", "--limit", "3"]) == 0
        out = capsys.readouterr().out
        assert "30 documents" in out
        assert "/Security" in out


class TestLoad:
    def test_load_new_collection(self, dbdir, tmp_path, capsys):
        doc = tmp_path / "d.xml"
        doc.write_text("<Thing><V>1</V></Thing>")
        assert main(["load", dbdir, "NEW", str(doc)]) == 0
        db = load_database(dbdir)
        assert len(db.collection("NEW")) == 1


class TestRecommend:
    def write_workload(self, tmp_path):
        path = tmp_path / "wl.xq"
        path.write_text(
            f"{QUERY}\n;\n"
            "for $s in X('SDOC')/Security where $s/Symbol = \"AA0001\" return $s\n"
            "; @ 5\n"
        )
        return str(path)

    def test_recommend(self, dbdir, tmp_path, capsys):
        workload = self.write_workload(tmp_path)
        assert main(["recommend", dbdir, "--workload", workload,
                     "--budget", "20000", "--algorithm", "greedy_heuristics"]) == 0
        out = capsys.readouterr().out
        assert "CREATE INDEX" in out
        assert "Estimated speedup" in out

    def test_recommend_create_persists(self, dbdir, tmp_path, capsys):
        workload = self.write_workload(tmp_path)
        assert main(["recommend", dbdir, "--workload", workload,
                     "--budget", "20000", "--create"]) == 0
        db = load_database(dbdir)
        assert db.indexes  # rebuilt from the saved catalog

    def test_workload_file_frequencies(self, tmp_path):
        path = tmp_path / "wl.xq"
        path.write_text("COLLECTION('SDOC')/Security\n; @ 7\n")
        workload = read_workload_file(str(path))
        assert len(workload) == 1
        assert workload.entries[0].frequency == 7.0


class TestReproduce:
    def test_reproduce_table3(self, dbdir, capsys):
        assert main(["reproduce", dbdir, "table3"]) == 0
        out = capsys.readouterr().out
        assert "Table III" in out

    def test_reproduce_unknown(self, dbdir, capsys):
        assert main(["reproduce", dbdir, "nope"]) == 2

    def test_reproduce_requires_tpox(self, tmp_path, capsys):
        path = str(tmp_path / "xm")
        main(["generate", path, "--benchmark", "xmark", "--scale", "5"])
        assert main(["reproduce", path, "table3"]) == 2


class TestErrors:
    def test_missing_database(self, tmp_path, capsys):
        assert main(["stats", str(tmp_path / "nope"), "SDOC"]) == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_collection(self, dbdir, capsys):
        assert main(["stats", dbdir, "NOPE"]) == 1


class TestJsonOutput:
    def test_recommend_json(self, dbdir, tmp_path, capsys):
        import json

        workload = tmp_path / "wl.xq"
        workload.write_text(f"{QUERY}\n;\n")
        assert main(["recommend", dbdir, "--workload", str(workload),
                     "--budget", "20000", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["algorithm"] == "topdown_full"
        assert payload["budget_bytes"] == 20000
        assert isinstance(payload["indexes"], list)
        for index in payload["indexes"]:
            assert set(index) == {
                "pattern", "value_type", "collection", "general", "size_bytes"
            }
        assert payload["estimated_speedup"] >= 1.0


class TestPathStats:
    def test_path_stats(self, dbdir, capsys):
        assert main(["path-stats", dbdir, "SDOC", "/Security/Yield",
                     "--probe", "5.0"]) == 0
        out = capsys.readouterr().out
        assert "matches 1 distinct rooted paths" in out
        assert "virtual numerical index" in out
        assert "selectivity" in out

    def test_path_stats_wildcard(self, dbdir, capsys):
        assert main(["path-stats", dbdir, "SDOC", "/Security//*"]) == 0
        out = capsys.readouterr().out
        assert "distinct rooted paths" in out

    def test_path_stats_bad_pattern(self, dbdir, capsys):
        assert main(["path-stats", dbdir, "SDOC", "not-absolute"]) == 1


class TestReviewCommand:
    def prepare(self, dbdir, tmp_path):
        # build two indexes: one the workload uses, one nothing uses
        from repro.storage import IndexDefinition, IndexValueType
        from repro.storage.persist import save_database
        from repro.xpath import parse_pattern

        db = load_database(dbdir)
        db.create_index(IndexDefinition(
            "used", "SDOC", parse_pattern("/Security/Yield"),
            IndexValueType.NUMERIC,
        ))
        db.create_index(IndexDefinition(
            "dead", "SDOC", parse_pattern("/Security/Price/Bid"),
            IndexValueType.NUMERIC,
        ))
        save_database(db, dbdir)
        workload = tmp_path / "wl.xq"
        workload.write_text(f"{QUERY}\n;\n")
        return str(workload)

    def test_review_lists_verdicts(self, dbdir, tmp_path, capsys):
        workload = self.prepare(dbdir, tmp_path)
        assert main(["review", dbdir, "--workload", workload]) == 0
        out = capsys.readouterr().out
        assert "KEEP used" in out
        assert "DROP dead" in out

    def test_review_drop_persists(self, dbdir, tmp_path, capsys):
        workload = self.prepare(dbdir, tmp_path)
        assert main(["review", dbdir, "--workload", workload, "--drop"]) == 0
        db = load_database(dbdir)
        assert "used" in db.indexes
        assert "dead" not in db.indexes

    def test_review_no_indexes(self, dbdir, tmp_path, capsys):
        workload = tmp_path / "wl.xq"
        workload.write_text(f"{QUERY}\n;\n")
        assert main(["review", dbdir, "--workload", str(workload)]) == 0
        assert "no physical indexes" in capsys.readouterr().out


class TestWhatifCommand:
    def test_whatif_report(self, dbdir, tmp_path, capsys):
        workload = tmp_path / "wl.xq"
        workload.write_text(f"{QUERY}\n;\n")
        assert main([
            "whatif", dbdir, "SDOC", "--workload", str(workload),
            "--patterns", "/Security/Yield:numeric", "/Security/Price/Bid:numeric",
        ]) == 0
        out = capsys.readouterr().out
        assert "total benefit" in out
        assert "unused indexes" in out  # the Bid index serves nothing


class TestRecommendValidation:
    """Robustness satellite: actionable input validation and the
    anytime/checkpoint flags."""

    def write_workload(self, tmp_path, text=None):
        path = tmp_path / "wl.xq"
        path.write_text(
            text
            if text is not None
            else "for $s in X('SDOC')/Security return $s/Symbol\n;\n"
        )
        return str(path)

    def test_zero_budget_is_rejected_with_hint(self, dbdir, tmp_path, capsys):
        workload = self.write_workload(tmp_path)
        assert main(["recommend", dbdir, "--workload", workload,
                     "--budget", "0"]) == 2
        err = capsys.readouterr().err
        assert "--budget must be a positive" in err
        assert "--budget 200000" in err  # actionable example

    def test_negative_budget_is_rejected(self, dbdir, tmp_path, capsys):
        workload = self.write_workload(tmp_path)
        assert main(["recommend", dbdir, "--workload", workload,
                     "--budget", "-5"]) == 2
        assert "--budget" in capsys.readouterr().err

    def test_bad_deadline_is_rejected(self, dbdir, tmp_path, capsys):
        workload = self.write_workload(tmp_path)
        assert main(["recommend", dbdir, "--workload", workload,
                     "--budget", "20000", "--deadline", "-1"]) == 2
        assert "--deadline" in capsys.readouterr().err

    def test_empty_workload_is_rejected_with_hint(self, dbdir, tmp_path, capsys):
        workload = self.write_workload(tmp_path, text="\n\n")
        assert main(["recommend", dbdir, "--workload", workload,
                     "--budget", "20000"]) == 2
        err = capsys.readouterr().err
        assert "no parseable statements" in err

    def test_malformed_statement_warns_and_continues(
        self, dbdir, tmp_path, capsys
    ):
        workload = self.write_workload(
            tmp_path,
            text="not a statement at all\n;\n"
                 "for $s in X('SDOC')/Security return $s/Symbol\n;\n",
        )
        assert main(["recommend", dbdir, "--workload", workload,
                     "--budget", "20000"]) == 0
        captured = capsys.readouterr()
        assert "warning: statement 1 skipped" in captured.err
        assert "Diagnostic" in captured.out

    def test_strict_mode_fails_on_malformed_statement(
        self, dbdir, tmp_path, capsys
    ):
        workload = self.write_workload(
            tmp_path,
            text="not a statement at all\n;\n"
                 "for $s in X('SDOC')/Security return $s/Symbol\n;\n",
        )
        assert main(["recommend", dbdir, "--workload", workload,
                     "--budget", "20000", "--strict"]) == 1
        assert "statement 1" in capsys.readouterr().err

    def test_workers_flag_matches_serial_output(self, dbdir, tmp_path, capsys):
        import json as json_module

        workload = self.write_workload(tmp_path)
        args = ["recommend", dbdir, "--workload", workload,
                "--budget", "20000", "--json"]
        assert main(args) == 0
        serial = json_module.loads(capsys.readouterr().out)
        assert main(args + ["--workers", "2", "--executor", "thread"]) == 0
        parallel = json_module.loads(capsys.readouterr().out)
        for payload in (serial, parallel):
            payload.pop("elapsed_seconds")
            payload["session"].pop("phase_seconds", None)
            payload["session"].pop("workers", None)
        assert parallel == serial

    def test_workers_stats_block_is_printed(self, dbdir, tmp_path, capsys):
        workload = self.write_workload(tmp_path)
        assert main(["recommend", dbdir, "--workload", workload,
                     "--budget", "20000", "--workers", "2",
                     "--executor", "thread", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "workers           : 2 (thread)" in out
        assert "parallel batches" in out

    def test_bad_workers_is_rejected(self, dbdir, tmp_path, capsys):
        workload = self.write_workload(tmp_path)
        assert main(["recommend", dbdir, "--workload", workload,
                     "--budget", "20000", "--workers", "lots"]) == 2
        assert "invalid worker count" in capsys.readouterr().err

    def test_bad_executor_is_rejected(self, dbdir, tmp_path, capsys):
        workload = self.write_workload(tmp_path)
        assert main(["recommend", dbdir, "--workload", workload,
                     "--budget", "20000", "--executor", "quantum"]) == 2
        assert "invalid executor" in capsys.readouterr().err

    def test_anytime_flags_flow_through(self, dbdir, tmp_path, capsys):
        import json as json_module

        workload = self.write_workload(tmp_path)
        checkpoint = str(tmp_path / "search.ckpt")
        assert main(["recommend", dbdir, "--workload", workload,
                     "--budget", "20000", "--deadline", "60",
                     "--call-budget", "100000",
                     "--checkpoint", checkpoint, "--json"]) == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["truncated"] is False
        assert payload["degraded"] is False
        assert os.path.exists(checkpoint)

    def test_tiny_call_budget_reports_truncation(self, dbdir, tmp_path, capsys):
        import json as json_module

        workload = self.write_workload(tmp_path)
        assert main(["recommend", dbdir, "--workload", workload,
                     "--budget", "20000", "--call-budget", "1",
                     "--json"]) == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["truncated"] is True
        assert "optimizer-call budget" in payload["truncated_reason"]

    def test_zero_call_budget_is_rejected_as_config_error(
        self, dbdir, tmp_path, capsys
    ):
        """PR 8 satellite: a zero budget can never evaluate a single
        configuration, so it is typed operator error (ConfigError),
        matching the REPRO_WORKERS/REPRO_SHARDS treatment."""
        workload = self.write_workload(tmp_path)
        assert main(["recommend", dbdir, "--workload", workload,
                     "--budget", "20000", "--call-budget", "0"]) == 2
        assert "--call-budget" in capsys.readouterr().err

    def test_junk_deadline_env_fallback_is_rejected(
        self, dbdir, tmp_path, capsys, monkeypatch
    ):
        workload = self.write_workload(tmp_path)
        monkeypatch.setenv("REPRO_DEADLINE", "soon")
        assert main(["recommend", dbdir, "--workload", workload,
                     "--budget", "20000"]) == 2
        assert "REPRO_DEADLINE" in capsys.readouterr().err

    def test_negative_call_budget_env_fallback_is_rejected(
        self, dbdir, tmp_path, capsys, monkeypatch
    ):
        workload = self.write_workload(tmp_path)
        monkeypatch.setenv("REPRO_CALL_BUDGET", "-3")
        assert main(["recommend", dbdir, "--workload", workload,
                     "--budget", "20000"]) == 2
        assert "REPRO_CALL_BUDGET" in capsys.readouterr().err

    def test_env_deadline_none_means_unbounded(self, dbdir, tmp_path, capsys,
                                               monkeypatch):
        import json as json_module

        workload = self.write_workload(tmp_path)
        monkeypatch.setenv("REPRO_DEADLINE", "none")
        monkeypatch.setenv("REPRO_CALL_BUDGET", "")
        assert main(["recommend", dbdir, "--workload", workload,
                     "--budget", "20000", "--json"]) == 0
        payload = json_module.loads(capsys.readouterr().out)
        assert payload["truncated"] is False


class TestServe:
    """The online daemon's CLI front end (PR 8 tentpole)."""

    STREAM = (
        "for $s in X('SDOC')/Security where $s/Symbol = \"AA0001\" return $s\n"
        "; @ 8\n"
        "for $s in X('SDOC')/Security where $s/Yield > 4.5 return $s/Name\n"
        "; @ 8\n"
        "this is not parseable\n"
        ";\n"
        "for $s in X('SDOC')/Security"
        " where $s/SecInfo/*/Sector = \"Energy\" return $s/Symbol\n"
        "; @ 7\n"
    )

    def write_stream(self, tmp_path):
        path = tmp_path / "stream.xq"
        path.write_text(self.STREAM)
        return str(path)

    def test_read_stream_file_expands_repeats(self, tmp_path):
        from repro.cli import read_stream_file

        texts = read_stream_file(self.write_stream(tmp_path))
        assert len(texts) == 24  # 8 + 8 + 1 unparseable + 7
        assert texts[0] == texts[7]

    def test_serve_smoke(self, dbdir, tmp_path, capsys):
        stream = self.write_stream(tmp_path)
        journal = str(tmp_path / "daemon.journal")
        assert main(["serve", dbdir, "--workload", stream,
                     "--budget", "200000", "--journal", journal,
                     "--cycle-interval", "10", "--cooldown", "0"]) == 0
        captured = capsys.readouterr()
        assert "applied" in captured.out
        assert "materialized configuration:" in captured.out
        assert "statement skipped (unparseable)" in captured.err
        assert os.path.exists(journal)

    def test_serve_resume_continues_from_the_journal(
        self, dbdir, tmp_path, capsys
    ):
        stream = self.write_stream(tmp_path)
        journal = str(tmp_path / "daemon.journal")
        base = ["serve", dbdir, "--workload", stream, "--budget", "200000",
                "--journal", journal, "--cycle-interval", "10",
                "--cooldown", "0"]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--resume", "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["configuration_keys"]
        assert status["counters"]["applies"] >= 1
        # Resumed over the same traffic: no drift, nothing re-applied.
        resumed_cycles = status["cycles"]
        assert {c["action"] for c in resumed_cycles} == {"skip-no-drift"}

    def test_serve_synthetic_stream(self, dbdir, capsys):
        assert main(["serve", dbdir, "--synthetic", "40", "--budget",
                     "200000", "--cycle-interval", "20", "--json"]) == 0
        status = json.loads(capsys.readouterr().out)
        assert status["statements_seen"] == 40

    def test_resume_requires_journal(self, dbdir, tmp_path, capsys):
        stream = self.write_stream(tmp_path)
        assert main(["serve", dbdir, "--workload", stream,
                     "--budget", "200000", "--resume"]) == 2
        assert "--journal" in capsys.readouterr().err

    def test_exactly_one_stream_source(self, dbdir, tmp_path, capsys):
        assert main(["serve", dbdir, "--budget", "200000"]) == 2
        assert "stream source" in capsys.readouterr().err

    def test_bad_policy_knob_is_a_config_error(self, dbdir, tmp_path, capsys):
        stream = self.write_stream(tmp_path)
        assert main(["serve", dbdir, "--workload", stream,
                     "--budget", "200000", "--drift-threshold", "2.0"]) == 2
        assert "drift-threshold" in capsys.readouterr().err

    def test_zero_budget_is_a_config_error(self, dbdir, tmp_path, capsys):
        stream = self.write_stream(tmp_path)
        assert main(["serve", dbdir, "--workload", stream,
                     "--budget", "0"]) == 2
        assert "budget" in capsys.readouterr().err
