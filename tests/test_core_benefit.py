"""Tests for configuration benefit evaluation (Sections III, VI-C)."""

import pytest

from repro.core.benefit import ConfigurationEvaluator
from repro.core.candidates import enumerate_basic_candidates
from repro.core.config import IndexConfiguration
from repro.core.generalization import generalize_candidates
from repro.optimizer import Optimizer
from repro.query import Workload
from repro.storage.index import IndexValueType


@pytest.fixture()
def setup(tpox_db, tpox_wl):
    optimizer = Optimizer(tpox_db)
    candidates = enumerate_basic_candidates(optimizer, tpox_wl)
    generalize_candidates(candidates)
    candidates.compute_sizes(tpox_db)
    evaluator = ConfigurationEvaluator(tpox_db, optimizer, tpox_wl)
    return candidates, evaluator


class TestBenefit:
    def test_empty_configuration_zero(self, setup):
        _, evaluator = setup
        assert evaluator.benefit(IndexConfiguration()) == 0.0

    def test_single_index_positive(self, setup):
        candidates, evaluator = setup
        symbol = candidates.get(("/Security/Symbol", IndexValueType.STRING))
        assert evaluator.benefit(IndexConfiguration([symbol])) > 0

    def test_useless_index_zero_benefit(self, setup, tpox_db, tpox_wl):
        from repro.core.candidates import CandidateSet
        from repro.xpath import parse_pattern

        _, evaluator = setup
        candidates = CandidateSet()
        useless = candidates.get_or_add(
            parse_pattern("/Security/Name"), IndexValueType.STRING, "SDOC"
        )
        useless.size_bytes = 100
        assert evaluator.benefit(IndexConfiguration([useless])) == 0.0

    def test_benefit_monotone_in_configuration(self, setup):
        """For a query-only workload, adding an index never hurts."""
        candidates, evaluator = setup
        config = IndexConfiguration()
        previous = 0.0
        for candidate in candidates.basics():
            config = config.with_candidate(candidate)
            current = evaluator.benefit(config)
            assert current >= previous - 1e-9
            previous = current

    def test_benefit_bounded_by_base_cost(self, setup):
        candidates, evaluator = setup
        config = IndexConfiguration(list(candidates))
        assert evaluator.benefit(config) <= evaluator.total_base_cost()

    def test_workload_cost_identity(self, setup):
        candidates, evaluator = setup
        config = IndexConfiguration(candidates.basics())
        assert evaluator.workload_cost(config) == pytest.approx(
            evaluator.total_base_cost() - evaluator.benefit(config)
        )

    def test_speedup_at_least_one(self, setup):
        candidates, evaluator = setup
        config = IndexConfiguration(candidates.basics())
        assert evaluator.estimated_speedup(config) >= 1.0
        assert evaluator.estimated_speedup(IndexConfiguration()) == pytest.approx(1.0)


class TestSubConfigurationDecomposition:
    def test_matches_naive_evaluation(self, tpox_db, tpox_wl):
        """The efficient evaluation must return exactly the same benefit
        as re-optimizing the entire workload."""
        optimizer = Optimizer(tpox_db)
        candidates = enumerate_basic_candidates(optimizer, tpox_wl)
        generalize_candidates(candidates)
        candidates.compute_sizes(tpox_db)
        fast = ConfigurationEvaluator(tpox_db, Optimizer(tpox_db), tpox_wl)
        naive = ConfigurationEvaluator(
            tpox_db, Optimizer(tpox_db), tpox_wl, naive=True
        )
        import itertools

        basics = candidates.basics()
        for size in (1, 2, 3):
            for combo in itertools.islice(itertools.combinations(basics, size), 6):
                config = IndexConfiguration(combo)
                assert fast.benefit(config) == pytest.approx(
                    naive.benefit(config)
                )

    def test_fewer_optimizer_calls_than_naive(self, tpox_db, tpox_wl):
        optimizer_fast = Optimizer(tpox_db)
        optimizer_naive = Optimizer(tpox_db)
        candidates = enumerate_basic_candidates(Optimizer(tpox_db), tpox_wl)
        candidates.compute_sizes(tpox_db)
        fast = ConfigurationEvaluator(tpox_db, optimizer_fast, tpox_wl)
        naive = ConfigurationEvaluator(
            tpox_db, optimizer_naive, tpox_wl, naive=True
        )
        basics = candidates.basics()
        configs = [IndexConfiguration(basics[: i + 1]) for i in range(len(basics))]
        for config in configs:
            fast.benefit(config)
            naive.benefit(config)
        assert optimizer_fast.calls < optimizer_naive.calls

    def test_cache_hits_on_repeat(self, setup):
        candidates, evaluator = setup
        config = IndexConfiguration(candidates.basics()[:3])
        evaluator.benefit(config)
        calls_after_first = evaluator.optimizer.calls
        evaluator.benefit(config)
        assert evaluator.optimizer.calls == calls_after_first  # fully cached

    def test_subconfigurations_group_by_affected_overlap(self, setup):
        candidates, evaluator = setup
        symbol = candidates.get(("/Security/Symbol", IndexValueType.STRING))
        order = candidates.get(("/FIXML/Order/@ID", IndexValueType.STRING))
        config = IndexConfiguration([symbol, order])
        groups = evaluator._sub_configurations(config)
        assert len(groups) == 2  # disjoint affected sets stay separate

    def test_interacting_candidates_grouped(self, setup):
        candidates, evaluator = setup
        yield_c = candidates.get(("/Security/Yield", IndexValueType.NUMERIC))
        sector = candidates.get(
            ("/Security/SecInfo/*/Sector", IndexValueType.STRING)
        )
        config = IndexConfiguration([yield_c, sector])
        groups = evaluator._sub_configurations(config)
        assert len(groups) == 1  # both enumerated from Q4 -> same group


class TestAffectedSets:
    def test_recomputed_for_new_workload(self, tpox_db, tpox_wl, setup):
        """A candidate trained on one workload gets fresh affected sets
        when evaluated against another (the Figure 4/5 requirement)."""
        candidates, _ = setup
        symbol = candidates.get(("/Security/Symbol", IndexValueType.STRING))
        other_wl = Workload.from_statements(
            ["""for $s in X('SDOC')/Security where $s/Symbol = "Z" return $s"""]
        )
        evaluator = ConfigurationEvaluator(tpox_db, Optimizer(tpox_db), other_wl)
        assert evaluator.affected_set(symbol) == frozenset({0})

    def test_general_candidate_affects_covered_statements(self, setup):
        candidates, evaluator = setup
        general = candidates.get(("/Security//*", IndexValueType.STRING))
        if general is None:
            pytest.skip("no /Security//* general generated")
        symbol = candidates.get(("/Security/Symbol", IndexValueType.STRING))
        assert evaluator.affected_set(symbol) <= evaluator.affected_set(general)
