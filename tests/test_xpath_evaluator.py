"""Tests for XPath evaluation over the node tree."""

import pytest

from repro.xmlmodel import parse_document
from repro.xpath import evaluate_path, parse_xpath
from repro.xpath.ast import Literal
from repro.xpath.evaluator import compare_value

DOC = parse_document(
    """
<Security id="s1">
  <Symbol>IBM</Symbol>
  <Yield>4.8</Yield>
  <SecInfo>
    <Industrial>
      <Sector>Energy</Sector>
      <Sector>Utilities</Sector>
    </Industrial>
  </SecInfo>
  <Price><Ask>105.5</Ask><Bid>104.0</Bid></Price>
  <Nested><Nested><Leaf>deep</Leaf></Nested></Nested>
</Security>
""",
    doc_id=1,
)


def values(expr, context=DOC):
    return [n.string_value() for n in evaluate_path(context, parse_xpath(expr))]


class TestNavigation:
    def test_child_path(self):
        assert values("/Security/Symbol") == ["IBM"]

    def test_missing_path_empty(self):
        assert values("/Security/Nope") == []

    def test_wrong_root_empty(self):
        assert values("/Other/Symbol") == []

    def test_wildcard_step(self):
        assert values("/Security/SecInfo/*/Sector") == ["Energy", "Utilities"]

    def test_descendant_axis(self):
        assert values("/Security//Sector") == ["Energy", "Utilities"]

    def test_descendant_from_root(self):
        assert values("//Leaf") == ["deep"]

    def test_descendant_recursive_element(self):
        # both Nested elements are reachable; inner contains "deep"
        nodes = evaluate_path(DOC, parse_xpath("//Nested"))
        assert len(nodes) == 2

    def test_attribute_step(self):
        assert values("/Security/@id") == ["s1"]

    def test_descendant_attribute_includes_self(self):
        root = DOC.root
        nodes = evaluate_path(root, parse_xpath(".//@id"))
        assert [n.value for n in nodes] == ["s1"]

    def test_document_order_and_dedup(self):
        nodes = evaluate_path(DOC, parse_xpath("//Sector"))
        ids = [n.node_id for n in nodes]
        assert ids == sorted(ids)
        assert len(set(ids)) == len(ids)

    def test_relative_path_from_node(self):
        (sec_info,) = evaluate_path(DOC, parse_xpath("/Security/SecInfo"))
        assert [
            n.string_value()
            for n in evaluate_path(sec_info, parse_xpath("Industrial/Sector"))
        ] == ["Energy", "Utilities"]

    def test_relative_path_needs_context(self):
        with pytest.raises(ValueError):
            evaluate_path(DOC, parse_xpath("Symbol"))

    def test_absolute_path_restarts_from_root(self):
        (symbol,) = evaluate_path(DOC, parse_xpath("/Security/Symbol"))
        assert values("/Security/Yield", context=symbol) == ["4.8"]


class TestPredicates:
    def test_numeric_comparison_true(self):
        assert values("/Security[Yield>4.5]/Symbol") == ["IBM"]

    def test_numeric_comparison_false(self):
        assert values("/Security[Yield>5.0]/Symbol") == []

    def test_string_equality(self):
        assert values('/Security[Symbol="IBM"]/Yield') == ["4.8"]

    def test_existential_semantics_multiple_targets(self):
        # one Sector is "Energy", the predicate holds existentially
        assert values('/Security[SecInfo/Industrial/Sector="Energy"]/Symbol') == ["IBM"]

    def test_exists_predicate(self):
        assert values("/Security[SecInfo]/Symbol") == ["IBM"]
        assert values("/Security[Missing]/Symbol") == []

    def test_predicate_on_middle_step(self):
        assert values('/Security/Price[Ask>100]/Bid') == ["104.0"]
        assert values('/Security/Price[Ask>200]/Bid') == []

    def test_attribute_predicate(self):
        assert values('/Security[@id="s1"]/Symbol') == ["IBM"]
        assert values('/Security[@id="nope"]/Symbol') == []

    def test_not_equal(self):
        assert values('/Security[Symbol!="MSFT"]/Symbol') == ["IBM"]

    def test_numeric_on_non_numeric_never_matches(self):
        assert values("/Security[Symbol>5]/Symbol") == []


class TestCompareValue:
    @pytest.mark.parametrize(
        "value,op,literal,expected",
        [
            (4.5, "=", Literal(4.5), True),
            (4.5, "<", Literal(5.0), True),
            (4.5, ">=", Literal(4.5), True),
            (4.5, "!=", Literal(4.5), False),
            ("4.5", ">", Literal(4.0), True),  # numeric coercion of text
            ("abc", ">", Literal(4.0), False),  # non-numeric never matches
            ("IBM", "=", Literal("IBM"), True),
            ("IBM", "<", Literal("MSFT"), True),  # lexicographic
            (4.0, "=", Literal("4"), True),  # numeric value vs string literal
        ],
    )
    def test_compare(self, value, op, literal, expected):
        assert compare_value(value, op, literal) is expected

    def test_unsupported_operator(self):
        with pytest.raises(ValueError):
            compare_value(1.0, "~", Literal(1.0))
