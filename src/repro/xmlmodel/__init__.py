"""XML document model: a from-scratch node tree, parser, and serializer.

This package is the lowest substrate layer of the reproduction.  The paper's
prototype runs inside IBM DB2 pureXML, whose storage layer parses XML text
into a native node tree with document-order node identifiers.  Everything
above (indexes, statistics, the optimizer, and finally the index advisor)
manipulates these nodes, so we implement the same model here:

* :class:`XmlNode` -- an element, attribute, or text node with a
  document-order ``node_id``, parent/children links, and typed-value access.
* :class:`XmlDocument` -- a parsed document with its node table.
* :func:`parse_document` / :func:`parse_fragment` -- a recursive-descent XML
  parser (elements, attributes, text, CDATA, comments, processing
  instructions, and the five predefined entities).
* :func:`serialize` -- node tree back to XML text.
"""

from repro.xmlmodel.nodes import NodeKind, XmlDocument, XmlNode
from repro.xmlmodel.parser import XmlParseError, parse_document, parse_fragment
from repro.xmlmodel.serializer import serialize

__all__ = [
    "NodeKind",
    "XmlDocument",
    "XmlNode",
    "XmlParseError",
    "parse_document",
    "parse_fragment",
    "serialize",
]
