"""Serialize a node tree back to XML text."""

from __future__ import annotations

from typing import List

from repro.xmlmodel.nodes import NodeKind, XmlNode


def _escape_text(value: str) -> str:
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def _escape_attribute(value: str) -> str:
    return _escape_text(value).replace('"', "&quot;")


def serialize(node: XmlNode, indent: int = 0, pretty: bool = False) -> str:
    """Serialize ``node`` (an element, text, or document node) to XML text.

    With ``pretty=True`` elements are newline-separated and indented by two
    spaces per level; text content is emitted inline either way.
    """
    if node.kind is NodeKind.DOCUMENT:
        return "".join(serialize(c, indent, pretty) for c in node.children)
    if node.kind is NodeKind.TEXT:
        return _escape_text(node.value or "")
    if node.kind is NodeKind.ATTRIBUTE:
        return f'{node.name}="{_escape_attribute(node.value or "")}"'

    pad = "  " * indent if pretty else ""
    newline = "\n" if pretty else ""
    attrs = "".join(
        f' {a.name}="{_escape_attribute(a.value or "")}"' for a in node.attributes
    )
    if not node.children:
        return f"{pad}<{node.name}{attrs}/>{newline}"

    has_element_children = any(c.kind is NodeKind.ELEMENT for c in node.children)
    parts: List[str] = [f"{pad}<{node.name}{attrs}>"]
    if pretty and has_element_children:
        parts.append("\n")
        for child in node.children:
            if child.kind is NodeKind.ELEMENT:
                parts.append(serialize(child, indent + 1, pretty))
            else:
                parts.append("  " * (indent + 1) + _escape_text(child.value or "") + "\n")
        parts.append(f"{pad}</{node.name}>{newline}")
    else:
        for child in node.children:
            parts.append(serialize(child, 0, False))
        parts.append(f"</{node.name}>{newline}")
    return "".join(parts)
