"""Node tree for XML documents.

The model follows what an XML database storage layer keeps per node: a
document-order node identifier (used by indexes as the "row id" of a node),
the node kind, the element/attribute name, parent and children links, and the
text value for leaves.  Node identifiers are dense integers assigned in
document order, so ``node_id`` comparisons give document order for free.
"""

from __future__ import annotations

import enum
from typing import Iterator, List, Optional, Tuple


class NodeKind(enum.Enum):
    """Kind of an :class:`XmlNode`."""

    DOCUMENT = "document"
    ELEMENT = "element"
    ATTRIBUTE = "attribute"
    TEXT = "text"


class XmlNode:
    """A single node in an XML document tree.

    Attributes:
        kind: The :class:`NodeKind` of this node.
        name: Element or attribute name (``None`` for text nodes).
        value: Text content for text and attribute nodes.
        parent: Parent node, or ``None`` for the document node.
        children: Child element/text nodes in document order.
        attributes: Attribute nodes of an element.
        node_id: Dense document-order identifier, assigned by
            :class:`XmlDocument`.
    """

    __slots__ = (
        "kind",
        "name",
        "value",
        "parent",
        "children",
        "attributes",
        "node_id",
    )

    def __init__(
        self,
        kind: NodeKind,
        name: Optional[str] = None,
        value: Optional[str] = None,
    ) -> None:
        self.kind = kind
        self.name = name
        self.value = value
        self.parent: Optional[XmlNode] = None
        self.children: List[XmlNode] = []
        self.attributes: List[XmlNode] = []
        self.node_id: int = -1

    # ------------------------------------------------------------------
    # Tree construction
    # ------------------------------------------------------------------
    def append_child(self, child: "XmlNode") -> "XmlNode":
        """Attach ``child`` as the last child of this node and return it."""
        if child.kind is NodeKind.ATTRIBUTE:
            raise ValueError("attributes must be added with set_attribute()")
        child.parent = self
        self.children.append(child)
        return child

    def set_attribute(self, name: str, value: str) -> "XmlNode":
        """Attach an attribute node ``name="value"`` to this element."""
        if self.kind is not NodeKind.ELEMENT:
            raise ValueError("only elements can carry attributes")
        attr = XmlNode(NodeKind.ATTRIBUTE, name=name, value=value)
        attr.parent = self
        self.attributes.append(attr)
        return attr

    # ------------------------------------------------------------------
    # Navigation
    # ------------------------------------------------------------------
    def child_elements(self) -> Iterator["XmlNode"]:
        """Iterate over element children in document order."""
        for child in self.children:
            if child.kind is NodeKind.ELEMENT:
                yield child

    def descendants_or_self(self) -> Iterator["XmlNode"]:
        """Iterate over this element and all descendant elements, in
        document order."""
        stack = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed([c for c in node.children if c.kind is NodeKind.ELEMENT]))

    def attribute(self, name: str) -> Optional["XmlNode"]:
        """Return the attribute node with ``name``, or ``None``."""
        for attr in self.attributes:
            if attr.name == name:
                return attr
        return None

    def tag_path(self) -> Tuple[str, ...]:
        """Return the rooted tag path of this node, e.g. ``("Security",
        "Yield")`` -- the sequence of element names from the document root
        down to this node (attributes contribute ``@name``)."""
        parts: List[str] = []
        node: Optional[XmlNode] = self
        while node is not None and node.kind is not NodeKind.DOCUMENT:
            if node.kind is NodeKind.ATTRIBUTE:
                parts.append("@" + (node.name or ""))
            elif node.kind is NodeKind.ELEMENT:
                parts.append(node.name or "")
            node = node.parent
        return tuple(reversed(parts))

    # ------------------------------------------------------------------
    # Values
    # ------------------------------------------------------------------
    def string_value(self) -> str:
        """The concatenated text content of this node (XPath string value)."""
        if self.kind in (NodeKind.TEXT, NodeKind.ATTRIBUTE):
            return self.value or ""
        parts: List[str] = []
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            if node.kind is NodeKind.TEXT:
                parts.append(node.value or "")
            else:
                stack.extend(reversed(node.children))
        return "".join(parts)

    def typed_value(self) -> object:
        """The string value coerced to ``float`` when it parses as a number,
        mirroring how a typed XML value index keys its entries."""
        text = self.string_value().strip()
        try:
            return float(text)
        except ValueError:
            return text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.kind is NodeKind.ELEMENT:
            return f"<XmlNode element {self.name!r} id={self.node_id}>"
        if self.kind is NodeKind.ATTRIBUTE:
            return f"<XmlNode attribute {self.name!r}={self.value!r}>"
        if self.kind is NodeKind.TEXT:
            return f"<XmlNode text {self.value!r}>"
        return f"<XmlNode document id={self.node_id}>"


class XmlDocument:
    """A parsed XML document: a document node plus its node table.

    The constructor walks the tree and assigns dense document-order
    ``node_id`` values (document node gets 0).  ``nodes[node_id]`` recovers
    any node from its identifier, which is how index entries point back into
    the document.
    """

    __slots__ = ("doc_id", "document_node", "nodes", "_synopsis")

    def __init__(self, root_element: XmlNode, doc_id: int = -1) -> None:
        if root_element.kind is not NodeKind.ELEMENT:
            raise ValueError("document root must be an element node")
        self.doc_id = doc_id
        self.document_node = XmlNode(NodeKind.DOCUMENT)
        self.document_node.append_child(root_element)
        self.nodes: List[XmlNode] = []
        #: Cached per-document path synopsis (see
        #: :mod:`repro.storage.synopsis`); built lazily, derived data only.
        self._synopsis = None
        self._assign_node_ids()

    def __getstate__(self):
        # ``nodes`` is rebuilt from the tree and the synopsis is derived
        # data whose cached interned path ids are process-local; shipping
        # either across a process boundary would be redundant or wrong.
        return (self.doc_id, self.document_node)

    def __setstate__(self, state) -> None:
        self.doc_id, self.document_node = state
        self._synopsis = None
        self._assign_node_ids()

    def _assign_node_ids(self) -> None:
        self.nodes = []
        stack = [self.document_node]
        while stack:
            node = stack.pop()
            node.node_id = len(self.nodes)
            self.nodes.append(node)
            # Attributes come right after their owner element, before children,
            # matching the document-order convention used by XML stores.
            pending = list(node.attributes) + list(node.children)
            stack.extend(reversed(pending))

    @property
    def root(self) -> XmlNode:
        """The root element of the document."""
        for child in self.document_node.children:
            if child.kind is NodeKind.ELEMENT:
                return child
        raise ValueError("document has no root element")

    def node_count(self) -> int:
        """Total number of nodes (document, elements, attributes, text)."""
        return len(self.nodes)

    def element_count(self) -> int:
        """Number of element nodes in the document."""
        return sum(1 for n in self.nodes if n.kind is NodeKind.ELEMENT)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<XmlDocument doc_id={self.doc_id} root={self.root.name!r} nodes={len(self.nodes)}>"


def element(name: str, *children: XmlNode, text: Optional[str] = None, **attrs: str) -> XmlNode:
    """Convenience constructor for building trees in tests and generators.

    ``element("Security", element("Yield", text="4.5"))`` builds
    ``<Security><Yield>4.5</Yield></Security>``.
    """
    node = XmlNode(NodeKind.ELEMENT, name=name)
    for key, value in attrs.items():
        node.set_attribute(key, value)
    if text is not None:
        node.append_child(XmlNode(NodeKind.TEXT, value=text))
    for child in children:
        node.append_child(child)
    return node
