"""A from-scratch recursive-descent XML parser.

Supports the subset of XML 1.0 an XML database ingests in practice:
elements, attributes (single- or double-quoted), character data, CDATA
sections, comments, processing instructions, the XML declaration, and the
five predefined entities plus decimal/hex character references.  DTDs are
recognized and skipped.  Namespace prefixes are kept as part of the name
(prefix:local), matching how our index patterns treat names.

The parser reports errors with line/column positions via
:class:`XmlParseError`.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.xmlmodel.nodes import NodeKind, XmlDocument, XmlNode

_PREDEFINED_ENTITIES = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START_EXTRA = "_:"
_NAME_EXTRA = "_:.-"


class XmlParseError(ValueError):
    """Raised when the input is not well-formed XML."""

    def __init__(self, message: str, line: int, column: int) -> None:
        super().__init__(f"{message} (line {line}, column {column})")
        self.line = line
        self.column = column


def _is_name_start(ch: str) -> bool:
    return ch.isalpha() or ch in _NAME_START_EXTRA


def _is_name_char(ch: str) -> bool:
    return ch.isalnum() or ch in _NAME_EXTRA


class _Parser:
    """Cursor-based parser over the raw XML text."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.length = len(text)

    # ------------------------------------------------------------------
    # Low-level cursor helpers
    # ------------------------------------------------------------------
    def _location(self) -> Tuple[int, int]:
        line = self.text.count("\n", 0, self.pos) + 1
        last_nl = self.text.rfind("\n", 0, self.pos)
        column = self.pos - last_nl
        return line, column

    def _error(self, message: str) -> XmlParseError:
        line, column = self._location()
        return XmlParseError(message, line, column)

    def _peek(self) -> str:
        if self.pos >= self.length:
            raise self._error("unexpected end of input")
        return self.text[self.pos]

    def _at_end(self) -> bool:
        return self.pos >= self.length

    def _startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def _expect(self, token: str) -> None:
        if not self._startswith(token):
            raise self._error(f"expected {token!r}")
        self.pos += len(token)

    def _skip_whitespace(self) -> None:
        while self.pos < self.length and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def _read_name(self) -> str:
        if self._at_end() or not _is_name_start(self._peek()):
            raise self._error("expected a name")
        start = self.pos
        self.pos += 1
        while self.pos < self.length and _is_name_char(self.text[self.pos]):
            self.pos += 1
        return self.text[start : self.pos]

    # ------------------------------------------------------------------
    # Entities and text
    # ------------------------------------------------------------------
    def _read_reference(self) -> str:
        self._expect("&")
        end = self.text.find(";", self.pos)
        if end == -1:
            raise self._error("unterminated entity reference")
        body = self.text[self.pos : end]
        self.pos = end + 1
        if body.startswith("#x") or body.startswith("#X"):
            try:
                return chr(int(body[2:], 16))
            except ValueError:
                raise self._error(f"bad character reference &{body};") from None
        if body.startswith("#"):
            try:
                return chr(int(body[1:]))
            except ValueError:
                raise self._error(f"bad character reference &{body};") from None
        if body in _PREDEFINED_ENTITIES:
            return _PREDEFINED_ENTITIES[body]
        raise self._error(f"unknown entity &{body};")

    def _read_text(self) -> str:
        parts: List[str] = []
        while self.pos < self.length:
            ch = self.text[self.pos]
            if ch == "<":
                break
            if ch == "&":
                parts.append(self._read_reference())
            else:
                parts.append(ch)
                self.pos += 1
        return "".join(parts)

    def _read_attribute_value(self) -> str:
        quote = self._peek()
        if quote not in "\"'":
            raise self._error("attribute value must be quoted")
        self.pos += 1
        parts: List[str] = []
        while True:
            if self._at_end():
                raise self._error("unterminated attribute value")
            ch = self.text[self.pos]
            if ch == quote:
                self.pos += 1
                return "".join(parts)
            if ch == "&":
                parts.append(self._read_reference())
            else:
                parts.append(ch)
                self.pos += 1

    # ------------------------------------------------------------------
    # Markup
    # ------------------------------------------------------------------
    def _skip_misc(self) -> None:
        """Skip whitespace, comments, PIs, and doctype between markup."""
        while True:
            self._skip_whitespace()
            if self._startswith("<!--"):
                self._skip_comment()
            elif self._startswith("<?"):
                self._skip_pi()
            elif self._startswith("<!DOCTYPE"):
                self._skip_doctype()
            else:
                return

    def _skip_comment(self) -> None:
        self._expect("<!--")
        end = self.text.find("-->", self.pos)
        if end == -1:
            raise self._error("unterminated comment")
        self.pos = end + 3

    def _skip_pi(self) -> None:
        self._expect("<?")
        end = self.text.find("?>", self.pos)
        if end == -1:
            raise self._error("unterminated processing instruction")
        self.pos = end + 2

    def _skip_doctype(self) -> None:
        self._expect("<!DOCTYPE")
        depth = 1
        while depth > 0:
            if self._at_end():
                raise self._error("unterminated DOCTYPE")
            ch = self.text[self.pos]
            if ch == "<":
                depth += 1
            elif ch == ">":
                depth -= 1
            self.pos += 1

    def _read_cdata(self) -> str:
        self._expect("<![CDATA[")
        end = self.text.find("]]>", self.pos)
        if end == -1:
            raise self._error("unterminated CDATA section")
        data = self.text[self.pos : end]
        self.pos = end + 3
        return data

    def parse_element(self) -> XmlNode:
        """Parse one element (with its subtree) starting at ``<``."""
        self._expect("<")
        name = self._read_name()
        node = XmlNode(NodeKind.ELEMENT, name=name)
        # Attributes
        while True:
            self._skip_whitespace()
            if self._at_end():
                raise self._error(f"unterminated start tag <{name}>")
            ch = self._peek()
            if ch == ">":
                self.pos += 1
                break
            if self._startswith("/>"):
                self.pos += 2
                return node
            attr_name = self._read_name()
            self._skip_whitespace()
            self._expect("=")
            self._skip_whitespace()
            if node.attribute(attr_name) is not None:
                raise self._error(f"duplicate attribute {attr_name!r}")
            node.set_attribute(attr_name, self._read_attribute_value())
        # Content
        while True:
            if self._at_end():
                raise self._error(f"missing end tag </{name}>")
            if self._startswith("</"):
                self.pos += 2
                end_name = self._read_name()
                if end_name != name:
                    raise self._error(
                        f"mismatched end tag </{end_name}> for <{name}>"
                    )
                self._skip_whitespace()
                self._expect(">")
                return node
            if self._startswith("<!--"):
                self._skip_comment()
            elif self._startswith("<![CDATA["):
                data = self._read_cdata()
                if data:
                    node.append_child(XmlNode(NodeKind.TEXT, value=data))
            elif self._startswith("<?"):
                self._skip_pi()
            elif self._peek() == "<":
                node.append_child(self.parse_element())
            else:
                text = self._read_text()
                if text.strip():
                    node.append_child(XmlNode(NodeKind.TEXT, value=text))

    def parse_document_root(self) -> XmlNode:
        self._skip_misc()
        if self._at_end() or self._peek() != "<":
            raise self._error("expected root element")
        root = self.parse_element()
        self._skip_misc()
        if not self._at_end():
            raise self._error("content after document root")
        return root


def parse_fragment(text: str) -> XmlNode:
    """Parse ``text`` and return the root :class:`XmlNode` element."""
    return _Parser(text).parse_document_root()


def parse_document(text: str, doc_id: int = -1) -> XmlDocument:
    """Parse ``text`` into an :class:`XmlDocument` with node ids assigned."""
    return XmlDocument(parse_fragment(text), doc_id=doc_id)
