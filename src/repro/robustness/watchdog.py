"""Liveness counters for the supervised online advisor daemon.

The daemon (``repro.online``) is a long-running loop whose cycles can
fail without killing the process -- every failure is absorbed and the
loop keeps ingesting.  These two small counters make that supervision
observable and bounded:

* :class:`Heartbeat` -- a monotonic beat the daemon records on every
  ingested statement; its age tells an operator (or a test) whether the
  loop is still alive and how long ago it last made progress.
* :class:`Watchdog` -- consecutive-failure tracking over tuning cycles.
  Once ``limit`` cycles in a row have failed the watchdog *trips*: the
  daemon drops to its fallback algorithm (degraded tuning) until a cycle
  succeeds again.  Trips are counted, never fatal -- the daemon's
  contract is that no cycle failure ends the loop.

Both take an injectable ``clock`` so tests control time.
"""

from __future__ import annotations

import time
from typing import Callable, Dict, Optional


class Heartbeat:
    """Monotonic progress counter with a wall-clock age."""

    def __init__(self, clock: Callable[[], float] = time.monotonic) -> None:
        self.clock = clock
        self.beats = 0
        self.last_beat: Optional[float] = None

    def beat(self) -> int:
        """Record one unit of progress; returns the total beat count."""
        self.beats += 1
        self.last_beat = self.clock()
        return self.beats

    def age_seconds(self) -> Optional[float]:
        """Seconds since the last beat, or ``None`` before the first."""
        if self.last_beat is None:
            return None
        return self.clock() - self.last_beat

    def to_dict(self) -> Dict:
        age = self.age_seconds()
        return {
            "beats": self.beats,
            "age_seconds": None if age is None else round(age, 6),
        }


class Watchdog:
    """Consecutive-failure tracking with a trip threshold.

    ``record_failure``/``record_success`` are called once per supervised
    cycle; :attr:`tripped` stays True from the ``limit``-th consecutive
    failure until the next success.
    """

    def __init__(self, limit: int = 3) -> None:
        if limit <= 0:
            raise ValueError(f"watchdog limit must be positive, got {limit}")
        self.limit = limit
        self.consecutive_failures = 0
        self.total_failures = 0
        self.total_successes = 0
        #: Number of times the watchdog newly crossed its limit.
        self.trips = 0

    @property
    def tripped(self) -> bool:
        return self.consecutive_failures >= self.limit

    def record_success(self) -> None:
        self.total_successes += 1
        self.consecutive_failures = 0

    def record_failure(self) -> bool:
        """Record one failed cycle; returns True when this failure newly
        trips the watchdog."""
        self.consecutive_failures += 1
        self.total_failures += 1
        if self.consecutive_failures == self.limit:
            self.trips += 1
            return True
        return False

    def to_dict(self) -> Dict:
        return {
            "limit": self.limit,
            "consecutive_failures": self.consecutive_failures,
            "total_failures": self.total_failures,
            "total_successes": self.total_successes,
            "trips": self.trips,
            "tripped": self.tripped,
        }
