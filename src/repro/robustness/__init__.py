"""Resilient advisor runtime: fault injection, retry/degradation policy,
and deadline-bounded anytime search.

The tight optimizer coupling that gives the advisor its accuracy also
concentrates its failure surface: every phase of ``recommend()`` is a
chain of optimizer round-trips.  This package keeps the advisor alive
across that surface:

* :mod:`repro.robustness.errors` -- the typed error taxonomy
  (retryable / degradable / fatal) plus :class:`DegradedEstimate`.
* :mod:`repro.robustness.faults` -- deterministic, seeded fault
  injection at every fragile boundary (optimizer calls, statistics,
  persistence, workload parsing).
* :mod:`repro.robustness.policy` -- retry/timeout/backoff around the
  session's optimizer calls.
* :mod:`repro.robustness.budget` -- the anytime-search contract:
  deadlines, optimizer-call budgets, best-so-far truncation.
* :mod:`repro.robustness.checkpoint` -- crash-safe checkpoint/resume of
  search runs.
* :mod:`repro.robustness.watchdog` -- heartbeat/watchdog counters that
  make the online daemon's supervision observable.

See ``docs/robustness.md`` for the full contract.
"""

from repro.robustness.budget import (
    SearchBudget,
    call_budget_from_env,
    deadline_from_env,
    resolve_call_budget,
    resolve_deadline,
)
from repro.robustness.checkpoint import (
    CheckpointState,
    SearchCheckpoint,
    resolve_candidates,
)
from repro.robustness.errors import (
    AdvisorError,
    BudgetExhausted,
    ConfigError,
    CycleError,
    DegradedEstimate,
    FatalAdvisorError,
    JournalError,
    LifecycleError,
    OptimizerTimeout,
    PersistError,
    RetryableOptimizerError,
    StatisticsUnavailable,
    WorkloadParseError,
)
from repro.robustness.faults import (
    FaultInjector,
    FaultRule,
    InjectedFault,
    InjectedIOError,
    injected,
    install,
    maybe_inject,
    uninstall,
)
from repro.robustness.policy import NO_RETRY, RetryPolicy
from repro.robustness.watchdog import Heartbeat, Watchdog

__all__ = [
    "AdvisorError",
    "BudgetExhausted",
    "CheckpointState",
    "ConfigError",
    "CycleError",
    "DegradedEstimate",
    "FatalAdvisorError",
    "FaultInjector",
    "FaultRule",
    "Heartbeat",
    "InjectedFault",
    "InjectedIOError",
    "JournalError",
    "LifecycleError",
    "NO_RETRY",
    "OptimizerTimeout",
    "PersistError",
    "RetryPolicy",
    "RetryableOptimizerError",
    "SearchBudget",
    "SearchCheckpoint",
    "StatisticsUnavailable",
    "Watchdog",
    "WorkloadParseError",
    "call_budget_from_env",
    "deadline_from_env",
    "injected",
    "install",
    "maybe_inject",
    "resolve_call_budget",
    "resolve_candidates",
    "resolve_deadline",
    "uninstall",
]
