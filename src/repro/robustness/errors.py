"""Typed error taxonomy of the resilient advisor runtime.

The paper's tight coupling makes every advisor phase depend on repeated
optimizer round-trips, so a single failed or slow evaluation could sink an
entire ``recommend()`` run.  The taxonomy below partitions everything that
can go wrong into *retryable*, *degradable*, and *fatal*, so each layer of
the stack knows exactly which failures it may absorb:

* :class:`RetryableOptimizerError` -- a transient optimizer (or
  statistics) failure; the session's :class:`~repro.robustness.policy.
  RetryPolicy` retries it with backoff before falling back.
* :class:`DegradedEstimate` -- not an exception but the *record* of a
  fallback: when retries are exhausted the session answers from the
  decoupled baseline's heuristic cost model and tags the estimate.
* :class:`FatalAdvisorError` -- the only exception ``recommend()`` is
  allowed to raise for runtime failures: anything that can neither be
  retried nor degraded is wrapped into it with context.

Plus the edge-of-system errors: :class:`PersistError` for corrupt or
half-written on-disk databases, :class:`WorkloadParseError` for malformed
workload statements, :class:`ConfigError` for junk configuration input
(CLI flags and ``REPRO_*`` environment variables), and
:class:`BudgetExhausted`, the internal control signal of
deadline-bounded anytime search.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional


class AdvisorError(Exception):
    """Base class of every typed advisor-runtime error."""


class RetryableOptimizerError(AdvisorError):
    """A transient failure of an optimizer round-trip (evaluation,
    enumeration, or planning).  The session retries these under its
    :class:`~repro.robustness.policy.RetryPolicy` before degrading."""


class OptimizerTimeout(RetryableOptimizerError):
    """An optimizer call exceeded the policy's per-call timeout.  Treated
    exactly like any other retryable failure."""


class StatisticsUnavailable(RetryableOptimizerError):
    """A statistics lookup (RUNSTATS or derived virtual-index statistics)
    failed or is unavailable.  Retryable: the optimizer's cost model
    reads statistics mid-optimization, so a statistics fault inside an
    optimizer round-trip is retried (and ultimately degraded) like any
    other transient failure.  Direct consumers -- candidate sizing,
    maintenance charges, the fallback estimator -- catch it themselves
    and degrade to statistics-free defaults."""


class ConfigError(AdvisorError, ValueError):
    """An invalid configuration value: a malformed CLI flag or a junk
    environment variable (``REPRO_WORKERS``, ``REPRO_SHARDS``, ...).

    Subclasses :class:`ValueError` so call sites that predate the typed
    taxonomy keep working, while new code can catch the typed error and
    report the offending option by name."""

    def __init__(self, message: str, *, option: Optional[str] = None) -> None:
        if option is not None:
            message = f"{option}: {message}"
        super().__init__(message)
        self.option = option


class AdmissionRejected(AdvisorError):
    """A serving-layer request was refused admission: the tenant's
    budget pool is exhausted (optimizer-call quota spent) or its
    concurrent in-flight limit is reached.  Typed so front ends map it
    to a ``rejected`` response instead of a stack trace; carries the
    tenant and the machine-readable reason."""

    def __init__(
        self,
        message: str,
        *,
        tenant: str = "default",
        reason: str = "rejected",
    ) -> None:
        super().__init__(f"tenant {tenant!r}: {message}")
        self.tenant = tenant
        self.reason = reason


class FatalAdvisorError(AdvisorError):
    """An unrecoverable advisor failure.  ``recommend()`` raises nothing
    else for runtime faults: retryable errors are retried, degradable
    ones are absorbed, and whatever remains is wrapped into this type
    with the phase it escaped from."""

    def __init__(self, message: str, *, phase: Optional[str] = None) -> None:
        super().__init__(message)
        self.phase = phase


class PersistError(AdvisorError):
    """A corrupt, truncated, or unwritable on-disk database.  Always
    carries the offending path so the operator knows what to fix."""

    def __init__(self, message: str, *, path: Optional[str] = None) -> None:
        if path is not None:
            message = f"{message} (path: {path})"
        super().__init__(message)
        self.path = path


class LifecycleError(AdvisorError):
    """Base class of online-daemon lifecycle failures (the supervised
    ``repro serve`` loop, docs/robustness.md).  Never raised by the
    one-shot batch ``recommend()`` path."""


class CycleError(LifecycleError):
    """One tuning cycle failed past its retry and algorithm-fallback
    attempts.  The daemon's supervisor absorbs it -- the cycle is
    skipped, the watchdog records the failure, the materialized
    configuration is left untouched, and ingestion continues."""

    def __init__(self, message: str, *, cycle: Optional[int] = None) -> None:
        if cycle is not None:
            message = f"cycle {cycle}: {message}"
        super().__init__(message)
        self.cycle = cycle


class JournalError(PersistError):
    """A corrupt, truncated, or unwritable daemon journal.  Carries the
    journal path; ``repro serve --resume`` degrades to a fresh daemon
    (with a diagnostic) instead of refusing to start."""


class WorkloadParseError(AdvisorError):
    """A malformed workload statement (strict ingestion only; lenient
    ingestion records a diagnostic and skips the statement instead)."""


class BudgetExhausted(AdvisorError):
    """Internal control signal of anytime search: the deadline passed or
    the optimizer-call budget ran out.  Searchers catch it at loop
    boundaries and return their best-so-far configuration flagged
    ``truncated``; it never escapes ``recommend()``."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


@dataclass(frozen=True)
class DegradedEstimate:
    """The record of one degraded (fallback) cost estimate.

    Produced when an optimizer evaluation failed past retries, or when
    statistics were unavailable; the session keeps a bounded list of
    these and surfaces the count through its counters and
    ``Recommendation.to_dict()``.
    """

    site: str
    statement: str
    estimated_cost: float
    reason: str

    def to_dict(self) -> Dict:
        return {
            "site": self.site,
            "statement": self.statement,
            "estimated_cost": round(self.estimated_cost, 6),
            "reason": self.reason,
        }
