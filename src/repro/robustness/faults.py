"""Deterministic, seeded fault injection for the advisor runtime.

Every fragile boundary of the system calls :func:`maybe_inject` with a
dotted *site* name before doing real work:

===========================  ====================================================
site                         guarded operation
===========================  ====================================================
``optimizer.evaluate``       Evaluate-Indexes costing through the session
``optimizer.enumerate``      Enumerate-Indexes candidate generation
``optimizer.plan``           NORMAL-mode planning
``statistics.runstats``      RUNSTATS statistics collection
``statistics.derive``        derived virtual-index statistics
``persist.load``             reading database files from disk
``persist.save``             writing database files to disk
``workload.parse``           parsing one workload statement
``online.cycle``             entering one online-daemon tuning cycle
``online.apply``             materializing one online CREATE/DROP action
``serve.request``            admitting one serving-front-end request
``serve.portfolio``          running one portfolio search strategy lane
===========================  ====================================================

With no injector installed, :func:`maybe_inject` is a dictionary miss --
effectively free.  An injector is a set of :class:`FaultRule` objects,
each with a per-site seeded RNG, so the fault schedule for a given
``(seed, site)`` pair is *deterministic regardless of what other sites
do* -- the property the chaos tests rely on to replay failures.

Injectors can be installed three ways:

* explicitly, via :func:`install` / :func:`uninstall` or the
  :func:`injected` context manager (tests);
* from the environment (the CI chaos-smoke job):
  ``REPRO_FAULT_SEED=1337 REPRO_FAULT_RATE=0.01`` optionally with
  ``REPRO_FAULT_SITES=optimizer.evaluate,persist.save`` and
  ``REPRO_FAULT_STALL=0.001``;
* programmatically with exact schedules (``FaultRule(at={3, 7})`` fails
  exactly the 4th and 8th call at a site).
"""

from __future__ import annotations

import os
import random
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, FrozenSet, Iterable, List, Optional, Tuple

from repro.robustness.errors import (
    AdvisorError,
    RetryableOptimizerError,
    StatisticsUnavailable,
    WorkloadParseError,
)


class InjectedFault(RetryableOptimizerError):
    """The default exception an injector raises (retryable, so the
    session's policy gets to exercise its backoff path)."""

    def __init__(self, site: str, call_index: int) -> None:
        super().__init__(f"injected fault at {site!r} (call #{call_index})")
        self.site = site
        self.call_index = call_index


class InjectedIOError(OSError):
    """Injected persistence failure.  Subclasses :class:`OSError` so the
    persistence layer's ordinary I/O error handling catches it and wraps
    it into a :class:`~repro.robustness.errors.PersistError`."""

    def __init__(self, site: str, call_index: int) -> None:
        super().__init__(f"injected I/O fault at {site!r} (call #{call_index})")
        self.site = site
        self.call_index = call_index


def _default_exception(site: str, call_index: int) -> Exception:
    """Map a site to its natural failure type."""
    if site.startswith("statistics"):
        return StatisticsUnavailable(
            f"injected statistics fault at {site!r} (call #{call_index})"
        )
    if site.startswith("persist"):
        return InjectedIOError(site, call_index)
    if site.startswith("workload"):
        return WorkloadParseError(
            f"injected parse fault at {site!r} (call #{call_index})"
        )
    return InjectedFault(site, call_index)


@dataclass
class FaultRule:
    """One site's fault schedule.

    ``site`` is a prefix match (``"optimizer"`` covers every optimizer
    site).  Faults fire either randomly at ``rate`` (seeded per site) or
    exactly at the 0-based call indices in ``at``.  ``stall_seconds``
    sleeps before (possibly) failing, modelling a slow dependency;
    ``kind="stall"`` stalls without failing.  ``limit`` caps the total
    number of failures the rule may inject.
    """

    site: str
    rate: float = 1.0
    at: Optional[FrozenSet[int]] = None
    kind: str = "error"  # "error" | "stall"
    stall_seconds: float = 0.0
    limit: Optional[int] = None
    exception: Optional[Callable[[str, int], Exception]] = None

    def __post_init__(self) -> None:
        if self.at is not None:
            self.at = frozenset(self.at)
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"fault rate must be in [0, 1], got {self.rate}")
        if self.kind not in ("error", "stall"):
            raise ValueError(f"unknown fault kind {self.kind!r}")

    def matches(self, site: str) -> bool:
        return site == self.site or site.startswith(self.site + ".")


class FaultInjector:
    """A deterministic fault schedule over named sites.

    One seeded RNG per (rule, site) pair: the decision sequence for each
    site depends only on the injector's seed and that site's own call
    count, never on the interleaving of other sites.
    """

    def __init__(self, rules: Iterable[FaultRule], seed: int = 0) -> None:
        self.rules: List[FaultRule] = list(rules)
        self.seed = seed
        self.calls: Dict[str, int] = {}
        self.injected: Dict[str, int] = {}
        self._injected_by_rule: Dict[int, int] = {}
        self._rngs: Dict[Tuple[int, str], random.Random] = {}
        self._sleep = time.sleep

    def _rng(self, rule_index: int, site: str) -> random.Random:
        key = (rule_index, site)
        rng = self._rngs.get(key)
        if rng is None:
            rng = random.Random(f"{self.seed}:{rule_index}:{site}")
            self._rngs[key] = rng
        return rng

    def check(self, site: str) -> None:
        """Fail or stall if the schedule says so; count the call either
        way.  Raises the rule's exception (default: retryable
        :class:`InjectedFault`, or the site's natural failure type)."""
        call_index = self.calls.get(site, 0)
        self.calls[site] = call_index + 1
        for rule_index, rule in enumerate(self.rules):
            if not rule.matches(site):
                continue
            if rule.limit is not None and (
                self._injected_by_rule.get(rule_index, 0) >= rule.limit
            ):
                continue
            if rule.at is not None:
                fire = call_index in rule.at
            elif rule.rate >= 1.0:
                fire = True
            else:
                fire = self._rng(rule_index, site).random() < rule.rate
            if not fire:
                continue
            self._injected_by_rule[rule_index] = (
                self._injected_by_rule.get(rule_index, 0) + 1
            )
            self.injected[site] = self.injected.get(site, 0) + 1
            if rule.stall_seconds > 0.0:
                self._sleep(rule.stall_seconds)
            if rule.kind == "stall":
                continue  # stall only; no failure
            factory = rule.exception or _default_exception
            raise factory(site, call_index)

    def total_injected(self) -> int:
        return sum(self.injected.values())


# ---------------------------------------------------------------------------
# Installation
# ---------------------------------------------------------------------------

_ACTIVE: Optional[FaultInjector] = None
#: Sentinel distinguishing "env not parsed yet" from "env has no injector".
_ENV_UNPARSED = object()
_FROM_ENV: object = _ENV_UNPARSED


def install(injector: FaultInjector) -> FaultInjector:
    """Install ``injector`` as the process-wide fault source (replacing
    any previous one, including an environment-derived one)."""
    global _ACTIVE
    _ACTIVE = injector
    return injector


def uninstall() -> None:
    """Remove the installed injector (environment-derived injection, if
    configured, becomes visible again)."""
    global _ACTIVE
    _ACTIVE = None


@contextmanager
def injected(injector: FaultInjector):
    """Scope an injector to a ``with`` block (tests' preferred form)."""
    global _ACTIVE
    previous = _ACTIVE
    install(injector)
    try:
        yield injector
    finally:
        _ACTIVE = previous


def from_env(environ=os.environ) -> Optional[FaultInjector]:
    """Build an injector from ``REPRO_FAULT_*`` environment variables
    (the CI chaos-smoke job's entry point), or ``None`` when unset."""
    seed_text = environ.get("REPRO_FAULT_SEED")
    if not seed_text:
        return None
    seed = int(seed_text)
    rate = float(environ.get("REPRO_FAULT_RATE", "0.01"))
    stall = float(environ.get("REPRO_FAULT_STALL", "0"))
    sites_text = environ.get("REPRO_FAULT_SITES", "optimizer")
    rules = [
        FaultRule(site=site.strip(), rate=rate, stall_seconds=stall)
        for site in sites_text.split(",")
        if site.strip()
    ]
    return FaultInjector(rules, seed=seed)


def active() -> Optional[FaultInjector]:
    """The currently effective injector: an installed one, else the
    (cached) environment-derived one, else ``None``."""
    if _ACTIVE is not None:
        return _ACTIVE
    global _FROM_ENV
    if _FROM_ENV is _ENV_UNPARSED:
        _FROM_ENV = from_env()
    return _FROM_ENV  # type: ignore[return-value]


def maybe_inject(site: str) -> None:
    """The one call every guarded boundary makes.  No-op (one global
    read) when no injector is active."""
    injector = active()
    if injector is not None:
        injector.check(site)
