"""Deadline-bounded anytime search: the :class:`SearchBudget`.

CoPhy's argument (Dash et al., PAPERS.md) is that an index advisor must
stay interactive on large workloads: a time budget with a best-so-far
answer beats an all-or-nothing search.  A :class:`SearchBudget` carries
that contract through the searchers:

* a wall-clock **deadline** (``deadline_seconds``, measured from budget
  creation -- i.e. from ``recommend()`` entry);
* an **optimizer-call budget** (``optimizer_call_budget``, measured as a
  delta of the shared session's call counter);
* an optional **checkpoint** (:class:`~repro.robustness.checkpoint.
  SearchCheckpoint`) to which searchers publish best-so-far states,
  making a run crash-safe and resumable.

Searchers call :meth:`check` at loop boundaries; it raises
:class:`~repro.robustness.errors.BudgetExhausted` exactly once per
budget, and the searcher returns its current best configuration flagged
``truncated`` with the reason.  A budget with neither limit nor
checkpoint never raises and never touches the clock.
"""

from __future__ import annotations

import time
from typing import Callable, List, Optional, Tuple

from repro.robustness.checkpoint import CheckpointState, SearchCheckpoint
from repro.robustness.errors import BudgetExhausted


class SearchBudget:
    """Wall-clock + optimizer-call limits plus checkpointing for one
    search run."""

    def __init__(
        self,
        deadline_seconds: Optional[float] = None,
        optimizer_call_budget: Optional[int] = None,
        session=None,  # WhatIfSession; untyped to avoid a circular import
        checkpoint: Optional[SearchCheckpoint] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")
        if optimizer_call_budget is not None and optimizer_call_budget < 0:
            raise ValueError("optimizer_call_budget must be non-negative")
        if optimizer_call_budget is not None and session is None:
            raise ValueError("optimizer_call_budget requires a session")
        self.deadline_seconds = deadline_seconds
        self.optimizer_call_budget = optimizer_call_budget
        self.session = session
        self.checkpoint = checkpoint
        self.clock = clock
        self._started = clock() if deadline_seconds is not None else 0.0
        self._calls_at_start = (
            session.counters.optimizer_calls if session is not None else 0
        )
        #: Set when the budget first expires; also the searcher's
        #: ``truncated_reason``.
        self.exhausted_reason: Optional[str] = None

    # ------------------------------------------------------------------
    # Limits
    # ------------------------------------------------------------------
    @property
    def bounded(self) -> bool:
        return (
            self.deadline_seconds is not None
            or self.optimizer_call_budget is not None
        )

    def calls_used(self) -> int:
        if self.session is None:
            return 0
        return self.session.counters.optimizer_calls - self._calls_at_start

    def exhausted(self) -> Optional[str]:
        """The reason the budget is spent, or ``None``."""
        if self.exhausted_reason is not None:
            return self.exhausted_reason
        if (
            self.deadline_seconds is not None
            and self.clock() - self._started >= self.deadline_seconds
        ):
            self.exhausted_reason = (
                f"deadline of {self.deadline_seconds}s expired"
            )
        elif (
            self.optimizer_call_budget is not None
            and self.calls_used() >= self.optimizer_call_budget
        ):
            self.exhausted_reason = (
                f"optimizer-call budget of {self.optimizer_call_budget} spent"
            )
        return self.exhausted_reason

    def check(self) -> None:
        """Raise :class:`BudgetExhausted` when a limit is spent.
        Searchers call this at loop boundaries and catch it to return
        best-so-far."""
        reason = self.exhausted()
        if reason is not None:
            raise BudgetExhausted(reason)

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def note_best(
        self,
        algorithm: str,
        budget_bytes: int,
        configuration,
        benefit: Optional[float] = None,
        cursor: Optional[int] = None,
    ) -> None:
        """Publish a best-so-far configuration to the checkpoint (no-op
        without one)."""
        if self.checkpoint is None:
            return
        self.checkpoint.write(
            CheckpointState(
                algorithm=algorithm,
                budget_bytes=budget_bytes,
                candidate_keys=[
                    (str(c.pattern), c.value_type.value) for c in configuration
                ],
                benefit=benefit,
                cursor=cursor,
            )
        )

    def restore(
        self, algorithm: str, budget_bytes: int
    ) -> Optional[CheckpointState]:
        """The stored state for *this* search (same algorithm and disk
        budget), or ``None``.  A completed checkpoint is not resumed."""
        if self.checkpoint is None:
            return None
        state = self.checkpoint.load()
        if state is None or state.completed:
            return None
        if state.algorithm != algorithm or state.budget_bytes != budget_bytes:
            return None
        return state

    def mark_completed(
        self, algorithm: str, budget_bytes: int, configuration,
        benefit: Optional[float] = None,
    ) -> None:
        """Record that the search finished (a later run with the same
        checkpoint path starts fresh instead of resuming)."""
        if self.checkpoint is None:
            return
        self.checkpoint.write(
            CheckpointState(
                algorithm=algorithm,
                budget_bytes=budget_bytes,
                candidate_keys=[
                    (str(c.pattern), c.value_type.value) for c in configuration
                ],
                benefit=benefit,
                completed=True,
            )
        )
