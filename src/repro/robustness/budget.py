"""Deadline-bounded anytime search: the :class:`SearchBudget`.

CoPhy's argument (Dash et al., PAPERS.md) is that an index advisor must
stay interactive on large workloads: a time budget with a best-so-far
answer beats an all-or-nothing search.  A :class:`SearchBudget` carries
that contract through the searchers:

* a wall-clock **deadline** (``deadline_seconds``, measured from budget
  creation -- i.e. from ``recommend()`` entry);
* an **optimizer-call budget** (``optimizer_call_budget``, measured as a
  delta of the shared session's call counter);
* an optional **checkpoint** (:class:`~repro.robustness.checkpoint.
  SearchCheckpoint`) to which searchers publish best-so-far states,
  making a run crash-safe and resumable.

Searchers call :meth:`check` at loop boundaries; it raises
:class:`~repro.robustness.errors.BudgetExhausted` exactly once per
budget, and the searcher returns its current best configuration flagged
``truncated`` with the reason.  A budget with neither limit nor
checkpoint never raises and never touches the clock.
"""

from __future__ import annotations

import os
import time
from typing import Callable, List, Mapping, Optional, Tuple

from repro.robustness.checkpoint import CheckpointState, SearchCheckpoint
from repro.robustness.errors import BudgetExhausted, ConfigError


class SearchBudget:
    """Wall-clock + optimizer-call limits plus checkpointing for one
    search run."""

    def __init__(
        self,
        deadline_seconds: Optional[float] = None,
        optimizer_call_budget: Optional[int] = None,
        session=None,  # WhatIfSession; untyped to avoid a circular import
        checkpoint: Optional[SearchCheckpoint] = None,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if deadline_seconds is not None and deadline_seconds <= 0:
            raise ValueError("deadline_seconds must be positive")
        if optimizer_call_budget is not None and optimizer_call_budget < 0:
            raise ValueError("optimizer_call_budget must be non-negative")
        if optimizer_call_budget is not None and session is None:
            raise ValueError("optimizer_call_budget requires a session")
        self.deadline_seconds = deadline_seconds
        self.optimizer_call_budget = optimizer_call_budget
        self.session = session
        self.checkpoint = checkpoint
        self.clock = clock
        self._started = clock() if deadline_seconds is not None else 0.0
        self._calls_at_start = (
            session.counters.optimizer_calls if session is not None else 0
        )
        #: Set when the budget first expires; also the searcher's
        #: ``truncated_reason``.
        self.exhausted_reason: Optional[str] = None
        #: Non-fatal notes accumulated while the budget is in use (e.g. a
        #: corrupt checkpoint that was ignored); surfaced through
        #: ``Recommendation.diagnostics``.
        self.diagnostics: List[str] = []

    # ------------------------------------------------------------------
    # Limits
    # ------------------------------------------------------------------
    @property
    def bounded(self) -> bool:
        return (
            self.deadline_seconds is not None
            or self.optimizer_call_budget is not None
        )

    def calls_used(self) -> int:
        if self.session is None:
            return 0
        return self.session.counters.optimizer_calls - self._calls_at_start

    def exhausted(self) -> Optional[str]:
        """The reason the budget is spent, or ``None``."""
        if self.exhausted_reason is not None:
            return self.exhausted_reason
        if (
            self.deadline_seconds is not None
            and self.clock() - self._started >= self.deadline_seconds
        ):
            self.exhausted_reason = (
                f"deadline of {self.deadline_seconds}s expired"
            )
        elif (
            self.optimizer_call_budget is not None
            and self.calls_used() >= self.optimizer_call_budget
        ):
            self.exhausted_reason = (
                f"optimizer-call budget of {self.optimizer_call_budget} spent"
            )
        return self.exhausted_reason

    def check(self) -> None:
        """Raise :class:`BudgetExhausted` when a limit is spent.
        Searchers call this at loop boundaries and catch it to return
        best-so-far."""
        reason = self.exhausted()
        if reason is not None:
            raise BudgetExhausted(reason)

    def remaining_seconds(self) -> Optional[float]:
        """Wall-clock left on the deadline (``None`` when unbounded,
        floored at 0).  The serving layer's portfolio mode uses this to
        hand later sequential attempts only what is left of the request
        deadline."""
        if self.deadline_seconds is None:
            return None
        return max(
            0.0, self.deadline_seconds - (self.clock() - self._started)
        )

    # ------------------------------------------------------------------
    # Checkpointing
    # ------------------------------------------------------------------
    def note_best(
        self,
        algorithm: str,
        budget_bytes: int,
        configuration,
        benefit: Optional[float] = None,
        cursor: Optional[int] = None,
    ) -> None:
        """Publish a best-so-far configuration to the checkpoint (no-op
        without one)."""
        if self.checkpoint is None:
            return
        self.checkpoint.write(
            CheckpointState(
                algorithm=algorithm,
                budget_bytes=budget_bytes,
                candidate_keys=[
                    (str(c.pattern), c.value_type.value) for c in configuration
                ],
                benefit=benefit,
                cursor=cursor,
            )
        )

    def restore(
        self, algorithm: str, budget_bytes: int
    ) -> Optional[CheckpointState]:
        """The stored state for *this* search (same algorithm and disk
        budget), or ``None``.  A completed checkpoint is not resumed."""
        if self.checkpoint is None:
            return None
        state, diagnostic = self.checkpoint.load_for_resume()
        if diagnostic is not None:
            self.diagnostics.append(diagnostic)
        if state is None or state.completed:
            return None
        if state.algorithm != algorithm or state.budget_bytes != budget_bytes:
            return None
        return state

    def mark_completed(
        self, algorithm: str, budget_bytes: int, configuration,
        benefit: Optional[float] = None,
    ) -> None:
        """Record that the search finished (a later run with the same
        checkpoint path starts fresh instead of resuming)."""
        if self.checkpoint is None:
            return
        self.checkpoint.write(
            CheckpointState(
                algorithm=algorithm,
                budget_bytes=budget_bytes,
                candidate_keys=[
                    (str(c.pattern), c.value_type.value) for c in configuration
                ],
                benefit=benefit,
                completed=True,
            )
        )


# ----------------------------------------------------------------------
# Budget-limit resolution (CLI flags and REPRO_* environment fallbacks)
# ----------------------------------------------------------------------
def resolve_deadline(value, option: str = "deadline") -> Optional[float]:
    """Normalize a deadline spec to seconds (``None`` means unbounded).

    Accepts positive numbers, numeric strings, and
    ``none``/``off``/empty (unbounded).  Zero, negative, and junk input
    raise :class:`~repro.robustness.errors.ConfigError` naming the
    offending option, matching the ``REPRO_WORKERS`` treatment.
    """
    if value is None:
        return None
    if isinstance(value, bool):  # bool is an int; reject it explicitly
        raise ConfigError(f"invalid deadline {value!r}", option=option)
    if isinstance(value, (int, float)):
        seconds = float(value)
    else:
        text = str(value).strip().lower()
        if text in ("", "none", "off"):
            return None
        try:
            seconds = float(text)
        except ValueError:
            raise ConfigError(
                f"invalid deadline {value!r}: expected a positive number "
                f"of seconds or 'none'",
                option=option,
            ) from None
    if not seconds > 0:
        raise ConfigError(
            f"deadline must be positive, got {seconds!r}", option=option
        )
    return seconds


def resolve_call_budget(value, option: str = "call-budget") -> Optional[int]:
    """Normalize an optimizer-call budget to a positive int (``None``
    means unbounded).

    Accepts positive ints, digit strings, and ``none``/``off``/empty
    (unbounded).  Zero, negative, and junk input raise
    :class:`~repro.robustness.errors.ConfigError` -- a zero budget can
    never evaluate a single configuration, so it is operator error, not
    a degenerate bound.  (The programmatic :class:`SearchBudget` API
    still accepts 0 for truncation tests.)
    """
    if value is None:
        return None
    if isinstance(value, bool):
        raise ConfigError(f"invalid call budget {value!r}", option=option)
    if isinstance(value, int):
        calls = value
    else:
        text = str(value).strip().lower()
        if text in ("", "none", "off"):
            return None
        try:
            calls = int(text)
        except ValueError:
            raise ConfigError(
                f"invalid call budget {value!r}: expected a positive "
                f"integer or 'none'",
                option=option,
            ) from None
    if calls <= 0:
        raise ConfigError(
            f"call budget must be positive, got {calls}", option=option
        )
    return calls


def deadline_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> Optional[float]:
    """Deadline from ``REPRO_DEADLINE`` (absent/empty means unbounded)."""
    environ = os.environ if environ is None else environ
    return resolve_deadline(
        environ.get("REPRO_DEADLINE"), option="REPRO_DEADLINE"
    )


def call_budget_from_env(
    environ: Optional[Mapping[str, str]] = None,
) -> Optional[int]:
    """Optimizer-call budget from ``REPRO_CALL_BUDGET`` (absent/empty
    means unbounded)."""
    environ = os.environ if environ is None else environ
    return resolve_call_budget(
        environ.get("REPRO_CALL_BUDGET"), option="REPRO_CALL_BUDGET"
    )
