"""Crash-safe checkpoint/resume of a configuration search run.

A checkpoint records the best-so-far state of one search: the algorithm,
the disk budget, the chosen candidate keys, the tracked benefit, and (for
scan-shaped searchers) a cursor into the ranked candidate list.  Writes
are atomic (temp file + rename into place), so a crash mid-write leaves
the previous checkpoint intact; a corrupt or foreign checkpoint file is
reported as a :class:`~repro.robustness.errors.PersistError` rather than
a raw ``JSONDecodeError``.

Resume semantics per algorithm (see ``docs/robustness.md``):

* ``greedy`` / ``greedy_heuristics`` restart the ranked-candidate scan at
  the checkpoint's cursor with the checkpointed configuration already
  accepted (work between the last checkpoint and the crash is redone --
  checkpoints are written on acceptance, so redoing rejections is
  idempotent).
* ``topdown_lite`` / ``topdown_full`` re-enter the replacement loop from
  the checkpointed configuration (the loop is driven entirely by the
  current configuration, so this is exact).
* ``dp`` and ``exhaustive`` are single-shot and do not checkpoint.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.robustness.errors import PersistError
from repro.robustness.faults import maybe_inject

_CHECKPOINT_VERSION = 1


@dataclass
class CheckpointState:
    """The serializable best-so-far state of one search run."""

    algorithm: str
    budget_bytes: int
    candidate_keys: List[Tuple[str, str]]  # (pattern text, value-type value)
    benefit: Optional[float] = None
    cursor: Optional[int] = None
    completed: bool = False

    def to_dict(self) -> Dict:
        return {
            "version": _CHECKPOINT_VERSION,
            "algorithm": self.algorithm,
            "budget_bytes": self.budget_bytes,
            "candidate_keys": [list(key) for key in self.candidate_keys],
            "benefit": self.benefit,
            "cursor": self.cursor,
            "completed": self.completed,
        }

    @classmethod
    def from_dict(cls, data: Dict) -> "CheckpointState":
        return cls(
            algorithm=data["algorithm"],
            budget_bytes=data["budget_bytes"],
            candidate_keys=[tuple(key) for key in data["candidate_keys"]],
            benefit=data.get("benefit"),
            cursor=data.get("cursor"),
            completed=bool(data.get("completed", False)),
        )


class SearchCheckpoint:
    """Atomic on-disk persistence of a :class:`CheckpointState`."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.writes = 0

    def write(self, state: CheckpointState) -> None:
        """Write atomically: serialize to ``<path>.tmp`` then rename into
        place, so readers only ever see a complete checkpoint."""
        tmp_path = self.path + ".tmp"
        try:
            maybe_inject("persist.save")
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            with open(tmp_path, "w") as handle:
                json.dump(state.to_dict(), handle, indent=2)
            os.replace(tmp_path, self.path)
        except OSError as exc:
            raise PersistError(
                f"cannot write search checkpoint: {exc}", path=self.path
            ) from exc
        self.writes += 1

    def load(self) -> Optional[CheckpointState]:
        """The stored state, or ``None`` if no checkpoint exists yet.
        Corrupt/truncated files raise :class:`PersistError` with the
        path."""
        if not os.path.exists(self.path):
            return None
        try:
            maybe_inject("persist.load")
            with open(self.path) as handle:
                data = json.load(handle)
            if data.get("version") != _CHECKPOINT_VERSION:
                raise PersistError(
                    f"unsupported checkpoint version {data.get('version')!r}",
                    path=self.path,
                )
            return CheckpointState.from_dict(data)
        except PersistError:
            raise
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise PersistError(
                f"corrupt search checkpoint: {exc}", path=self.path
            ) from exc

    def load_for_resume(
        self,
    ) -> Tuple[Optional[CheckpointState], Optional[str]]:
        """Like :meth:`load`, but a corrupt/truncated/foreign checkpoint
        degrades to ``(None, diagnostic)`` instead of raising -- the
        caller falls back to a fresh search and surfaces the diagnostic.
        A missing checkpoint is ``(None, None)`` (nothing to report)."""
        try:
            return self.load(), None
        except PersistError as exc:
            return None, f"checkpoint ignored: {exc}"

    def clear(self) -> None:
        """Remove the checkpoint (after a completed run)."""
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass


def resolve_candidates(
    candidate_keys: List[Tuple[str, str]], candidates
) -> Optional[List]:
    """Map stored (pattern, value-type) keys back to live
    :class:`~repro.core.candidates.CandidateIndex` objects from
    ``candidates``.  Returns ``None`` when any key no longer resolves
    (workload or data changed since the checkpoint) -- the caller then
    falls back to a fresh search."""
    by_key = {
        (str(candidate.pattern), candidate.value_type.value): candidate
        for candidate in candidates
    }
    resolved = []
    for key in candidate_keys:
        candidate = by_key.get(tuple(key))
        if candidate is None:
            return None
        resolved.append(candidate)
    return resolved
