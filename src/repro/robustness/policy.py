"""Retry/timeout/backoff policy for optimizer round-trips.

One :class:`RetryPolicy` guards every optimizer call the
:class:`~repro.optimizer.session.WhatIfSession` makes.  Transient
failures (:class:`~repro.robustness.errors.RetryableOptimizerError`,
including injected faults and per-call timeouts) are retried with
exponential backoff; when attempts run out the error propagates to the
session, which degrades to the heuristic fallback estimator instead of
failing the run.

Backoff delays are tiny by default (the "optimizer" here is in-process;
the policy exists for the protocol, not for politeness to a remote
server) and the sleep/clock functions are injectable so tests run the
whole retry ladder in microseconds.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, TypeVar

from repro.robustness.errors import OptimizerTimeout, RetryableOptimizerError

T = TypeVar("T")


@dataclass
class RetryPolicy:
    """Bounded retries with exponential backoff and a per-call timeout.

    ``max_attempts`` counts the first try: ``max_attempts=3`` means one
    call plus at most two retries.  ``call_timeout_seconds`` (if set)
    converts an overlong *successful* call into an
    :class:`OptimizerTimeout` -- synchronous Python cannot interrupt a
    stalled call mid-flight, but flagging it keeps a stalling dependency
    from silently eating the whole run, and the anytime-search deadline
    bounds the total damage.
    """

    max_attempts: int = 3
    base_delay_seconds: float = 0.001
    backoff_multiplier: float = 2.0
    max_delay_seconds: float = 0.05
    call_timeout_seconds: Optional[float] = None
    sleep: Callable[[float], None] = time.sleep
    clock: Callable[[], float] = time.monotonic

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be at least 1")

    def delays(self) -> Iterator[float]:
        """The backoff delay before each retry (``max_attempts - 1``
        values)."""
        delay = self.base_delay_seconds
        for _ in range(self.max_attempts - 1):
            yield min(delay, self.max_delay_seconds)
            delay *= self.backoff_multiplier

    def run(
        self,
        call: Callable[[], T],
        on_retry: Optional[Callable[[Exception], None]] = None,
    ) -> T:
        """Invoke ``call`` under this policy.

        Retries on :class:`RetryableOptimizerError`; re-raises the last
        failure when attempts are exhausted.  ``on_retry`` is invoked
        once per *failed* attempt (the session counts these)."""
        delays = self.delays()
        while True:
            started = self.clock()
            try:
                result = call()
            except RetryableOptimizerError as exc:
                if on_retry is not None:
                    on_retry(exc)
                try:
                    delay = next(delays)
                except StopIteration:
                    raise exc
                if delay > 0:
                    self.sleep(delay)
                continue
            if (
                self.call_timeout_seconds is not None
                and self.clock() - started > self.call_timeout_seconds
            ):
                timeout = OptimizerTimeout(
                    f"optimizer call exceeded {self.call_timeout_seconds}s"
                )
                if on_retry is not None:
                    on_retry(timeout)
                try:
                    delay = next(delays)
                except StopIteration:
                    raise timeout
                if delay > 0:
                    self.sleep(delay)
                continue
            return result


#: Policy used when resilience is explicitly disabled: one attempt, no
#: timeout -- failures propagate immediately (ablations, debugging).
NO_RETRY = RetryPolicy(max_attempts=1)
