"""Cluster-side statement execution: scatter, route, gather.

A query over a sharded collection must visit every shard once; on each
shard the :class:`~repro.cluster.router.Router` picks the replica whose
index configuration prices the statement cheapest.  The
:class:`ClusterExecutor` runs one :class:`ShardExecutor` per routed
replica -- the plain :class:`~repro.optimizer.executor.Executor` with
the two DML seams overridden so writes stay cluster-correct:

* inserts route through :meth:`Cluster.insert_document` (shard by
  document key, one parse, applied to every replica of the owning
  shard);
* delete victims are found by scanning the routed replica, then
  translated from shard-local doc ids to document keys and deleted from
  *every* replica of the shard, keeping per-replica delta statistics
  and epoch invalidation correct on all copies.

Joins execute per shard (co-partitioned semantics): each shard joins
its own slice of both collections.  With one shard this is exact; with
several it is the standard local-join approximation -- pairs spanning
shards are not produced.

Gathered results sum ``rows``/``docs_examined``/``index_entries_scanned``
across shards, union ``used_indexes`` in first-use order, and
concatenate output in shard order, so a 1x1 cluster's results are
bit-identical to a single database's (pinned by
``tests/test_cluster_differential.py``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.optimizer.executor import ExecutionResult, Executor
from repro.query.model import InsertStatement, Statement


class ShardExecutor(Executor):
    """An :class:`Executor` bound to one replica of one shard, writing
    through the cluster."""

    def __init__(
        self,
        cluster,
        shard: int,
        replica: int,
        use_synopsis: Optional[bool] = None,
    ) -> None:
        super().__init__(
            cluster.replica_database(shard, replica),
            # Share the router's per-replica planning session, so
            # routing decisions and execution plans hit one cache.
            session=cluster.router.session_for(shard, replica),
            use_synopsis=use_synopsis,
        )
        self.cluster = cluster
        self.shard = shard
        self.replica = replica

    def _insert_document(self, collection_name: str, text: str) -> None:
        self.cluster.insert_document(collection_name, text)

    def _delete_documents(
        self, collection_name: str, doc_ids: List[int]
    ) -> None:
        for local_id in doc_ids:
            key = self.cluster.key_for(collection_name, self.shard, local_id)
            self.cluster.delete_document(collection_name, key)


class ClusterExecutor:
    """Executes statements against every shard of a cluster, routing
    each shard's work to its cost-cheapest replica."""

    def __init__(self, cluster, use_synopsis: Optional[bool] = None) -> None:
        self.cluster = cluster
        self.router = cluster.router
        self.use_synopsis = use_synopsis
        self._executors: Dict[Tuple[int, int], ShardExecutor] = {}

    def executor_for(self, shard: int, replica: int) -> ShardExecutor:
        key = (shard, replica)
        executor = self._executors.get(key)
        if executor is None:
            executor = ShardExecutor(
                self.cluster, shard, replica, use_synopsis=self.use_synopsis
            )
            self._executors[key] = executor
        return executor

    def execute(
        self, statement: Statement, collect_output: bool = False
    ) -> ExecutionResult:
        """Route and run one statement; gathered cluster-wide result."""
        if isinstance(statement, InsertStatement):
            if not statement.document_text:
                raise ValueError("insert statement has no document to insert")
            self.cluster.insert_document(
                statement.collection, statement.document_text
            )
            return ExecutionResult(statement=statement, rows=1, docs_examined=0)
        partials = []
        for shard, replica in self.router.route_statement(statement):
            partials.append(
                self.executor_for(shard, replica).execute(
                    statement, collect_output=collect_output
                )
            )
        return self._gather(statement, partials)

    @staticmethod
    def _gather(
        statement: Statement, partials: List[ExecutionResult]
    ) -> ExecutionResult:
        used: List[str] = []
        for partial in partials:
            for name in partial.used_indexes:
                if name not in used:
                    used.append(name)
        output: List[str] = []
        for partial in partials:
            output.extend(partial.output)
        return ExecutionResult(
            statement=statement,
            rows=sum(p.rows for p in partials),
            docs_examined=sum(p.docs_examined for p in partials),
            used_indexes=tuple(used),
            index_entries_scanned=sum(p.index_entries_scanned for p in partials),
            output=output,
        )
