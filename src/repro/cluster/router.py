"""Cost-based statement routing across a cluster's replicas.

Divergent replicas are only useful if each statement reaches the replica
whose index configuration serves it best.  The :class:`Router` prices a
statement on every replica of a shard through that replica's own
:class:`~repro.optimizer.session.WhatIfSession` -- NORMAL-mode planning
over the replica's *real* indexes, memoized per statement by the
session's cost cache, invalidated by the replica's modification counter
-- and routes to the cheapest one.  Ties (uniform configurations make
every replica tie) fall to the least-loaded replica, so uniform traffic
round-robins naturally; a costing failure falls back to an explicit
per-shard round-robin cursor.

Counters (``Router.counters()``, surfaced through ``cluster_stats`` /
``advise --stats``): per-replica statements routed, cost-routed vs
fallback-routed decisions, and routing cache hits (the session cache
traffic saved by re-routing an already-priced statement).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.optimizer.session import WhatIfSession
from repro.query.model import Statement
from repro.query.workload import Workload
from repro.robustness.errors import AdvisorError

#: Replica costs within this relative slack of the minimum are tied --
#: the load balancer picks among them.
TIE_EPSILON = 1e-9


class Router:
    """Routes statements to replicas; one per :class:`Cluster`."""

    def __init__(self, cluster, policy: str = "cost") -> None:
        if policy not in ("cost", "round_robin"):
            raise ValueError(
                f"unknown routing policy {policy!r}: "
                f"choose 'cost' or 'round_robin'"
            )
        self.cluster = cluster
        self.policy = policy
        #: One planning session per replica, built lazily (a replica's
        #: plans depend on its own real indexes, so sessions are never
        #: shared across replicas).
        self._sessions: Dict[Tuple[int, int], WhatIfSession] = {}
        #: Per-shard round-robin cursors (the fallback policy).
        self._cursors: List[int] = [0] * cluster.num_shards
        #: Accumulated frequency-weighted estimated cost per replica --
        #: the load signal the tie-breaker balances.
        self.load: Dict[str, float] = {}
        #: Statements routed per replica label.
        self.statements_routed: Dict[str, int] = {}
        self.cost_routed = 0
        self.fallback_routed = 0
        self.routing_cache_hits = 0

    # ------------------------------------------------------------------
    def session_for(self, shard: int, replica: int) -> WhatIfSession:
        key = (shard, replica)
        session = self._sessions.get(key)
        if session is None:
            session = WhatIfSession(
                self.cluster.replica_database(shard, replica)
            )
            self._sessions[key] = session
        return session

    def replica_cost(
        self, statement: Statement, shard: int, replica: int
    ) -> float:
        """NORMAL-mode estimated cost of ``statement`` on one replica
        (memoized by the replica session's plan cache)."""
        session = self.session_for(shard, replica)
        hits_before = session.counters.cache_hits
        cost = session.plan(statement).estimated_cost
        self.routing_cache_hits += session.counters.cache_hits - hits_before
        return cost

    # ------------------------------------------------------------------
    def route(
        self,
        statement: Statement,
        shard: int,
        frequency: float = 1.0,
    ) -> int:
        """Pick the replica of ``shard`` to serve ``statement``.

        Cost policy: cheapest replica; among replicas tied within
        :data:`TIE_EPSILON` of the minimum, the least-loaded (then the
        lowest index) wins.  Any costing failure -- and the explicit
        ``round_robin`` policy -- falls back to the per-shard cursor.
        """
        replica: Optional[int] = None
        if self.policy == "cost" and self.cluster.num_replicas > 1:
            try:
                replica = self._route_by_cost(statement, shard, frequency)
                self.cost_routed += 1
            except AdvisorError:
                replica = None
        elif self.policy == "cost":
            # One replica: no decision to make, but it still counts as a
            # cost-policy routing for the counters.
            replica = 0
            self.cost_routed += 1
        if replica is None:
            replica = self._cursors[shard]
            self._cursors[shard] = (replica + 1) % self.cluster.num_replicas
            self.fallback_routed += 1
        label = self.cluster.replica_label(shard, replica)
        self.statements_routed[label] = (
            self.statements_routed.get(label, 0) + 1
        )
        return replica

    def _route_by_cost(
        self, statement: Statement, shard: int, frequency: float
    ) -> int:
        costs = [
            self.replica_cost(statement, shard, replica)
            for replica in range(self.cluster.num_replicas)
        ]
        cheapest = min(costs)
        slack = abs(cheapest) * TIE_EPSILON
        best: Optional[int] = None
        best_load = 0.0
        for replica, cost in enumerate(costs):
            if cost > cheapest + slack:
                continue
            label = self.cluster.replica_label(shard, replica)
            load = self.load.get(label, 0.0)
            if best is None or load < best_load:
                best, best_load = replica, load
        label = self.cluster.replica_label(shard, best)
        self.load[label] = best_load + frequency * costs[best]
        return best

    # ------------------------------------------------------------------
    def route_statement(
        self, statement: Statement, frequency: float = 1.0
    ) -> List[Tuple[int, int]]:
        """Scatter plan for one statement: the ``(shard, replica)`` pair
        chosen for every shard (a query over a sharded collection must
        visit each shard once)."""
        return [
            (shard, self.route(statement, shard, frequency))
            for shard in range(self.cluster.num_shards)
        ]

    def route_workload(self, workload: Workload) -> List[List[Tuple[int, int]]]:
        """Route every workload entry once (frequency-weighted load);
        returns the per-entry scatter plans in workload order."""
        return [
            self.route_statement(entry.statement, entry.frequency)
            for entry in workload
        ]

    # ------------------------------------------------------------------
    def invalidate(self) -> None:
        """Drop every routing session's cached plans (the sessions also
        self-invalidate on their replica's modification counter)."""
        for session in self._sessions.values():
            session.invalidate()

    def reset_counters(self) -> None:
        self.load = {}
        self.statements_routed = {}
        self.cost_routed = 0
        self.fallback_routed = 0
        self.routing_cache_hits = 0
        self._cursors = [0] * self.cluster.num_shards

    def counters(self) -> Dict:
        """JSON-serializable router counters."""
        return {
            "policy": self.policy,
            "statements_routed": dict(sorted(self.statements_routed.items())),
            "cost_routed": self.cost_routed,
            "fallback_routed": self.fallback_routed,
            "routing_cache_hits": self.routing_cache_hits,
            "load": {
                label: round(value, 6)
                for label, value in sorted(self.load.items())
            },
        }
