"""Divergent per-replica index tuning (CoPhy/AIM-style scale-out).

A uniform configuration must compromise across the whole workload; a
cluster does not have to.  :func:`partition_workload` splits the
workload into one slice per replica *column* by similarity of the
statements' distinct request patterns (the same signature the PR 2
coverage machinery and ``core/compression.py`` template keys are built
on), and :func:`tune_cluster` runs one
:class:`~repro.core.advisor.IndexAdvisor` per replica -- on the PR 4
parallel engine when ``workers`` is set -- so each replica column gets
the configuration its slice of the traffic deserves.  The cost-based
:class:`~repro.cluster.router.Router` then sends every statement to the
column that tuned for it.

``divergent=False`` is the uniform baseline: one advisor per shard over
the full workload, the same configuration applied to every replica.
``BENCH_PR6.json`` records divergent beating uniform on a mixed
TPoX/XMark workload at the same per-replica budget.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from repro.core.advisor import IndexAdvisor, Recommendation
from repro.optimizer.rewriter import extract_all_requests
from repro.query.model import Statement
from repro.query.workload import Workload, WorkloadEntry

Signature = FrozenSet[Tuple[str, str]]


def statement_signature(statement: Statement) -> Signature:
    """A statement's indexable shape: its distinct (pattern, value type)
    requests plus collection.  Statements with similar signatures are
    served by similar indexes, so signature similarity is the right
    clustering metric for divergent design."""
    parts = {
        (str(request.pattern), str(request.value_type))
        for request in extract_all_requests(statement)
    }
    parts.add(("collection", getattr(statement, "collection", "")))
    return frozenset(parts)


def _jaccard(a: Signature, b: Signature) -> float:
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 1.0
    return len(a & b) / union


def partition_workload(workload: Workload, parts: int) -> List[Workload]:
    """Split a workload into ``parts`` similarity-clustered slices.

    Deterministic: template groups (entries sharing a signature) are
    seeded farthest-first -- the heaviest group first, then the group
    least similar to any seed -- and the remaining groups join the most
    similar seed, with the lighter slice winning ties.  Every entry
    lands in exactly one slice; slices may be empty when the workload
    has fewer distinct signatures than parts.
    """
    if parts <= 1:
        return [Workload(list(workload.entries))]

    # Group entries by signature, preserving first-seen order.
    order: List[Signature] = []
    groups: Dict[Signature, List[WorkloadEntry]] = {}
    for entry in workload:
        signature = statement_signature(entry.statement)
        if signature not in groups:
            groups[signature] = []
            order.append(signature)
        groups[signature].append(entry)

    def weight(signature: Signature) -> float:
        return sum(entry.frequency for entry in groups[signature])

    # Farthest-first seeds: heaviest group, then least-similar-to-seeds.
    remaining = list(order)
    seeds: List[Signature] = []
    if remaining:
        first = max(remaining, key=lambda s: (weight(s), -order.index(s)))
        seeds.append(first)
        remaining.remove(first)
    while len(seeds) < parts and remaining:
        def dissimilarity(signature: Signature) -> float:
            return max(_jaccard(signature, seed) for seed in seeds)

        candidate = min(
            remaining,
            key=lambda s: (dissimilarity(s), -weight(s), order.index(s)),
        )
        seeds.append(candidate)
        remaining.remove(candidate)

    assignments: Dict[Signature, int] = {
        seed: index for index, seed in enumerate(seeds)
    }
    loads: List[float] = [0.0] * parts
    for index, seed in enumerate(seeds):
        loads[index] += weight(seed)
    # Heaviest unassigned groups first, each to its most similar seed
    # (ties to the lighter slice, then the lower index).
    for signature in sorted(
        remaining, key=lambda s: (-weight(s), order.index(s))
    ):
        best = min(
            range(len(seeds)),
            key=lambda i: (
                -_jaccard(signature, seeds[i]),
                loads[i],
                i,
            ),
        )
        assignments[signature] = best
        loads[best] += weight(signature)

    slices: List[List[WorkloadEntry]] = [[] for __ in range(parts)]
    for entry in workload:  # original order within each slice
        signature = statement_signature(entry.statement)
        slices[assignments[signature]].append(entry)
    return [Workload(entries) for entries in slices]


def divergence(configurations: Sequence[FrozenSet[str]]) -> float:
    """Mean pairwise Jaccard *distance* between replica index sets:
    0.0 when every replica carries the same indexes (uniform), toward
    1.0 as configurations diverge."""
    pairs = 0
    total = 0.0
    for i in range(len(configurations)):
        for j in range(i + 1, len(configurations)):
            total += 1.0 - _jaccard(configurations[i], configurations[j])
            pairs += 1
    if pairs == 0:
        return 0.0
    return total / pairs


@dataclass
class ReplicaTuning:
    """One replica column's tuning outcome on one shard."""

    shard: int
    replica: int
    workload_size: int
    recommendation: Recommendation
    created: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "shard": self.shard,
            "replica": self.replica,
            "workload_size": self.workload_size,
            "created": list(self.created),
            "recommendation": self.recommendation.to_dict(),
        }


@dataclass
class ClusterTuningResult:
    """The outcome of one cluster tuning pass."""

    mode: str  # "divergent" | "uniform"
    budget_bytes: int
    tunings: List[ReplicaTuning]
    divergence_score: float
    cluster_stats: Dict = field(default_factory=dict)

    def to_dict(self) -> Dict:
        return {
            "mode": self.mode,
            "budget_bytes": self.budget_bytes,
            "divergence_score": round(self.divergence_score, 4),
            "cluster": dict(self.cluster_stats),
            "tunings": [tuning.to_dict() for tuning in self.tunings],
        }

    def report(self) -> str:
        lines = [
            f"Cluster tuning      : {self.mode}",
            f"Disk budget/replica : {self.budget_bytes} bytes",
            f"Divergence score    : {self.divergence_score:.4f}",
        ]
        for tuning in self.tunings:
            reco = tuning.recommendation
            lines.append(
                f"  replica s{tuning.shard}r{tuning.replica}: "
                f"{len(reco.configuration)} indexes, "
                f"benefit {reco.search.benefit:.2f}, "
                f"{tuning.workload_size} statements in slice"
            )
        return "\n".join(lines)


def tune_cluster(
    cluster,
    workload: Workload,
    budget_bytes: int,
    divergent: bool = True,
    algorithm: str = "topdown_full",
    workers=None,
    executor: Optional[str] = None,
    create: bool = True,
    deadline_seconds: Optional[float] = None,
    optimizer_call_budget: Optional[int] = None,
    snapshot_store=None,
) -> ClusterTuningResult:
    """Tune every replica of ``cluster`` for ``workload``.

    Divergent mode partitions the workload into one slice per replica
    column and tunes each column's replicas on their slice; uniform mode
    tunes each shard once on the full workload and applies the same
    configuration to every replica.  ``create=True`` (the default)
    physically builds the recommended indexes; the router then prices
    statements against the real configurations.  ``snapshot_store``
    shares one :class:`~repro.storage.snapshots.SnapshotStore` across
    every replica's advisor (blobs are keyed per database, so replicas
    coexist in the cache under one byte budget).
    """
    mode = "divergent" if divergent else "uniform"
    if divergent:
        slices = partition_workload(workload, cluster.num_replicas)
    else:
        slices = [workload] * cluster.num_replicas

    tunings: List[ReplicaTuning] = []
    for shard in range(cluster.num_shards):
        uniform_recommendation: Optional[Recommendation] = None
        for replica in range(cluster.num_replicas):
            database = cluster.replica_database(shard, replica)
            slice_workload = slices[replica]
            if divergent or uniform_recommendation is None:
                advisor = IndexAdvisor(
                    database,
                    slice_workload,
                    workers=workers,
                    executor=executor,
                    snapshot_store=snapshot_store,
                )
                try:
                    recommendation = advisor.recommend(
                        budget_bytes,
                        algorithm=algorithm,
                        deadline_seconds=deadline_seconds,
                        optimizer_call_budget=optimizer_call_budget,
                    )
                    created = (
                        advisor.create_indexes(recommendation)
                        if create
                        else []
                    )
                finally:
                    advisor.session.close()
                if not divergent:
                    uniform_recommendation = recommendation
            else:
                # Uniform: re-apply the shard's recommendation to this
                # replica without re-running the search.
                recommendation = uniform_recommendation
                created = []
                if create:
                    for candidate in recommendation.configuration:
                        name = database.catalog.fresh_name("reco")
                        database.create_index(
                            candidate.definition(name, virtual=False)
                        )
                        created.append(name)
            tunings.append(
                ReplicaTuning(
                    shard=shard,
                    replica=replica,
                    workload_size=len(slice_workload),
                    recommendation=recommendation,
                    created=created,
                )
            )

    # Divergence over replica columns (shard 0's view; columns are
    # identical across shards by construction).
    column_patterns: List[FrozenSet[str]] = []
    for replica in range(cluster.num_replicas):
        tuning = next(
            t for t in tunings if t.shard == 0 and t.replica == replica
        )
        column_patterns.append(
            frozenset(
                f"{c.collection}:{c.pattern}:{c.value_type.value}"
                for c in tuning.recommendation.configuration
            )
        )
    score = divergence(column_patterns)
    cluster.divergence_score = score
    cluster.tuning_mode = mode

    stats = cluster.cluster_stats()
    result = ClusterTuningResult(
        mode=mode,
        budget_bytes=budget_bytes,
        tunings=tunings,
        divergence_score=score,
        cluster_stats=stats,
    )
    # Surface the cluster block on every per-replica recommendation so
    # ``to_dict()``/``stats_report()`` show it next to the session stats.
    for tuning in tunings:
        tuning.recommendation.cluster_stats = dict(stats)
    return result
