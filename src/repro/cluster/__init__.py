"""Sharded, replicated storage with divergent tuning and cost routing.

Public surface:

* :class:`Cluster` -- S shards x R replicas of real
  :class:`~repro.storage.database.Database` objects behind the
  :class:`~repro.storage.database.StorageTarget` protocol (documents
  sharded by key, DML applied to every replica of the owning shard).
* :class:`Router` -- cost-based statement routing: each statement goes
  to the replica whose what-if session prices it cheapest, with a
  round-robin fallback.
* :func:`tune_cluster` / :func:`partition_workload` -- divergent
  tuning: the workload is partitioned by statement-signature similarity
  and each replica column is tuned on its own slice.
* :class:`ClusterExecutor` -- scatter-gather execution across shards
  through the router.
* ``resolve_shards`` / ``shards_from_env`` and the replica twins --
  ``--shards``/``REPRO_SHARDS`` parsing, raising
  :class:`~repro.robustness.errors.ConfigError` on junk.

``Cluster(shards=1, replicas=1)`` is pinned bit-identical to a single
``Database`` by ``tests/test_cluster_differential.py``.
"""

from repro.cluster.cluster import (
    MAX_FANOUT,
    REPLICAS_ENV,
    SHARDS_ENV,
    Cluster,
    replicas_from_env,
    resolve_replicas,
    resolve_shards,
    shard_of_key,
    shards_from_env,
)
from repro.cluster.executor import ClusterExecutor, ShardExecutor
from repro.cluster.router import Router
from repro.cluster.tuner import (
    ClusterTuningResult,
    ReplicaTuning,
    divergence,
    partition_workload,
    statement_signature,
    tune_cluster,
)

__all__ = [
    "Cluster",
    "ClusterExecutor",
    "ClusterTuningResult",
    "MAX_FANOUT",
    "REPLICAS_ENV",
    "ReplicaTuning",
    "Router",
    "SHARDS_ENV",
    "ShardExecutor",
    "divergence",
    "partition_workload",
    "replicas_from_env",
    "resolve_replicas",
    "resolve_shards",
    "shard_of_key",
    "shards_from_env",
    "statement_signature",
    "tune_cluster",
]
