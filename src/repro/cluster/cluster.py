"""Sharded, replicated storage: the :class:`Cluster`.

The ROADMAP's "millions of users" scenario refactors the single-process
:class:`~repro.storage.database.Database` into a cluster of them:

* each collection's documents are sharded by **document key** (a dense
  per-collection sequence number assigned at insert) across ``S``
  shards -- :func:`shard_of_key` is a pure function, so the assignment
  is stable across runs and processes;
* every shard keeps ``R`` replicas, each a full
  :class:`~repro.storage.database.Database` riding the incremental
  storage engine (per-document synopses, delta statistics, collection
  epochs).  Replicas of one shard hold identical documents -- one
  parse, one synopsis, shared by every replica -- but may carry
  **divergent index configurations** (:mod:`repro.cluster.tuner`);
* DML routes through the owning shard and is applied to *all* of its
  replicas, so per-replica delta statistics and epoch-scoped what-if
  cache invalidation stay correct on every copy;
* index DDL through the cluster-level :meth:`Cluster.create_index` fans
  out to every replica (the uniform baseline); the divergent tuner uses
  :meth:`Cluster.create_index_on` to give one replica column its own
  configuration.

The cluster implements the :class:`~repro.storage.database.StorageTarget`
protocol, so the optimizer session, executor, and advisor accept it
anywhere a database is accepted.  ``Cluster(shards=1, replicas=1)`` is
pinned **bit-identical** to a single ``Database`` by
``tests/test_cluster_differential.py`` -- recommendations, costs, and
instrumentation counters included.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Mapping, Optional, Tuple

from repro.robustness.errors import ConfigError
from repro.storage.catalog import IndexDefinition
from repro.storage.database import Database
from repro.storage.statistics import DataStatistics
from repro.xmlmodel.parser import parse_document

SHARDS_ENV = "REPRO_SHARDS"
REPLICAS_ENV = "REPRO_REPLICAS"

#: Hard sanity cap: a shard/replica count past this is a typo, not a
#: topology (each replica is a full in-process database).
MAX_FANOUT = 1024


def shard_of_key(doc_key: int, shards: int) -> int:
    """The shard owning a document key: a pure, stable assignment
    (``key mod shards``), identical across runs, processes, and
    machines -- pinned by ``tests/test_workload_drift.py``."""
    return doc_key % shards


def _resolve_fanout(value, default: int, option: str) -> int:
    """Shared shard/replica-count validation (>= 1, sane upper bound);
    junk raises :class:`~repro.robustness.errors.ConfigError` naming the
    flag or environment variable it came from."""
    if value is None:
        return default
    if isinstance(value, bool):  # bool is an int; reject it explicitly
        raise ConfigError(f"invalid count {value!r}", option=option)
    if not isinstance(value, int):
        text = str(value).strip()
        if text == "":
            return default
        try:
            value = int(text)
        except ValueError:
            raise ConfigError(
                f"invalid count {text!r}: expected a positive integer",
                option=option,
            ) from None
    if value < 1:
        raise ConfigError(
            f"count must be >= 1, got {value}", option=option
        )
    if value > MAX_FANOUT:
        raise ConfigError(
            f"count {value} exceeds the sanity cap of {MAX_FANOUT}",
            option=option,
        )
    return value


def resolve_shards(value, default: int = 1, option: str = "shards") -> int:
    """Normalize a shard-count spec (``None``/empty -> ``default``)."""
    return _resolve_fanout(value, default, option)


def resolve_replicas(value, default: int = 1, option: str = "replicas") -> int:
    """Normalize a replica-count spec (``None``/empty -> ``default``)."""
    return _resolve_fanout(value, default, option)


def shards_from_env(environ: Optional[Mapping[str, str]] = None) -> int:
    """Shard count from ``REPRO_SHARDS`` (absent/empty means 1); junk
    raises :class:`~repro.robustness.errors.ConfigError` naming the
    variable."""
    env = os.environ if environ is None else environ
    return resolve_shards(env.get(SHARDS_ENV), default=1, option=SHARDS_ENV)


def replicas_from_env(environ: Optional[Mapping[str, str]] = None) -> int:
    """Replica count from ``REPRO_REPLICAS`` (absent/empty means 1)."""
    env = os.environ if environ is None else environ
    return resolve_replicas(
        env.get(REPLICAS_ENV), default=1, option=REPLICAS_ENV
    )


class Cluster:
    """``shards x replicas`` real databases behind one storage facade.

    Replica ``(s, r)`` is ``self.replicas[s][r]``; replica *column* ``r``
    (the same index across every shard) is the unit of divergent tuning
    -- the router can then serve any statement from any column because
    each column covers all shards.  ``(0, 0)`` is the **primary**: the
    database :meth:`whatif_database` resolves to, so a what-if session
    over a 1x1 cluster is literally a session over its only database.
    """

    def __init__(
        self,
        name: str = "xmlcluster",
        shards: int = 1,
        replicas: int = 1,
    ) -> None:
        self.name = name
        self.num_shards = resolve_shards(shards)
        self.num_replicas = resolve_replicas(replicas)
        self.replicas: List[List[Database]] = [
            [
                Database(f"{name}/s{s}r{r}")
                for r in range(self.num_replicas)
            ]
            for s in range(self.num_shards)
        ]
        #: Next document key per collection (dense, never reused).
        self._next_key: Dict[str, int] = {}
        #: (collection, key) -> (shard, local doc id); local ids are the
        #: replica databases' own dense ids (identical across replicas
        #: of one shard by construction).
        self._locations: Dict[Tuple[str, int], Tuple[int, int]] = {}
        #: Reverse map for shard-local DML (the executor finds delete
        #: victims on one routed replica and applies them cluster-wide).
        self._keys: Dict[Tuple[str, int, int], int] = {}
        #: Cluster-level DML counters (per-shard documents routed).
        self.documents_routed: List[int] = [0] * self.num_shards
        #: Divergence score of the last tuning pass (0.0 = uniform);
        #: set by :func:`repro.cluster.tuner.tune_cluster`.
        self.divergence_score: float = 0.0
        self.tuning_mode: Optional[str] = None
        #: The cost-based statement router (lazily built: a fresh
        #: cluster with no traffic carries no router sessions).
        self._router = None

    # ------------------------------------------------------------------
    # Topology
    # ------------------------------------------------------------------
    @property
    def primary(self) -> Database:
        """Shard 0, replica 0 -- the planning/statistics representative."""
        return self.replicas[0][0]

    def whatif_database(self) -> Database:
        """See :class:`~repro.storage.database.StorageTarget`."""
        return self.primary

    def replica_database(self, shard: int, replica: int) -> Database:
        return self.replicas[shard][replica]

    @staticmethod
    def replica_label(shard: int, replica: int) -> str:
        return f"s{shard}r{replica}"

    def all_databases(self) -> Iterator[Tuple[int, int, Database]]:
        """Every ``(shard, replica, database)`` in deterministic order."""
        for s, shard in enumerate(self.replicas):
            for r, database in enumerate(shard):
                yield s, r, database

    @property
    def router(self):
        """The cluster's cost-based router (built on first use)."""
        if self._router is None:
            from repro.cluster.router import Router

            self._router = Router(self)
        return self._router

    # ------------------------------------------------------------------
    # StorageTarget: modification/epoch counters (primary's view)
    # ------------------------------------------------------------------
    @property
    def modification_count(self) -> int:
        return self.primary.modification_count

    @property
    def collection_epochs(self) -> Dict[str, int]:
        return self.primary.collection_epochs

    def touch(self, collection_name: Optional[str] = None) -> None:
        for __, __, database in self.all_databases():
            database.touch(collection_name)

    # ------------------------------------------------------------------
    # Collections and DML
    # ------------------------------------------------------------------
    @property
    def collections(self) -> Dict[str, object]:
        """The primary's collections (names and shard-0 contents; use
        :meth:`total_documents` for cluster-wide counts)."""
        return self.primary.collections

    def create_collection(self, name: str):
        for __, __, database in self.all_databases():
            database.create_collection(name)
        self._next_key.setdefault(name, 0)
        return self.primary.collections[name]

    def collection(self, name: str):
        """The primary's collection (shard 0's slice of the data)."""
        return self.primary.collection(name)

    def insert_document(self, collection_name: str, text: str) -> int:
        """Insert a document: assign the next document key, shard by the
        key, and insert into every replica of the owning shard.  The
        text is parsed once -- the same tree (and its cached synopsis)
        feeds every replica.  Returns the document key."""
        if collection_name not in self._next_key:
            # Collections created directly on member databases (or by
            # from_database) still key from zero.
            self._next_key[collection_name] = 0
        key = self._next_key[collection_name]
        self._next_key[collection_name] = key + 1
        shard = shard_of_key(key, self.num_shards)
        document = parse_document(text)
        local_id = None
        for database in self.replicas[shard]:
            local_id = database.insert_parsed(collection_name, document)
        self._locations[(collection_name, key)] = (shard, local_id)
        self._keys[(collection_name, shard, local_id)] = key
        self.documents_routed[shard] += 1
        return key

    def delete_document(self, collection_name: str, doc_id: int) -> None:
        """Delete by document key from every replica of the owning
        shard."""
        location = self._locations.pop((collection_name, doc_id), None)
        if location is None:
            raise KeyError(
                f"no document {doc_id} in sharded collection "
                f"{collection_name!r}"
            )
        shard, local_id = location
        self._keys.pop((collection_name, shard, local_id), None)
        for database in self.replicas[shard]:
            database.delete_document(collection_name, local_id)

    def key_for(self, collection_name: str, shard: int, local_id: int) -> int:
        """The document key of a shard-local document id (the executor's
        delete path finds victims on one replica and deletes by key)."""
        try:
            return self._keys[(collection_name, shard, local_id)]
        except KeyError:
            raise KeyError(
                f"no document with local id {local_id} on shard {shard} "
                f"of collection {collection_name!r}"
            ) from None

    def total_documents(self, collection_name: str) -> int:
        """Live documents across all shards (replica 0's counts; every
        replica of a shard holds the same documents)."""
        return sum(
            len(shard[0].collection(collection_name))
            for shard in self.replicas
        )

    # ------------------------------------------------------------------
    # Index DDL
    # ------------------------------------------------------------------
    @property
    def catalog(self):
        """The primary's catalog (cluster-wide DDL allocates names here
        and applies them everywhere, so names never collide)."""
        return self.primary.catalog

    def create_index(self, definition: IndexDefinition):
        """Uniform DDL: build the index on every replica of every shard
        (each replica builds from its own shard's documents).  Returns
        the primary's built index."""
        built = None
        for s, r, database in self.all_databases():
            index = database.create_index(definition)
            if s == 0 and r == 0:
                built = index
        return built

    def create_index_on(
        self, replica: int, definition: IndexDefinition
    ):
        """Divergent DDL: build the index on replica column ``replica``
        of every shard (the column covers all shards, so the column can
        serve any statement that needs the index)."""
        for shard in self.replicas:
            shard[replica].create_index(definition)

    def drop_index(self, name: str) -> None:
        """Drop an index wherever it exists (uniform or divergent)."""
        dropped = False
        for __, __, database in self.all_databases():
            if name in database.catalog:
                database.drop_index(name)
                dropped = True
        if not dropped:
            raise KeyError(f"no index named {name!r}")

    def drop_all_indexes(self) -> None:
        for __, __, database in self.all_databases():
            database.drop_all_indexes()

    def index(self, name: str):
        """The primary's built index (protocol convenience)."""
        return self.primary.index(name)

    @property
    def indexes(self) -> Dict[str, object]:
        return self.primary.indexes

    # ------------------------------------------------------------------
    # Statistics
    # ------------------------------------------------------------------
    def runstats(self, collection_name: str) -> DataStatistics:
        """The primary replica's statistics (shard 0's slice; per-replica
        advisors call runstats on their own replica databases)."""
        return self.primary.runstats(collection_name)

    def invalidate_statistics(self, collection_name: str) -> None:
        for __, __, database in self.all_databases():
            database.invalidate_statistics(collection_name)

    def storage_stats(self) -> Dict[str, int]:
        """Storage-engine counters summed across every replica."""
        totals: Dict[str, int] = {}
        for __, __, database in self.all_databases():
            for key, value in database.storage_stats().items():
                totals[key] = totals.get(key, 0) + value
        return totals

    # ------------------------------------------------------------------
    # Cluster instrumentation
    # ------------------------------------------------------------------
    def cluster_stats(self) -> Dict:
        """JSON-serializable cluster counters: topology, per-shard DML
        routing, the router's counters, and the divergence score of the
        last tuning pass.  Surfaced by ``Recommendation.to_dict()`` and
        ``advise --stats`` next to the session block."""
        stats: Dict = {
            "shards": self.num_shards,
            "replicas": self.num_replicas,
            "documents_routed": {
                f"s{s}": count
                for s, count in enumerate(self.documents_routed)
            },
            "divergence_score": round(self.divergence_score, 4),
        }
        if self.tuning_mode is not None:
            stats["tuning_mode"] = self.tuning_mode
        if self._router is not None:
            stats["router"] = self._router.counters()
        return stats

    # ------------------------------------------------------------------
    # Construction from an existing database
    # ------------------------------------------------------------------
    @classmethod
    def from_database(
        cls,
        database: Database,
        shards: int = 1,
        replicas: int = 1,
        name: Optional[str] = None,
    ) -> "Cluster":
        """Reshard an existing single database into a cluster.

        Live documents are re-keyed densely in document-id order (the
        original insertion order), re-serialized once, and routed
        through :meth:`insert_document`, so the shard assignment is the
        same stable function of the key a from-scratch build would use.
        Real (non-virtual) indexes are recreated uniformly.
        """
        from repro.xmlmodel.serializer import serialize

        cluster = cls(
            name=name or f"{database.name}-cluster",
            shards=shards,
            replicas=replicas,
        )
        for collection_name, collection in database.collections.items():
            cluster.create_collection(collection_name)
            for document in collection:
                cluster.insert_document(
                    collection_name, serialize(document.root)
                )
        for definition in database.catalog.all_definitions():
            if not definition.virtual:
                cluster.create_index(definition)
        return cluster

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Cluster {self.name!r} shards={self.num_shards} "
            f"replicas={self.num_replicas} "
            f"collections={list(self._next_key)}>"
        )
