"""The supervised online advisor daemon (ROADMAP item 1, AIM-style).

One :class:`OnlineAdvisor` turns the paper's one-shot batch
``recommend()`` into a continuous index lifecycle:

1. **ingest** -- statements stream into a sliding
   :class:`~repro.online.window.StatementWindow`; every
   ``cycle_interval`` statements a tuning cycle is *considered*;
2. **drift gate** -- the cycle runs only when the window's
   coverage-signature distribution drifted past the policy threshold
   from the window that produced the current configuration (or when no
   configuration exists yet);
3. **tune** -- a fresh :class:`~repro.core.advisor.IndexAdvisor` runs on
   the window under a per-cycle anytime budget with a crash-safe search
   checkpoint.  The daemon's own materialized indexes are *hidden*
   during tuning (the ``core.review`` idiom) so the search scores
   against a no-index baseline and the winner is comparable to the
   current configuration.  A failed cycle retries with backoff, falls
   back to the policy's fallback algorithm, and at worst is skipped --
   the daemon never dies of a cycle (:class:`~repro.robustness.errors.
   CycleError` is absorbed, the :class:`~repro.robustness.watchdog.
   Watchdog` counts it);
4. **hysteresis** -- the winner is diffed against the materialized
   configuration by candidate key; CREATE/DROP actions are gated by a
   minimum relative improvement on the live window, a cooldown after
   every apply, and per-index flap counters that freeze any index whose
   membership keeps oscillating;
5. **apply + verify + rollback** -- actions are journaled *before*
   touching the catalog (crash mid-apply rolls forward on resume), the
   live window is re-costed through a fresh what-if session after the
   apply, and a regression rolls every action back (AIM's
   verification-before-commit);
6. **journal** -- every state transition is persisted atomically so
   ``repro serve --resume`` reconstructs the window, configuration, and
   hysteresis state and continues mid-cycle.

Nothing in here sleeps or threads: the daemon is driven by whoever owns
the stream (CLI replay, a test, or a real ingest loop), which keeps
every lifecycle path deterministic and fault-injectable.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.candidates import CandidateIndex
from repro.core.config import IndexConfiguration
from repro.core.whatif import analyze
from repro.online.journal import DaemonJournal
from repro.online.policy import OnlinePolicy
from repro.online.window import StatementWindow
from repro.optimizer.session import WhatIfSession
from repro.query.workload import Workload
from repro.robustness.errors import AdvisorError, CycleError, JournalError
from repro.robustness.faults import maybe_inject
from repro.robustness.watchdog import Heartbeat, Watchdog
from repro.storage.database import resolve_database
from repro.storage.index import IndexValueType
from repro.xpath.patterns import parse_pattern

#: Prefix of every index the daemon materializes.
ONLINE_INDEX_PREFIX = "online"


def _candidate_key(candidate: CandidateIndex) -> str:
    return f"{candidate.pattern}|{candidate.value_type.value}"


def _candidate_to_dict(candidate: CandidateIndex) -> Dict:
    return {
        "pattern": str(candidate.pattern),
        "value_type": candidate.value_type.value,
        "collection": candidate.collection,
    }


def _candidate_from_dict(data: Dict) -> CandidateIndex:
    return CandidateIndex(
        pattern=parse_pattern(data["pattern"]),
        value_type=IndexValueType(data["value_type"]),
        collection=data["collection"],
    )


@dataclass
class MaterializedIndex:
    """One physically built online index."""

    name: str
    candidate: CandidateIndex

    @property
    def key(self) -> str:
        return _candidate_key(self.candidate)

    def to_dict(self) -> Dict:
        return {"name": self.name, **_candidate_to_dict(self.candidate)}


@dataclass
class CycleReport:
    """What one considered tuning cycle did (the daemon's audit trail)."""

    cycle: int
    action: str  # see _ACTIONS in docs/robustness.md
    drift: Optional[float] = None
    algorithm: Optional[str] = None
    improvement: Optional[float] = None
    creates: List[str] = field(default_factory=list)
    drops: List[str] = field(default_factory=list)
    search_optimizer_calls: int = 0
    cycle_optimizer_calls: int = 0
    truncated: bool = False
    degraded: bool = False
    error: Optional[str] = None
    diagnostics: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict:
        return {
            "cycle": self.cycle,
            "action": self.action,
            "drift": self.drift,
            "algorithm": self.algorithm,
            "improvement": self.improvement,
            "creates": list(self.creates),
            "drops": list(self.drops),
            "search_optimizer_calls": self.search_optimizer_calls,
            "cycle_optimizer_calls": self.cycle_optimizer_calls,
            "truncated": self.truncated,
            "degraded": self.degraded,
            "error": self.error,
            "diagnostics": list(self.diagnostics),
        }


def _live_window_cost(database, workload: Workload) -> float:
    """Frequency-weighted cost of the window against the database's
    *actual* physical state, through a fresh what-if session (no shared
    cache, so degraded tuning estimates cannot leak into verification)."""
    session = WhatIfSession(database)
    total = 0.0
    with session.evaluating(()) as scope:
        for entry in workload:
            total += entry.frequency * scope.result(entry.statement).estimated_cost
    return total


class OnlineAdvisor:
    """The supervised, crash-safe online tuning daemon."""

    def __init__(
        self,
        storage,
        policy: OnlinePolicy,
        journal_path: Optional[str] = None,
        verifier: Optional[Callable[..., float]] = None,
        sleep: Callable[[float], None] = time.sleep,
        snapshot_store=None,
    ) -> None:
        self.storage = storage
        self.database = resolve_database(storage)
        #: One snapshot blob cache shared by every tuning cycle's
        #: advisor (and by whoever handed the daemon its store -- the
        #: serving front end passes the server's).  Only parallel
        #: sessions consume it; serial cycles leave it cold.
        self.snapshots = snapshot_store
        self.policy = policy.validate()
        self.journal = DaemonJournal(journal_path) if journal_path else None
        self.window = StatementWindow(
            policy.window_capacity,
            collections=lambda: set(self.database.collections),
        )
        self.heartbeat = Heartbeat()
        self.watchdog = Watchdog(policy.watchdog_limit)
        self._verifier = verifier or _live_window_cost
        self._sleep = sleep
        #: Candidate-key -> materialized index (the daemon's view of the
        #: configuration it owns; compared by key, never by name).
        self.materialized: Dict[str, MaterializedIndex] = {}
        #: Signature distribution of the window that produced (or last
        #: re-confirmed) the materialized configuration.
        self.baseline: Optional[Dict[str, float]] = None
        self.cycle = 0
        self.statements_seen = 0
        self.cooldown_remaining = 0
        self.flap_counts: Dict[str, int] = {}
        self.frozen: List[str] = []
        self.reports: List[CycleReport] = []
        self.diagnostics: List[str] = []
        #: Window cost of the current configuration, scored during the
        #: latest tuning pass (same virtual footing as the winner).
        self._current_config_cost: Optional[float] = None
        self.counters: Dict[str, int] = {
            "cycles_considered": 0,
            "cycles_tuned": 0,
            "applies": 0,
            "rollbacks": 0,
            "rollforwards": 0,
            "creates": 0,
            "drops": 0,
            "skipped_no_drift": 0,
            "skipped_cooldown": 0,
            "skipped_hysteresis": 0,
            "no_change": 0,
            "failed_cycles": 0,
            "degraded_cycles": 0,
            "journal_write_failures": 0,
        }
        self._write_journal("idle")

    # ------------------------------------------------------------------
    # Ingestion
    # ------------------------------------------------------------------
    def ingest(self, text: str) -> Optional[CycleReport]:
        """Feed one statement; runs a tuning cycle every
        ``cycle_interval`` statements.  Returns the cycle's report when
        one ran."""
        self.heartbeat.beat()
        self.window.ingest(text)
        self.statements_seen += 1
        if self.statements_seen % self.policy.cycle_interval == 0:
            return self.run_cycle()
        return None

    def serve(self, texts: Sequence[str]) -> List[CycleReport]:
        """Replay a finite stream to completion; returns every cycle
        report (the CLI's and benchmark's driver)."""
        reports = [
            report for text in texts if (report := self.ingest(text))
        ]
        self._write_journal("idle")
        return reports

    # ------------------------------------------------------------------
    # The supervised cycle
    # ------------------------------------------------------------------
    def run_cycle(self, force: bool = False) -> CycleReport:
        """Consider one tuning cycle.  Never raises for cycle-level
        failures: a cycle that fails past retries and fallback is
        absorbed into a ``failed`` report and the daemon keeps serving."""
        self.cycle += 1
        self.counters["cycles_considered"] += 1
        tuned = False
        try:
            report, tuned = self._cycle(force)
        except Exception as exc:  # supervised: no cycle failure is fatal
            # CycleError from the tuning ladder, an injected fault that
            # escaped between phases, or an unexpected bug in a tuning
            # pass: the cycle is skipped, the materialized configuration
            # is untouched, and ingestion continues.
            tuned = True
            report = CycleReport(
                cycle=self.cycle, action="failed", error=str(exc)
            )
            self.counters["failed_cycles"] += 1
        if tuned:
            if report.action == "failed":
                if self.watchdog.record_failure():
                    self.diagnostics.append(
                        f"watchdog tripped after "
                        f"{self.watchdog.limit} consecutive failed cycles; "
                        f"falling back to {self.policy.fallback_algorithm}"
                    )
            else:
                self.watchdog.record_success()
        if report.degraded:
            self.counters["degraded_cycles"] += 1
        self.reports.append(report)
        self._write_journal("idle")
        return report

    def _cycle(self, force: bool) -> Tuple[CycleReport, bool]:
        """One cycle's decision ladder; returns (report, tuned?) where
        ``tuned`` means the watchdog should score this cycle."""
        drift = self.window.drift_from(self.baseline)
        if len(self.window) == 0:
            return CycleReport(cycle=self.cycle, action="skip-empty"), False
        needs_tuning = (
            force or self.baseline is None
            or (drift is not None and drift >= self.policy.drift_threshold)
        )
        if not needs_tuning:
            self.counters["skipped_no_drift"] += 1
            return (
                CycleReport(
                    cycle=self.cycle, action="skip-no-drift", drift=drift
                ),
                False,
            )
        if self.cooldown_remaining > 0:
            self.cooldown_remaining -= 1
            self.counters["skipped_cooldown"] += 1
            return (
                CycleReport(
                    cycle=self.cycle, action="skip-cooldown", drift=drift
                ),
                False,
            )

        maybe_inject("online.cycle")
        self._write_journal("tuning")
        self.counters["cycles_tuned"] += 1
        workload = self.window.workload()
        recommendation, algorithm, tune_diagnostics = self._tune(workload)
        report = CycleReport(
            cycle=self.cycle,
            action="tuned-no-change",
            drift=drift,
            algorithm=algorithm,
            search_optimizer_calls=recommendation.search.optimizer_calls,
            cycle_optimizer_calls=recommendation.session_stats.get(
                "optimizer_calls", 0
            ),
            truncated=recommendation.truncated,
            degraded=(
                recommendation.degraded
                or algorithm != self.policy.algorithm
            ),
            diagnostics=tune_diagnostics,
        )

        winner = {
            _candidate_key(c): c for c in recommendation.configuration
        }
        creates = [
            winner[key]
            for key in sorted(winner)
            if key not in self.materialized and key not in self.frozen
        ]
        drops = [
            self.materialized[key]
            for key in sorted(self.materialized)
            if key not in winner and key not in self.frozen
        ]
        if not creates and not drops:
            # The window re-confirmed the current configuration: anchor
            # the baseline here so stable traffic stops re-tuning.
            self.baseline = self.window.signature_distribution()
            self.counters["no_change"] += 1
            return report, True

        improvement = self._relative_improvement(
            recommendation, workload, creates, drops
        )
        report.improvement = improvement
        if self.materialized and improvement < self.policy.min_relative_improvement:
            # Hysteresis: the winner is not enough better than what is
            # already built to justify churning indexes.
            report.action = "skip-hysteresis"
            self.baseline = self.window.signature_distribution()
            self.counters["skipped_hysteresis"] += 1
            return report, True

        applied_action = self._apply(report, workload, creates, drops)
        report.action = applied_action
        return report, True

    # ------------------------------------------------------------------
    # Tuning (retry -> backoff -> fallback ladder)
    # ------------------------------------------------------------------
    def _tune(self, workload: Workload):
        """Run one bounded tuning search over the window with the
        daemon's indexes hidden.  Returns ``(recommendation, algorithm,
        diagnostics)`` or raises :class:`CycleError` once every attempt
        (primary + retries, then fallback) has failed."""
        policy = self.policy
        if self.watchdog.tripped:
            attempts = [policy.fallback_algorithm]
        else:
            attempts = [policy.algorithm] * (1 + policy.retries)
            if policy.fallback_algorithm != policy.algorithm:
                attempts.append(policy.fallback_algorithm)
        diagnostics: List[str] = []
        hidden = {
            entry.name: self.database.indexes.pop(entry.name)
            for entry in self.materialized.values()
            if entry.name in self.database.indexes
        }
        self.database.touch()
        try:
            last_error: Optional[Exception] = None
            for attempt, algorithm in enumerate(attempts):
                if attempt > 0 and policy.retry_backoff_seconds > 0:
                    self._sleep(
                        policy.retry_backoff_seconds * (2 ** (attempt - 1))
                    )
                try:
                    recommendation = self._recommend(workload, algorithm)
                except AdvisorError as exc:
                    last_error = exc
                    diagnostics.append(
                        f"attempt {attempt + 1} ({algorithm}) failed: {exc}"
                    )
                    continue
                self._current_config_cost = self._score_configuration(
                    workload
                )
                return recommendation, algorithm, diagnostics
            raise CycleError(
                f"all tuning attempts failed (last: {last_error})",
                cycle=self.cycle,
            )
        finally:
            self.database.indexes.update(hidden)
            self.database.touch()

    def _recommend(self, workload: Workload, algorithm: str):
        from repro.core.advisor import IndexAdvisor

        advisor = IndexAdvisor(
            self.database,
            workload,
            compress=self.policy.compress,
            snapshot_store=self.snapshots,
        )
        return advisor.recommend(
            budget_bytes=self.policy.budget_bytes,
            algorithm=algorithm,
            deadline_seconds=self.policy.cycle_deadline_seconds,
            optimizer_call_budget=self.policy.cycle_call_budget,
            checkpoint_path=(
                self.journal.checkpoint_path if self.journal else None
            ),
        )

    def _score_configuration(self, workload: Workload) -> float:
        """What-if cost of the *current* configuration on the window.
        Called while the daemon's indexes are hidden, so the current
        configuration is scored as virtual -- the same footing as the
        winner's estimate."""
        current = IndexConfiguration(
            entry.candidate for entry in self.materialized.values()
        )
        report = analyze(
            self.database, workload, current, session=None
        )
        return sum(
            impact.frequency * impact.cost_after for impact in report.impacts
        )

    def _relative_improvement(
        self, recommendation, workload, creates, drops
    ) -> float:
        """Relative window-cost improvement of the winner over the
        current configuration (both scored virtually, indexes hidden at
        score time -- see :meth:`_tune`)."""
        cost_current = getattr(self, "_current_config_cost", None)
        if cost_current is None or cost_current <= 0:
            return 0.0
        cost_winner = recommendation.workload_cost_after
        return (cost_current - cost_winner) / cost_current

    # ------------------------------------------------------------------
    # Apply / verify / rollback
    # ------------------------------------------------------------------
    def _apply(
        self,
        report: CycleReport,
        workload: Workload,
        creates: List[CandidateIndex],
        drops: List[MaterializedIndex],
    ) -> str:
        """Materialize the diff, verify on the live window, roll back on
        regression.  The pending actions are journaled first so a crash
        mid-apply rolls forward on resume."""
        pending = {
            "creates": [_candidate_to_dict(c) for c in creates],
            "drops": [entry.name for entry in drops],
        }
        self._write_journal("applying", pending=pending, critical=True)
        live_before = self._verifier(self.database, workload)

        performed_creates: List[MaterializedIndex] = []
        performed_drops: List[MaterializedIndex] = []
        try:
            for entry in drops:
                maybe_inject("online.apply")
                self.storage.drop_index(entry.name)
                del self.materialized[entry.key]
                performed_drops.append(entry)
            for candidate in creates:
                maybe_inject("online.apply")
                name = self.database.catalog.fresh_name(ONLINE_INDEX_PREFIX)
                self.storage.create_index(
                    candidate.definition(name, virtual=False)
                )
                built = MaterializedIndex(name, candidate)
                self.materialized[built.key] = built
                performed_creates.append(built)
        except (AdvisorError, OSError) as exc:
            self._undo(performed_creates, performed_drops)
            self._write_journal("idle")
            raise CycleError(
                f"apply failed mid-flight, actions undone: {exc}",
                cycle=self.cycle,
            ) from exc

        touched = [e.key for e in performed_creates] + [
            e.key for e in performed_drops
        ]
        regressed = False
        if self.policy.verify_applies:
            live_after = self._verifier(self.database, workload)
            regressed = live_after > live_before * (
                1.0 + self.policy.rollback_tolerance
            )
        if regressed:
            self._undo(performed_creates, performed_drops)
            self.counters["rollbacks"] += 1
            report.diagnostics.append(
                f"rolled back: live window cost regressed "
                f"{live_before:.2f} -> {live_after:.2f}"
            )
            # A rollback churns each touched index twice (out and back).
            self._note_flaps(touched, times=2)
        else:
            self.counters["applies"] += 1
            self.counters["creates"] += len(performed_creates)
            self.counters["drops"] += len(performed_drops)
            report.creates = [e.key for e in performed_creates]
            report.drops = [e.key for e in performed_drops]
            self._note_flaps(touched, times=1)
        # Either way the verdict is anchored to this window, and the
        # daemon holds off before churning again.
        self.baseline = self.window.signature_distribution()
        self.cooldown_remaining = self.policy.cooldown_cycles
        self._write_journal("idle")
        return "rolled-back" if regressed else "applied"

    def _undo(
        self,
        performed_creates: List[MaterializedIndex],
        performed_drops: List[MaterializedIndex],
    ) -> None:
        """Reverse a (possibly partial) apply: drop what was created,
        rebuild what was dropped."""
        for built in performed_creates:
            try:
                self.storage.drop_index(built.name)
            except KeyError:
                pass
            self.materialized.pop(built.key, None)
        for entry in performed_drops:
            name = self.database.catalog.fresh_name(ONLINE_INDEX_PREFIX)
            self.storage.create_index(
                entry.candidate.definition(name, virtual=False)
            )
            self.materialized[entry.key] = MaterializedIndex(
                name, entry.candidate
            )

    def _note_flaps(self, keys: List[str], times: int) -> None:
        for key in keys:
            count = self.flap_counts.get(key, 0) + times
            self.flap_counts[key] = count
            if count > self.policy.max_flaps_per_index and key not in self.frozen:
                self.frozen.append(key)
                self.diagnostics.append(
                    f"index {key} frozen after {count} membership changes "
                    f"(flap limit {self.policy.max_flaps_per_index})"
                )

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def configuration_keys(self) -> List[str]:
        """The materialized configuration as sorted candidate keys --
        the *name-independent* identity used by the convergence gates."""
        return sorted(self.materialized)

    def status(self) -> Dict:
        return {
            "cycle": self.cycle,
            "statements_seen": self.statements_seen,
            "window": len(self.window),
            "distinct": self.window.distinct,
            "materialized": [
                self.materialized[key].to_dict()
                for key in sorted(self.materialized)
            ],
            "configuration_keys": self.configuration_keys(),
            "cooldown_remaining": self.cooldown_remaining,
            "flap_counts": dict(self.flap_counts),
            "frozen": list(self.frozen),
            "counters": dict(self.counters),
            "watchdog": self.watchdog.to_dict(),
            "heartbeat": self.heartbeat.to_dict(),
            "diagnostics": list(self.diagnostics)
            + list(self.window.diagnostics),
            "cycles": [report.to_dict() for report in self.reports],
        }

    # ------------------------------------------------------------------
    # Journal / resume
    # ------------------------------------------------------------------
    def _write_journal(
        self,
        phase: str,
        pending: Optional[Dict] = None,
        critical: bool = False,
    ) -> None:
        """Persist the daemon's state.  Routine snapshots degrade on a
        failed write (diagnostic + counter -- the daemon keeps serving
        with a stale journal); the pre-apply ``applying`` snapshot is
        ``critical``: without it a crash mid-apply could not roll
        forward, so the apply is aborted with :class:`CycleError`
        before any index is touched."""
        if self.journal is None:
            return
        state = {
            "phase": phase,
            "cycle": self.cycle,
            "statements_seen": self.statements_seen,
            "window": self.window.texts(),
            "baseline": self.baseline,
            "materialized": [
                self.materialized[key].to_dict()
                for key in sorted(self.materialized)
            ],
            "cooldown_remaining": self.cooldown_remaining,
            "flap_counts": dict(self.flap_counts),
            "frozen": list(self.frozen),
            "counters": dict(self.counters),
        }
        if pending is not None:
            state["pending"] = pending
        try:
            self.journal.write(state)
        except JournalError as exc:
            if critical:
                raise CycleError(
                    f"cannot journal pending apply actions: {exc}",
                    cycle=self.cycle,
                ) from exc
            self.counters["journal_write_failures"] += 1
            if len(self.diagnostics) < 50:
                self.diagnostics.append(f"journal write degraded: {exc}")

    @classmethod
    def resume(
        cls,
        storage,
        policy: OnlinePolicy,
        journal_path: str,
        verifier: Optional[Callable[..., float]] = None,
        sleep: Callable[[float], None] = time.sleep,
        snapshot_store=None,
    ) -> "OnlineAdvisor":
        """Reconstruct a daemon from its journal.  A missing journal
        starts fresh; a corrupt one degrades to fresh with a diagnostic
        (:class:`~repro.robustness.errors.JournalError` is never
        surfaced); a journal captured mid-apply rolls the pending
        actions forward."""
        journal = DaemonJournal(journal_path)
        state, diagnostic = journal.load_for_resume()
        daemon = cls(
            storage,
            policy,
            journal_path=journal_path,
            verifier=verifier,
            sleep=sleep,
            snapshot_store=snapshot_store,
        )
        if diagnostic is not None:
            daemon.diagnostics.append(diagnostic)
            daemon._write_journal("idle")
            return daemon
        if state is None:
            return daemon
        daemon.cycle = state.get("cycle", 0)
        daemon.statements_seen = state.get("statements_seen", 0)
        daemon.window.replace(state.get("window", ()))
        daemon.baseline = state.get("baseline")
        daemon.cooldown_remaining = state.get("cooldown_remaining", 0)
        daemon.flap_counts = dict(state.get("flap_counts", {}))
        daemon.frozen = list(state.get("frozen", ()))
        daemon.counters.update(state.get("counters", {}))
        for entry in state.get("materialized", ()):
            candidate = _candidate_from_dict(entry)
            name = entry["name"]
            if name not in daemon.database.indexes:
                # Crash between journal write and index build (or the
                # store does not persist built indexes): rebuild.
                daemon.storage.create_index(
                    candidate.definition(name, virtual=False)
                )
            daemon.materialized[_candidate_key(candidate)] = (
                MaterializedIndex(name, candidate)
            )
        if state.get("phase") == "applying" and state.get("pending"):
            daemon._roll_forward(state["pending"])
        daemon._write_journal("idle")
        return daemon

    def _roll_forward(self, pending: Dict) -> None:
        """Finish a journaled apply the previous process crashed out of.
        Idempotent: drops of absent indexes and creates of present keys
        are skipped."""
        applied = 0
        for name in pending.get("drops", ()):
            entry = next(
                (e for e in self.materialized.values() if e.name == name),
                None,
            )
            if entry is None:
                continue
            self.storage.drop_index(entry.name)
            del self.materialized[entry.key]
            applied += 1
        for data in pending.get("creates", ()):
            candidate = _candidate_from_dict(data)
            key = _candidate_key(candidate)
            if key in self.materialized:
                continue
            name = self.database.catalog.fresh_name(ONLINE_INDEX_PREFIX)
            self.storage.create_index(candidate.definition(name, virtual=False))
            self.materialized[key] = MaterializedIndex(name, candidate)
            applied += 1
        self.counters["rollforwards"] += 1
        self.baseline = self.window.signature_distribution()
        self.cooldown_remaining = self.policy.cooldown_cycles
        self.diagnostics.append(
            f"resumed mid-apply: rolled {applied} pending action(s) forward"
        )
