"""The online daemon's crash-safe state journal.

One JSON document holding everything ``repro serve --resume`` needs to
continue mid-cycle: the sliding window's texts, the baseline signature
distribution, the materialized configuration (by index name and
candidate key), hysteresis state (cooldown, flap counters, frozen keys),
lifecycle counters, and -- while an apply is in flight -- the pending
CREATE/DROP actions so a crash between actions rolls *forward* on
resume instead of leaving a half-applied configuration.

Writes are atomic (temp file + rename, same discipline as
:class:`~repro.robustness.checkpoint.SearchCheckpoint`) and go through
the ``persist.save`` fault-injection site.  A corrupt or truncated
journal loads as a typed :class:`~repro.robustness.errors.JournalError`;
:meth:`load_for_resume` degrades it to ``(None, diagnostic)`` so the
daemon starts fresh with a visible diagnostic instead of refusing to
start.  See ``docs/robustness.md`` for the format.
"""

from __future__ import annotations

import json
import os
from typing import Dict, Optional, Tuple

from repro.robustness.errors import JournalError
from repro.robustness.faults import maybe_inject

JOURNAL_VERSION = 1


class DaemonJournal:
    """Atomic on-disk persistence of the daemon's state dictionary."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.writes = 0

    @property
    def checkpoint_path(self) -> str:
        """Where the per-cycle search checkpoint lives (next to the
        journal, so one ``--journal`` flag names the whole state)."""
        return self.path + ".cycle.ckpt"

    def write(self, state: Dict) -> None:
        """Atomically replace the journal with ``state``."""
        payload = dict(state)
        payload["version"] = JOURNAL_VERSION
        tmp_path = self.path + ".tmp"
        try:
            maybe_inject("persist.save")
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            with open(tmp_path, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
            os.replace(tmp_path, self.path)
        except OSError as exc:
            raise JournalError(
                f"cannot write daemon journal: {exc}", path=self.path
            ) from exc
        self.writes += 1

    def load(self) -> Optional[Dict]:
        """The journaled state, or ``None`` when no journal exists.
        Corrupt/truncated/foreign journals raise :class:`JournalError`."""
        if not os.path.exists(self.path):
            return None
        try:
            maybe_inject("persist.load")
            with open(self.path) as handle:
                data = json.load(handle)
            if not isinstance(data, dict):
                raise JournalError(
                    "daemon journal is not a JSON object", path=self.path
                )
            if data.get("version") != JOURNAL_VERSION:
                raise JournalError(
                    f"unsupported journal version {data.get('version')!r}",
                    path=self.path,
                )
            return data
        except JournalError:
            raise
        except (OSError, ValueError, KeyError, TypeError) as exc:
            raise JournalError(
                f"corrupt daemon journal: {exc}", path=self.path
            ) from exc

    def load_for_resume(self) -> Tuple[Optional[Dict], Optional[str]]:
        """Like :meth:`load`, but a bad journal degrades to
        ``(None, diagnostic)`` -- the daemon starts fresh and surfaces
        the diagnostic instead of dying on startup."""
        try:
            return self.load(), None
        except JournalError as exc:
            return None, f"journal ignored: {exc}"

    def clear(self) -> None:
        try:
            os.unlink(self.path)
        except FileNotFoundError:
            pass
