"""Sliding-window workload statistics for the online advisor daemon.

The daemon never tunes on the raw stream: statements land in a bounded
:class:`StatementWindow` that keeps one frequency-weighted entry per
distinct statement text (the same merge the ``exact`` compression mode
performs), memoizes parsing and coverage signatures per distinct text,
and exposes the two views tuning needs:

* :meth:`workload` -- the window as a :class:`~repro.query.workload.
  Workload`, entries in stable sorted text order so a resumed daemon
  rebuilds the identical workload regardless of arrival interleaving;
* :meth:`signature_distribution` -- the normalized distribution of
  coverage signatures (:func:`~repro.core.compression.
  coverage_signature`), the drift detector's feature space.  Drift
  between the live window and the window that produced the current
  configuration is their total-variation distance
  (:func:`drift_distance`).

Unparseable statements -- and statements addressing collections the
served database does not have -- are degraded, never fatal: the text is
counted out of the window and a bounded diagnostic recorded, mirroring
lenient workload ingestion (docs/robustness.md).
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

from repro.core.compression import coverage_signature
from repro.query.parser import QuerySyntaxError, parse_statement
from repro.query.workload import Workload, WorkloadEntry

#: Canonical string form of a coverage signature (sorted, joined) --
#: signatures must round-trip through the JSON journal.
SignatureKey = str

_MAX_DIAGNOSTICS = 50


def signature_key(statement) -> SignatureKey:
    """Canonical journal-safe key of a statement's coverage signature."""
    pairs = sorted(coverage_signature(statement))
    return ";".join(f"{pattern}|{value_type}" for pattern, value_type in pairs)


def drift_distance(
    baseline: Dict[SignatureKey, float], current: Dict[SignatureKey, float]
) -> float:
    """Total-variation distance between two normalized signature
    distributions (0 = identical, 1 = disjoint)."""
    keys = set(baseline) | set(current)
    return 0.5 * sum(
        abs(baseline.get(key, 0.0) - current.get(key, 0.0)) for key in keys
    )


def _referenced_collections(statement) -> set:
    """Every collection a statement touches (both sides of a join)."""
    left = getattr(statement, "left", None)
    right = getattr(statement, "right", None)
    if left is not None and right is not None:
        return {left.collection, right.collection}
    return {statement.collection}


class StatementWindow:
    """A bounded sliding window of statement texts with per-distinct-text
    parse/signature memoization."""

    def __init__(
        self,
        capacity: int,
        collections: Optional[Callable[[], set]] = None,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"window capacity must be positive, got {capacity}")
        self.capacity = capacity
        #: Live view of the served database's collection names; texts
        #: addressing anything else are rejected at ingestion (they could
        #: only ever fail the tuning cycle).  ``None`` accepts all.
        self._collections = collections
        self._texts: Deque[str] = deque()
        self._counts: Dict[str, int] = {}
        # Memoized per distinct text; entries die with their last count.
        self._parsed: Dict[str, object] = {}
        self._signatures: Dict[str, SignatureKey] = {}
        self.ingested = 0
        self.rejected = 0
        self.diagnostics: List[str] = []

    def __len__(self) -> int:
        return len(self._texts)

    @property
    def distinct(self) -> int:
        return len(self._counts)

    def ingest(self, text: str) -> bool:
        """Add one statement text; returns False (with a diagnostic) when
        it does not parse."""
        text = text.strip()
        if not text:
            return False
        statement = self._parse(text)
        reason = None
        if statement is None:
            reason = "unparseable"
        elif self._collections is not None:
            missing = _referenced_collections(statement) - self._collections()
            if missing:
                reason = f"unknown collection(s) {sorted(missing)}"
        if reason is not None:
            self.rejected += 1
            if len(self.diagnostics) < _MAX_DIAGNOSTICS:
                preview = " ".join(text.split())[:60]
                self.diagnostics.append(
                    f"statement skipped ({reason}): {preview!r}"
                )
            return False
        self.ingested += 1
        self._texts.append(text)
        self._counts[text] = self._counts.get(text, 0) + 1
        if len(self._texts) > self.capacity:
            evicted = self._texts.popleft()
            remaining = self._counts[evicted] - 1
            if remaining:
                self._counts[evicted] = remaining
            else:
                del self._counts[evicted]
                self._parsed.pop(evicted, None)
                self._signatures.pop(evicted, None)
        return True

    def _parse(self, text: str):
        if text in self._parsed:
            return self._parsed[text]
        try:
            statement = parse_statement(text)
        except QuerySyntaxError:
            statement = None
        else:
            self._parsed[text] = statement
            self._signatures[text] = signature_key(statement)
        return statement

    # ------------------------------------------------------------------
    # Tuning views
    # ------------------------------------------------------------------
    def workload(self) -> Workload:
        """The window as a frequency-weighted workload, entries in sorted
        text order (stable under arrival interleaving and resume)."""
        entries = [
            WorkloadEntry(self._parsed[text], float(count))
            for text, count in sorted(self._counts.items())
        ]
        return Workload(entries)

    def signature_distribution(self) -> Dict[SignatureKey, float]:
        """Normalized weight per coverage signature over the window."""
        weights: Dict[SignatureKey, float] = {}
        total = 0.0
        for text, count in self._counts.items():
            key = self._signatures[text]
            weights[key] = weights.get(key, 0.0) + count
            total += count
        if total <= 0:
            return {}
        return {key: weight / total for key, weight in weights.items()}

    def drift_from(
        self, baseline: Optional[Dict[SignatureKey, float]]
    ) -> Optional[float]:
        """Total-variation drift of the live window from ``baseline``
        (``None`` when there is no baseline yet)."""
        if baseline is None:
            return None
        return drift_distance(baseline, self.signature_distribution())

    # ------------------------------------------------------------------
    # Journal round-trip
    # ------------------------------------------------------------------
    def texts(self) -> List[str]:
        """The window's texts in arrival order (journal form)."""
        return list(self._texts)

    def replace(self, texts: Iterable[str]) -> None:
        """Rebuild the window from journaled texts (resume path)."""
        self._texts.clear()
        self._counts.clear()
        self._parsed.clear()
        self._signatures.clear()
        for text in texts:
            self.ingest(text)
