"""Tuning policy of the online advisor daemon: every knob in one place.

The daemon's behavior decomposes into four concerns, each with its own
knobs (docs/robustness.md has the full state machine):

* **ingestion** -- ``window_capacity`` statements of sliding window,
  a tuning cycle considered every ``cycle_interval`` statements;
* **drift** -- re-tune only when the window's coverage-signature
  distribution moved at least ``drift_threshold`` total-variation
  distance from the window that produced the current configuration;
* **tuning** -- ``algorithm`` under a per-cycle anytime budget
  (``cycle_deadline_seconds`` / ``cycle_call_budget``), compressed by
  ``compress``; a failed cycle retries ``retries`` times with
  ``retry_backoff_seconds`` backoff, then falls back to
  ``fallback_algorithm``; ``watchdog_limit`` consecutive failures trip
  the watchdog and later cycles go straight to the fallback;
* **hysteresis & safety** -- a winner must beat the current
  configuration by ``min_relative_improvement`` on the live window to
  be applied; after an apply the daemon holds ``cooldown_cycles``;
  an index key that changed membership more than
  ``max_flaps_per_index`` times is frozen in place; every apply is
  verified on the live window and rolled back when the re-cost
  regresses past ``rollback_tolerance``.

:meth:`OnlinePolicy.validate` rejects junk with the typed
:class:`~repro.robustness.errors.ConfigError`, option by option, so the
CLI and programmatic callers share one validation path.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

from repro.core.compression import COMPRESSION_MODES
from repro.robustness.budget import resolve_call_budget, resolve_deadline
from repro.robustness.errors import ConfigError


@dataclass
class OnlinePolicy:
    """All knobs of one online-daemon instance."""

    budget_bytes: int
    algorithm: str = "greedy"
    fallback_algorithm: str = "greedy_heuristics"
    window_capacity: int = 200
    cycle_interval: int = 25
    drift_threshold: float = 0.25
    min_relative_improvement: float = 0.02
    cooldown_cycles: int = 1
    max_flaps_per_index: int = 2
    cycle_deadline_seconds: Optional[float] = None
    cycle_call_budget: Optional[int] = None
    compress: str = "template"
    retries: int = 1
    retry_backoff_seconds: float = 0.0
    watchdog_limit: int = 3
    verify_applies: bool = True
    rollback_tolerance: float = 1e-9

    def validate(self) -> "OnlinePolicy":
        """Raise :class:`ConfigError` on the first bad knob; returns
        ``self`` so construction can chain through validation."""
        from repro.core.search import ALGORITHMS  # avoid import cycle

        if self.budget_bytes <= 0:
            raise ConfigError(
                f"disk budget must be positive, got {self.budget_bytes}",
                option="budget-bytes",
            )
        for option, name in (
            ("algorithm", self.algorithm),
            ("fallback-algorithm", self.fallback_algorithm),
        ):
            if name not in ALGORITHMS:
                raise ConfigError(
                    f"unknown algorithm {name!r}; "
                    f"choose from {sorted(ALGORITHMS)}",
                    option=option,
                )
        if self.window_capacity <= 0:
            raise ConfigError(
                f"window capacity must be positive, got {self.window_capacity}",
                option="window",
            )
        if self.cycle_interval <= 0:
            raise ConfigError(
                f"cycle interval must be positive, got {self.cycle_interval}",
                option="cycle-interval",
            )
        if not 0.0 <= self.drift_threshold <= 1.0:
            raise ConfigError(
                f"drift threshold must be in [0, 1], "
                f"got {self.drift_threshold}",
                option="drift-threshold",
            )
        if self.min_relative_improvement < 0:
            raise ConfigError(
                f"minimum improvement must be >= 0, "
                f"got {self.min_relative_improvement}",
                option="min-improvement",
            )
        if self.cooldown_cycles < 0:
            raise ConfigError(
                f"cooldown must be >= 0 cycles, got {self.cooldown_cycles}",
                option="cooldown",
            )
        if self.max_flaps_per_index < 0:
            raise ConfigError(
                f"flap limit must be >= 0, got {self.max_flaps_per_index}",
                option="max-flaps",
            )
        # Reuse the CLI resolvers so zero/negative budgets are rejected
        # identically everywhere.
        self.cycle_deadline_seconds = resolve_deadline(
            self.cycle_deadline_seconds, option="cycle-deadline"
        )
        self.cycle_call_budget = resolve_call_budget(
            self.cycle_call_budget, option="cycle-call-budget"
        )
        if self.compress not in COMPRESSION_MODES:
            raise ConfigError(
                f"unknown compression mode {self.compress!r}; "
                f"choose from {COMPRESSION_MODES}",
                option="compress",
            )
        if self.retries < 0:
            raise ConfigError(
                f"retries must be >= 0, got {self.retries}", option="retries"
            )
        if self.retry_backoff_seconds < 0:
            raise ConfigError(
                f"backoff must be >= 0 seconds, "
                f"got {self.retry_backoff_seconds}",
                option="retry-backoff",
            )
        if self.watchdog_limit <= 0:
            raise ConfigError(
                f"watchdog limit must be positive, got {self.watchdog_limit}",
                option="watchdog-limit",
            )
        if self.rollback_tolerance < 0:
            raise ConfigError(
                f"rollback tolerance must be >= 0, "
                f"got {self.rollback_tolerance}",
                option="rollback-tolerance",
            )
        return self

    def to_dict(self) -> Dict:
        return {
            "budget_bytes": self.budget_bytes,
            "algorithm": self.algorithm,
            "fallback_algorithm": self.fallback_algorithm,
            "window_capacity": self.window_capacity,
            "cycle_interval": self.cycle_interval,
            "drift_threshold": self.drift_threshold,
            "min_relative_improvement": self.min_relative_improvement,
            "cooldown_cycles": self.cooldown_cycles,
            "max_flaps_per_index": self.max_flaps_per_index,
            "cycle_deadline_seconds": self.cycle_deadline_seconds,
            "cycle_call_budget": self.cycle_call_budget,
            "compress": self.compress,
            "retries": self.retries,
            "retry_backoff_seconds": self.retry_backoff_seconds,
            "watchdog_limit": self.watchdog_limit,
            "verify_applies": self.verify_applies,
            "rollback_tolerance": self.rollback_tolerance,
        }
