"""The online advisor daemon: continuous, supervised index tuning.

The paper's advisor is a one-shot batch ``recommend()``; this package
(ROADMAP item 1) runs the same tightly-coupled machinery as a
long-running service:

* :mod:`repro.online.window` -- sliding-window, template-weighted
  workload statistics with coverage-signature drift detection;
* :mod:`repro.online.policy` -- every daemon knob (drift threshold,
  hysteresis, per-cycle budgets, retry/fallback ladder) with typed
  validation;
* :mod:`repro.online.journal` -- the atomic state journal behind
  ``repro serve --resume``;
* :mod:`repro.online.daemon` -- the supervised state machine:
  drift-gated bounded tuning cycles, hysteresis-gated CREATE/DROP
  application, AIM-style verify-then-rollback, crash-safe resume.

Entry points: ``repro serve`` (CLI), ``IndexAdvisor.start_online()``,
or :class:`OnlineAdvisor` directly.  See ``docs/robustness.md``.
"""

from repro.online.daemon import (
    CycleReport,
    MaterializedIndex,
    ONLINE_INDEX_PREFIX,
    OnlineAdvisor,
)
from repro.online.journal import DaemonJournal
from repro.online.policy import OnlinePolicy
from repro.online.window import StatementWindow, drift_distance, signature_key

__all__ = [
    "CycleReport",
    "DaemonJournal",
    "MaterializedIndex",
    "ONLINE_INDEX_PREFIX",
    "OnlineAdvisor",
    "OnlinePolicy",
    "StatementWindow",
    "drift_distance",
    "signature_key",
]
