"""Typed responses of the serving front end.

Every endpoint of :class:`~repro.serve.server.AdvisorServer` returns a
:class:`Response` -- never raises.  Failures are mapped onto a small
machine-readable error-code taxonomy (the serve analogue of the
robustness error taxonomy) so clients, the chaos tests, and the CLI can
branch on ``code`` instead of parsing tracebacks:

==================  =========================================================
code                meaning
==================  =========================================================
``rejected``        admission control refused the request (typed
                    :class:`~repro.robustness.errors.AdmissionRejected`:
                    tenant budget pool exhausted or in-flight limit hit)
``config``          a :class:`~repro.robustness.errors.ConfigError`
                    surfaced inside the request (junk ``REPRO_*`` env or
                    server option); the CLI maps this onto exit code 2
``bad-request``     malformed payload: unparseable statement, unknown
                    collection, wrong statement kind for the endpoint
``advisor-error``   a typed advisor runtime failure (FatalAdvisorError,
                    injected faults past retries, ...)
``internal``        anything else -- the "never a 500" backstop; the
                    exception is captured, never propagated
==================  =========================================================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional, Tuple

#: Error codes a Response may carry (``None`` on success).
ERROR_CODES = ("rejected", "config", "bad-request", "advisor-error", "internal")


@dataclass
class Response:
    """One endpoint result.

    ``epoch`` is the validated epoch token the read observed (sorted
    ``(collection, epoch)`` pairs; writes carry the single post-commit
    pair).  ``seq`` is the global write sequence number for writes, and
    for reads the *watermark*: how many writes had committed when the
    read validated -- the exact position a serial replay must execute
    the read at (tests/test_serve_differential.py).
    """

    kind: str
    ok: bool
    tenant: str = "default"
    value: Any = None
    error: Optional[str] = None
    code: Optional[str] = None
    epoch: Optional[Tuple[Tuple[str, int], ...]] = None
    seq: Optional[int] = None
    retries: int = 0
    elapsed_seconds: float = 0.0

    def to_dict(self) -> Dict:
        """JSON-serializable form (CLI ``--json``, bench artifacts)."""
        return {
            "kind": self.kind,
            "ok": self.ok,
            "tenant": self.tenant,
            "value": self.value,
            "error": self.error,
            "code": self.code,
            "epoch": (
                [list(pair) for pair in self.epoch]
                if self.epoch is not None
                else None
            ),
            "seq": self.seq,
            "retries": self.retries,
            "elapsed_seconds": self.elapsed_seconds,
        }

    def comparable(self) -> Dict:
        """The schedule-invariant projection compared bit-for-bit by the
        differential tests: everything except wall-clock latency and the
        retry count (both depend on physical interleaving, not on the
        serialization order the epoch token pins)."""
        data = self.to_dict()
        data.pop("elapsed_seconds")
        data.pop("retries")
        return data
