"""Concurrent serving front end over the advisor engine.

The paper's advisor is a one-shot library call; this package turns it
into a service (ROADMAP north-star, AIM-style supervised multi-tenancy):

* :class:`~repro.serve.server.AdvisorServer` -- an asyncio front end
  with concurrent ``query`` / ``dml`` / ``whatif`` / ``recommend``
  endpoints.  Reads run lock-free against the per-collection epochs of
  the storage engine through a seqlock-style
  :class:`~repro.storage.database.EpochGate`; writers are serialized per
  collection.
* :class:`~repro.serve.tenants.AdmissionController` -- per-tenant
  ``SearchBudget`` admission control with typed rejection
  (:class:`~repro.robustness.errors.AdmissionRejected`) when the budget
  pool is exhausted.
* :func:`~repro.serve.portfolio.run_portfolio` -- CoPhy-style portfolio
  search: multiple strategies raced under one deadline
  (``retry`` / ``tournament`` / ``evolutionary`` modes), best result
  wins, per-strategy telemetry in ``Recommendation.to_dict()``.

See docs/serving.md for the endpoint contracts and epoch-gate semantics.
"""

from repro.serve.portfolio import (
    DEFAULT_STRATEGIES,
    PORTFOLIO_MODES,
    run_portfolio,
)
from repro.serve.requests import Response
from repro.serve.scheduler import SeededScheduler
from repro.serve.server import AdvisorServer
from repro.serve.tenants import AdmissionController, TenantPolicy

__all__ = [
    "AdvisorServer",
    "AdmissionController",
    "TenantPolicy",
    "Response",
    "SeededScheduler",
    "run_portfolio",
    "PORTFOLIO_MODES",
    "DEFAULT_STRATEGIES",
]
