"""Multi-tenant admission control for the serving front end.

AIM (PAPERS.md) runs index management as a supervised multi-tenant
service; the analogue here is a per-tenant budget pool.  Each tenant has
a :class:`TenantPolicy` -- an in-flight concurrency cap, an
optimizer-call quota shared by all of its advise-class requests, and a
per-request deadline ceiling.  The :class:`AdmissionController` admits
or rejects requests against those policies (typed
:class:`~repro.robustness.errors.AdmissionRejected`, mapped to a
``rejected`` response -- never a traceback) and mints the
:class:`~repro.robustness.budget.SearchBudget` each admitted
advise-class request runs under, clamped to what is left of the
tenant's pool.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import Dict, Optional

from repro.robustness.budget import SearchBudget
from repro.robustness.errors import AdmissionRejected

#: Request kinds that consume optimizer-call quota.
ADVISE_KINDS = ("whatif", "recommend")


@dataclass(frozen=True)
class TenantPolicy:
    """One tenant's slice of the server.

    ``search_call_quota`` is the tenant's total optimizer-call pool
    across all of its advise-class requests (``None`` = unmetered);
    ``deadline_seconds`` caps each advise request's wall-clock deadline
    (requests asking for more are clamped down, requests asking for less
    keep their own); ``max_in_flight`` bounds concurrently admitted
    requests of any kind.
    """

    name: str = "default"
    max_in_flight: int = 64
    search_call_quota: Optional[int] = None
    deadline_seconds: Optional[float] = None


class AdmissionController:
    """Admits requests against per-tenant policies and meters quotas."""

    def __init__(
        self,
        policies: Optional[Dict[str, TenantPolicy]] = None,
        default: TenantPolicy = TenantPolicy(),
    ) -> None:
        self._policies: Dict[str, TenantPolicy] = dict(policies or {})
        self._default = default
        self._in_flight: Dict[str, int] = {}
        self._calls_charged: Dict[str, int] = {}
        self.admitted: Dict[str, int] = {}
        self.rejected: Dict[str, int] = {}

    def policy(self, tenant: str) -> TenantPolicy:
        policy = self._policies.get(tenant)
        if policy is None:
            policy = TenantPolicy(
                name=tenant,
                max_in_flight=self._default.max_in_flight,
                search_call_quota=self._default.search_call_quota,
                deadline_seconds=self._default.deadline_seconds,
            )
            self._policies[tenant] = policy
        return policy

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    @contextmanager
    def admit(self, tenant: str, kind: str):
        """Admit one request or raise :class:`AdmissionRejected`.

        The in-flight slot is held for the ``with`` body; quota checks
        happen up front so an exhausted pool rejects *before* any engine
        work starts.
        """
        policy = self.policy(tenant)
        if self._in_flight.get(tenant, 0) >= policy.max_in_flight:
            self.rejected[tenant] = self.rejected.get(tenant, 0) + 1
            raise AdmissionRejected(
                f"in-flight limit of {policy.max_in_flight} reached",
                tenant=tenant,
                reason="in-flight-limit",
            )
        if (
            kind in ADVISE_KINDS
            and policy.search_call_quota is not None
            and self.quota_remaining(tenant) <= 0
        ):
            self.rejected[tenant] = self.rejected.get(tenant, 0) + 1
            raise AdmissionRejected(
                f"optimizer-call quota of {policy.search_call_quota} "
                f"exhausted",
                tenant=tenant,
                reason="quota-exhausted",
            )
        self._in_flight[tenant] = self._in_flight.get(tenant, 0) + 1
        self.admitted[tenant] = self.admitted.get(tenant, 0) + 1
        try:
            yield policy
        finally:
            self._in_flight[tenant] -= 1

    # ------------------------------------------------------------------
    # Quota metering
    # ------------------------------------------------------------------
    def quota_remaining(self, tenant: str) -> Optional[int]:
        """Optimizer calls left in the tenant's pool (``None`` when the
        tenant is unmetered)."""
        policy = self.policy(tenant)
        if policy.search_call_quota is None:
            return None
        return max(
            0,
            policy.search_call_quota - self._calls_charged.get(tenant, 0),
        )

    def charge_calls(self, tenant: str, calls: int) -> None:
        """Debit a finished advise request's optimizer calls."""
        if calls > 0:
            self._calls_charged[tenant] = (
                self._calls_charged.get(tenant, 0) + calls
            )

    def limits_for(
        self, tenant: str, deadline_seconds: Optional[float] = None
    ):
        """The ``(deadline_seconds, optimizer_call_budget)`` an admitted
        advise-class request runs under: the requested deadline clamped
        to the tenant's ceiling, and a call budget of whatever quota
        remains (``None`` = unmetered)."""
        policy = self.policy(tenant)
        deadline = deadline_seconds
        if policy.deadline_seconds is not None:
            deadline = (
                policy.deadline_seconds
                if deadline is None
                else min(deadline, policy.deadline_seconds)
            )
        return deadline, self.quota_remaining(tenant)

    def budget_for(
        self,
        tenant: str,
        session,
        deadline_seconds: Optional[float] = None,
    ) -> SearchBudget:
        """:meth:`limits_for` packaged as a live
        :class:`SearchBudget` metering ``session``."""
        deadline, calls = self.limits_for(tenant, deadline_seconds)
        return SearchBudget(
            deadline_seconds=deadline,
            optimizer_call_budget=calls,
            session=session,
        )

    def stats(self) -> Dict:
        """Per-tenant admission counters for telemetry and tests."""
        tenants = sorted(
            set(self.admitted) | set(self.rejected) | set(self._policies)
        )
        return {
            tenant: {
                "admitted": self.admitted.get(tenant, 0),
                "rejected": self.rejected.get(tenant, 0),
                "in_flight": self._in_flight.get(tenant, 0),
                "calls_charged": self._calls_charged.get(tenant, 0),
                "quota_remaining": self.quota_remaining(tenant),
            }
            for tenant in tenants
        }
