"""Portfolio search: multiple strategies raced under one deadline.

CoPhy (PAPERS.md) motivates running several search formulations of the
same tuning problem and keeping the best answer; querytorque-style
serving front ends do the same with whole query plans.  The portfolio
here runs several of the advisor's anytime strategies
(:data:`~repro.core.search.PORTFOLIO_ALGORITHMS`) against one disk
budget and one deadline:

* ``retry`` -- strategies run *sequentially*; each later attempt gets
  only what is left of the deadline
  (:meth:`SearchBudget.remaining_seconds`), and the best result so far
  is kept.  Cheapest mode; first-strategy latency when the first
  strategy is good.
* ``tournament`` -- all strategies run *concurrently* on a PR 4
  :class:`~repro.parallel.executors.WorkerPool` thread pool, each with
  the full deadline; the best benefit wins (ties break to the smaller
  configuration, then to strategy order).
* ``evolutionary`` -- tournament generations: generation 0 is the base
  strategies, later generations are seeded-perturbed variants (jittered
  ``beta``, fractional disk budget, strategy choice drawn from a
  deterministic per-variant RNG), bounded by the deadline.

Every variant is scored by the same full-workload evaluator, so
benefits are directly comparable and the portfolio result is by
construction ``>=`` each surviving single strategy.  When the caller
passes a :class:`~repro.storage.snapshots.SnapshotStore` (the serving
front end does), each *concurrent* lane runs against its own composed
store snapshot instead of the shared live database: the first lane pays
one compose from cached blobs, every other lane is pure cache hits, and
lanes stop contending on the live catalog.  Retry mode and store-less
calls keep the shared-database semantics.  A faulted variant
(fault site ``serve.portfolio``) degrades the portfolio to the
survivors' best -- never an unhandled exception; only when *every*
variant fails does the portfolio raise (a typed
:class:`~repro.robustness.errors.ConfigError` when configuration junk
took all lanes down, :class:`~repro.robustness.errors.FatalAdvisorError`
otherwise).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.core.search import DEFAULT_BETA, PORTFOLIO_ALGORITHMS
from repro.parallel.executors import WorkerPool
from repro.query.workload import Workload
from repro.robustness.budget import SearchBudget
from repro.robustness.errors import ConfigError, FatalAdvisorError
from repro.robustness.faults import maybe_inject

PORTFOLIO_MODES = ("retry", "tournament", "evolutionary")
DEFAULT_STRATEGIES: Tuple[str, ...] = PORTFOLIO_ALGORITHMS


@dataclass(frozen=True)
class VariantSpec:
    """One portfolio lane: a strategy plus its (possibly perturbed)
    search knobs."""

    label: str
    algorithm: str
    beta: float = DEFAULT_BETA
    budget_fraction: float = 1.0
    generation: int = 0


@dataclass
class VariantOutcome:
    """What one lane produced: a recommendation or a typed error."""

    spec: VariantSpec
    recommendation: Optional[object] = None
    error: Optional[str] = None
    error_type: Optional[str] = None
    elapsed_seconds: float = 0.0

    def to_dict(self, winner: bool = False) -> dict:
        data = {
            "label": self.spec.label,
            "algorithm": self.spec.algorithm,
            "beta": self.spec.beta,
            "budget_fraction": self.spec.budget_fraction,
            "generation": self.spec.generation,
            "elapsed_seconds": self.elapsed_seconds,
        }
        if self.recommendation is not None:
            search = self.recommendation.search
            data.update(
                benefit=search.benefit,
                size_bytes=search.size_bytes,
                optimizer_calls=search.optimizer_calls,
                truncated=search.truncated,
                degraded=self.recommendation.degraded,
                winner=winner,
            )
        else:
            data.update(error=self.error, error_type=self.error_type)
        return data


def base_specs(strategies: Sequence[str]) -> List[VariantSpec]:
    return [VariantSpec(label=name, algorithm=name) for name in strategies]


def perturbed_specs(
    strategies: Sequence[str],
    seed: int,
    generation: int,
    population: int,
) -> List[VariantSpec]:
    """Seeded-perturbed variants for one evolutionary generation.  Each
    variant's RNG is keyed on ``(seed, generation, index)`` alone, so
    the population is deterministic regardless of which lanes ran or in
    what order."""
    specs = []
    for index in range(population):
        rng = random.Random(f"{seed}:{generation}:{index}")
        algorithm = rng.choice(list(strategies))
        specs.append(
            VariantSpec(
                label=f"g{generation}.{index}:{algorithm}",
                algorithm=algorithm,
                beta=round(rng.uniform(0.05, 0.25), 3),
                budget_fraction=round(rng.uniform(0.85, 1.0), 3),
                generation=generation,
            )
        )
    return specs


def _run_variant(
    database,
    entries,
    spec: VariantSpec,
    budget_bytes: int,
    deadline_seconds: Optional[float],
    optimizer_call_budget: Optional[int],
) -> VariantOutcome:
    """Run one lane to a :class:`VariantOutcome`.  Never raises: lanes
    run inside ``WorkerPool.run`` where an escaped exception would break
    the whole batch, and a faulted strategy must degrade the portfolio,
    not kill it."""
    from repro.core.advisor import IndexAdvisor
    from repro.optimizer.session import WhatIfSession

    started = time.perf_counter()
    try:
        maybe_inject("serve.portfolio")
        advisor = IndexAdvisor(
            database,
            Workload(list(entries)),
            session=WhatIfSession(database),
        )
        recommendation = advisor.recommend(
            max(1, int(budget_bytes * spec.budget_fraction)),
            algorithm=spec.algorithm,
            beta=spec.beta,
            deadline_seconds=deadline_seconds,
            optimizer_call_budget=optimizer_call_budget,
        )
        return VariantOutcome(
            spec,
            recommendation=recommendation,
            elapsed_seconds=time.perf_counter() - started,
        )
    except Exception as exc:
        return VariantOutcome(
            spec,
            error=str(exc),
            error_type=type(exc).__name__,
            elapsed_seconds=time.perf_counter() - started,
        )


def _better(candidate: VariantOutcome, incumbent: Optional[VariantOutcome]):
    """Deterministic winner order: max benefit, ties to fewer bytes,
    then to earlier (strategy-order) lane -- so the incumbent survives
    exact ties."""
    if candidate.recommendation is None:
        return False
    if incumbent is None or incumbent.recommendation is None:
        return True
    new = candidate.recommendation.search
    old = incumbent.recommendation.search
    return (new.benefit, -new.size_bytes) > (old.benefit, -old.size_bytes)


def run_portfolio(
    database,
    workload: Workload,
    budget_bytes: int,
    *,
    mode: str = "tournament",
    strategies: Sequence[str] = DEFAULT_STRATEGIES,
    deadline_seconds: Optional[float] = None,
    optimizer_call_budget: Optional[int] = None,
    seed: int = 0,
    generations: int = 2,
    population: Optional[int] = None,
    workers: Optional[int] = None,
    snapshots=None,
):
    """Race ``strategies`` against one deadline; return the best
    :class:`~repro.core.advisor.Recommendation` with per-strategy
    telemetry attached (``portfolio_stats`` / ``to_dict()["portfolio"]``).
    """
    if mode not in PORTFOLIO_MODES:
        raise ValueError(
            f"unknown portfolio mode {mode!r}; choose from {PORTFOLIO_MODES}"
        )
    strategies = tuple(strategies)
    if not strategies:
        raise ValueError("portfolio needs at least one strategy")
    from repro.core.search import ALGORITHMS

    for name in strategies:
        if name not in ALGORITHMS:
            raise ValueError(
                f"unknown strategy {name!r}; choose from {sorted(ALGORITHMS)}"
            )

    # Deterministic shared-state discipline for concurrent lanes:
    # statistics are primed up front (exactly one rescan per collection,
    # counted here, not racily inside lanes) and the catalog name
    # counter is snapshotted so the winner's DDL can be re-derived as if
    # it had been the only search run.
    for name in sorted(database.collections):
        database.runstats(name)
    name_counter_before = database.catalog._name_counter

    clock_budget = SearchBudget(deadline_seconds=deadline_seconds)
    entries = list(workload.entries)

    def lane(spec: VariantSpec) -> VariantOutcome:
        remaining = clock_budget.remaining_seconds()
        lane_database = database
        if snapshots is not None and mode != "retry":
            # Concurrent lanes each get an isolated composed snapshot:
            # identical bytes (the differential suite pins this), zero
            # re-serialization after the first lane, and no cross-lane
            # catalog contention.
            lane_database = snapshots.snapshot(database)
        return _run_variant(
            lane_database,
            entries,
            spec,
            budget_bytes,
            remaining if mode == "retry" else deadline_seconds,
            optimizer_call_budget,
        )

    outcomes: List[VariantOutcome] = []
    best: Optional[VariantOutcome] = None

    def absorb(batch: Sequence[VariantOutcome]):
        nonlocal best
        for outcome in batch:
            outcomes.append(outcome)
            if _better(outcome, best):
                best = outcome

    if mode == "retry":
        for spec in base_specs(strategies):
            remaining = clock_budget.remaining_seconds()
            if outcomes and remaining is not None and remaining <= 0:
                break
            absorb([lane(spec)])
            if best is not None and not best.recommendation.search.truncated:
                # First untruncated success wins the retry ladder; later
                # strategies only run when earlier ones failed or were
                # cut short by the deadline.
                break
    else:
        pool = WorkerPool("thread", max(1, workers or len(strategies)))
        try:
            absorb(pool.run(lane, base_specs(strategies)))
            if mode == "evolutionary":
                pop = population or len(strategies)
                for generation in range(1, max(1, generations)):
                    remaining = clock_budget.remaining_seconds()
                    if remaining is not None and remaining <= 0:
                        break
                    absorb(
                        pool.run(
                            lane,
                            perturbed_specs(
                                strategies, seed, generation, pop
                            ),
                        )
                    )
        finally:
            pool.shutdown()

    if best is None or best.recommendation is None:
        errors = "; ".join(
            f"{o.spec.label}: {o.error}" for o in outcomes if o.error
        )
        config_error = next(
            (
                o
                for o in outcomes
                if o.error_type == "ConfigError"
            ),
            None,
        )
        if config_error is not None:
            raise ConfigError(
                f"every portfolio strategy failed ({errors})"
            )
        raise FatalAdvisorError(
            f"every portfolio strategy failed ({errors})", phase="portfolio"
        )

    winner = best.recommendation
    # Re-derive the winner's DDL as if its search had run alone: restore
    # the catalog counter (concurrent lanes bumped it in race order) and
    # mint names deterministically.
    database.catalog._name_counter = name_counter_before
    winner.ddl = [
        candidate.definition(
            database.catalog.fresh_name("xmlidx"), virtual=False
        ).ddl()
        for candidate in winner.configuration
    ]
    failed = sum(1 for o in outcomes if o.recommendation is None)
    winner.portfolio_stats = {
        "mode": mode,
        "seed": seed,
        "winner": best.spec.label,
        "deadline_seconds": deadline_seconds,
        "strategies_failed": failed,
        "optimizer_calls_total": sum(
            o.recommendation.search.optimizer_calls
            for o in outcomes
            if o.recommendation is not None
        ),
        "strategies": [
            outcome.to_dict(winner=outcome is best) for outcome in outcomes
        ],
    }
    if failed:
        winner.diagnostics = list(winner.diagnostics) + [
            f"portfolio: {o.spec.label} failed ({o.error_type}: {o.error})"
            for o in outcomes
            if o.recommendation is None
        ]
    return winner
