"""The asyncio serving front end: :class:`AdvisorServer`.

Concurrency model (docs/serving.md):

* **Reads** (``query``, ``whatif``, ``recommend``) are lock-free and
  optimistic: take an :class:`~repro.storage.database.EpochGate` token
  over the collections touched, do the work, validate that no write
  moved the epochs, retry on a torn read.  Reads are side-effect free
  -- statistics are primed at :meth:`AdvisorServer.start` and dirty
  summaries are rebuilt on the write path, so a read never mutates
  shared state (and never perturbs the storage counters the
  differential tests pin).
* **Writes** (``dml``) are serialized per collection by an
  ``asyncio.Lock`` and bracketed by the gate's writer critical section;
  each commit gets a global sequence number and a journal entry, which
  together let any concurrent schedule be replayed serially
  (tests/test_serve_differential.py).
* **Advise-class reads** (``whatif``, ``recommend``) run against an
  epoch-consistent *snapshot* taken atomically under the gate by the
  :class:`~repro.storage.snapshots.SnapshotStore` -- composed from
  per-collection blobs cached at their epochs, so repeat requests at
  unchanged epochs re-serialize nothing and a multi-second portfolio
  search never races live DML (reproducible at its epoch token).

Execution modes: *inline* (``lanes=0``, default) runs engine steps on
the event loop with cooperative yield points -- combined with a
:class:`~repro.serve.scheduler.SeededScheduler` this gives the
deterministic adversarial interleavings the property tests shrink;
*thread-lane* mode (``lanes=N``) dispatches engine steps to a thread
pool for real overlap (the latency bench).

Every endpoint returns a typed :class:`~repro.serve.requests.Response`
and never raises -- see requests.py for the error-code taxonomy.
"""

from __future__ import annotations

import asyncio
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.optimizer.executor import Executor
from repro.query.model import (
    DeleteStatement,
    InsertStatement,
    JoinQuery,
)
from repro.query.parser import parse_statement
from repro.query.workload import Workload
from repro.robustness.errors import (
    AdmissionRejected,
    AdvisorError,
    ConfigError,
    FatalAdvisorError,
)
from repro.robustness.faults import maybe_inject
from repro.serve.portfolio import DEFAULT_STRATEGIES, run_portfolio
from repro.serve.requests import Response
from repro.serve.tenants import AdmissionController, TenantPolicy
from repro.storage.database import EpochGate, resolve_database
from repro.storage.snapshots import SnapshotStore


def normalized_recommendation(recommendation) -> Dict:
    """``Recommendation.to_dict()`` minus wall-clock fields -- the
    schedule-invariant projection the differential tests compare
    (latency lives in ``Response.elapsed_seconds``)."""
    data = recommendation.to_dict()
    data.pop("elapsed_seconds", None)
    data.get("session", {}).pop("phase_seconds", None)
    portfolio = data.get("portfolio")
    if portfolio:
        for strategy in portfolio.get("strategies", []):
            strategy.pop("elapsed_seconds", None)
    return data


def serial_order(responses: Sequence[Response]) -> List[int]:
    """The serializability order a concurrent schedule committed in:
    writes sorted by commit sequence, each read placed at its watermark
    (after the ``seq``-th write committed, before write ``seq`` itself),
    ties broken by arrival order.  Replaying the schedule's requests
    serially in this order must reproduce every response bit-for-bit --
    the differential contract (tests/test_serve_differential.py)."""
    keyed = []
    for index, response in enumerate(responses):
        if response.seq is None:
            continue
        is_write = response.kind == "dml"
        keyed.append((response.seq, 1 if is_write else 0, index))
    return [index for _, _, index in sorted(keyed)]


class AdvisorServer:
    """Concurrent serving front end over one database; see the module
    docstring for the concurrency model."""

    def __init__(
        self,
        database,
        *,
        tenants: Optional[Dict[str, TenantPolicy]] = None,
        default_policy: TenantPolicy = TenantPolicy(),
        mode: str = "tournament",
        strategies: Sequence[str] = DEFAULT_STRATEGIES,
        deadline_seconds: Optional[float] = None,
        workers: Optional[int] = None,
        lanes: int = 0,
        scheduler: Optional[Callable] = None,
        seed: int = 0,
        read_retry_limit: int = 64,
        snapshot_store: Optional[SnapshotStore] = None,
    ) -> None:
        self.database = resolve_database(database)
        self.gate = EpochGate(self.database)
        #: Epoch-keyed snapshot engine: advise-class reads compose their
        #: snapshots from cached per-collection blobs, so repeat
        #: requests at unchanged epochs re-pickle nothing.  Shareable
        #: (the online daemon / cluster tuner pass one in).
        self.snapshots = snapshot_store or SnapshotStore()
        self.admission = AdmissionController(tenants, default_policy)
        self.mode = mode
        self.strategies = tuple(strategies)
        self.deadline_seconds = deadline_seconds
        #: Portfolio lane count; ``None`` consults ``REPRO_WORKERS`` at
        #: request time (inside the request task -- junk env becomes a
        #: typed ``config`` response, never a bare traceback).
        self.workers = workers
        self.lanes = lanes
        self.scheduler = scheduler
        self.seed = seed
        self.read_retry_limit = read_retry_limit
        self._writer_locks: Dict[str, asyncio.Lock] = {}
        self._seq = 0
        #: Commit journal of every write: ``seq``, statement text,
        #: collection, post-commit epoch, rows -- the replay script of
        #: the differential tests.
        self.journal: List[Dict] = []
        self.counters: Dict[str, int] = {}
        self._executor: Optional[ThreadPoolExecutor] = None
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        """Prime statistics so reads never fill caches or repair
        summaries (read purity), and spin up thread lanes if asked."""
        for name in sorted(self.database.collections):
            stats = self.database.runstats(name)
            stats.rebuild_dirty_summaries()
        if self.lanes > 0:
            self._executor = ThreadPoolExecutor(
                max_workers=self.lanes, thread_name_prefix="serve"
            )
        self._started = True

    async def stop(self) -> None:
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None
        self._started = False

    async def __aenter__(self) -> "AdvisorServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.stop()

    # ------------------------------------------------------------------
    # Execution plumbing
    # ------------------------------------------------------------------
    async def _yield(self, site: str) -> None:
        """A cooperative yield point; the seeded scheduler hooks in
        here to explore adversarial interleavings deterministically."""
        if self.scheduler is not None:
            await self.scheduler(site)
        else:
            await asyncio.sleep(0)

    async def _call(self, fn: Callable):
        """Run one engine step: on a thread lane when configured, else
        inline on the event loop (atomic between yield points)."""
        if self._executor is not None:
            return await asyncio.get_running_loop().run_in_executor(
                self._executor, fn
            )
        return fn()

    async def _read_backoff(self, attempt: int, site: str) -> None:
        """Bounded adaptive backoff between optimistic-read retries.

        A refused or torn read used to spin straight back into the gate
        (one bare yield per attempt), so under write pressure readers
        burned their retry budget re-colliding with the same writer --
        BENCH_PR9 measured 32 torn + 54 refused against only 40
        validated reads.  Now each retry waits exponentially longer
        (capped): under the seeded scheduler the wait is a deterministic
        ladder of extra yield points (still a pure function of the
        seed), otherwise a short real sleep.  Every wait is counted on
        the gate (``reads_backoff_waits``)."""
        self.gate.note_backoff()
        steps = 1 << min(max(attempt, 1) - 1, 3)  # 1, 2, 4, 8, 8, ...
        if self.scheduler is not None:
            for _ in range(steps):
                await self.scheduler(site)
        else:
            await asyncio.sleep(min(0.0002 * steps, 0.005))

    async def _gated_read(self, collections, steps: Sequence[Callable]):
        """Optimistic multi-step read: returns ``(step_results, token,
        retries, watermark)`` where the token validated across all
        steps and the watermark is the global write sequence at
        validation time (the serial-replay position)."""
        collections = sorted(set(collections))
        retries = 0
        refused = 0
        while True:
            token = self.gate.read_view(collections)
            if token is None:
                refused += 1
                if refused > self.read_retry_limit * 16:
                    raise FatalAdvisorError(
                        f"read starved behind writers on {collections}",
                        phase="serve.read",
                    )
                await self._read_backoff(refused, "serve.read.refused")
                continue
            results = []
            torn = False
            try:
                for index, step in enumerate(steps):
                    if index:
                        await self._yield("serve.read.step")
                    results.append(await self._call(step))
            except Exception:
                if self.gate.validate(token):
                    raise  # the failure is real, not a torn-read artifact
                torn = True
            if not torn and self.gate.validate(token):
                return results, token, retries, self._seq
            retries += 1
            self._bump("read_retries")
            if retries > self.read_retry_limit:
                raise FatalAdvisorError(
                    f"read kept tearing after {retries} retries on "
                    f"{collections}",
                    phase="serve.read",
                )
            await self._read_backoff(retries, "serve.read.retry")

    async def _snapshot(self, collections):
        """An epoch-consistent database snapshot for advise-class reads,
        composed by the snapshot store from per-collection blobs cached
        at their epochs (taken atomically under the gate, exactly like
        the full pickle round-trip it replaces -- but a repeat request
        at unchanged epochs re-pickles nothing)."""
        (snapshot,), token, retries, watermark = await self._gated_read(
            collections, [lambda: self.snapshots.snapshot(self.database)]
        )
        return snapshot, token, retries, watermark

    def _bump(self, counter: str, by: int = 1) -> None:
        self.counters[counter] = self.counters.get(counter, 0) + by

    def _check_collections(self, names) -> List[str]:
        for name in names:
            if name not in self.database.collections:
                raise KeyError(f"unknown collection {name!r}")
        return sorted(set(names))

    @staticmethod
    def _statement_collections(statement) -> List[str]:
        if isinstance(statement, JoinQuery):
            return [statement.left.collection, statement.right.collection]
        return [statement.collection]

    def _stats_fingerprint(self, collections, database=None) -> Dict:
        """Deterministic per-collection statistics digest; returned with
        every read so a response is a *configuration/statistics pair*
        whose single-epoch consistency the property tests check."""
        database = database if database is not None else self.database
        fingerprint = {}
        for name in sorted(set(collections)):
            stats = database.runstats(name)
            fingerprint[name] = {
                "doc_count": stats.doc_count,
                "total_nodes": stats.total_nodes,
                "paths": len(stats.path_counts),
                "path_nodes": sum(stats.path_counts.values()),
            }
        return fingerprint

    # ------------------------------------------------------------------
    # Request wrapper: typed responses, never raises
    # ------------------------------------------------------------------
    async def _handle(self, kind: str, tenant: str, fn: Callable) -> Response:
        started = time.perf_counter()
        self._bump(f"{kind}_requests")
        try:
            maybe_inject("serve.request")
            with self.admission.admit(tenant, kind):
                value, epoch, retries, seq = await fn()
            response = Response(
                kind,
                True,
                tenant=tenant,
                value=value,
                epoch=epoch,
                seq=seq,
                retries=retries,
            )
        except AdmissionRejected as exc:
            response = self._error(kind, tenant, exc, "rejected")
        except ConfigError as exc:
            response = self._error(kind, tenant, exc, "config")
        except (ValueError, KeyError) as exc:
            response = self._error(kind, tenant, exc, "bad-request")
        except AdvisorError as exc:
            response = self._error(kind, tenant, exc, "advisor-error")
        except Exception as exc:  # the "never a 500" backstop
            response = self._error(kind, tenant, exc, "internal")
        response.elapsed_seconds = time.perf_counter() - started
        return response

    def _error(self, kind, tenant, exc, code) -> Response:
        self._bump(f"errors_{code}")
        return Response(
            kind,
            False,
            tenant=tenant,
            error=f"{type(exc).__name__}: {exc}",
            code=code,
        )

    # ------------------------------------------------------------------
    # Endpoints
    # ------------------------------------------------------------------
    async def query(self, text: str, tenant: str = "default") -> Response:
        """Execute one read statement lock-free under the epoch gate."""
        return await self._handle(
            "query", tenant, lambda: self._do_query(text)
        )

    async def dml(self, text: str, tenant: str = "default") -> Response:
        """Apply one insert/delete, serialized per collection."""
        return await self._handle("dml", tenant, lambda: self._do_dml(text))

    async def whatif(
        self,
        statements: Sequence[str],
        patterns: Sequence[str],
        collection: str,
        tenant: str = "default",
    ) -> Response:
        """Cost a hypothetical configuration on an epoch snapshot."""
        return await self._handle(
            "whatif",
            tenant,
            lambda: self._do_whatif(statements, patterns, collection, tenant),
        )

    async def recommend(
        self,
        statements: Sequence[str],
        budget_bytes: int,
        tenant: str = "default",
        mode: Optional[str] = None,
        strategies: Optional[Sequence[str]] = None,
        deadline_seconds: Optional[float] = None,
        seed: Optional[int] = None,
    ) -> Response:
        """Portfolio-search an index configuration on an epoch
        snapshot; per-strategy telemetry rides the response value."""
        return await self._handle(
            "recommend",
            tenant,
            lambda: self._do_recommend(
                statements, budget_bytes, tenant, mode, strategies,
                deadline_seconds, seed,
            ),
        )

    # ------------------------------------------------------------------
    # Endpoint bodies
    # ------------------------------------------------------------------
    async def _do_query(self, text: str):
        statement = parse_statement(text)
        if isinstance(statement, (InsertStatement, DeleteStatement)):
            raise ValueError(
                "DML statement on the query endpoint; use dml()"
            )
        collections = self._check_collections(
            self._statement_collections(statement)
        )

        def run():
            return Executor(self.database).execute(
                statement, collect_output=True
            )

        (result, fingerprint), token, retries, watermark = (
            await self._gated_read(
                collections,
                [run, lambda: self._stats_fingerprint(collections)],
            )
        )
        value = {
            "rows": result.rows,
            "docs_examined": result.docs_examined,
            "used_indexes": list(result.used_indexes),
            "index_entries_scanned": result.index_entries_scanned,
            "output": list(result.output),
            "statistics": fingerprint,
        }
        return value, token, retries, watermark

    async def _do_dml(self, text: str):
        statement = parse_statement(text)
        if not isinstance(statement, (InsertStatement, DeleteStatement)):
            raise ValueError(
                "read statement on the dml endpoint; use query()"
            )
        collection = statement.collection
        self._check_collections([collection])
        lock = self._writer_locks.setdefault(collection, asyncio.Lock())
        async with lock:
            self.gate.begin_write(collection)
            try:
                await self._yield("serve.write.begin")
                result = await self._call(
                    lambda: self._apply_dml(statement, collection)
                )
                await self._yield("serve.write.commit")
            finally:
                self.gate.end_write(collection)
            seq = self._seq
            self._seq += 1
            token = self.gate.epochs([collection])
            self.journal.append(
                {
                    "seq": seq,
                    "text": statement.describe(),
                    "collection": collection,
                    "epoch": token[0][1],
                    "rows": result.rows,
                }
            )
        value = {
            "rows": result.rows,
            "docs_examined": result.docs_examined,
            "statistics": self._stats_fingerprint([collection]),
        }
        return value, token, 0, seq

    def _apply_dml(self, statement, collection: str):
        result = Executor(self.database).execute(statement)
        # Rebuild any summaries the delta left dirty *inside* the writer
        # critical section, so later lock-free reads never repair state.
        stats = self.database._statistics.get(collection)
        if stats is not None:
            stats.rebuild_dirty_summaries()
        return result

    async def _do_whatif(self, statements, patterns, collection, tenant):
        from repro.core.candidates import CandidateIndex
        from repro.core.config import IndexConfiguration
        from repro.core.whatif import analyze
        from repro.optimizer.session import WhatIfSession
        from repro.storage.index import IndexValueType
        from repro.xpath.patterns import parse_pattern

        workload = Workload.from_statements(list(statements))
        touched = self._check_collections(
            [collection]
            + [
                name
                for entry in workload
                for name in self._statement_collections(entry.statement)
            ]
        )
        candidates = []
        for spec in patterns:
            if ":" in spec:
                pattern_text, type_text = spec.rsplit(":", 1)
            else:
                pattern_text, type_text = spec, "string"
            value_type = (
                IndexValueType.NUMERIC
                if type_text.lower() in ("numeric", "numerical", "double")
                else IndexValueType.STRING
            )
            candidates.append(
                CandidateIndex(
                    parse_pattern(pattern_text), value_type, collection
                )
            )
        snapshot, token, retries, watermark = await self._snapshot(touched)
        session = WhatIfSession(snapshot)

        def run():
            report = analyze(
                snapshot,
                workload,
                IndexConfiguration(candidates),
                session=session,
            )
            return {
                "total_benefit": report.total_benefit,
                "unused_indexes": report.unused_indexes(),
                "impacts": [
                    {
                        "statement": impact.statement_text,
                        "frequency": impact.frequency,
                        "cost_before": impact.cost_before,
                        "cost_after": impact.cost_after,
                        "used_indexes": list(impact.used_indexes),
                    }
                    for impact in report.impacts
                ],
            }

        value = await self._call(run)
        self.admission.charge_calls(
            tenant, session.counters.optimizer_calls
        )
        value["statistics"] = self._stats_fingerprint(
            touched, database=snapshot
        )
        return value, token, retries, watermark

    async def _do_recommend(
        self, statements, budget_bytes, tenant, mode, strategies,
        deadline_seconds, seed,
    ):
        from repro.parallel.executors import resolve_workers, workers_from_env

        workload = Workload.from_statements(list(statements))
        touched = sorted(
            {
                name
                for entry in workload
                for name in self._statement_collections(entry.statement)
            }
        )
        self._check_collections(touched)
        # Resolved *inside* the request task: junk REPRO_WORKERS becomes
        # a typed ``config`` response here, not a bare traceback out of
        # a lane (the PR 9 bugfix; regression in tests/test_serve_server.py).
        lane_workers = (
            workers_from_env()
            if self.workers is None
            else resolve_workers(self.workers, option="workers")
        )
        deadline, call_quota = self.admission.limits_for(
            tenant,
            self.deadline_seconds
            if deadline_seconds is None
            else deadline_seconds,
        )
        snapshot, token, retries, watermark = await self._snapshot(touched)

        def run():
            return run_portfolio(
                snapshot,
                workload,
                budget_bytes,
                mode=mode or self.mode,
                strategies=tuple(strategies or self.strategies),
                deadline_seconds=deadline,
                optimizer_call_budget=call_quota,
                seed=self.seed if seed is None else seed,
                workers=lane_workers or None,
                snapshots=self.snapshots,
            )

        recommendation = await self._call(run)
        self.admission.charge_calls(
            tenant,
            recommendation.portfolio_stats.get("optimizer_calls_total", 0),
        )
        return (
            normalized_recommendation(recommendation),
            token,
            retries,
            watermark,
        )

    # ------------------------------------------------------------------
    # Schedule driving (CLI, bench, differential tests)
    # ------------------------------------------------------------------
    async def dispatch(self, request: Dict) -> Response:
        """Route one request dict (``{"kind": ..., ...}``) to its
        endpoint."""
        kind = request.get("kind")
        tenant = request.get("tenant", "default")
        if kind == "query":
            return await self.query(request["text"], tenant=tenant)
        if kind == "dml":
            return await self.dml(request["text"], tenant=tenant)
        if kind == "whatif":
            return await self.whatif(
                request["statements"],
                request["patterns"],
                request["collection"],
                tenant=tenant,
            )
        if kind == "recommend":
            return await self.recommend(
                request["statements"],
                request["budget_bytes"],
                tenant=tenant,
                mode=request.get("mode"),
                strategies=request.get("strategies"),
                deadline_seconds=request.get("deadline_seconds"),
                seed=request.get("seed"),
            )
        return self._error(
            str(kind), tenant, ValueError(f"unknown request kind {kind!r}"),
            "bad-request",
        )

    async def run_schedule(
        self, schedule: Sequence[Dict], clients: int = 1
    ) -> List[Response]:
        """Drive ``schedule`` through ``clients`` concurrent client
        tasks (each pulls the next request off a shared queue); the
        returned responses parallel the schedule's order."""
        queue: asyncio.Queue = asyncio.Queue()
        for index, request in enumerate(schedule):
            queue.put_nowait((index, request))
        responses: List[Optional[Response]] = [None] * len(schedule)

        async def client() -> None:
            while True:
                try:
                    index, request = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                responses[index] = await self.dispatch(request)

        await asyncio.gather(*(client() for _ in range(max(1, clients))))
        return responses

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------
    def stats(self) -> Dict:
        return {
            "counters": dict(sorted(self.counters.items())),
            "gate": self.gate.stats(),
            "tenants": self.admission.stats(),
            "writes": self._seq,
            "storage": self.database.storage_stats(),
            "snapshots": self.snapshots.stats(),
            "epochs": dict(sorted(self.database.collection_epochs.items())),
        }
