"""Deterministic cooperative scheduling for the inline server mode.

The differential and property tests need *adversarial but replayable*
interleavings: every concurrent schedule they explore must be a pure
function of a seed, so hypothesis can shrink a failing schedule to a
minimal counterexample.  :class:`SeededScheduler` provides that: the
server awaits :meth:`SeededScheduler.__call__` at each yield point
(between read steps, inside writer critical sections, on refused
reads), the scheduler parks the task, and :meth:`drive` releases parked
tasks one at a time in an order drawn from a seeded RNG.

With no scheduler installed the server's yield points are plain
``asyncio.sleep(0)`` -- normal event-loop interleaving.
"""

from __future__ import annotations

import asyncio
import random
from typing import List, Optional, Tuple


class SeededScheduler:
    """Replayable random scheduler over the server's yield points."""

    def __init__(self, seed: int = 0, max_steps: int = 100_000) -> None:
        self.seed = seed
        self.rng = random.Random(seed)
        self.max_steps = max_steps
        self.steps = 0
        #: Parked tasks: ``(site, future)`` in arrival order (arrival
        #: order is deterministic -- tasks are created in program order
        #: and the loop runs ready callbacks FIFO).
        self._waiters: List[Tuple[str, asyncio.Future]] = []
        #: The release order actually chosen (the shrinkable trace
        #: reported on failure).
        self.trace: List[str] = []

    async def __call__(self, site: str) -> None:
        """Park the calling task until :meth:`drive` releases it."""
        loop = asyncio.get_running_loop()
        future: asyncio.Future = loop.create_future()
        self._waiters.append((site, future))
        await future

    def _release_one(self) -> Optional[str]:
        if not self._waiters:
            return None
        index = self.rng.randrange(len(self._waiters))
        site, future = self._waiters.pop(index)
        if not future.done():  # pragma: no branch - cancelled tasks
            future.set_result(None)
        self.trace.append(site)
        return site

    async def drive(self, coroutines) -> list:
        """Run ``coroutines`` to completion under this schedule and
        return their results in argument order."""
        tasks = [asyncio.ensure_future(coro) for coro in coroutines]
        try:
            while not all(task.done() for task in tasks):
                self.steps += 1
                if self.steps > self.max_steps:  # pragma: no cover - guard
                    for task in tasks:
                        task.cancel()
                    raise RuntimeError(
                        f"SeededScheduler(seed={self.seed}) exceeded "
                        f"{self.max_steps} steps; trace tail: "
                        f"{self.trace[-10:]}"
                    )
                # Let every runnable task advance to its next yield point
                # (a few no-op turns drain chained awaits like released
                # asyncio.Lock waiters).
                for _ in range(4):
                    await asyncio.sleep(0)
                if all(task.done() for task in tasks):
                    break
                self._release_one()
            return [task.result() for task in tasks]
        finally:
            for task in tasks:
                if not task.done():  # pragma: no cover - error path
                    task.cancel()
