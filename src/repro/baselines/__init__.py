"""Baseline advisors the paper argues against (Related Work, Section II).

The paper positions tight optimizer coupling against advisors that are
*independent* of the query optimizer ([19], [20] / XIST-style tools):
their candidates are the paths occurring in the data (an "uncontrolled
explosion of the space"), their cost models are "independent of the
database system which can lead to inaccurate estimates", and "there is no
guarantee that the optimizer will use the recommended indexes".

:class:`~repro.baselines.decoupled.DecoupledAdvisor` implements that
design faithfully enough to measure the gap, and the benchmark
``benchmarks/test_baseline_decoupled.py`` compares it against the
tightly-coupled advisor on candidate-space size, optimizer usage of the
recommended indexes, and realized workload speedup.
"""

from repro.baselines.decoupled import DecoupledAdvisor, DecoupledRecommendation

__all__ = ["DecoupledAdvisor", "DecoupledRecommendation"]
