"""A decoupled (optimizer-independent) XML index advisor baseline.

Models the design of the related work the paper criticizes ([19], [20]):

* **Candidates** are the distinct rooted tag paths occurring in the *data*
  (one exact pattern per path; a numeric variant when the path carries
  numeric values) -- not the patterns the optimizer can actually match for
  the workload.  On any realistically-shaped document collection this is
  far larger than the workload-driven candidate set.
* **The cost model is its own**, not the optimizer's: an index is credited
  whenever a query's *text* mentions the final tag of the index's path,
  scaled by how many nodes the path has (a navigation-savings guess).  No
  predicate selectivity, no plan costs, no index interaction.
* **Search** is plain greedy by (heuristic benefit / size) under the disk
  budget.

The recommended configuration is returned as ordinary
:class:`~repro.core.candidates.CandidateIndex` objects, so the paper's
(tightly-coupled) evaluator can score it and the executor can check
whether the optimizer ever uses the indexes -- exactly the failure modes
Section II predicts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.core.candidates import CandidateIndex
from repro.core.config import IndexConfiguration
from repro.query.model import JoinQuery, Query
from repro.query.workload import Workload
from repro.robustness.errors import StatisticsUnavailable
from repro.storage.database import Database
from repro.storage.index import IndexValueType
from repro.xpath.ast import Axis
from repro.xpath.patterns import PathPattern, PatternStep


@dataclass
class DecoupledRecommendation:
    """Outcome of the baseline advisor."""

    configuration: IndexConfiguration
    candidate_count: int
    budget_bytes: int

    @property
    def size_bytes(self) -> int:
        return self.configuration.size_bytes()


def _pattern_for_tag_path(tag_path: Tuple[str, ...]) -> PathPattern:
    return PathPattern(
        [PatternStep(Axis.CHILD, name) for name in tag_path]
    )


#: Cost assumed for a statement whose collection statistics are also
#: unavailable -- the estimator of last resort never fails.
DEFAULT_STATEMENT_COST = 1000.0

#: Per-index navigation discount when a (virtual) index plausibly serves
#: a statement (its final tag appears in the statement text).
INDEX_DISCOUNT = 0.5

#: Floor on the combined discount: even a pile of matching indexes never
#: claims more than a 10x improvement without the optimizer's say-so.
MIN_DISCOUNT = 0.1


class HeuristicCostModel:
    """Optimizer-free statement cost estimates: the decoupled baseline's
    text-match heuristic packaged as the *degradation fallback* of the
    tightly-coupled session (docs/robustness.md).

    The estimate is deliberately crude -- collection node count scaled
    down once per installed index whose final tag the statement mentions
    -- because its only job is to keep a search ordered sensibly while
    the optimizer is unavailable.  Results served from it are always
    tagged ``degraded``.
    """

    def __init__(self, database: Database) -> None:
        self.database = database
        self._nodes_cache: Dict[str, float] = {}

    def _collection_nodes(self, collection: str) -> float:
        """Total node count of a collection, from statistics when they
        are healthy, degrading to a document-count guess and finally to
        a constant.  This estimator must never raise."""
        cached = self._nodes_cache.get(collection)
        if cached is not None:
            return cached
        try:
            stats = self.database.runstats(collection)
            nodes = float(sum(stats.path_counts.values()))
        except (StatisticsUnavailable, KeyError):
            try:
                nodes = 20.0 * len(self.database.collection(collection))
            except KeyError:
                nodes = DEFAULT_STATEMENT_COST
        nodes = max(1.0, nodes)
        self._nodes_cache[collection] = nodes
        return nodes

    def estimate_cost(self, statement, definitions=()) -> float:
        """Heuristic cost of ``statement`` with ``definitions`` installed
        as (virtual) indexes."""
        if isinstance(statement, JoinQuery):
            collections = [
                statement.left.collection, statement.right.collection
            ]
        else:
            collections = [getattr(statement, "collection", None)]
        collections = [c for c in collections if c is not None]
        if not collections:
            return DEFAULT_STATEMENT_COST
        base = sum(self._collection_nodes(c) for c in collections)
        text = statement.describe()
        factor = 1.0
        credited = set()
        for definition in definitions:
            if definition.collection not in collections:
                continue
            last = definition.pattern.last_step.name.lstrip("@")
            if not last or last == "*" or last in credited:
                continue
            if last in text:
                credited.add(last)
                factor *= INDEX_DISCOUNT
        return max(1.0, base * max(factor, MIN_DISCOUNT))


class DecoupledAdvisor:
    """The baseline: data-driven candidates + text-match cost heuristic."""

    def __init__(self, database: Database, workload: Workload) -> None:
        self.database = database
        self.workload = workload

    # ------------------------------------------------------------------
    # Tightly-coupled scoring of the decoupled result
    # ------------------------------------------------------------------
    def coupled_benefit(
        self, configuration: IndexConfiguration, session=None
    ) -> float:
        """Score this baseline's configuration with the *paper's*
        optimizer-coupled evaluator, through a shared
        :class:`~repro.optimizer.session.WhatIfSession` when given one
        (the comparison experiments reuse the coupled advisor's warm
        cache).  The baseline itself never consults the optimizer -- that
        is the point -- but its output is judged by it."""
        from repro.core.benefit import ConfigurationEvaluator
        from repro.optimizer.session import WhatIfSession

        if session is None:
            session = WhatIfSession(self.database)
        evaluator = ConfigurationEvaluator(
            self.database, session, self.workload
        )
        return evaluator.benefit(configuration)

    # ------------------------------------------------------------------
    # Candidate generation: every path in the data
    # ------------------------------------------------------------------
    def enumerate_candidates(self) -> List[CandidateIndex]:
        """One candidate per distinct rooted path per collection the
        workload touches (plus numeric variants for numeric paths)."""
        collections = {
            entry.statement.collection
            for entry in self.workload
            if hasattr(entry.statement, "collection")
        }
        candidates: List[CandidateIndex] = []
        for collection in sorted(collections):
            if collection not in self.database.collections:
                continue
            stats = self.database.runstats(collection)
            for tag_path in sorted(stats.path_counts):
                pattern = _pattern_for_tag_path(tag_path)
                string_stats = stats.derive_index_statistics(
                    pattern, IndexValueType.STRING
                )
                candidate = CandidateIndex(
                    pattern, IndexValueType.STRING, collection
                )
                candidate.size_bytes = string_stats.size_bytes
                candidates.append(candidate)
                summary = stats.summaries.get(tag_path)
                if summary is not None and summary.numeric_count > 0:
                    numeric_stats = stats.derive_index_statistics(
                        pattern, IndexValueType.NUMERIC
                    )
                    numeric = CandidateIndex(
                        pattern, IndexValueType.NUMERIC, collection
                    )
                    numeric.size_bytes = numeric_stats.size_bytes
                    candidates.append(numeric)
        return candidates

    # ------------------------------------------------------------------
    # Optimizer-independent cost heuristic
    # ------------------------------------------------------------------
    def heuristic_benefit(self, candidate: CandidateIndex) -> float:
        """Text-level guess: credit the index once per workload query that
        mentions the final tag of its path, scaled by the path's node
        count (more nodes = more navigation "saved")."""
        last = candidate.pattern.last_step.name.lstrip("@")
        if not last or last == "*":
            return 0.0
        stats = self.database.runstats(candidate.collection)
        nodes = sum(
            count for path, count in stats.path_counts.items()
            if candidate.pattern.matches(path)
        )
        mentions = 0.0
        for entry in self.workload:
            statement = entry.statement
            if not isinstance(statement, Query):
                continue
            if statement.collection != candidate.collection:
                continue
            if last in statement.describe():
                mentions += entry.frequency
        return mentions * nodes

    # ------------------------------------------------------------------
    # Greedy search
    # ------------------------------------------------------------------
    def recommend(self, budget_bytes: int) -> DecoupledRecommendation:
        candidates = self.enumerate_candidates()
        scored = [
            (self.heuristic_benefit(candidate), candidate)
            for candidate in candidates
        ]
        scored = [
            (benefit, candidate)
            for benefit, candidate in scored
            if benefit > 0 and candidate.size_bytes > 0
        ]
        scored.sort(
            key=lambda pair: pair[0] / pair[1].size_bytes, reverse=True
        )
        chosen: List[CandidateIndex] = []
        remaining = budget_bytes
        for __, candidate in scored:
            if candidate.size_bytes <= remaining:
                chosen.append(candidate)
                remaining -= candidate.size_bytes
        return DecoupledRecommendation(
            configuration=IndexConfiguration(chosen),
            candidate_count=len(candidates),
            budget_bytes=budget_bytes,
        )
