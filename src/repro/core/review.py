"""Review of *existing* physical indexes: keep / drop recommendations.

Commercial design advisors (DB2 Design Advisor [16], SQL Server DTA [15])
do not only add indexes -- they also flag existing ones whose maintenance
cost outweighs their benefit or that no plan uses.  The same tight
coupling used for index *selection* answers this: re-evaluate each
existing index's marginal benefit through the optimizer, against the
workload's maintenance charge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.core.benefit import ConfigurationEvaluator
from repro.core.candidates import CandidateIndex
from repro.core.config import IndexConfiguration
from repro.core.maintenance import MaintenanceConstants
from repro.optimizer.session import WhatIfSession
from repro.query.workload import Workload
from repro.storage.database import Database


@dataclass
class IndexReview:
    """Verdict for one existing index."""

    index_name: str
    pattern: str
    marginal_benefit: float
    maintenance_cost: float
    keep: bool

    @property
    def net_benefit(self) -> float:
        return self.marginal_benefit - self.maintenance_cost

    def __str__(self) -> str:
        verdict = "KEEP" if self.keep else "DROP"
        return (
            f"{verdict} {self.index_name} ({self.pattern}): "
            f"benefit {self.marginal_benefit:.2f}, "
            f"maintenance {self.maintenance_cost:.2f}"
        )


def review_existing_indexes(
    database: Database,
    workload: Workload,
    maintenance_constants: MaintenanceConstants = MaintenanceConstants(),
    keep_threshold: float = 0.0,
) -> List[IndexReview]:
    """Evaluate every built index's *marginal* contribution to the
    workload (benefit of all existing indexes minus benefit without this
    one), net of maintenance.  ``keep`` is True when the net marginal
    benefit exceeds ``keep_threshold``.

    Existing real indexes are modeled as virtual candidates so the
    evaluation never needs to actually drop anything.
    """
    built = [
        definition
        for definition in database.catalog.all_definitions()
        if not definition.virtual and definition.name in database.indexes
    ]
    if not built:
        return []
    candidates = {}
    for definition in built:
        candidate = CandidateIndex(
            definition.pattern, definition.value_type, definition.collection
        )
        stats = database.runstats(definition.collection)
        candidate.size_bytes = stats.derive_index_statistics(
            definition.pattern, definition.value_type
        ).size_bytes
        candidates[definition.name] = candidate

    # Hide the built indexes while measuring, so base costs reflect a
    # no-index world and the candidates (their virtual twins) carry the
    # whole benefit -- otherwise the benefit would be double-counted.
    # ``touch()`` bumps the modification counter so any other session on
    # this database drops costs cached against the full index set.
    hidden = {name: database.indexes.pop(name) for name in candidates}
    database.touch()
    try:
        session = WhatIfSession(database)
        evaluator = ConfigurationEvaluator(
            database, session, workload, maintenance_constants
        )
        full = IndexConfiguration(candidates.values())
        full_benefit = evaluator.raw_benefit(full)
        reviews: List[IndexReview] = []
        for definition in built:
            candidate = candidates[definition.name]
            without = full.without(candidate)
            marginal = full_benefit - evaluator.raw_benefit(without)
            maintenance = evaluator.candidate_maintenance(candidate)
            reviews.append(
                IndexReview(
                    index_name=definition.name,
                    pattern=str(definition.pattern),
                    marginal_benefit=marginal,
                    maintenance_cost=maintenance,
                    keep=(marginal - maintenance) > keep_threshold,
                )
            )
        return reviews
    finally:
        database.indexes.update(hidden)
        database.touch()


def drop_recommended(
    database: Database, reviews: List[IndexReview]
) -> List[str]:
    """Drop every index a review marked DROP; returns the dropped names."""
    dropped = []
    for review in reviews:
        if not review.keep:
            database.drop_index(review.index_name)
            dropped.append(review.index_name)
    return dropped
