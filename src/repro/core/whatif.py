"""What-if analysis: per-statement impact report of a configuration.

Relational design advisors expose a "what-if" interface on top of virtual
indexes [8, 9]; the paper's Evaluate Indexes mode is exactly that for XML.
:func:`analyze` packages it for users: for every workload statement it
reports the cost without the configuration, the cost with it (virtual),
which indexes the plan would use, and the plan itself.

Analysis runs through a shared
:class:`~repro.optimizer.session.WhatIfSession`: when the caller passes
the session an advisor already used for ``recommend()``, every
(statement, configuration) pair the search already costed is served from
the session cache and the analysis issues **zero** new optimizer calls
for them.  The session names virtual indexes canonically; the report
translates those names to ``<name_prefix>_<i>`` for display.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.core.config import IndexConfiguration
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.session import WhatIfSession
from repro.query.workload import Workload


@dataclass
class StatementImpact:
    """What-if result for one workload statement."""

    statement_text: str
    frequency: float
    cost_before: float
    cost_after: float
    used_indexes: Tuple[str, ...]
    plan_before: str
    plan_after: str

    @property
    def benefit(self) -> float:
        return self.frequency * (self.cost_before - self.cost_after)

    @property
    def speedup(self) -> float:
        if self.cost_after <= 0:
            return float("inf")
        return self.cost_before / self.cost_after


@dataclass
class WhatIfReport:
    """What-if results for a whole workload."""

    impacts: List[StatementImpact]
    index_names: List[str]

    @property
    def total_benefit(self) -> float:
        return sum(impact.benefit for impact in self.impacts)

    def unused_indexes(self) -> List[str]:
        """Indexes in the configuration no statement's plan uses -- dead
        weight the advisor's heuristics try to avoid."""
        used = set()
        for impact in self.impacts:
            used.update(impact.used_indexes)
        return [name for name in self.index_names if name not in used]

    def summary(self) -> str:
        lines = [
            f"{'freq':>6} {'before':>10} {'after':>10} {'speedup':>8}  indexes used"
        ]
        for impact in self.impacts:
            indexes = ", ".join(impact.used_indexes) or "-"
            lines.append(
                f"{impact.frequency:>6.1f} {impact.cost_before:>10.2f} "
                f"{impact.cost_after:>10.2f} {impact.speedup:>8.2f}  {indexes}"
            )
        lines.append(f"total benefit: {self.total_benefit:.2f}")
        unused = self.unused_indexes()
        if unused:
            lines.append(f"unused indexes: {', '.join(unused)}")
        return "\n".join(lines)


def analyze(
    database,
    workload: Workload,
    configuration: IndexConfiguration,
    session: Optional[WhatIfSession] = None,
    optimizer: Optional[Optimizer] = None,
    name_prefix: str = "whatif",
) -> WhatIfReport:
    """Evaluate ``configuration`` statement by statement as virtual
    indexes; nothing is built.

    Pass the ``session`` of the advisor that produced the configuration
    to reuse its warm cost cache.  ``optimizer`` is accepted for backward
    compatibility and adopted into a private session.
    """
    if session is None:
        session = (
            WhatIfSession.adopt(optimizer)
            if optimizer is not None
            else WhatIfSession(database)
        )
    definitions = session.definitions_for(configuration)
    display = {
        definition.name: f"{name_prefix}_{i}"
        for i, definition in enumerate(definitions)
    }
    impacts: List[StatementImpact] = []
    with session.phase("whatif"):
        with session.evaluating(()) as base_scope, session.evaluating(
            definitions
        ) as config_scope:
            for entry in workload:
                before = base_scope.result(entry.statement)
                after = config_scope.result(entry.statement)
                impacts.append(
                    StatementImpact(
                        statement_text=entry.statement.describe(),
                        frequency=entry.frequency,
                        cost_before=before.estimated_cost,
                        cost_after=after.estimated_cost,
                        used_indexes=tuple(
                            display.get(name, name)
                            for name in after.used_indexes
                        ),
                        plan_before=before.explain(),
                        plan_after=after.explain(),
                    )
                )
    return WhatIfReport(
        impacts=impacts,
        index_names=[display[d.name] for d in definitions],
    )
