"""Configuration benefit evaluation with minimal optimizer calls
(Sections III and VI-C).

The benefit of a configuration X for workload W is::

    Benefit(X; W) = sum_s [ freq_s * (s_old - s_new(X)) ]  -  MC(X; W)

where ``s_new(X)`` comes from the optimizer's *Evaluate Indexes* mode with
X installed as virtual indexes, and MC charges index maintenance for
update statements (:mod:`repro.core.maintenance`).

All raw costing goes through a shared
:class:`~repro.optimizer.session.WhatIfSession`, which memoizes every
(statement, projected configuration) pair and counts optimizer calls and
cache traffic.  On top of the session's cache the evaluator implements
the paper's two call-reduction techniques:

* **Affected sets** -- an index can only change the cost of statements
  that produced basic candidate patterns it covers, so only the union of
  the configuration's affected sets is re-optimized; every other statement
  keeps its base cost.
* **Sub-configurations** -- the configuration is split into groups of
  indexes with overlapping affected sets (merged transitively, by
  union-find over statement positions); each group is evaluated
  independently and cached, so a search step that adds one index only
  re-evaluates the group that index interacts with.
* **Delta evaluation** -- :meth:`ConfigurationEvaluator.delta_benefit`
  scores a search step as ``benefit(X + c) - benefit(X)`` directly,
  re-costing only the group(s) ``c`` touches; the searchers telescope
  deltas onto a running benefit instead of re-deriving whole-configuration
  benefits at every probe.

``naive=True`` disables both *and* bypasses the session's cost cache
(every evaluation re-optimizes the whole workload against the whole
configuration) -- the ablation benchmark uses it to measure the savings.

The evaluator's derived caches are tied to the database's modification
counter: an insert/delete/index-DDL between calls invalidates base costs
and sub-configuration benefits automatically.
"""

from __future__ import annotations

import weakref
from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.candidates import CandidateIndex, CandidateKey
from repro.core.config import IndexConfiguration
from repro.core.maintenance import MaintenanceConstants, maintenance_cost
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.rewriter import PathRequest, extract_all_requests
from repro.optimizer.session import WhatIfSession
from repro.query.model import JoinQuery, Query
from repro.query.workload import Workload
from repro.robustness.errors import StatisticsUnavailable
from repro.xpath.patterns import PathPattern


class ConfigurationEvaluator:
    """Benefit/cost oracle for index configurations over one workload.

    ``coupling`` is the shared :class:`WhatIfSession`; a bare
    :class:`Optimizer` is also accepted (it is adopted into a private
    session) for backward compatibility and tests.
    """

    def __init__(
        self,
        database,
        coupling: Union[WhatIfSession, Optimizer],
        workload: Workload,
        maintenance_constants: MaintenanceConstants = MaintenanceConstants(),
        naive: bool = False,
    ) -> None:
        self.database = database
        if isinstance(coupling, WhatIfSession):
            self.session = coupling
        else:
            self.session = WhatIfSession.adopt(coupling)
        self.workload = workload
        self.maintenance_constants = maintenance_constants
        self.naive = naive
        self._subconfig_cache: Dict[FrozenSet[CandidateKey], float] = {}
        self._standalone_cache: Dict[CandidateKey, float] = {}
        self._maintenance_cache: Dict[CandidateKey, float] = {}
        self._affected_cache: Dict[CandidateKey, FrozenSet[int]] = {}
        #: Ranked positive candidates per candidate set (searchers share
        #: the scan/sort across repeated searches on one evaluator).
        self._ranked_cache: "weakref.WeakKeyDictionary" = (
            weakref.WeakKeyDictionary()
        )
        self._statement_requests: List[List[PathRequest]] = [
            extract_all_requests(entry.statement)
            if hasattr(entry.statement, "collection")
            else []
            for entry in workload
        ]
        #: Candidate -> request coverage is decided against the workload's
        #: *distinct* request patterns, precomputed once per evaluator:
        #: (pattern, value type) -> statement positions requesting it.
        #: The same pattern text recurs across statements, so this turns
        #: O(statements * requests) containment probes per candidate into
        #: O(distinct requests).
        request_index: Dict[Tuple[str, object], Tuple] = {}
        for position, requests in enumerate(self._statement_requests):
            for request in requests:
                key = (str(request.pattern), request.value_type)
                entry = request_index.get(key)
                if entry is None:
                    request_index[key] = (request.pattern, request.value_type, {position})
                else:
                    entry[2].add(position)
        self._request_index: List[Tuple[PathPattern, object, FrozenSet[int]]] = [
            (pattern, value_type, frozenset(positions))
            for pattern, value_type, positions in request_index.values()
        ]
        self.evaluations = 0  # configuration evaluations requested
        self._generation = self.session.generation
        self._base_costs: Optional[List[float]] = None

    # ------------------------------------------------------------------
    # Coupling / staleness
    # ------------------------------------------------------------------
    @property
    def optimizer(self) -> Optimizer:
        """The session's optimizer (for call counting; do not construct
        optimizers elsewhere)."""
        return self.session.optimizer

    @property
    def optimizer_calls(self) -> int:
        return self.optimizer.calls

    def _refresh(self) -> None:
        """Invalidate derived caches when the database changed.  The
        session notices data/index modifications via the database's
        modification counter; everything this evaluator derived from old
        costs (base costs, sub-configuration benefits, maintenance, and
        standalone benefits) must go with them."""
        current = getattr(self.database, "modification_count", 0)
        if current == self._generation:
            return
        self._generation = current
        self._base_costs = None
        self._subconfig_cache.clear()
        self._standalone_cache.clear()
        self._maintenance_cache.clear()
        self._ranked_cache.clear()
        # affected sets depend only on statement patterns, which do not
        # change with data -- but keep the contract simple and safe.
        self._affected_cache.clear()

    @property
    def base_costs(self) -> List[float]:
        """Base (no new indexes) cost of every statement, computed lazily
        through the session (warm after the first evaluator on a shared
        session)."""
        self._refresh()
        if self._base_costs is None:
            with self.session.phase("base-costs"):
                # One batch: the parallel session shards the whole
                # workload's base costing across its workers.
                self._base_costs = self.session.cost_batch(
                    [(entry.statement, ()) for entry in self.workload]
                )
            self._generation = getattr(self.database, "modification_count", 0)
        return self._base_costs

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def total_base_cost(self) -> float:
        """Frequency-weighted workload cost with no (new) indexes."""
        return sum(
            entry.frequency * cost
            for entry, cost in zip(self.workload, self.base_costs)
        )

    def benefit(self, config: IndexConfiguration) -> float:
        """Benefit(X; W): query savings minus maintenance."""
        self.evaluations += 1
        self.session.note_evaluation()
        return self.raw_benefit(config) - self.maintenance(config)

    def improved_benefit(
        self,
        config: IndexConfiguration,
        extra: Iterable[CandidateIndex],
    ) -> float:
        """IB(X) of Section VI-A: the benefit of the current configuration
        with ``extra`` added to it."""
        return self.benefit(config.with_candidates(extra))

    def standalone_benefit(self, candidate: CandidateIndex) -> float:
        """Benefit of {candidate} alone (interaction-free view, used by
        plain greedy, top down lite, and dynamic programming)."""
        self._refresh()
        key = candidate.key
        if key not in self._standalone_cache:
            self._standalone_cache[key] = self.benefit(
                IndexConfiguration([candidate])
            )
        return self._standalone_cache[key]

    def prefetch_standalone(self, candidates: Iterable[CandidateIndex]) -> None:
        """Batch-compute standalone benefits for a frontier of candidates.

        Performs exactly the computation the serial per-candidate
        :meth:`standalone_benefit` loop would -- same session probes,
        same cache writes, same ``evaluations`` accounting -- but
        collects every uncached candidate's group costing into **one**
        session batch, which the parallel session fans out across
        workers.  Candidates already cached (standalone or as a cached
        single-index sub-configuration) are skipped/settled without
        touching the session, exactly as the serial path would."""
        self._refresh()
        pending = [
            candidate
            for candidate in candidates
            if candidate.key not in self._standalone_cache
        ]
        if not pending:
            return
        if self.naive:
            # Naive mode re-optimizes the whole workload per candidate;
            # each call is itself a (cache-bypassing) batch, so the
            # serial candidate loop is already the right shape.
            for candidate in pending:
                self.standalone_benefit(candidate)
            return
        base_costs: Optional[List[float]] = None
        tasks: List = []
        spans: List[Tuple[CandidateIndex, int, List[int], Optional[float]]] = []
        for candidate in pending:
            group_key = frozenset((candidate.key,))
            cached = self._subconfig_cache.get(group_key)
            if cached is not None:
                spans.append((candidate, 0, [], cached))
                continue
            if base_costs is None:
                # Serial order: the first uncached group computes base
                # costs before its own probes (_evaluate_group does the
                # same).
                base_costs = self.base_costs
            positions = sorted(self.affected_set(candidate))
            definitions = self.session.definitions_for([candidate])
            start = len(tasks)
            tasks.extend(
                (self.workload.entries[position].statement, definitions)
                for position in positions
            )
            spans.append((candidate, start, positions, None))
        new_costs = self.session.cost_batch(tasks) if tasks else []
        for candidate, start, positions, cached in spans:
            if cached is None:
                saved = sum(
                    (
                        self.workload.entries[position].frequency
                        * (base_costs[position] - new_costs[start + offset])
                        for offset, position in enumerate(positions)
                    ),
                    0.0,
                )
                self._subconfig_cache[frozenset((candidate.key,))] = saved
                group_benefit = saved
            else:
                group_benefit = cached
            self.evaluations += 1
            self.session.note_evaluation()
            self._standalone_cache[candidate.key] = (
                group_benefit - self.candidate_maintenance(candidate)
            )

    def ranked_positive_candidates(self, candidates) -> List[CandidateIndex]:
        """Candidates with positive standalone benefit, densest
        (benefit/size) first -- the scan order every searcher starts
        from.

        Computed lazily on first use and shared across searches on this
        evaluator (keyed weakly per candidate set), so algorithm sweeps
        like the Figure 3 experiments score and sort the pool once.  The
        cache is dropped when the database changes or when the candidate
        set has grown since it was ranked.
        """
        self._refresh()
        cached = self._ranked_cache.get(candidates)
        if cached is not None and cached[0] == len(candidates):
            return cached[1]
        # Score the whole frontier in one session fan-out.  Only
        # candidates the serial scan below would score (size > 0) are
        # prefetched, so counters match the plain loop exactly.
        self.prefetch_standalone(c for c in candidates if c.size_bytes > 0)
        positive = [
            (self.standalone_benefit(c), c)
            for c in candidates
            if c.size_bytes > 0
        ]
        positive = [(benefit, c) for benefit, c in positive if benefit > 0]
        positive.sort(key=lambda pair: pair[0] / pair[1].size_bytes, reverse=True)
        ranked = [c for _, c in positive]
        self._ranked_cache[candidates] = (len(candidates), ranked)
        return ranked

    def workload_cost(self, config: IndexConfiguration) -> float:
        """Estimated frequency-weighted workload cost under ``config``
        (including index maintenance charges)."""
        return self.total_base_cost() - self.raw_benefit(config) + self.maintenance(config)

    def estimated_speedup(self, config: IndexConfiguration) -> float:
        """The paper's evaluation metric: workload cost with no XML
        indexes divided by workload cost with the configuration."""
        base = self.total_base_cost()
        if base <= 0:
            return 1.0  # empty workload: nothing to speed up
        cost = self.workload_cost(config)
        if cost <= 0:
            return float("inf")
        return base / cost

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def maintenance(self, config: IndexConfiguration) -> float:
        """MC(X; W): frequency-weighted maintenance charge of the
        configuration for the workload's update statements."""
        return sum(self.candidate_maintenance(c) for c in config)

    def candidate_maintenance(self, candidate: CandidateIndex) -> float:
        """Frequency-weighted maintenance charge of one candidate for the
        workload's update statements (public: index review uses it)."""
        self._refresh()
        key = candidate.key
        if key not in self._maintenance_cache:
            if candidate.collection not in self.database.collections:
                self._maintenance_cache[key] = 0.0
                return 0.0
            total = 0.0
            try:
                statistics = self.database.runstats(candidate.collection)
            except StatisticsUnavailable:
                # Degrade to a statistics-free zero maintenance charge
                # rather than sinking the whole search (docs/robustness.md).
                self._maintenance_cache[key] = 0.0
                return 0.0
            for entry in self.workload:
                if isinstance(entry.statement, (Query, JoinQuery)):
                    continue
                total += entry.frequency * maintenance_cost(
                    candidate,
                    entry.statement,
                    statistics,
                    self.maintenance_constants,
                )
            self._maintenance_cache[key] = total
        return self._maintenance_cache[key]

    # Backward-compatible alias (pre-session code reached for the
    # underscore name).
    _candidate_maintenance = candidate_maintenance

    # ------------------------------------------------------------------
    # Raw (query-side) benefit with sub-configuration caching
    # ------------------------------------------------------------------
    def raw_benefit(self, config: IndexConfiguration) -> float:
        self._refresh()
        if len(config) == 0:
            return 0.0
        if self.naive:
            return self._evaluate_group(
                list(config), range(len(self.base_costs))
            )
        total = 0.0
        for group in self._sub_configurations(config):
            total += self._group_benefit(group)
        return total

    def _group_benefit(self, group: Sequence[CandidateIndex]) -> float:
        """Cached raw benefit of one sub-configuration group."""
        key = frozenset(c.key for c in group)
        cached = self._subconfig_cache.get(key)
        if cached is None:
            affected = sorted(
                set().union(*(self.affected_set(c) for c in group))
            )
            cached = self._evaluate_group(group, affected)
            self._subconfig_cache[key] = cached
        return cached

    # ------------------------------------------------------------------
    # Delta evaluation (the search hot path)
    # ------------------------------------------------------------------
    def delta_benefit(
        self,
        config: IndexConfiguration,
        extra: Union[CandidateIndex, Iterable[CandidateIndex]],
        current_benefit: Optional[float] = None,
    ) -> float:
        """``benefit(config + extra) - benefit(config)`` evaluated by
        re-costing only the sub-configuration group(s) the added indexes
        touch.

        Every untouched group contributes identically to both sides of
        the difference, so only the groups whose affected sets overlap the
        additions are merged and re-evaluated -- a search step that adds
        one candidate to an n-index configuration pays for one group, not
        n.  Exactly equal (up to the same caches) to computing the two
        benefits and subtracting; searchers track a running benefit and
        telescope deltas onto it.

        ``current_benefit`` is that tracked ``benefit(config)``; it is
        only consulted in naive mode, where group caching is disabled and
        the delta is a full re-evaluation minus the tracked base (one
        optimizer sweep per probe, like the naive advisor it models).
        """
        extras: List[CandidateIndex] = (
            [extra] if isinstance(extra, CandidateIndex) else list(extra)
        )
        extras = [c for c in extras if c not in config]
        self.evaluations += 1
        self.session.note_evaluation()
        if not extras:
            return 0.0
        self._refresh()
        if self.naive:
            new_total = self.raw_benefit(
                config.with_candidates(extras)
            ) - self.maintenance(config.with_candidates(extras))
            if current_benefit is None:
                current_benefit = self.raw_benefit(config) - self.maintenance(config)
            return new_total - current_benefit
        merged_members = list(extras)
        merged_affected = set()
        for candidate in extras:
            merged_affected |= self.affected_set(candidate)
        extras_affect_nothing = not merged_affected
        old_benefit = 0.0
        for group in self._sub_configurations(config):
            group_affected = set().union(
                *(self.affected_set(c) for c in group)
            )
            touches = (
                bool(merged_affected & group_affected)
                or (extras_affect_nothing and not group_affected)
            )
            if touches:
                old_benefit += self._group_benefit(group)
                merged_members.extend(group)
        return (
            self._group_benefit(merged_members)
            - old_benefit
            - sum(self.candidate_maintenance(c) for c in extras)
        )

    def affected_set(self, candidate: CandidateIndex) -> FrozenSet[int]:
        """The candidate's affected set *for this evaluator's workload*:
        positions of statements with an indexable path request the
        candidate covers.  Recomputed here (rather than trusting the
        enumeration-time sets) so a configuration trained on one workload
        can be evaluated against another (Figures 4/5)."""
        key = candidate.key
        if key not in self._affected_cache:
            affected: set = set()
            for pattern, value_type, positions in self._request_index:
                if (
                    candidate.value_type is value_type
                    and not positions <= affected
                    and candidate.pattern.covers(pattern)
                ):
                    affected |= positions
            self._affected_cache[key] = frozenset(affected)
        return self._affected_cache[key]

    def _sub_configurations(
        self, config: IndexConfiguration
    ) -> List[List[CandidateIndex]]:
        """Partition the configuration into groups of indexes whose
        affected sets overlap (merged transitively).

        Union-find keyed on statement positions: two candidates land in
        one group iff they (transitively) share an affected statement,
        and candidates affecting nothing pool into one leftover group --
        the same partition the old O(n^2) pairwise merge produced, in
        O(n * |affected|)."""
        candidates = list(config)
        parent = list(range(len(candidates)))

        def find(i: int) -> int:
            while parent[i] != i:
                parent[i] = parent[parent[i]]
                i = parent[i]
            return i

        def union(i: int, j: int) -> None:
            ri, rj = find(i), find(j)
            if ri != rj:
                parent[rj] = ri

        owner_by_position: Dict[Optional[int], int] = {}
        for i, candidate in enumerate(candidates):
            affected = self.affected_set(candidate)
            # None is the pooling key for empty affected sets.
            for position in affected if affected else (None,):
                owner = owner_by_position.get(position)
                if owner is None:
                    owner_by_position[position] = i
                else:
                    union(owner, i)
        groups: Dict[int, List[CandidateIndex]] = {}
        for i, candidate in enumerate(candidates):
            groups.setdefault(find(i), []).append(candidate)
        return list(groups.values())

    def _evaluate_group(
        self, group: Sequence[CandidateIndex], statement_positions
    ) -> float:
        """Optimize the affected statements with the group installed as
        virtual indexes; return the frequency-weighted savings.  Costing
        is delegated to the session as one batch -- the per-statement
        fan-out the parallel session shards across workers (bypassing
        the cache in naive mode so the ablation keeps measuring real
        optimizer traffic).  The savings sum runs in position order, so
        the float result is independent of how the batch was computed."""
        base_costs = self.base_costs
        positions = list(statement_positions)
        definitions = self.session.definitions_for(group)
        new_costs = self.session.cost_batch(
            [
                (self.workload.entries[position].statement, definitions)
                for position in positions
            ],
            use_cache=not self.naive,
        )
        return sum(
            (
                self.workload.entries[position].frequency
                * (base_costs[position] - new_cost)
                for position, new_cost in zip(positions, new_costs)
            ),
            0.0,
        )

    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, int]:
        """Cache/counter snapshot for the efficiency experiments."""
        counters = self.session.counters
        return {
            "optimizer_calls": self.optimizer.calls,
            "config_evaluations": self.evaluations,
            "cached_subconfigs": len(self._subconfig_cache),
            "session_cache_hits": counters.cache_hits,
            "session_cache_misses": counters.cache_misses,
        }


def reconcile_configuration(
    session: WhatIfSession,
    workload: Workload,
    config: IndexConfiguration,
    maintenance_constants: MaintenanceConstants = MaintenanceConstants(),
) -> Dict[str, float]:
    """Re-score ``config``'s true benefit on the *full* (uncompressed)
    workload, costing only the statements the configuration affects.

    This is the compression reconciliation pass: tuning ran on
    frequency-weighted representatives, so the winning configuration's
    benefit is an approximation; this function recomputes it exactly --
    the same quantity a full-workload
    :class:`ConfigurationEvaluator.benefit` would return -- with
    ``2 x |affected statements|`` batched session calls (base + with the
    configuration) instead of ``O(|workload|)``: unaffected statements
    keep their base cost and contribute zero savings by definition, so
    they are never optimized at all.
    """
    database = session.database
    positions: set = set()
    requests_by_position: List[List[PathRequest]] = []
    for position, entry in enumerate(workload):
        requests_by_position.append(
            extract_all_requests(entry.statement)
            if hasattr(entry.statement, "collection")
            else []
        )
    request_index: Dict[Tuple[str, object], Tuple] = {}
    for position, requests in enumerate(requests_by_position):
        for request in requests:
            key = (str(request.pattern), request.value_type)
            found = request_index.get(key)
            if found is None:
                request_index[key] = (
                    request.pattern, request.value_type, {position},
                )
            else:
                found[2].add(position)
    for candidate in config:
        for pattern, value_type, holders in request_index.values():
            if (
                candidate.value_type is value_type
                and not holders <= positions
                and candidate.pattern.covers(pattern)
            ):
                positions |= holders
    ordered = sorted(positions)
    statements = [workload.entries[p].statement for p in ordered]
    definitions = session.definitions_for(list(config))
    with session.phase("reconcile"):
        base_costs = session.cost_batch(
            [(statement, ()) for statement in statements]
        )
        new_costs = session.cost_batch(
            [(statement, definitions) for statement in statements]
        )
    savings = sum(
        (
            workload.entries[p].frequency * (base - new)
            for p, base, new in zip(ordered, base_costs, new_costs)
        ),
        0.0,
    )
    maintenance = 0.0
    updates = workload.updates()
    for candidate in config:
        if candidate.collection not in database.collections:
            continue
        try:
            statistics = database.runstats(candidate.collection)
        except StatisticsUnavailable:
            continue
        for entry in updates:
            maintenance += entry.frequency * maintenance_cost(
                candidate, entry.statement, statistics, maintenance_constants
            )
    return {
        "benefit": savings - maintenance,
        "savings": savings,
        "maintenance": maintenance,
        "affected_statements": len(ordered),
        "workload_statements": len(workload),
    }


