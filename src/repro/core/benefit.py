"""Configuration benefit evaluation with minimal optimizer calls
(Sections III and VI-C).

The benefit of a configuration X for workload W is::

    Benefit(X; W) = sum_s [ freq_s * (s_old - s_new(X)) ]  -  MC(X; W)

where ``s_new(X)`` comes from the optimizer's *Evaluate Indexes* mode with
X installed as virtual indexes, and MC charges index maintenance for
update statements (:mod:`repro.core.maintenance`).

All raw costing goes through a shared
:class:`~repro.optimizer.session.WhatIfSession`, which memoizes every
(statement, projected configuration) pair and counts optimizer calls and
cache traffic.  On top of the session's cache the evaluator implements
the paper's two call-reduction techniques:

* **Affected sets** -- an index can only change the cost of statements
  that produced basic candidate patterns it covers, so only the union of
  the configuration's affected sets is re-optimized; every other statement
  keeps its base cost.
* **Sub-configurations** -- the configuration is split into groups of
  indexes with overlapping affected sets (merged transitively); each group
  is evaluated independently and cached, so a search step that adds one
  index only re-evaluates the group that index interacts with.

``naive=True`` disables both *and* bypasses the session's cost cache
(every evaluation re-optimizes the whole workload against the whole
configuration) -- the ablation benchmark uses it to measure the savings.

The evaluator's derived caches are tied to the database's modification
counter: an insert/delete/index-DDL between calls invalidates base costs
and sub-configuration benefits automatically.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.candidates import CandidateIndex, CandidateKey
from repro.core.config import IndexConfiguration
from repro.core.maintenance import MaintenanceConstants, maintenance_cost
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.rewriter import PathRequest, extract_all_requests
from repro.optimizer.session import WhatIfSession
from repro.query.model import JoinQuery, Query
from repro.query.workload import Workload


class ConfigurationEvaluator:
    """Benefit/cost oracle for index configurations over one workload.

    ``coupling`` is the shared :class:`WhatIfSession`; a bare
    :class:`Optimizer` is also accepted (it is adopted into a private
    session) for backward compatibility and tests.
    """

    def __init__(
        self,
        database,
        coupling: Union[WhatIfSession, Optimizer],
        workload: Workload,
        maintenance_constants: MaintenanceConstants = MaintenanceConstants(),
        naive: bool = False,
    ) -> None:
        self.database = database
        if isinstance(coupling, WhatIfSession):
            self.session = coupling
        else:
            self.session = WhatIfSession.adopt(coupling)
        self.workload = workload
        self.maintenance_constants = maintenance_constants
        self.naive = naive
        self._subconfig_cache: Dict[FrozenSet[CandidateKey], float] = {}
        self._standalone_cache: Dict[CandidateKey, float] = {}
        self._maintenance_cache: Dict[CandidateKey, float] = {}
        self._affected_cache: Dict[CandidateKey, FrozenSet[int]] = {}
        self._statement_requests: List[List[PathRequest]] = [
            extract_all_requests(entry.statement)
            if hasattr(entry.statement, "collection")
            else []
            for entry in workload
        ]
        self.evaluations = 0  # configuration evaluations requested
        self._generation = self.session.generation
        self._base_costs: Optional[List[float]] = None

    # ------------------------------------------------------------------
    # Coupling / staleness
    # ------------------------------------------------------------------
    @property
    def optimizer(self) -> Optimizer:
        """The session's optimizer (for call counting; do not construct
        optimizers elsewhere)."""
        return self.session.optimizer

    @property
    def optimizer_calls(self) -> int:
        return self.optimizer.calls

    def _refresh(self) -> None:
        """Invalidate derived caches when the database changed.  The
        session notices data/index modifications via the database's
        modification counter; everything this evaluator derived from old
        costs (base costs, sub-configuration benefits, maintenance, and
        standalone benefits) must go with them."""
        current = getattr(self.database, "modification_count", 0)
        if current == self._generation:
            return
        self._generation = current
        self._base_costs = None
        self._subconfig_cache.clear()
        self._standalone_cache.clear()
        self._maintenance_cache.clear()
        # affected sets depend only on statement patterns, which do not
        # change with data -- but keep the contract simple and safe.
        self._affected_cache.clear()

    @property
    def base_costs(self) -> List[float]:
        """Base (no new indexes) cost of every statement, computed lazily
        through the session (warm after the first evaluator on a shared
        session)."""
        self._refresh()
        if self._base_costs is None:
            with self.session.phase("base-costs"):
                with self.session.evaluating(()) as scope:
                    self._base_costs = [
                        scope.cost(entry.statement) for entry in self.workload
                    ]
            self._generation = getattr(self.database, "modification_count", 0)
        return self._base_costs

    # ------------------------------------------------------------------
    # Public API
    # ------------------------------------------------------------------
    def total_base_cost(self) -> float:
        """Frequency-weighted workload cost with no (new) indexes."""
        return sum(
            entry.frequency * cost
            for entry, cost in zip(self.workload, self.base_costs)
        )

    def benefit(self, config: IndexConfiguration) -> float:
        """Benefit(X; W): query savings minus maintenance."""
        self.evaluations += 1
        self.session.note_evaluation()
        return self.raw_benefit(config) - self.maintenance(config)

    def improved_benefit(
        self,
        config: IndexConfiguration,
        extra: Iterable[CandidateIndex],
    ) -> float:
        """IB(X) of Section VI-A: the benefit of the current configuration
        with ``extra`` added to it."""
        return self.benefit(config.with_candidates(extra))

    def standalone_benefit(self, candidate: CandidateIndex) -> float:
        """Benefit of {candidate} alone (interaction-free view, used by
        plain greedy, top down lite, and dynamic programming)."""
        self._refresh()
        key = candidate.key
        if key not in self._standalone_cache:
            self._standalone_cache[key] = self.benefit(
                IndexConfiguration([candidate])
            )
        return self._standalone_cache[key]

    def workload_cost(self, config: IndexConfiguration) -> float:
        """Estimated frequency-weighted workload cost under ``config``
        (including index maintenance charges)."""
        return self.total_base_cost() - self.raw_benefit(config) + self.maintenance(config)

    def estimated_speedup(self, config: IndexConfiguration) -> float:
        """The paper's evaluation metric: workload cost with no XML
        indexes divided by workload cost with the configuration."""
        base = self.total_base_cost()
        if base <= 0:
            return 1.0  # empty workload: nothing to speed up
        cost = self.workload_cost(config)
        if cost <= 0:
            return float("inf")
        return base / cost

    # ------------------------------------------------------------------
    # Maintenance
    # ------------------------------------------------------------------
    def maintenance(self, config: IndexConfiguration) -> float:
        """MC(X; W): frequency-weighted maintenance charge of the
        configuration for the workload's update statements."""
        return sum(self.candidate_maintenance(c) for c in config)

    def candidate_maintenance(self, candidate: CandidateIndex) -> float:
        """Frequency-weighted maintenance charge of one candidate for the
        workload's update statements (public: index review uses it)."""
        self._refresh()
        key = candidate.key
        if key not in self._maintenance_cache:
            if candidate.collection not in self.database.collections:
                self._maintenance_cache[key] = 0.0
                return 0.0
            total = 0.0
            statistics = self.database.runstats(candidate.collection)
            for entry in self.workload:
                if isinstance(entry.statement, (Query, JoinQuery)):
                    continue
                total += entry.frequency * maintenance_cost(
                    candidate,
                    entry.statement,
                    statistics,
                    self.maintenance_constants,
                )
            self._maintenance_cache[key] = total
        return self._maintenance_cache[key]

    # Backward-compatible alias (pre-session code reached for the
    # underscore name).
    _candidate_maintenance = candidate_maintenance

    # ------------------------------------------------------------------
    # Raw (query-side) benefit with sub-configuration caching
    # ------------------------------------------------------------------
    def raw_benefit(self, config: IndexConfiguration) -> float:
        self._refresh()
        if len(config) == 0:
            return 0.0
        if self.naive:
            return self._evaluate_group(
                list(config), range(len(self.base_costs))
            )
        total = 0.0
        for group in self._sub_configurations(config):
            key = frozenset(c.key for c in group)
            if key not in self._subconfig_cache:
                affected = sorted(
                    set().union(*(self.affected_set(c) for c in group))
                )
                self._subconfig_cache[key] = self._evaluate_group(group, affected)
            total += self._subconfig_cache[key]
        return total

    def affected_set(self, candidate: CandidateIndex) -> FrozenSet[int]:
        """The candidate's affected set *for this evaluator's workload*:
        positions of statements with an indexable path request the
        candidate covers.  Recomputed here (rather than trusting the
        enumeration-time sets) so a configuration trained on one workload
        can be evaluated against another (Figures 4/5)."""
        key = candidate.key
        if key not in self._affected_cache:
            affected = set()
            for position, requests in enumerate(self._statement_requests):
                for request in requests:
                    if (
                        candidate.value_type is request.value_type
                        and candidate.pattern.covers(request.pattern)
                    ):
                        affected.add(position)
                        break
            self._affected_cache[key] = frozenset(affected)
        return self._affected_cache[key]

    def _sub_configurations(
        self, config: IndexConfiguration
    ) -> List[List[CandidateIndex]]:
        """Partition the configuration into groups of indexes whose
        affected sets overlap (merged transitively)."""
        groups: List[Tuple[set, List[CandidateIndex]]] = []
        for candidate in config:
            affected = set(self.affected_set(candidate))
            merged_members = [candidate]
            remaining: List[Tuple[set, List[CandidateIndex]]] = []
            for group_affected, members in groups:
                if affected & group_affected or (not affected and not group_affected):
                    affected |= group_affected
                    merged_members.extend(members)
                else:
                    remaining.append((group_affected, members))
            remaining.append((affected, merged_members))
            groups = remaining
        return [members for _, members in groups]

    def _evaluate_group(
        self, group: Sequence[CandidateIndex], statement_positions
    ) -> float:
        """Optimize the affected statements with the group installed as
        virtual indexes; return the frequency-weighted savings.  Costing
        is delegated to the session (bypassing its cache in naive mode so
        the ablation keeps measuring real optimizer traffic)."""
        base_costs = self.base_costs
        saved = 0.0
        with self.session.evaluating(group, use_cache=not self.naive) as scope:
            for position in statement_positions:
                entry = self.workload.entries[position]
                new_cost = scope.cost(entry.statement)
                saved += entry.frequency * (base_costs[position] - new_cost)
        return saved

    # ------------------------------------------------------------------
    def cache_stats(self) -> Dict[str, int]:
        """Cache/counter snapshot for the efficiency experiments."""
        counters = self.session.counters
        return {
            "optimizer_calls": self.optimizer.calls,
            "config_evaluations": self.evaluations,
            "cached_subconfigs": len(self._subconfig_cache),
            "session_cache_hits": counters.cache_hits,
            "session_cache_misses": counters.cache_misses,
        }
