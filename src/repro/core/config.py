"""Index configurations: immutable sets of candidate indexes."""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, Iterator, List, Tuple

from repro.core.candidates import CandidateIndex, CandidateKey


class IndexConfiguration:
    """An immutable set of candidate indexes with size accounting.

    Hashable (by candidate keys) so benefit caches can key on it.
    """

    __slots__ = ("_candidates", "_keys")

    def __init__(self, candidates: Iterable[CandidateIndex] = ()) -> None:
        by_key: Dict[CandidateKey, CandidateIndex] = {}
        for candidate in candidates:
            by_key[candidate.key] = candidate
        object.__setattr__(self, "_candidates", tuple(by_key.values()))
        object.__setattr__(self, "_keys", frozenset(by_key))

    def __setattr__(self, name, value):  # pragma: no cover
        raise AttributeError("IndexConfiguration is immutable")

    # ------------------------------------------------------------------
    @property
    def candidates(self) -> Tuple[CandidateIndex, ...]:
        return self._candidates

    @property
    def keys(self) -> FrozenSet[CandidateKey]:
        return self._keys

    def size_bytes(self) -> int:
        return sum(c.size_bytes for c in self._candidates)

    def affected_statements(self) -> FrozenSet[int]:
        affected = set()
        for candidate in self._candidates:
            affected |= candidate.affected
        return frozenset(affected)

    # ------------------------------------------------------------------
    def with_candidate(self, candidate: CandidateIndex) -> "IndexConfiguration":
        return IndexConfiguration(self._candidates + (candidate,))

    def with_candidates(
        self, candidates: Iterable[CandidateIndex]
    ) -> "IndexConfiguration":
        return IndexConfiguration(self._candidates + tuple(candidates))

    def without(self, candidate: CandidateIndex) -> "IndexConfiguration":
        return IndexConfiguration(
            c for c in self._candidates if c.key != candidate.key
        )

    def __contains__(self, candidate: CandidateIndex) -> bool:
        return candidate.key in self._keys

    def __iter__(self) -> Iterator[CandidateIndex]:
        return iter(self._candidates)

    def __len__(self) -> int:
        return len(self._candidates)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, IndexConfiguration) and self._keys == other._keys

    def __hash__(self) -> int:
        return hash(self._keys)

    def general_count(self) -> int:
        return sum(1 for c in self._candidates if c.general)

    def specific_count(self) -> int:
        return sum(1 for c in self._candidates if not c.general)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        names = ", ".join(str(c.pattern) for c in self._candidates)
        return f"IndexConfiguration({{{names}}})"
