"""Index maintenance cost mc(x, s) (Section III).

DB2's optimizer cost estimates for update/delete/insert statements do not
include the cost of updating indexes, so the advisor subtracts an explicit
maintenance charge from the benefit:

    Benefit(x1..xn; W) = sum_s [ freq_s * (s_old - s_new)
                                 - sum_i mc(x_i, s) ]

``mc`` is zero for queries.  For an insert it charges the expected number
of index entries the new document contributes (per-entry insertion into a
B+-tree of the index's height); for a delete it charges removing the
victims' entries.  Expected entries per document come from the derived
virtual-index statistics, so virtual and real indexes are charged alike.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.candidates import CandidateIndex
from repro.optimizer.cost import CostModel
from repro.query.model import (
    DeleteStatement,
    InsertStatement,
    JoinQuery,
    Query,
    Statement,
)
from repro.storage.statistics import DataStatistics


@dataclass(frozen=True)
class MaintenanceConstants:
    """Charge per index-entry insertion/removal (includes the B+-tree
    descent amortized in)."""

    entry_update: float = 0.05


def maintenance_cost(
    candidate: CandidateIndex,
    statement: Statement,
    statistics: DataStatistics,
    constants: MaintenanceConstants = MaintenanceConstants(),
) -> float:
    """mc(x, s): expected maintenance cost of index ``candidate`` for one
    execution of ``statement``.  Zero for queries and for statements on
    other collections."""
    if isinstance(statement, (Query, JoinQuery)):
        return 0.0
    if statement.collection != candidate.collection:
        return 0.0
    index_stats = statistics.derive_index_statistics(
        candidate.pattern, candidate.value_type
    )
    doc_count = max(1, statistics.doc_count)
    entries_per_doc = index_stats.entry_count / doc_count
    per_doc_charge = entries_per_doc * constants.entry_update * index_stats.levels
    if isinstance(statement, InsertStatement):
        return per_doc_charge
    if isinstance(statement, DeleteStatement):
        victim_docs = _expected_victims(statement, statistics)
        return victim_docs * per_doc_charge
    raise TypeError(f"unknown statement type {type(statement)!r}")


def _expected_victims(
    statement: DeleteStatement, statistics: DataStatistics
) -> float:
    from repro.xpath.patterns import pattern_from_path

    pattern = pattern_from_path(statement.selector_path)
    card = statistics.cardinality(pattern, statement.op, statement.literal)
    return min(float(max(1, statistics.doc_count)), card)
