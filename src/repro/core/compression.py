"""Workload compression: merge duplicate statements before tuning.

Production workloads repeat the same statements many times; the paper's
benefit formula already anticipates this by weighting each *unique*
statement with its frequency of occurrence (Section III).  This module
folds a raw statement stream into that form, and can additionally merge
*template* duplicates -- statements identical up to their literal values,
e.g. thousands of ``Symbol = "..."`` point lookups -- which exercise the
same candidate indexes and would otherwise inflate every optimizer loop.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.optimizer.rewriter import extract_path_requests
from repro.query.model import Query, Statement
from repro.query.workload import Workload, WorkloadEntry


def _exact_key(statement: Statement) -> str:
    return statement.describe()


def _template_key(statement: Statement) -> Tuple:
    """Statements with the same indexable shape (same collection, same
    request patterns/operators, literals ignored) share a template."""
    requests = tuple(
        (str(request.pattern), request.op, request.value_type)
        for request in extract_path_requests(statement)
    )
    collection = getattr(statement, "collection", "")
    kind = statement.kind
    binding = ""
    if isinstance(statement, Query):
        binding = str(statement.binding_path.without_predicates())
    return (kind, collection, binding, requests)


def compress(workload: Workload, by_template: bool = False) -> Workload:
    """Fold duplicate statements into single entries with summed
    frequencies.

    With ``by_template=True``, statements that differ only in literal
    values are merged too (the first occurrence represents the group --
    sound for candidate enumeration, approximate for benefit when the
    literals have very different selectivities).
    """
    keyer = _template_key if by_template else _exact_key
    order: List = []
    merged: Dict = {}
    for entry in workload:
        key = keyer(entry.statement)
        if key in merged:
            kept = merged[key]
            merged[key] = WorkloadEntry(
                kept.statement, kept.frequency + entry.frequency
            )
        else:
            merged[key] = entry
            order.append(key)
    return Workload(merged[key] for key in order)


def compression_ratio(original: Workload, compressed: Workload) -> float:
    """Fraction of entries removed (0 = nothing merged)."""
    if len(original) == 0:
        return 0.0
    return 1.0 - len(compressed) / len(original)
