"""Workload compression: merge duplicate statements before tuning.

Production workloads repeat the same statements many times; the paper's
benefit formula already anticipates this by weighting each *unique*
statement with its frequency of occurrence (Section III).  This module
folds a raw statement stream into that form, in three strengths:

* **exact** -- duplicate statement texts merge, frequencies sum.  Loss
  free: the advisor's output is invariant (pinned by tests).
* **template** -- statements identical up to literal values merge, e.g.
  thousands of ``Symbol = "..."`` point lookups.  Sound for candidate
  enumeration, approximate for benefit when the literals have very
  different selectivities.
* **cluster** -- coverage clustering in the CoPhy spirit (PAPERS.md):
  statements are keyed by their *distinct-request coverage signature*
  (the set of ``(pattern, value type)`` requests the rewriter extracts --
  exactly what drives the evaluator's affected sets), and signatures
  within a Jaccard similarity threshold pool into one cluster.  Tuning
  then runs on one frequency-weighted representative per cluster, and
  the advisor reconciles the winning configuration against the full
  workload afterwards.

Representative choice is deterministic under stream reordering: groups
are emitted in stable sorted order and each group's representative is
picked by a stable key sort (never "first occurrence wins").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.optimizer.rewriter import extract_all_requests, extract_path_requests
from repro.query.model import Query, Statement
from repro.query.workload import Workload, WorkloadEntry

#: Accepted ``compress=`` modes, weakest to strongest.
COMPRESSION_MODES: Tuple[str, ...] = ("off", "exact", "template", "cluster")

#: Minimum Jaccard similarity between two coverage signatures for their
#: statements to pool into one cluster.
DEFAULT_CLUSTER_SIMILARITY = 0.5


@dataclass(frozen=True)
class CompressionStats:
    """Provenance of one compression pass, surfaced on the
    recommendation (``--stats`` / ``Recommendation.to_dict``)."""

    mode: str
    #: Entry count / total frequency weight of the raw stream.
    original_statements: int
    original_weight: float
    #: Entries the advisor actually tunes on.
    representatives: int
    #: Groups that merged more than one distinct statement.
    merged_groups: int
    #: Fraction of entries removed (0 = nothing merged).
    ratio: float
    #: True for template/cluster: representative literals stand in for
    #: the group's, so search-time benefits are approximations and the
    #: advisor re-scores the winner on the full workload (reconciliation).
    approximate: bool

    def to_dict(self) -> Dict:
        return {
            "mode": self.mode,
            "original_statements": self.original_statements,
            "original_weight": self.original_weight,
            "representatives": self.representatives,
            "merged_groups": self.merged_groups,
            "ratio": self.ratio,
            "approximate": self.approximate,
        }


def _exact_key(statement: Statement) -> str:
    return statement.describe()


def _template_key(statement: Statement) -> Tuple:
    """Statements with the same indexable shape (same collection, same
    request patterns/operators, literals ignored) share a template."""
    requests = tuple(
        (str(request.pattern), request.op, request.value_type)
        for request in extract_path_requests(statement)
    )
    collection = getattr(statement, "collection", "")
    kind = statement.kind
    binding = ""
    if isinstance(statement, Query):
        binding = str(statement.binding_path.without_predicates())
    return (kind, collection, binding, requests)


def coverage_signature(statement: Statement) -> FrozenSet[Tuple[str, str]]:
    """The statement's distinct-request coverage signature: the set of
    ``(pattern text, value type)`` pairs the rewriter extracts (including
    disjunction alternatives) -- the same distinct-request universe the
    evaluator's affected sets are computed against."""
    if not hasattr(statement, "collection"):
        return frozenset()
    return frozenset(
        (str(request.pattern), request.value_type.value)
        for request in extract_all_requests(statement)
    )


def _jaccard(a: FrozenSet, b: FrozenSet) -> float:
    if not a and not b:
        return 1.0
    union = len(a | b)
    if union == 0:
        return 0.0
    return len(a & b) / union


def _representative(entries: List[WorkloadEntry]) -> Statement:
    """Deterministic representative of a merged group: richest coverage
    signature first (it preserves the most requests for candidate
    enumeration), ties broken by the stable statement-text sort -- never
    by stream position."""
    return min(
        (entry.statement for entry in entries),
        key=lambda s: (-len(coverage_signature(s)), s.describe()),
    )


def compress_workload(
    workload: Workload,
    mode: str = "exact",
    *,
    cluster_similarity: float = DEFAULT_CLUSTER_SIMILARITY,
) -> Tuple[Workload, CompressionStats]:
    """Compress ``workload`` with the given mode; return the compressed
    workload and a :class:`CompressionStats` record.

    ``off`` returns the workload unchanged; ``exact`` merges duplicate
    statement texts (order preserving, loss free); ``template`` merges
    literal-only variants; ``cluster`` additionally pools statements
    whose coverage signatures overlap by at least ``cluster_similarity``
    (Jaccard).  Template and cluster output is emitted in stable sorted
    group order so the result is independent of stream order.
    """
    if mode not in COMPRESSION_MODES:
        raise ValueError(
            f"unknown compression mode {mode!r}; "
            f"choose from {COMPRESSION_MODES}"
        )
    original = len(workload)
    weight = sum(entry.frequency for entry in workload)
    if mode == "off":
        stats = CompressionStats(
            mode, original, weight, original, 0, 0.0, False
        )
        return workload, stats

    if mode == "exact":
        order: List[str] = []
        merged: Dict[str, WorkloadEntry] = {}
        for entry in workload:
            key = _exact_key(entry.statement)
            if key in merged:
                kept = merged[key]
                merged[key] = WorkloadEntry(
                    kept.statement, kept.frequency + entry.frequency
                )
            else:
                merged[key] = entry
                order.append(key)
        compressed = Workload(merged[key] for key in order)
        seen: Dict[str, int] = {}
        for entry in workload:
            key = _exact_key(entry.statement)
            seen[key] = seen.get(key, 0) + 1
        merged_groups = sum(1 for count in seen.values() if count > 1)
        stats = CompressionStats(
            mode,
            original,
            weight,
            len(compressed),
            merged_groups,
            compression_ratio(workload, compressed),
            False,
        )
        return compressed, stats

    if mode == "template":
        grouped: Dict[Tuple, List[WorkloadEntry]] = {}
        for entry in workload:
            grouped.setdefault(
                _template_key(entry.statement), []
            ).append(entry)
        group_lists = list(grouped.values())
    else:  # cluster
        group_lists = _cluster_groups(workload, cluster_similarity)

    entries = []
    for members in group_lists:
        representative = _representative(members)
        entries.append(
            WorkloadEntry(
                representative,
                sum(member.frequency for member in members),
            )
        )
    # Stable sorted group order: independent of stream order.
    entries.sort(key=lambda entry: entry.statement.describe())
    compressed = Workload(entries)
    stats = CompressionStats(
        mode,
        original,
        weight,
        len(compressed),
        sum(1 for members in group_lists if len(members) > 1),
        compression_ratio(workload, compressed),
        True,
    )
    return compressed, stats


def _cluster_groups(
    workload: Workload, similarity: float
) -> List[List[WorkloadEntry]]:
    """Leader clustering over distinct coverage signatures.

    Statements are first bucketed by exact signature (plus kind and
    collection -- queries never pool with updates, nor across
    collections); buckets are then scanned in stable sorted order, each
    joining the best existing leader with Jaccard similarity >=
    ``similarity`` or founding a new cluster.  The sorted scan makes
    cluster membership independent of stream order.
    """
    buckets: Dict[Tuple, List[WorkloadEntry]] = {}
    signatures: Dict[Tuple, FrozenSet] = {}
    for entry in workload:
        statement = entry.statement
        signature = coverage_signature(statement)
        key = (
            statement.kind.value,
            str(getattr(statement, "collection", "")),
            tuple(sorted(signature)),
        )
        buckets.setdefault(key, []).append(entry)
        signatures[key] = signature
    clusters: List[Dict] = []
    for key in sorted(buckets):
        kind, collection, _ = key
        signature = signatures[key]
        best: Optional[Dict] = None
        best_score = 0.0
        for cluster in clusters:
            if cluster["kind"] != kind or cluster["collection"] != collection:
                continue
            score = _jaccard(signature, cluster["signature"])
            if score >= similarity and score > best_score:
                best = cluster
                best_score = score
        if best is None:
            clusters.append(
                {
                    "kind": kind,
                    "collection": collection,
                    "signature": signature,
                    "members": list(buckets[key]),
                }
            )
        else:
            best["members"].extend(buckets[key])
    return [cluster["members"] for cluster in clusters]


def compress(workload: Workload, by_template: bool = False) -> Workload:
    """Fold duplicate statements into single entries with summed
    frequencies.

    With ``by_template=True``, statements that differ only in literal
    values are merged too (the group's representative is picked by a
    stable key sort -- deterministic under stream reordering; sound for
    candidate enumeration, approximate for benefit when the literals
    have very different selectivities).
    """
    compressed, _ = compress_workload(
        workload, "template" if by_template else "exact"
    )
    return compressed


def compression_ratio(original: Workload, compressed: Workload) -> float:
    """Fraction of entries removed (0 = nothing merged)."""
    if len(original) == 0:
        return 0.0
    return 1.0 - len(compressed) / len(original)
