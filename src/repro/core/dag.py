"""The candidate generalization DAG (Section VI-B).

Each node is a candidate pattern; a node's *parents* are its possible
generalizations.  The top down search starts from the DAG's roots (the most
general candidates) and iteratively replaces a general index by its
children until the configuration fits the disk budget.

Edges are derived from index coverage (same value type + pattern
containment) reduced to direct links: ``g`` is a parent of ``c`` when ``g``
strictly covers ``c`` and no third candidate sits strictly between them.
This subsumes the generation-pair hints recorded during generalization and
also links basic candidates that a general pattern happens to cover even
though they were not part of the pair that produced it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set

from repro.core.candidates import CandidateIndex, CandidateKey, CandidateSet


class CandidateDag:
    """Coverage DAG over a candidate set."""

    def __init__(self, candidates: CandidateSet) -> None:
        self.candidates = list(candidates)
        self._children: Dict[CandidateKey, List[CandidateIndex]] = {}
        self._parents: Dict[CandidateKey, List[CandidateIndex]] = {}
        self._build()

    # ------------------------------------------------------------------
    def _build(self) -> None:
        # strict coverage: g covers c, and not (c covers g)
        covers: Dict[CandidateKey, Set[CandidateKey]] = {}
        by_key = {c.key: c for c in self.candidates}
        for general in self.candidates:
            covered: Set[CandidateKey] = set()
            for other in self.candidates:
                if other.key == general.key:
                    continue
                if general.covers(other) and not other.covers(general):
                    covered.add(other.key)
            covers[general.key] = covered
        # transitive reduction: keep edge g->c only if no d with
        # g covers d and d covers c.
        for general in self.candidates:
            children: List[CandidateIndex] = []
            for child_key in covers[general.key]:
                if any(
                    child_key in covers[mid_key]
                    for mid_key in covers[general.key]
                    if mid_key != child_key
                ):
                    continue
                children.append(by_key[child_key])
            self._children[general.key] = children
            for child in children:
                self._parents.setdefault(child.key, []).append(general)
        for candidate in self.candidates:
            self._parents.setdefault(candidate.key, [])

    # ------------------------------------------------------------------
    def children(self, candidate: CandidateIndex) -> List[CandidateIndex]:
        """Direct specializations of ``candidate``."""
        return list(self._children.get(candidate.key, []))

    def parents(self, candidate: CandidateIndex) -> List[CandidateIndex]:
        """Direct generalizations of ``candidate``."""
        return list(self._parents.get(candidate.key, []))

    def roots(self) -> List[CandidateIndex]:
        """Candidates with no generalization above them -- the starting
        configuration of the top down search."""
        return [c for c in self.candidates if not self._parents.get(c.key)]

    def descendants(self, candidate: CandidateIndex) -> List[CandidateIndex]:
        """All candidates strictly below ``candidate`` in the DAG."""
        seen: Set[CandidateKey] = set()
        order: List[CandidateIndex] = []
        stack = self.children(candidate)
        while stack:
            node = stack.pop()
            if node.key in seen:
                continue
            seen.add(node.key)
            order.append(node)
            stack.extend(self.children(node))
        return order

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<CandidateDag nodes={len(self.candidates)} roots={len(self.roots())}>"
