"""Candidate indexes and basic candidate enumeration (Section IV).

The basic candidate set is obtained by optimizing every workload statement
in the optimizer's *Enumerate Indexes* mode: a virtual universal ``//*``
index is put in place, and every query pattern the optimizer's
index-matching step matched against it becomes a candidate.  Candidates are
keyed by (pattern, value type); each records its *affected set* -- the
workload statements that produced a basic pattern it covers -- which drives
the efficient benefit evaluation of Section VI-C.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.optimizer.optimizer import Optimizer, OptimizerMode
from repro.query.workload import Workload
from repro.robustness.errors import StatisticsUnavailable
from repro.storage.catalog import IndexDefinition
from repro.storage.index import IndexValueType
from repro.xpath.patterns import PathPattern

#: Size assumed for a candidate whose statistics are unavailable: big
#: enough that a degraded run does not overcommit its disk budget to
#: indexes nobody could size.
FALLBACK_CANDIDATE_SIZE = 4096

CandidateKey = Tuple[str, IndexValueType]


@dataclass
class CandidateIndex:
    """One candidate index: a pattern, a key type, and bookkeeping.

    Attributes:
        pattern: The linear index pattern.
        value_type: Key type (string/numeric).
        collection: Collection the candidate indexes.
        general: True if produced by the generalization step (Section V).
        affected: Indices (into the workload) of statements whose basic
            patterns this candidate covers -- its *affected set*.
        size_bytes: Estimated size from derived virtual-index statistics.
        sources: For general candidates, the keys of the candidates each
            generalization pair merged (direct DAG children hints).
    """

    pattern: PathPattern
    value_type: IndexValueType
    collection: str
    general: bool = False
    affected: Set[int] = field(default_factory=set)
    size_bytes: int = 0
    sources: Set[CandidateKey] = field(default_factory=set)

    @property
    def key(self) -> CandidateKey:
        return (str(self.pattern), self.value_type)

    def covers(self, other: "CandidateIndex") -> bool:
        """Index-coverage test between candidates: same key type and
        pattern containment."""
        return (
            self.value_type is other.value_type
            and self.pattern.covers(other.pattern)
        )

    def definition(self, name: str, virtual: bool = True) -> IndexDefinition:
        """Materialize this candidate as an index definition."""
        return IndexDefinition(
            name=name,
            collection=self.collection,
            pattern=self.pattern,
            value_type=self.value_type,
            virtual=virtual,
        )

    def __str__(self) -> str:
        flag = " [general]" if self.general else ""
        return f"{self.pattern} ({self.value_type.value}){flag}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"CandidateIndex({self!s}, size={self.size_bytes})"


class CandidateSet:
    """A keyed collection of candidates with insertion order preserved."""

    def __init__(self) -> None:
        self._by_key: Dict[CandidateKey, CandidateIndex] = {}

    def get_or_add(
        self,
        pattern: PathPattern,
        value_type: IndexValueType,
        collection: str,
        general: bool = False,
    ) -> CandidateIndex:
        key = (str(pattern), value_type)
        candidate = self._by_key.get(key)
        if candidate is None:
            candidate = CandidateIndex(
                pattern=pattern,
                value_type=value_type,
                collection=collection,
                general=general,
            )
            self._by_key[key] = candidate
        return candidate

    def get(self, key: CandidateKey) -> Optional[CandidateIndex]:
        return self._by_key.get(key)

    def __contains__(self, key: CandidateKey) -> bool:
        return key in self._by_key

    def __iter__(self):
        return iter(self._by_key.values())

    def __len__(self) -> int:
        return len(self._by_key)

    def basics(self) -> List[CandidateIndex]:
        return [c for c in self if not c.general]

    def generals(self) -> List[CandidateIndex]:
        return [c for c in self if c.general]

    def compute_sizes(self, database, on_degraded=None) -> None:
        """Fill ``size_bytes`` from derived virtual-index statistics.

        When statistics are unavailable for a candidate the size degrades
        to a document-count guess (floor
        :data:`FALLBACK_CANDIDATE_SIZE`) instead of failing the run;
        ``on_degraded(candidate, exc)`` reports each such fallback so the
        advisor can surface it in the recommendation."""
        for candidate in self:
            try:
                stats = database.runstats(candidate.collection)
                candidate.size_bytes = stats.derive_index_statistics(
                    candidate.pattern, candidate.value_type
                ).size_bytes
            except StatisticsUnavailable as exc:
                try:
                    documents = len(database.collection(candidate.collection))
                except KeyError:
                    documents = 0
                candidate.size_bytes = max(
                    FALLBACK_CANDIDATE_SIZE, 32 * documents
                )
                if on_degraded is not None:
                    on_degraded(candidate, exc)

    def propagate_affected_sets(self) -> None:
        """Give every general candidate the union of the affected sets of
        the basic candidates it covers (Section VI-C: 'we keep track for
        each index of which workload statements produced basic candidate
        index patterns that are covered by this index')."""
        basics = self.basics()
        for general in self.generals():
            for basic in basics:
                if general.covers(basic):
                    general.affected |= basic.affected


def enumerate_basic_candidates(coupling, workload: Workload) -> CandidateSet:
    """Run every workload statement through Enumerate Indexes mode and
    collect the basic candidate set.

    ``coupling`` is a :class:`~repro.optimizer.session.WhatIfSession`
    (preferred -- enumeration results are cached per statement) or a bare
    :class:`Optimizer` (tests, backward compatibility).
    """
    candidates = CandidateSet()
    eligible = [
        (position, entry.statement)
        for position, entry in enumerate(workload)
        if hasattr(entry.statement, "collection")
    ]
    if isinstance(coupling, Optimizer):
        results = [
            coupling.optimize(statement, OptimizerMode.ENUMERATE)
            for _, statement in eligible
        ]
    else:
        # Sessions expose a batch entry point so a parallel session can
        # fan the whole workload out in one dispatch.
        results = coupling.enumerate_batch(
            [statement for _, statement in eligible]
        )
    for (position, _), result in zip(eligible, results):
        for enumerated in result.candidates:
            candidate = candidates.get_or_add(
                enumerated.pattern,
                enumerated.value_type,
                enumerated.collection,
            )
            candidate.affected.add(position)
    return candidates
