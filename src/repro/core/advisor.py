"""The XML Index Advisor: the paper's top-level client-side application.

Pipeline (Figure 1): for every workload statement the optimizer enumerates
basic candidates (Enumerate Indexes mode); the candidates are generalized
(Section V); and a search algorithm picks the configuration with maximum
benefit within the disk budget, evaluating configurations through the
optimizer's Evaluate Indexes mode with sub-configuration caching.

Typical use::

    advisor = IndexAdvisor(database, workload)
    recommendation = advisor.recommend(budget_bytes=2_000_000,
                                       algorithm="topdown_full")
    print(recommendation.report())
    advisor.create_indexes(recommendation)   # build them for real
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.benefit import ConfigurationEvaluator, reconcile_configuration
from repro.core.candidates import (
    CandidateIndex,
    CandidateSet,
    enumerate_basic_candidates,
)
from repro.core.compression import (
    COMPRESSION_MODES,
    CompressionStats,
    compress_workload,
)
from repro.core.config import IndexConfiguration
from repro.core.generalization import generalize_candidates
from repro.core.maintenance import MaintenanceConstants
from repro.core.search import ALGORITHMS, DEFAULT_BETA, SearchResult
from repro.optimizer.cost import CostConstants
from repro.optimizer.optimizer import Optimizer
from repro.optimizer.session import WhatIfSession
from repro.query.workload import Workload
from repro.robustness.budget import SearchBudget
from repro.robustness.checkpoint import SearchCheckpoint
from repro.robustness.errors import AdvisorError, FatalAdvisorError
from repro.storage.database import Database, resolve_database


@dataclass
class Recommendation:
    """A recommended index configuration plus provenance."""

    search: SearchResult
    estimated_speedup: float
    workload_cost_before: float
    workload_cost_after: float
    ddl: List[str] = field(default_factory=list)
    #: Instrumentation snapshot of the shared what-if session at
    #: packaging time (optimizer calls, cache hits/misses, phase times).
    session_stats: Dict = field(default_factory=dict)
    #: True when any cost behind this recommendation came from the
    #: heuristic fallback estimator (optimizer failures past retries or
    #: missing statistics) -- see docs/robustness.md.
    degraded: bool = False
    #: Per-input diagnostics collected on the way here (skipped workload
    #: statements, degraded candidate sizes, ...).
    diagnostics: List[str] = field(default_factory=list)
    #: Cluster counters (topology, per-shard DML routing, router
    #: decisions, divergence score) when the advisor targeted a
    #: :class:`~repro.cluster.Cluster`; empty for a plain database.
    cluster_stats: Dict = field(default_factory=dict)
    #: Workload-compression provenance (mode, ratio, representative
    #: counts, and -- for the approximate template/cluster modes -- the
    #: reconciliation pass's full-workload re-score of the winning
    #: configuration); empty when the advisor tuned uncompressed.
    compression_stats: Dict = field(default_factory=dict)
    #: Per-strategy telemetry of a serving-layer portfolio run (mode,
    #: winner, and one record per strategy variant: benefit, size,
    #: optimizer calls, elapsed, truncation/error); empty when the
    #: recommendation came from a single direct search.
    portfolio_stats: Dict = field(default_factory=dict)

    @property
    def configuration(self) -> IndexConfiguration:
        return self.search.configuration

    @property
    def truncated(self) -> bool:
        """True when an anytime budget expired and the configuration is
        the search's best-so-far, not its natural fixpoint."""
        return self.search.truncated

    def to_dict(self) -> Dict:
        """JSON-serializable form of the recommendation (for the CLI's
        ``--json`` flag and for tooling)."""
        return {
            "algorithm": self.search.algorithm,
            "budget_bytes": self.search.budget_bytes,
            "size_bytes": self.search.size_bytes,
            "benefit": self.search.benefit,
            "estimated_speedup": self.estimated_speedup,
            "workload_cost_before": self.workload_cost_before,
            "workload_cost_after": self.workload_cost_after,
            "optimizer_calls": self.search.optimizer_calls,
            "cache_hits": self.search.cache_hits,
            "cache_misses": self.search.cache_misses,
            "elapsed_seconds": self.search.elapsed_seconds,
            "truncated": self.search.truncated,
            "truncated_reason": self.search.truncated_reason,
            "resumed": self.search.resumed,
            "degraded": self.degraded,
            "diagnostics": list(self.diagnostics),
            "session": dict(self.session_stats),
            **(
                {"cluster": dict(self.cluster_stats)}
                if self.cluster_stats
                else {}
            ),
            **(
                {"compression": dict(self.compression_stats)}
                if self.compression_stats
                else {}
            ),
            **(
                {"portfolio": dict(self.portfolio_stats)}
                if self.portfolio_stats
                else {}
            ),
            "indexes": [
                {
                    "pattern": str(candidate.pattern),
                    "value_type": candidate.value_type.value,
                    "collection": candidate.collection,
                    "general": candidate.general,
                    "size_bytes": candidate.size_bytes,
                }
                for candidate in self.configuration
            ],
            "ddl": list(self.ddl),
        }

    def report(self) -> str:
        """Human-readable recommendation summary."""
        lines = [
            f"Algorithm          : {self.search.algorithm}",
            f"Disk budget        : {self.search.budget_bytes} bytes",
            f"Configuration size : {self.search.size_bytes} bytes",
            f"Indexes            : {len(self.configuration)} "
            f"(general: {self.search.general_count}, "
            f"specific: {self.search.specific_count})",
            f"Workload cost      : {self.workload_cost_before:.2f} -> "
            f"{self.workload_cost_after:.2f}",
            f"Estimated speedup  : {self.estimated_speedup:.2f}x",
            f"Optimizer calls    : {self.search.optimizer_calls}",
            f"Cost cache         : {self.search.cache_hits} hits / "
            f"{self.search.cache_misses} misses (search)",
            f"Search time        : {self.search.elapsed_seconds * 1000:.0f} ms",
        ]
        if self.search.truncated:
            lines.append(
                f"TRUNCATED          : {self.search.truncated_reason} "
                f"(best-so-far configuration)"
            )
        if self.search.resumed:
            lines.append("Resumed            : from on-disk checkpoint")
        if self.degraded:
            degraded_count = self.session_stats.get("degraded_estimates", 0)
            lines.append(
                f"DEGRADED           : {degraded_count} cost estimate(s) "
                f"from the heuristic fallback (optimizer unavailable)"
            )
        for diagnostic in self.diagnostics:
            lines.append(f"Diagnostic         : {diagnostic}")
        lines.append("Recommended indexes:")
        lines.extend(f"  {stmt}" for stmt in self.ddl)
        return "\n".join(lines)

    def stats_report(self) -> str:
        """Human-readable session instrumentation block (CLI --stats)."""
        stats = self.session_stats
        lines = [
            "What-if session stats:",
            f"  optimizer calls   : {stats.get('optimizer_calls', 0)}",
            f"  cache hits/misses : {stats.get('cache_hits', 0)} / "
            f"{stats.get('cache_misses', 0)} "
            f"(hit ratio {stats.get('cache_hit_ratio', 0.0):.2%})",
            f"  evaluations       : {stats.get('evaluations', 0)}",
            f"  invalidations     : {stats.get('invalidations', 0)}",
            f"  cached results    : {stats.get('cached_results', 0)}",
        ]
        for name, seconds in sorted(stats.get("phase_seconds", {}).items()):
            lines.append(f"  phase {name:<12}: {seconds * 1000:.1f} ms")
        storage = stats.get("storage")
        if storage:
            lines.append(
                f"  storage engine    : "
                f"{storage.get('stats_rescans', 0)} stats rescans, "
                f"{storage.get('stats_delta_applies', 0)} delta applies, "
                f"{storage.get('summary_rebuilds', 0)} summary rebuilds"
            )
        snapshots = stats.get("snapshots")
        if snapshots:
            lines.append(
                f"  snapshot store    : {snapshots.get('hits', 0)} hits / "
                f"{snapshots.get('misses', 0)} misses, "
                f"{snapshots.get('serializations', 0)} serializations "
                f"({snapshots.get('bytes_serialized', 0)} bytes), "
                f"{snapshots.get('compositions', 0)} compositions, "
                f"{snapshots.get('evictions', 0)} evictions, "
                f"{snapshots.get('bytes_cached', 0)} bytes cached"
            )
        workers = stats.get("workers")
        if workers:
            lines.append(
                f"  workers           : {workers.get('requested', 0)} "
                f"({workers.get('executor', '?')}"
                + (
                    f"/{workers['start_method']}"
                    if workers.get("start_method")
                    else ""
                )
                + ")"
            )
            lines.append(
                f"  parallel batches  : {workers.get('parallel_batches', 0)} "
                f"of {workers.get('batches', 0)} "
                f"({workers.get('parallel_tasks', 0)} tasks, "
                f"{workers.get('chunks', 0)} chunks, "
                f"{workers.get('pool_failures', 0)} pool failures)"
            )
            for label, count in sorted(
                (workers.get("per_worker_tasks") or {}).items()
            ):
                lines.append(f"  worker {label}: {count} tasks")
            shipping = workers.get("shipping")
            if shipping and any(shipping.values()):
                lines.append(
                    f"  snapshot shipping : "
                    f"{shipping.get('base_ships', 0)} base "
                    f"({shipping.get('base_bytes', 0)} bytes), "
                    f"{shipping.get('delta_syncs', 0)} deltas "
                    f"({shipping.get('delta_bytes', 0)} bytes), "
                    f"{shipping.get('rebases', 0)} rebases, "
                    f"{shipping.get('legacy_ships', 0)} legacy"
                )
        compression = self.compression_stats
        if compression:
            lines.append(
                f"  compression       : {compression.get('mode', 'off')} "
                f"({compression.get('original_statements', 0)} statements "
                f"-> {compression.get('representatives', 0)} "
                f"representatives, ratio "
                f"{compression.get('ratio', 0.0):.2%}"
                + (
                    ", approximate"
                    if compression.get("approximate")
                    else ""
                )
                + ")"
            )
            reconciled = compression.get("reconciled")
            if reconciled:
                lines.append(
                    f"  reconciled        : benefit "
                    f"{reconciled.get('benefit', 0.0):.2f} on "
                    f"{reconciled.get('affected_statements', 0)}/"
                    f"{reconciled.get('workload_statements', 0)} affected "
                    f"statements (full workload)"
                )
        cluster = self.cluster_stats
        if cluster:
            lines.append(
                f"  cluster           : {cluster.get('shards', 1)} shard(s) "
                f"x {cluster.get('replicas', 1)} replica(s), "
                f"divergence {cluster.get('divergence_score', 0.0):.4f}"
                + (
                    f" ({cluster['tuning_mode']})"
                    if cluster.get("tuning_mode")
                    else ""
                )
            )
            for shard, count in sorted(
                (cluster.get("documents_routed") or {}).items()
            ):
                lines.append(f"  shard {shard:<11}: {count} documents routed")
            router = cluster.get("router")
            if router:
                lines.append(
                    f"  router            : {router.get('policy', '?')} policy, "
                    f"{router.get('cost_routed', 0)} cost-routed / "
                    f"{router.get('fallback_routed', 0)} fallback, "
                    f"{router.get('routing_cache_hits', 0)} cache hits"
                )
                for label, count in sorted(
                    (router.get("statements_routed") or {}).items()
                ):
                    lines.append(
                        f"  replica {label:<9}: {count} statements routed"
                    )
        portfolio = self.portfolio_stats
        if portfolio:
            lines.append(
                f"  portfolio         : {portfolio.get('mode', '?')} mode, "
                f"winner {portfolio.get('winner', '?')} "
                f"({portfolio.get('strategies_failed', 0)} of "
                f"{len(portfolio.get('strategies', []))} strategies failed)"
            )
            for strategy in portfolio.get("strategies", []):
                label = strategy.get("label", "?")
                if strategy.get("error"):
                    lines.append(
                        f"  strategy {label:<9}: failed "
                        f"({strategy['error']})"
                    )
                else:
                    lines.append(
                        f"  strategy {label:<9}: benefit "
                        f"{strategy.get('benefit', 0.0):.2f}, "
                        f"{strategy.get('size_bytes', 0)} bytes, "
                        f"{strategy.get('optimizer_calls', 0)} calls, "
                        f"{strategy.get('elapsed_seconds', 0.0) * 1000:.0f} ms"
                        + (" [truncated]" if strategy.get("truncated") else "")
                        + (" [winner]" if strategy.get("winner") else "")
                    )
        return "\n".join(lines)


class IndexAdvisor:
    """Recommends XML index configurations for a database + workload."""

    def __init__(
        self,
        database: Database,
        workload: Workload,
        cost_constants: Optional[CostConstants] = None,
        maintenance_constants: MaintenanceConstants = MaintenanceConstants(),
        generalize: bool = True,
        naive_evaluation: bool = False,
        session: Optional[WhatIfSession] = None,
        workers=None,
        executor: Optional[str] = None,
        snapshot_store=None,
        compress: str = "off",
    ) -> None:
        #: The storage target as handed in -- a plain :class:`Database`
        #: or a :class:`~repro.cluster.Cluster`.  Physical DDL
        #: (:meth:`create_indexes` and friends) goes through this, so a
        #: cluster fans the build out to every replica.
        self.storage = database
        #: The concrete database all planning and statistics run
        #: against (a cluster resolves to its primary replica).
        self.database = resolve_database(database)
        if compress not in COMPRESSION_MODES:
            raise ValueError(
                f"unknown compression mode {compress!r}; "
                f"choose from {COMPRESSION_MODES}"
            )
        #: The workload exactly as handed in.  Tuning runs on
        #: :attr:`workload` (the compressed form when ``compress`` is
        #: on); the reconciliation pass re-scores the winning
        #: configuration against this raw stream.
        self.raw_workload = workload
        self.compression: CompressionStats
        if compress == "off":
            self.workload = workload
            _, self.compression = compress_workload(workload, "off")
        else:
            self.workload, self.compression = compress_workload(
                workload, compress
            )
        #: The advisor's entire optimizer coupling runs through this one
        #: session; pass a shared session to share its cost cache across
        #: advisors (e.g. the generalization experiments).  ``workers``
        #: selects the parallel session (``None`` consults
        #: ``REPRO_WORKERS``; 0/"serial" stays serial).
        #: ``snapshot_store`` lets callers that already snapshot this
        #: database (the serving front end, the cluster tuner, the
        #: online daemon) share one blob cache with the parallel
        #: session's shipping.
        if session is None:
            from repro.parallel import create_session

            session = create_session(
                database,
                cost_constants,
                workers=workers,
                executor=executor,
                snapshot_store=snapshot_store,
            )
        self.session = session
        # Ship the workload statements with the worker snapshot so batch
        # tasks can travel as small index references (no-op serially).
        self.session.register_statements(
            entry.statement for entry in workload
        )
        self.generalize = generalize
        self.maintenance_constants = maintenance_constants
        self.naive_evaluation = naive_evaluation
        self._candidates: Optional[CandidateSet] = None
        self._evaluator: Optional[ConfigurationEvaluator] = None
        self._created_index_names: List[str] = []
        #: Diagnostics surfaced on every Recommendation: skipped workload
        #: statements (lenient parsing) plus degraded candidate sizes.
        self.diagnostics: List[str] = list(
            getattr(workload, "diagnostics", ())
        )
        self._degraded_sizes = 0

    # ------------------------------------------------------------------
    # Pipeline stages
    # ------------------------------------------------------------------
    @property
    def candidates(self) -> CandidateSet:
        """The expanded candidate set (enumerated + generalized),
        computed on first access."""
        if self._candidates is None:
            with self.session.phase("enumerate"):
                candidates = enumerate_basic_candidates(
                    self.session, self.workload
                )
            with self.session.phase("generalize"):
                if self.generalize:
                    generalize_candidates(candidates)
                candidates.compute_sizes(
                    self.database, on_degraded=self._note_degraded_size
                )
            self._candidates = candidates
        return self._candidates

    def _note_degraded_size(self, candidate, exc) -> None:
        self._degraded_sizes += 1
        self.diagnostics.append(
            f"candidate {candidate} sized by fallback "
            f"(statistics unavailable: {exc})"
        )

    @property
    def evaluator(self) -> ConfigurationEvaluator:
        if self._evaluator is None:
            self._candidates = self.candidates  # ensure enumeration happened
            self._evaluator = ConfigurationEvaluator(
                self.database,
                self.session,
                self.workload,
                self.maintenance_constants,
                naive=self.naive_evaluation,
            )
        return self._evaluator

    @property
    def optimizer(self) -> Optimizer:
        """The session's optimizer (single production instance)."""
        return self.session.optimizer

    # ------------------------------------------------------------------
    # Recommendation
    # ------------------------------------------------------------------
    def recommend(
        self,
        budget_bytes: int,
        algorithm: str = "topdown_full",
        beta: float = DEFAULT_BETA,
        deadline_seconds: Optional[float] = None,
        optimizer_call_budget: Optional[int] = None,
        checkpoint_path: Optional[str] = None,
    ) -> Recommendation:
        """Search for the best configuration within ``budget_bytes``.

        ``algorithm`` is one of ``greedy``, ``greedy_heuristics``,
        ``topdown_lite``, ``topdown_full``, ``dp``, ``ilp``.

        Anytime operation (docs/robustness.md): ``deadline_seconds`` and
        ``optimizer_call_budget`` bound the run -- the deadline clock
        starts here, before candidate enumeration -- and an expired
        budget returns the search's best-so-far configuration flagged
        ``truncated`` instead of raising.  ``checkpoint_path`` makes the
        search crash-safe: progress is persisted atomically after every
        accepted step and a rerun with the same path, algorithm, and
        disk budget resumes from it.
        """
        if algorithm not in ALGORITHMS:
            raise ValueError(
                f"unknown algorithm {algorithm!r}; choose from {sorted(ALGORITHMS)}"
            )
        searcher = ALGORITHMS[algorithm]
        search_budget = SearchBudget(
            deadline_seconds=deadline_seconds,
            optimizer_call_budget=optimizer_call_budget,
            session=self.session,
            checkpoint=(
                SearchCheckpoint(checkpoint_path) if checkpoint_path else None
            ),
        )
        budget_arg = (
            search_budget
            if search_budget.bounded or search_budget.checkpoint is not None
            else None
        )
        try:
            with self.session.phase(f"search:{algorithm}"):
                if algorithm == "greedy_heuristics":
                    result = searcher(
                        self.candidates,
                        self.evaluator,
                        budget_bytes,
                        beta,
                        budget=budget_arg,
                    )
                else:
                    result = searcher(
                        self.candidates,
                        self.evaluator,
                        budget_bytes,
                        budget=budget_arg,
                    )
        except FatalAdvisorError:
            raise
        except AdvisorError as exc:
            raise FatalAdvisorError(
                f"advisor failed during {algorithm} search: {exc}",
                phase=f"search:{algorithm}",
            ) from exc
        if budget_arg is not None and not result.truncated:
            search_budget.mark_completed(
                algorithm, budget_bytes, result.configuration, result.benefit
            )
        return self._package(
            result, extra_diagnostics=search_budget.diagnostics
        )

    def _package(
        self,
        result: SearchResult,
        extra_diagnostics: Sequence[str] = (),
    ) -> Recommendation:
        evaluator = self.evaluator
        before = evaluator.total_base_cost()
        after = evaluator.workload_cost(result.configuration)
        speedup = evaluator.estimated_speedup(result.configuration)
        ddl = [
            candidate.definition(
                self.database.catalog.fresh_name("xmlidx"), virtual=False
            ).ddl()
            for candidate in result.configuration
        ]
        cluster_stats = getattr(self.storage, "cluster_stats", None)
        compression_stats: Dict = {}
        if self.compression.mode != "off":
            compression_stats = self.compression.to_dict()
            if self.compression.approximate:
                # Reconciliation pass: tuning scored representatives, so
                # re-score the winner on the full raw stream (affected
                # statements only -- see reconcile_configuration).
                compression_stats["reconciled"] = reconcile_configuration(
                    self.session,
                    self.raw_workload,
                    result.configuration,
                    self.maintenance_constants,
                )
        return Recommendation(
            search=result,
            estimated_speedup=speedup,
            workload_cost_before=before,
            workload_cost_after=after,
            ddl=ddl,
            session_stats=self.session.stats(),
            degraded=self.session.is_degraded or self._degraded_sizes > 0,
            diagnostics=list(self.diagnostics) + list(extra_diagnostics),
            cluster_stats=(
                cluster_stats() if callable(cluster_stats) else {}
            ),
            compression_stats=compression_stats,
        )

    # ------------------------------------------------------------------
    # Reference configurations
    # ------------------------------------------------------------------
    def all_index_configuration(self) -> IndexConfiguration:
        """The 'All Index' configuration of Section VII: an index on every
        indexable XPath expression in the workload (all basic candidates)."""
        return IndexConfiguration(self.candidates.basics())

    def evaluate_configuration(self, config: IndexConfiguration) -> float:
        """Estimated speedup of an arbitrary configuration (the paper's
        evaluation metric)."""
        return self.evaluator.estimated_speedup(config)

    # ------------------------------------------------------------------
    # Materialization
    # ------------------------------------------------------------------
    def create_indexes(
        self, recommendation: Recommendation, prefix: str = "reco"
    ) -> List[str]:
        """Physically create the recommended indexes.  Returns their
        names (also remembered for :meth:`drop_created_indexes`)."""
        names = []
        for candidate in recommendation.configuration:
            name = self.storage.catalog.fresh_name(prefix)
            self.storage.create_index(candidate.definition(name, virtual=False))
            names.append(name)
        self._created_index_names.extend(names)
        return names

    def create_configuration(
        self, config: IndexConfiguration, prefix: str = "conf"
    ) -> List[str]:
        """Physically create an arbitrary configuration's indexes."""
        names = []
        for candidate in config:
            name = self.storage.catalog.fresh_name(prefix)
            self.storage.create_index(candidate.definition(name, virtual=False))
            names.append(name)
        self._created_index_names.extend(names)
        return names

    def drop_created_indexes(self) -> None:
        """Drop every index this advisor created."""
        for name in self._created_index_names:
            try:
                self.storage.drop_index(name)
            except KeyError:
                pass
        self._created_index_names = []

    # ------------------------------------------------------------------
    # Online promotion
    # ------------------------------------------------------------------
    def start_online(
        self,
        budget_bytes: int,
        policy=None,  # OnlinePolicy; untyped to avoid an import cycle
        journal_path: Optional[str] = None,
        resume: bool = False,
        seed_window: bool = True,
        **policy_overrides,
    ):
        """Promote this one-shot advisor into a supervised
        :class:`~repro.online.daemon.OnlineAdvisor` over the same
        storage (docs/robustness.md, "Online daemon lifecycle").

        With no ``policy``, one is built from ``budget_bytes`` plus
        ``policy_overrides`` (any :class:`~repro.online.policy.
        OnlinePolicy` field), inheriting this advisor's compression mode
        when it is lossy-safe for streams.  ``seed_window`` pre-fills
        the daemon's sliding window with this advisor's raw workload so
        the first cycle tunes the traffic the batch run saw; ``resume``
        reconstructs the daemon from ``journal_path`` instead (the
        window then comes from the journal, not the workload).
        """
        from repro.online import OnlineAdvisor, OnlinePolicy

        if policy is None:
            policy_overrides.setdefault(
                "compress",
                self.compression.mode
                if self.compression.mode != "off"
                else "template",
            )
            policy = OnlinePolicy(budget_bytes=budget_bytes, **policy_overrides)
        elif policy_overrides:
            raise ValueError(
                "pass either a policy or policy_overrides, not both"
            )
        # The daemon inherits this advisor's snapshot blob cache (if its
        # session kept one) so re-tuning cycles reuse the blobs the
        # batch run already serialized.
        store = getattr(self.session, "_snapshot_store", None)
        if resume:
            if journal_path is None:
                raise ValueError("resume=True requires a journal_path")
            return OnlineAdvisor.resume(
                self.storage, policy, journal_path, snapshot_store=store
            )
        daemon = OnlineAdvisor(
            self.storage,
            policy,
            journal_path=journal_path,
            snapshot_store=store,
        )
        if seed_window:
            for entry in self.raw_workload:
                repeats = max(1, int(round(entry.frequency)))
                text = entry.statement.describe()
                for _ in range(repeats):
                    daemon.window.ingest(text)
            daemon._write_journal("idle")
        return daemon
