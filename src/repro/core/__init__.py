"""The paper's contribution: the XML Index Advisor.

* :mod:`repro.core.candidates` -- basic candidate enumeration via the
  optimizer's Enumerate Indexes mode (Section IV).
* :mod:`repro.core.generalization` -- Algorithm 1 / Table II candidate
  generalization (Section V).
* :mod:`repro.core.dag` -- the generalization DAG for top down search.
* :mod:`repro.core.benefit` -- configuration benefit with affected sets,
  sub-configurations, and caching (Sections III, VI-C).
* :mod:`repro.core.maintenance` -- the mc(x, s) maintenance charge.
* :mod:`repro.core.search` -- the five search algorithms (Section VI).
* :mod:`repro.core.advisor` -- the IndexAdvisor front end (Figure 1).
"""

from repro.core.advisor import IndexAdvisor, Recommendation
from repro.core.benefit import ConfigurationEvaluator
from repro.core.compression import compress, compression_ratio
from repro.core.whatif import StatementImpact, WhatIfReport, analyze
from repro.core.candidates import (
    CandidateIndex,
    CandidateSet,
    enumerate_basic_candidates,
)
from repro.core.config import IndexConfiguration
from repro.core.dag import CandidateDag
from repro.core.generalization import generalize_candidates, generalize_pair
from repro.core.maintenance import MaintenanceConstants, maintenance_cost
from repro.core.search import (
    ALGORITHMS,
    DEFAULT_BETA,
    SearchResult,
    dynamic_programming_search,
    greedy_search,
    greedy_search_with_heuristics,
    top_down_full,
    top_down_lite,
)

__all__ = [
    "ALGORITHMS",
    "CandidateDag",
    "StatementImpact",
    "WhatIfReport",
    "analyze",
    "compress",
    "compression_ratio",
    "CandidateIndex",
    "CandidateSet",
    "ConfigurationEvaluator",
    "DEFAULT_BETA",
    "IndexAdvisor",
    "IndexConfiguration",
    "MaintenanceConstants",
    "Recommendation",
    "SearchResult",
    "dynamic_programming_search",
    "enumerate_basic_candidates",
    "generalize_candidates",
    "generalize_pair",
    "greedy_search",
    "greedy_search_with_heuristics",
    "maintenance_cost",
    "top_down_full",
    "top_down_lite",
]
