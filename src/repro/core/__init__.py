"""The paper's contribution: the XML Index Advisor.

* :mod:`repro.core.candidates` -- basic candidate enumeration via the
  optimizer's Enumerate Indexes mode (Section IV).
* :mod:`repro.core.generalization` -- Algorithm 1 / Table II candidate
  generalization (Section V).
* :mod:`repro.core.dag` -- the generalization DAG for top down search.
* :mod:`repro.core.benefit` -- configuration benefit with affected sets,
  sub-configurations, and caching (Sections III, VI-C).
* :mod:`repro.core.maintenance` -- the mc(x, s) maintenance charge.
* :mod:`repro.core.search` -- the greedy/top-down/DP searchers (Section VI).
* :mod:`repro.core.ilp` -- CoPhy-style cost-atom ILP search (LP
  relaxation + branch and bound over the what-if session's cached atoms).
* :mod:`repro.core.compression` -- exact/template/coverage-cluster
  workload compression with reconciliation-ready stats.
* :mod:`repro.core.advisor` -- the IndexAdvisor front end (Figure 1).
"""

from repro.core.advisor import IndexAdvisor, Recommendation
from repro.core.benefit import ConfigurationEvaluator, reconcile_configuration
from repro.core.compression import (
    COMPRESSION_MODES,
    CompressionStats,
    compress,
    compress_workload,
    compression_ratio,
    coverage_signature,
)
from repro.core.ilp import build_atom_matrix, ilp_search
from repro.core.whatif import StatementImpact, WhatIfReport, analyze
from repro.core.candidates import (
    CandidateIndex,
    CandidateSet,
    enumerate_basic_candidates,
)
from repro.core.config import IndexConfiguration
from repro.core.dag import CandidateDag
from repro.core.generalization import generalize_candidates, generalize_pair
from repro.core.maintenance import MaintenanceConstants, maintenance_cost
from repro.core.search import (
    ALGORITHMS,
    DEFAULT_BETA,
    SearchResult,
    dynamic_programming_search,
    greedy_search,
    greedy_search_with_heuristics,
    top_down_full,
    top_down_lite,
)

__all__ = [
    "ALGORITHMS",
    "CandidateDag",
    "StatementImpact",
    "WhatIfReport",
    "analyze",
    "build_atom_matrix",
    "compress",
    "compress_workload",
    "compression_ratio",
    "coverage_signature",
    "COMPRESSION_MODES",
    "CompressionStats",
    "CandidateIndex",
    "CandidateSet",
    "ConfigurationEvaluator",
    "DEFAULT_BETA",
    "IndexAdvisor",
    "IndexConfiguration",
    "MaintenanceConstants",
    "Recommendation",
    "SearchResult",
    "dynamic_programming_search",
    "enumerate_basic_candidates",
    "generalize_candidates",
    "generalize_pair",
    "greedy_search",
    "greedy_search_with_heuristics",
    "ilp_search",
    "maintenance_cost",
    "reconcile_configuration",
    "top_down_full",
    "top_down_lite",
]
