"""Configuration search algorithms (Section VI).

Five searchers over the 0/1-knapsack-with-interactions problem, all with
the same signature and a common :class:`SearchResult`:

* :func:`greedy_search` -- the classic density greedy on standalone
  benefits; ignores index interaction (the paper's strawman that wastes
  budget on redundant indexes).
* :func:`greedy_search_with_heuristics` -- Section VI-A: full-configuration
  benefit evaluation plus two heuristics: a coverage bitmap that blocks
  indexes replicating patterns already covered, and the IB/size
  (beta-bounded) test before admitting a *general* index.  Candidates are
  scored through :meth:`ConfigurationEvaluator.delta_benefit`, so each
  probe re-costs only the sub-configuration group the candidate touches
  and the running benefit telescopes the accepted deltas.
* :func:`top_down_lite` / :func:`top_down_full` -- Section VI-B: start
  from the generalization DAG's roots and repeatedly replace the general
  index with the smallest dB/dC by its children until the configuration
  fits the budget (lite sums standalone benefits for dB; full evaluates
  whole configurations, capturing interaction).
* :func:`dynamic_programming_search` -- exact 0/1 knapsack on standalone
  benefits (optimal modulo interactions; expensive).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.benefit import ConfigurationEvaluator
from repro.core.candidates import CandidateIndex, CandidateSet
from repro.core.config import IndexConfiguration
from repro.core.dag import CandidateDag
from repro.robustness.budget import SearchBudget
from repro.robustness.checkpoint import resolve_candidates

#: Allowed size expansion when a general index replaces the indexes it
#: generalizes (Section VI-A; "we have found beta = 10% to work well").
DEFAULT_BETA = 0.10


@dataclass
class SearchResult:
    """Outcome of one configuration search.

    ``optimizer_calls``/``cache_hits``/``cache_misses`` are deltas of the
    shared :class:`~repro.optimizer.session.WhatIfSession` counters over
    the search, so they reflect exactly the optimizer traffic this search
    caused (and the work the shared cost cache absorbed).
    """

    algorithm: str
    configuration: IndexConfiguration
    benefit: float
    size_bytes: int
    budget_bytes: int
    elapsed_seconds: float
    optimizer_calls: int
    evaluations: int
    cache_hits: int = 0
    cache_misses: int = 0
    #: True when an anytime budget (deadline / optimizer-call cap)
    #: expired and this is the best-so-far configuration, not the
    #: search's natural fixpoint.
    truncated: bool = False
    truncated_reason: Optional[str] = None
    #: True when the search was seeded from an on-disk checkpoint.
    resumed: bool = False

    @property
    def general_count(self) -> int:
        return self.configuration.general_count()

    @property
    def specific_count(self) -> int:
        return self.configuration.specific_count()

    def summary(self) -> str:
        suffix = f" [truncated: {self.truncated_reason}]" if self.truncated else ""
        return (
            f"{self.algorithm}: {len(self.configuration)} indexes "
            f"(G: {self.general_count}, S: {self.specific_count}), "
            f"size {self.size_bytes}/{self.budget_bytes} B, "
            f"benefit {self.benefit:.2f}, "
            f"{self.optimizer_calls} optimizer calls, "
            f"{self.elapsed_seconds * 1000:.0f} ms{suffix}"
        )


class _Telemetry:
    """Counter snapshot at search start; finishes into a SearchResult.

    Counters are read from the evaluator's shared what-if session -- the
    single source of truth for optimizer traffic -- not from the raw
    optimizer object."""

    def __init__(self, evaluator: ConfigurationEvaluator) -> None:
        self.evaluator = evaluator
        self.started = time.perf_counter()
        counters = evaluator.session.counters
        self.calls_before = counters.optimizer_calls
        self.hits_before = counters.cache_hits
        self.misses_before = counters.cache_misses
        self.evals_before = evaluator.evaluations

    def finish(
        self,
        algorithm: str,
        config: IndexConfiguration,
        budget: int,
        benefit: Optional[float] = None,
        truncated: Optional[str] = None,
        resumed: bool = False,
    ) -> SearchResult:
        """Package the result.  Counter deltas are snapshotted *before*
        any final benefit evaluation, so the reported optimizer traffic
        is exactly what the search itself caused.  Searchers that tracked
        the final configuration's benefit pass it in; only searchers that
        never evaluated the full configuration (plain greedy, top down
        lite, dp) pay one uncounted evaluation here."""
        counters = self.evaluator.session.counters
        elapsed = time.perf_counter() - self.started
        optimizer_calls = counters.optimizer_calls - self.calls_before
        evaluations = self.evaluator.evaluations - self.evals_before
        cache_hits = counters.cache_hits - self.hits_before
        cache_misses = counters.cache_misses - self.misses_before
        if benefit is None:
            benefit = self.evaluator.benefit(config)
        return SearchResult(
            algorithm=algorithm,
            configuration=config,
            benefit=benefit,
            size_bytes=config.size_bytes(),
            budget_bytes=budget,
            elapsed_seconds=elapsed,
            optimizer_calls=optimizer_calls,
            evaluations=evaluations,
            cache_hits=cache_hits,
            cache_misses=cache_misses,
            truncated=truncated is not None,
            truncated_reason=truncated,
            resumed=resumed,
        )


def _positive_candidates(
    candidates: CandidateSet, evaluator: ConfigurationEvaluator
) -> List[CandidateIndex]:
    """Candidates with positive standalone benefit, densest first (ranked
    once per evaluator and shared across searches)."""
    return evaluator.ranked_positive_candidates(candidates)


def _spent(budget: Optional[SearchBudget]) -> Optional[str]:
    """The anytime budget's exhaustion reason, or ``None`` (always
    ``None`` without a budget).  Searchers call this at loop boundaries
    and break with their best-so-far configuration."""
    if budget is None:
        return None
    return budget.exhausted()


def _restore_scan(
    budget: Optional[SearchBudget],
    algorithm: str,
    budget_bytes: int,
    candidates,
):
    """Restore a ranked-scan searcher's checkpoint: ``(configuration,
    next cursor, tracked benefit)``, or ``None`` when there is nothing
    (valid) to resume."""
    if budget is None:
        return None
    state = budget.restore(algorithm, budget_bytes)
    if state is None:
        return None
    resolved = resolve_candidates(state.candidate_keys, candidates)
    if resolved is None:
        return None  # workload/data changed underneath the checkpoint
    cursor = 0 if state.cursor is None else state.cursor + 1
    return IndexConfiguration(resolved), cursor, state.benefit


# ---------------------------------------------------------------------------
# Greedy (no heuristics)
# ---------------------------------------------------------------------------

def greedy_search(
    candidates: CandidateSet,
    evaluator: ConfigurationEvaluator,
    budget_bytes: int,
    *,
    budget: Optional[SearchBudget] = None,
) -> SearchResult:
    """Density greedy on standalone benefits; ignores interaction, so it
    happily picks redundant indexes that the optimizer will never combine."""
    telemetry = _Telemetry(evaluator)
    config = IndexConfiguration()
    restored = _restore_scan(budget, "greedy", budget_bytes, candidates)
    start = 0
    if restored is not None:
        config, start, _ = restored
    remaining = budget_bytes - config.size_bytes()
    truncated = _spent(budget)
    if truncated is None:
        ranked = _positive_candidates(candidates, evaluator)
        for cursor in range(start, len(ranked)):
            truncated = _spent(budget)
            if truncated is not None:
                break
            candidate = ranked[cursor]
            if candidate.size_bytes <= remaining:
                config = config.with_candidate(candidate)
                remaining -= candidate.size_bytes
                if budget is not None:
                    budget.note_best(
                        "greedy", budget_bytes, config, cursor=cursor
                    )
    return telemetry.finish(
        "greedy", config, budget_bytes,
        truncated=truncated, resumed=restored is not None,
    )


# ---------------------------------------------------------------------------
# Greedy with heuristics (Section VI-A)
# ---------------------------------------------------------------------------

def greedy_search_with_heuristics(
    candidates: CandidateSet,
    evaluator: ConfigurationEvaluator,
    budget_bytes: int,
    beta: float = DEFAULT_BETA,
    *,
    budget: Optional[SearchBudget] = None,
) -> SearchResult:
    """Greedy search with the paper's redundancy/generality heuristics.

    The primary objective stays workload benefit; the added objective is
    maximizing the number of workload patterns actually served by chosen
    indexes.  A bitmap of covered basic patterns blocks replicated
    coverage, and a general index must beat the specific indexes it
    generalizes (IB test) without exceeding their total size by more than
    ``beta``.
    """
    telemetry = _Telemetry(evaluator)
    dag = CandidateDag(candidates)
    basics = candidates.basics()
    covered: Dict[Tuple, bool] = {b.key: False for b in basics}
    config = IndexConfiguration()
    current_benefit = 0.0
    start = 0
    restored = _restore_scan(
        budget, "greedy_heuristics", budget_bytes, candidates
    )
    if restored is not None:
        config, start, checkpointed_benefit = restored
        current_benefit = (
            checkpointed_benefit
            if checkpointed_benefit is not None
            else evaluator.benefit(config)
        )
        for chosen in config:
            for basic in basics:
                if chosen.covers(basic) or basic.key == chosen.key:
                    covered[basic.key] = True
    remaining = budget_bytes - config.size_bytes()
    truncated = _spent(budget)

    ranked = [] if truncated is not None else _positive_candidates(
        candidates, evaluator
    )
    for cursor in range(start, len(ranked)):
        truncated = _spent(budget)
        if truncated is not None:
            break
        candidate = ranked[cursor]
        if candidate.size_bytes > remaining:
            continue
        covered_basics = [b for b in basics if candidate.covers(b) or b.key == candidate.key]
        if covered_basics and all(covered[b.key] for b in covered_basics):
            continue  # pure replication of already-served patterns
        delta = evaluator.delta_benefit(config, candidate, current_benefit)
        if candidate.general:
            children = [c for c in dag.children(candidate)]
            if children:
                # IB test on deltas: benefit(X+general) < benefit(X+children)
                # iff the deltas compare the same way (benefit(X) cancels).
                delta_children = evaluator.delta_benefit(
                    config, children, current_benefit
                )
                children_size = sum(c.size_bytes for c in children)
                if delta < delta_children:
                    continue
                if candidate.size_bytes > (1.0 + beta) * children_size:
                    continue
        if delta <= 0:
            continue
        config = config.with_candidate(candidate)
        current_benefit += delta
        remaining = budget_bytes - config.size_bytes()
        for basic in covered_basics:
            covered[basic.key] = True
        if budget is not None:
            budget.note_best(
                "greedy_heuristics", budget_bytes, config,
                benefit=current_benefit, cursor=cursor,
            )
    return telemetry.finish(
        "greedy_heuristics", config, budget_bytes, benefit=current_benefit,
        truncated=truncated, resumed=restored is not None,
    )


# ---------------------------------------------------------------------------
# Top down search (Section VI-B)
# ---------------------------------------------------------------------------

def _top_down(
    candidates: CandidateSet,
    evaluator: ConfigurationEvaluator,
    budget_bytes: int,
    full: bool,
    budget: Optional[SearchBudget] = None,
) -> SearchResult:
    algorithm = "topdown_full" if full else "topdown_lite"
    telemetry = _Telemetry(evaluator)

    # Preprocessing: drop candidates with zero/negative benefit (high
    # maintenance cost, or never used in optimizer plans).  The scan has
    # no budget checks, so the whole frontier can be scored in one
    # session fan-out first -- identical traffic, batched.
    evaluator.prefetch_standalone(candidates)
    surviving = CandidateSet()
    for candidate in candidates:
        if evaluator.standalone_benefit(candidate) > 0:
            survivor = surviving.get_or_add(
                candidate.pattern,
                candidate.value_type,
                candidate.collection,
                general=candidate.general,
            )
            survivor.affected = set(candidate.affected)
            survivor.size_bytes = candidate.size_bytes
            survivor.sources = set(candidate.sources)
    dag = CandidateDag(surviving)
    config = IndexConfiguration(dag.roots())
    resumed = False
    if budget is not None:
        state = budget.restore(algorithm, budget_bytes)
        if state is not None:
            resolved = resolve_candidates(state.candidate_keys, surviving)
            if resolved is not None:
                # The replacement loop is driven entirely by the current
                # configuration, so re-entering it from the checkpoint
                # is exact.
                config = IndexConfiguration(resolved)
                resumed = True
    truncated = _spent(budget)

    while truncated is None and config.size_bytes() > budget_bytes:
        truncated = _spent(budget)
        if truncated is not None:
            break
        replaceable = [
            c for c in config if dag.children(c)
        ]
        if not replaceable:
            break
        best: Optional[CandidateIndex] = None
        best_ratio = float("inf")
        best_delta_c = float("-inf")
        for general in replaceable:
            children = [c for c in dag.children(general) if c not in config]
            delta_c = general.size_bytes - sum(c.size_bytes for c in children)
            if delta_c <= 0:
                continue  # replacing would not shrink the configuration
            if full:
                base = config.without(general)
                if evaluator.naive:
                    # Delta evaluation is one of the techniques the naive
                    # ablation disables: evaluate both sides in full.
                    ib_general = evaluator.benefit(base.with_candidate(general))
                    ib_children = evaluator.benefit(base.with_candidates(children))
                    delta_b = ib_general - ib_children
                else:
                    # dB = benefit(base+general) - benefit(base+children);
                    # benefit(base) cancels, so score both sides as deltas
                    # and re-cost only the groups the swapped indexes touch.
                    delta_b = evaluator.delta_benefit(
                        base, general
                    ) - evaluator.delta_benefit(base, children)
            else:
                delta_b = evaluator.standalone_benefit(general) - sum(
                    evaluator.standalone_benefit(c) for c in children
                )
            ratio = delta_b / delta_c
            if ratio < best_ratio or (
                ratio == best_ratio and delta_c > best_delta_c
            ):
                best = general
                best_ratio = ratio
                best_delta_c = delta_c
        if best is None:
            break
        children = [c for c in dag.children(best) if c not in config]
        config = config.without(best).with_candidates(children)
        if budget is not None:
            budget.note_best(algorithm, budget_bytes, config)

    if config.size_bytes() > budget_bytes:
        # Out of general candidates to replace: plain greedy over what is
        # left (no heuristics needed -- Section VI-B).
        scored = sorted(
            config,
            key=lambda c: (
                evaluator.standalone_benefit(c) / c.size_bytes
                if c.size_bytes
                else 0.0
            ),
            reverse=True,
        )
        trimmed = IndexConfiguration()
        remaining = budget_bytes
        for candidate in scored:
            if candidate.size_bytes <= remaining:
                trimmed = trimmed.with_candidate(candidate)
                remaining -= candidate.size_bytes
        config = trimmed
    return telemetry.finish(
        algorithm, config, budget_bytes,
        truncated=truncated, resumed=resumed,
    )


def top_down_lite(
    candidates: CandidateSet,
    evaluator: ConfigurationEvaluator,
    budget_bytes: int,
    *,
    budget: Optional[SearchBudget] = None,
) -> SearchResult:
    """Top down search with interaction-free dB (sum of standalone
    benefits)."""
    return _top_down(candidates, evaluator, budget_bytes, full=False,
                     budget=budget)


def top_down_full(
    candidates: CandidateSet,
    evaluator: ConfigurationEvaluator,
    budget_bytes: int,
    *,
    budget: Optional[SearchBudget] = None,
) -> SearchResult:
    """Top down search evaluating every configuration's benefit through
    the optimizer (captures index interaction)."""
    return _top_down(candidates, evaluator, budget_bytes, full=True,
                     budget=budget)


# ---------------------------------------------------------------------------
# Dynamic programming knapsack
# ---------------------------------------------------------------------------

#: Size-resolution buckets of the DP table (sizes are scaled down to this
#: many units to keep the table tractable).
DP_UNITS = 2048


def dynamic_programming_search(
    candidates: CandidateSet,
    evaluator: ConfigurationEvaluator,
    budget_bytes: int,
    *,
    budget: Optional[SearchBudget] = None,
) -> SearchResult:
    """Exact 0/1 knapsack on standalone benefits (ignores interaction --
    "optimal modulo index interactions" as the paper puts it).  Sizes are
    quantized to :data:`DP_UNITS` buckets.  Under an anytime budget the
    partial table's best entry is still a valid (truncated) answer."""
    telemetry = _Telemetry(evaluator)
    truncated = _spent(budget)
    items = []
    if truncated is None:
        if budget is None or not budget.bounded:
            # Unbounded runs score every candidate anyway: batch the
            # frontier.  Bounded runs keep the per-candidate scan so an
            # expiring budget stops exactly where the serial scan would.
            evaluator.prefetch_standalone(candidates)
        for c in candidates:
            truncated = _spent(budget)
            if truncated is not None:
                break
            items.append((evaluator.standalone_benefit(c), c))
    items = [(b, c) for b, c in items if b > 0 and c.size_bytes > 0]
    unit = max(1, budget_bytes // DP_UNITS)
    capacity = budget_bytes // unit
    # dp[w] = (best benefit, chosen candidate keys) at weight w
    best_benefit = [0.0] * (capacity + 1)
    chosen: List[Tuple] = [() for _ in range(capacity + 1)]
    for benefit, candidate in items:
        weight = -(-candidate.size_bytes // unit)  # ceil division
        if weight > capacity:
            continue
        for w in range(capacity, weight - 1, -1):
            trial = best_benefit[w - weight] + benefit
            if trial > best_benefit[w]:
                best_benefit[w] = trial
                chosen[w] = chosen[w - weight] + (candidate,)
    top = max(range(capacity + 1), key=lambda w: best_benefit[w])
    config = IndexConfiguration(chosen[top])
    return telemetry.finish("dp", config, budget_bytes, truncated=truncated)


# ---------------------------------------------------------------------------
# Exhaustive search (oracle)
# ---------------------------------------------------------------------------

#: Refuse exhaustive search beyond this many candidates (2^n configurations).
EXHAUSTIVE_LIMIT = 16


def exhaustive_search(
    candidates: CandidateSet,
    evaluator: ConfigurationEvaluator,
    budget_bytes: int,
    *,
    budget: Optional[SearchBudget] = None,
) -> SearchResult:
    """Try *every* configuration within the budget and return the best by
    true (interaction-aware) benefit.

    The related work [21] offers exhaustive search as the accurate-but-slow
    alternative to greedy; here it doubles as a testing oracle for the
    other algorithms.  Only feasible for small candidate sets
    (:data:`EXHAUSTIVE_LIMIT`); the sub-configuration cache keeps the
    optimizer-call count from exploding with the configuration count.
    """
    telemetry = _Telemetry(evaluator)
    pool = [c for c in candidates if 0 < c.size_bytes <= budget_bytes]
    if len(pool) > EXHAUSTIVE_LIMIT:
        raise ValueError(
            f"exhaustive search over {len(pool)} candidates is infeasible "
            f"(limit {EXHAUSTIVE_LIMIT})"
        )
    best_config = IndexConfiguration()
    best_benefit = 0.0
    truncated = None
    for mask in range(1, 1 << len(pool)):
        truncated = _spent(budget)
        if truncated is not None:
            break
        chosen = [pool[i] for i in range(len(pool)) if mask & (1 << i)]
        if sum(c.size_bytes for c in chosen) > budget_bytes:
            continue
        config = IndexConfiguration(chosen)
        benefit = evaluator.benefit(config)
        if benefit > best_benefit or (
            benefit == best_benefit
            and config.size_bytes() < best_config.size_bytes()
        ):
            best_config = config
            best_benefit = benefit
    return telemetry.finish(
        "exhaustive", best_config, budget_bytes, benefit=best_benefit,
        truncated=truncated,
    )


def _ilp_search(
    candidates: CandidateSet,
    evaluator: ConfigurationEvaluator,
    budget_bytes: int,
    *,
    budget: Optional[SearchBudget] = None,
) -> SearchResult:
    """CoPhy-style cost-atom ILP (LP relaxation + branch and bound with
    a greedy fallback).  Imported lazily: :mod:`repro.core.ilp` builds
    on this module's telemetry and greedy searcher."""
    from repro.core.ilp import ilp_search

    return ilp_search(candidates, evaluator, budget_bytes, budget=budget)


#: Registry used by the advisor front end.
ALGORITHMS: Dict[str, Callable] = {
    "greedy": greedy_search,
    "greedy_heuristics": greedy_search_with_heuristics,
    "topdown_lite": top_down_lite,
    "topdown_full": top_down_full,
    "dp": dynamic_programming_search,
    "exhaustive": exhaustive_search,
    "ilp": _ilp_search,
}

#: Strategies the serving layer's portfolio modes may race against one
#: deadline (docs/serving.md).  All are anytime (deadline-safe) and score
#: benefits with the same full-workload evaluator, so their results are
#: directly comparable and the portfolio can return the max.
PORTFOLIO_ALGORITHMS: Tuple[str, ...] = (
    "greedy",
    "greedy_heuristics",
    "ilp",
)
