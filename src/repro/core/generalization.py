"""Candidate generalization (Section V, Algorithm 1 and Table II).

Pairs of candidate index patterns are merged into more general patterns
that cover both, e.g. ``/Security/Symbol`` + ``/Security/SecInfo/*/Sector``
-> ``/Security//*``.  The pair generalization is the paper's two mutually
recursive functions:

* ``generalizeStep(genXPath, pi, pj)`` -- generalize the steps under the
  two cursors (same name test kept, otherwise ``*``; descendant axis wins)
  and append to the pattern being built, unless exactly one cursor is at
  its last step (then control passes straight to ``advanceStep``).
* ``advanceStep`` -- cursor movement per Table II:

  1. both cursors at their last steps: emit ``genXPath``;
  2./3. one cursor at its last step: append ``/*`` (standing for the other
     expression's skipped middle steps) and advance the other cursor to
     *its* last step;
  4. both in the middle: (a) advance both cursors; (b)/(c) look for the
     re-occurrence of one side's next name later in the other side,
     appending ``/*`` for the skipped steps (handles repeated node names,
     e.g. ``/a/b/d`` + ``/a/d/b/d`` -> ``/a//d`` and ``/a//b/d``).

  Rule 0 (final rewrite): runs of middle ``/*`` steps collapse into a
  descendant axis on the following step (``/a/*/*/b`` -> ``/a//b``).

The published pseudo-code has two ambiguities that the paper's own worked
examples resolve, and we follow the examples:

* Rule 2/3 pass the *current* last-step cursor on (the table's ``pi.next``
  would run off the list; the Section V trace passes ``/Symbol`` again).
* Rule 4's ``/*`` append applies to the re-occurrence cases (b)/(c) only
  -- the trace for case (a) shows ``generalizeStep(/Security, /Symbol,
  /SecInfo/*/Sector)`` with no ``/*`` appended.

Pairs of different value types are never generalized (Section V:
"Candidate C3 cannot be generalized with either C1 or C2 because it is of
a different data type").

:func:`generalize_candidates` applies pair generalization iteratively --
including to newly generated patterns -- until no new pattern appears.
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from repro.core.candidates import CandidateIndex, CandidateSet
from repro.xpath.ast import Axis
from repro.xpath.patterns import PathPattern, PatternStep

#: Hard cap on generalization fixed-point rounds (defensive; the candidate
#: space is finite so the loop terminates, but cheaply bounding it keeps
#: adversarial inputs polite).
MAX_ROUNDS = 16


def _gen_axis(a: Axis, b: Axis) -> Axis:
    """The paper's genAxis: descendant wins."""
    if a is Axis.DESCENDANT or b is Axis.DESCENDANT:
        return Axis.DESCENDANT
    return Axis.CHILD


def _is_last(steps: Sequence[PatternStep], position: int) -> bool:
    return position == len(steps) - 1


_WILDCARD_STEP = PatternStep(Axis.CHILD, "*")


def generalize_pair(p: PathPattern, q: PathPattern) -> Set[PathPattern]:
    """All generalizations of a pattern pair (Rule 0 already applied).

    The inputs themselves and ungeneralizable pairs yield an empty set.
    """
    if p == q:
        return set()
    if p.last_step.is_attribute != q.last_step.is_attribute:
        return set()
    raw: Set[Tuple[PatternStep, ...]] = set()
    _generalize_step((), (p.steps, 0), (q.steps, 0), raw)
    results: Set[PathPattern] = set()
    for steps in raw:
        if not steps:
            continue
        pattern = PathPattern(steps).collapse_wildcards()
        if pattern in (p, q):
            continue
        # Defensive soundness check: a generalization must cover both.
        if pattern.covers(p) and pattern.covers(q):
            results.add(pattern)
    return results


def _generalize_step(
    gen: Tuple[PatternStep, ...],
    pi: Tuple[Sequence[PatternStep], int],
    pj: Tuple[Sequence[PatternStep], int],
    out: Set[Tuple[PatternStep, ...]],
) -> None:
    """Algorithm 1: generalize the steps under both cursors, then advance."""
    pi_steps, pi_pos = pi
    pj_steps, pj_pos = pj
    pi_last = _is_last(pi_steps, pi_pos)
    pj_last = _is_last(pj_steps, pj_pos)
    if pi_last != pj_last:
        # Lines 1-3: a last step may only generalize with a last step.
        _advance_step(gen, pi, pj, out)
        return
    step_i = pi_steps[pi_pos]
    step_j = pj_steps[pj_pos]
    if step_i.name == step_j.name:
        name = step_i.name
    elif step_i.is_attribute or step_j.is_attribute:
        if step_i.is_attribute and step_j.is_attribute:
            name = "@*"
        else:
            return  # element and attribute tests do not generalize
    else:
        name = "*"
    new_step = PatternStep(_gen_axis(step_i.axis, step_j.axis), name)
    _advance_step(gen + (new_step,), pi, pj, out)


def _advance_step(
    gen: Tuple[PatternStep, ...],
    pi: Tuple[Sequence[PatternStep], int],
    pj: Tuple[Sequence[PatternStep], int],
    out: Set[Tuple[PatternStep, ...]],
) -> None:
    """Table II cursor-advancement rules."""
    pi_steps, pi_pos = pi
    pj_steps, pj_pos = pj
    pi_last = _is_last(pi_steps, pi_pos)
    pj_last = _is_last(pj_steps, pj_pos)

    if pi_last and pj_last:  # Rule 1
        out.add(gen)
        return
    if pi_last and not pj_last:  # Rule 2
        _generalize_step(
            gen + (_WILDCARD_STEP,),
            (pi_steps, pi_pos),
            (pj_steps, len(pj_steps) - 1),
            out,
        )
        return
    if not pi_last and pj_last:  # Rule 3
        _generalize_step(
            gen + (_WILDCARD_STEP,),
            (pi_steps, len(pi_steps) - 1),
            (pj_steps, pj_pos),
            out,
        )
        return

    # Rule 4: both cursors in the middle.
    # (a) advance both cursors one step.
    _generalize_step(gen, (pi_steps, pi_pos + 1), (pj_steps, pj_pos + 1), out)
    # (b) find pj's next name later in pi (a re-occurrence); the skipped
    # steps of pi are stood in for by /*.
    pj_next_name = pj_steps[pj_pos + 1].name
    occurrence = _find_name(pi_steps, pi_pos + 2, pj_next_name)
    if occurrence is not None:
        _generalize_step(
            gen + (_WILDCARD_STEP,),
            (pi_steps, occurrence),
            (pj_steps, pj_pos + 1),
            out,
        )
    # (c) symmetric: find pi's next name later in pj.
    pi_next_name = pi_steps[pi_pos + 1].name
    occurrence = _find_name(pj_steps, pj_pos + 2, pi_next_name)
    if occurrence is not None:
        _generalize_step(
            gen + (_WILDCARD_STEP,),
            (pi_steps, pi_pos + 1),
            (pj_steps, occurrence),
            out,
        )


def _find_name(
    steps: Sequence[PatternStep], start: int, name: str
) -> "int | None":
    """First position >= start whose step has this name test, or None.
    Searching from ``current + 2`` keeps case (b)/(c) disjoint from case
    (a), which already advances to ``current + 1``."""
    for position in range(start, len(steps)):
        if steps[position].name == name:
            return position
    return None


def generalize_candidates(candidates: CandidateSet) -> int:
    """Expand ``candidates`` with generalized patterns to a fixed point.

    Every pair of same-type candidates (basic and previously generated
    general ones) is generalized; new patterns join the set and take part
    in later rounds.  Returns the number of general candidates added.

    After the first round only pairs touching the *frontier* (patterns
    added in the previous round) are generalized.  This is exactly
    output-identical, not just an approximation: a pair of two
    pre-frontier candidates was already enumerated in an earlier round,
    so every pattern it generalizes to is in the set by now and would be
    filtered by the membership check -- contributing neither a new
    candidate nor a source edge.  Pair order is preserved, so candidates
    are still created in the same order (stable downstream naming).
    """
    added = 0
    frontier: Optional[set] = None  # None = first round, pair everything
    for _ in range(MAX_ROUNDS):
        current = list(candidates)
        new_patterns: List[Tuple[PathPattern, CandidateIndex, CandidateIndex]] = []
        for i, left in enumerate(current):
            left_old = frontier is not None and left.key not in frontier
            for right in current[i + 1 :]:
                if left_old and right.key not in frontier:
                    continue
                if left.value_type is not right.value_type:
                    continue
                if left.collection != right.collection:
                    continue
                for pattern in generalize_pair(left.pattern, right.pattern):
                    if (str(pattern), left.value_type) not in candidates:
                        new_patterns.append((pattern, left, right))
        if not new_patterns:
            break
        frontier = set()
        for pattern, left, right in new_patterns:
            key = (str(pattern), left.value_type)
            existing = candidates.get(key)
            if existing is None:
                candidate = candidates.get_or_add(
                    pattern, left.value_type, left.collection, general=True
                )
                added += 1
                frontier.add(candidate.key)
            else:
                candidate = existing
            candidate.sources.add(left.key)
            candidate.sources.add(right.key)
    candidates.propagate_affected_sets()
    return added
