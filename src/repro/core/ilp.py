"""CoPhy-style ILP search over per-statement cost atoms.

The searchers in :mod:`repro.core.search` probe configurations one
greedy step at a time; CoPhy (Dash et al., PAPERS.md) instead phrases
index selection as a binary program over **cost atoms** -- the cost of
one statement under one small candidate subset, exactly the
(statement, projected configuration) pairs the shared
:class:`~repro.optimizer.session.WhatIfSession` already caches.  With
the atoms in hand, search never calls the optimizer again: it reasons
over the matrix.

The program, for statements ``s``, atoms ``k`` (with saving ``w_k`` and
member candidates ``j in k``) and candidates ``j`` (size ``size_j``,
frequency-weighted maintenance charge ``m_j``)::

    maximize   sum_k w_k x_k  -  sum_j m_j y_j
    subject to sum_{k in atoms(s)} x_k <= 1          for every s
               x_k <= y_j                            for every k, j in k
               sum_j size_j y_j <= budget_bytes
               x, y binary

Atoms are built in two batched fan-outs through the session (singletons
for every affected statement x candidate pair -- warm after candidate
ranking -- then pairs of the per-statement top singletons, kept only
when the optimizer actually combines them for a strict improvement).
The relaxation is solved with a dense primal simplex (pure python, no
dependencies), integrality restored by best-first branch and bound on
the ``y`` variables, both under the PR 3 :class:`SearchBudget` -- an
expiring deadline or call budget abandons the program and falls back to
:func:`~repro.core.search.greedy_search_with_heuristics`, preserving
anytime semantics.  The chosen configuration's *true* benefit is then
evaluated through the optimizer and compared against a (cache-warm)
greedy run: ``ilp`` returns whichever is better, so its benefit is
``>=`` greedy's on every workload by construction (differentially
pinned by ``tests/test_ilp.py``).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.core.benefit import ConfigurationEvaluator
from repro.core.candidates import CandidateIndex, CandidateSet
from repro.core.config import IndexConfiguration
from repro.core.search import (
    SearchResult,
    _spent,
    _Telemetry,
    greedy_search_with_heuristics,
)
from repro.robustness.budget import SearchBudget
from repro.robustness.checkpoint import resolve_candidates

#: Candidate pool cap: the ILP runs over the densest ranked positives.
MAX_POOL = 64
#: Per statement, the top singleton atoms eligible to form pair atoms.
PAIR_SEED_CANDIDATES = 5
#: Branch-and-bound node cap (the LP bound is tight enough that real
#: runs close the gap in a handful of nodes; this is the runaway stop).
MAX_NODES = 48
#: Simplex pivots before giving up on a node's relaxation.
SIMPLEX_ITERATION_LIMIT = 4000
EPS = 1e-9


@dataclass(frozen=True)
class Atom:
    """One cost atom: statement position, member candidate indices
    (into the ILP's candidate pool), and the frequency-weighted saving
    over the statement's base cost."""

    statement: int
    members: Tuple[int, ...]
    saving: float


class _BudgetSpent(Exception):
    """Internal: the anytime budget expired mid-program."""

    def __init__(self, reason: str) -> None:
        self.reason = reason


# ---------------------------------------------------------------------------
# Atom matrix construction (batched through the session)
# ---------------------------------------------------------------------------

def build_atom_matrix(
    pool: Sequence[CandidateIndex],
    evaluator: ConfigurationEvaluator,
    budget: Optional[SearchBudget] = None,
    pair_seeds: int = PAIR_SEED_CANDIDATES,
) -> List[Atom]:
    """Cost atoms for ``pool`` over the evaluator's workload.

    Two session fan-outs: one batch of every (affected statement,
    singleton) cost -- deduped by the projected-key cache, so costs the
    candidate ranking already probed are free -- and one batch of pair
    costs for each statement's top ``pair_seeds`` singletons.  Pair
    atoms survive only when the optimizer combines the two indexes for
    a saving strictly better than either alone (otherwise the pair
    column is dominated and only bloats the program).
    """
    session = evaluator.session
    workload = evaluator.workload
    base_costs = evaluator.base_costs
    affected = [evaluator.affected_set(candidate) for candidate in pool]
    definitions = [
        session.definitions_for([candidate]) for candidate in pool
    ]
    relevant: Dict[int, List[int]] = {}
    for j, positions in enumerate(affected):
        for position in positions:
            relevant.setdefault(position, []).append(j)

    reason = _spent(budget)
    if reason is not None:
        raise _BudgetSpent(reason)

    tasks = []
    spans: List[Tuple[int, int]] = []  # parallel to tasks: (position, j)
    for position in sorted(relevant):
        statement = workload.entries[position].statement
        for j in relevant[position]:
            spans.append((position, j))
            tasks.append((statement, definitions[j]))
    with session.phase("ilp-atoms"):
        costs = session.cost_batch(tasks)

    singles: Dict[Tuple[int, int], float] = {}
    for (position, j), cost in zip(spans, costs):
        frequency = workload.entries[position].frequency
        singles[(position, j)] = frequency * (base_costs[position] - cost)

    reason = _spent(budget)
    if reason is not None:
        raise _BudgetSpent(reason)

    pair_tasks = []
    pair_spans: List[Tuple[int, int, int]] = []
    pair_definitions: Dict[Tuple[int, int], Tuple] = {}
    for position in sorted(relevant):
        statement = workload.entries[position].statement
        seeds = sorted(
            (j for j in relevant[position] if singles[(position, j)] > EPS),
            key=lambda j: (-singles[(position, j)], j),
        )[:pair_seeds]
        for a in range(len(seeds)):
            for b in range(a + 1, len(seeds)):
                first, second = sorted((seeds[a], seeds[b]))
                pair_key = (first, second)
                if pair_key not in pair_definitions:
                    pair_definitions[pair_key] = session.definitions_for(
                        [pool[first], pool[second]]
                    )
                pair_spans.append((position, first, second))
                pair_tasks.append(
                    (statement, pair_definitions[pair_key])
                )
    with session.phase("ilp-atoms"):
        pair_costs = session.cost_batch(pair_tasks)

    atoms: List[Atom] = [
        Atom(position, (j,), saving)
        for (position, j), saving in sorted(singles.items())
        if saving > EPS
    ]
    for (position, first, second), cost in zip(pair_spans, pair_costs):
        frequency = workload.entries[position].frequency
        saving = frequency * (base_costs[position] - cost)
        best_single = max(
            singles[(position, first)], singles[(position, second)]
        )
        if saving > best_single + EPS:
            atoms.append(Atom(position, (first, second), saving))
    return atoms


# ---------------------------------------------------------------------------
# Dense primal simplex (pure python)
# ---------------------------------------------------------------------------

def solve_lp(
    objective: Sequence[float],
    rows: Sequence[Sequence[Tuple[int, float]]],
    bounds: Sequence[float],
) -> Optional[Tuple[float, List[float]]]:
    """Maximize ``objective . v`` subject to ``A v <= bounds, v >= 0``.

    ``rows`` holds each constraint as sparse ``(column, coefficient)``
    pairs; every bound must be non-negative, so the slack basis is
    feasible and a single-phase primal simplex suffices.  Dantzig
    pricing with a switch to Bland's rule (which cannot cycle) once the
    pivot count passes twice the tableau size; returns ``None`` if the
    iteration limit is still exceeded.
    """
    n = len(objective)
    m = len(rows)
    width = n + m + 1
    tableau = [[0.0] * width for _ in range(m + 1)]
    for i, row in enumerate(rows):
        line = tableau[i]
        for column, coefficient in row:
            line[column] = coefficient
        line[n + i] = 1.0
        line[width - 1] = bounds[i]
    cost_row = tableau[m]
    for column, coefficient in enumerate(objective):
        cost_row[column] = -coefficient
    basis = [n + i for i in range(m)]

    bland_after = 2 * (m + n)
    for iteration in range(SIMPLEX_ITERATION_LIMIT):
        entering = -1
        if iteration < bland_after:
            most_negative = -1e-9
            for column in range(width - 1):
                if cost_row[column] < most_negative:
                    most_negative = cost_row[column]
                    entering = column
        else:
            for column in range(width - 1):
                if cost_row[column] < -1e-9:
                    entering = column
                    break
        if entering < 0:
            values = [0.0] * n
            for i, variable in enumerate(basis):
                if variable < n:
                    values[variable] = tableau[i][width - 1]
            return tableau[m][width - 1], values
        leaving = -1
        best_ratio = float("inf")
        for i in range(m):
            coefficient = tableau[i][entering]
            if coefficient > 1e-9:
                ratio = tableau[i][width - 1] / coefficient
                if ratio < best_ratio - 1e-12 or (
                    abs(ratio - best_ratio) <= 1e-12
                    and (leaving < 0 or basis[i] < basis[leaving])
                ):
                    best_ratio = ratio
                    leaving = i
        if leaving < 0:
            return None  # unbounded: malformed program
        pivot_row = tableau[leaving]
        pivot = pivot_row[entering]
        inverse = 1.0 / pivot
        for column in range(width):
            pivot_row[column] *= inverse
        for i in range(m + 1):
            if i == leaving:
                continue
            factor = tableau[i][entering]
            if factor == 0.0:
                continue
            line = tableau[i]
            for column in range(width):
                line[column] -= factor * pivot_row[column]
        basis[leaving] = entering
    return None


# ---------------------------------------------------------------------------
# Branch and bound over the y (candidate) variables
# ---------------------------------------------------------------------------

class _Program:
    """The cost-atom program for one pool, shared by every node."""

    def __init__(
        self,
        pool: Sequence[CandidateIndex],
        atoms: Sequence[Atom],
        maintenance: Sequence[float],
        budget_bytes: int,
    ) -> None:
        self.pool = list(pool)
        self.atoms = list(atoms)
        self.maintenance = list(maintenance)
        self.sizes = [candidate.size_bytes for candidate in pool]
        self.budget_bytes = budget_bytes
        self.by_statement: Dict[int, List[int]] = {}
        for index, atom in enumerate(self.atoms):
            self.by_statement.setdefault(atom.statement, []).append(index)

    def objective(self, chosen: Set[int]) -> float:
        """Model objective of an integral candidate set."""
        total = 0.0
        for indices in self.by_statement.values():
            best = 0.0
            for index in indices:
                atom = self.atoms[index]
                if atom.saving > best and all(
                    j in chosen for j in atom.members
                ):
                    best = atom.saving
            total += best
        return total - sum(self.maintenance[j] for j in chosen)

    def size_of(self, chosen: Set[int]) -> int:
        return sum(self.sizes[j] for j in chosen)

    # -- one node's LP relaxation ------------------------------------
    def relax(
        self, fixed_zero: FrozenSet[int], fixed_one: FrozenSet[int]
    ) -> Optional[Tuple[float, Dict[int, float]]]:
        """LP bound of the node where ``fixed_one`` candidates are
        forced in and ``fixed_zero`` out.  Returns ``(bound, fractional
        y values for the free candidates)``, or ``None`` when the node
        is infeasible (forced sizes already bust the budget) or the
        simplex gave up (callers prune conservatively)."""
        remaining = self.budget_bytes - sum(
            self.sizes[j] for j in fixed_one
        )
        if remaining < 0:
            return None
        constant = -sum(self.maintenance[j] for j in fixed_one)
        usable: List[Tuple[Atom, Tuple[int, ...]]] = []
        free_candidates: Set[int] = set()
        for atom in self.atoms:
            if any(j in fixed_zero for j in atom.members):
                continue
            free_members = tuple(
                j for j in atom.members if j not in fixed_one
            )
            usable.append((atom, free_members))
            free_candidates.update(free_members)
        if not usable:
            return constant, {}
        y_order = sorted(free_candidates)
        y_column = {j: len(usable) + slot for slot, j in enumerate(y_order)}

        objective = [atom.saving for atom, _ in usable] + [
            -self.maintenance[j] for j in y_order
        ]
        rows: List[List[Tuple[int, float]]] = []
        bounds: List[float] = []
        per_statement: Dict[int, List[int]] = {}
        for column, (atom, _) in enumerate(usable):
            per_statement.setdefault(atom.statement, []).append(column)
        for statement in sorted(per_statement):
            rows.append(
                [(column, 1.0) for column in per_statement[statement]]
            )
            bounds.append(1.0)
        for column, (_, free_members) in enumerate(usable):
            for j in free_members:
                rows.append([(column, 1.0), (y_column[j], -1.0)])
                bounds.append(0.0)
        if y_order:
            rows.append(
                [(y_column[j], float(self.sizes[j])) for j in y_order]
            )
            bounds.append(float(remaining))
            for j in y_order:
                rows.append([(y_column[j], 1.0)])
                bounds.append(1.0)
        solved = solve_lp(objective, rows, bounds)
        if solved is None:
            return None
        value, values = solved
        fractional = {
            j: values[y_column[j]] for j in y_order
        }
        return value + constant, fractional

    # -- rounding ----------------------------------------------------
    def round_to_incumbent(
        self,
        fixed_one: FrozenSet[int],
        fractional: Dict[int, float],
    ) -> Set[int]:
        """Greedy rounding of a node's LP solution into a feasible
        integral set: forced candidates first, then free candidates by
        descending fractional value while the budget holds."""
        chosen = set(fixed_one)
        remaining = self.budget_bytes - self.size_of(chosen)
        for j in sorted(
            fractional, key=lambda j: (-fractional[j], j)
        ):
            if fractional[j] <= EPS:
                continue
            if self.sizes[j] <= remaining:
                chosen.add(j)
                remaining -= self.sizes[j]
        return chosen


def _branch_and_bound(
    program: _Program,
    budget: Optional[SearchBudget],
    seed: Optional[Set[int]] = None,
) -> Tuple[Set[int], float]:
    """Best-first branch and bound; returns the best integral candidate
    set and its model objective.  Raises :class:`_BudgetSpent` when the
    anytime budget expires mid-tree (the caller falls back)."""
    best_set: Set[int] = set(seed or ())
    if program.size_of(best_set) > program.budget_bytes:
        best_set = set()
    best_value = program.objective(best_set)
    counter = 0
    heap: List[Tuple[float, int, FrozenSet[int], FrozenSet[int]]] = []
    root = program.relax(frozenset(), frozenset())
    if root is None:
        return best_set, best_value
    bound, fractional = root
    heapq.heappush(heap, (-bound, counter, frozenset(), frozenset()))
    explored = 0
    while heap and explored < MAX_NODES:
        reason = _spent(budget)
        if reason is not None:
            raise _BudgetSpent(reason)
        negative_bound, _, fixed_zero, fixed_one = heapq.heappop(heap)
        if -negative_bound <= best_value + EPS:
            continue  # the bound can no longer beat the incumbent
        explored += 1
        solved = program.relax(fixed_zero, fixed_one)
        if solved is None:
            continue
        bound, fractional = solved
        if bound <= best_value + EPS:
            continue
        incumbent = program.round_to_incumbent(fixed_one, fractional)
        value = program.objective(incumbent)
        if value > best_value + EPS:
            best_value = value
            best_set = incumbent
        branch_on = -1
        most_fractional = 1e-6
        for j, value_j in sorted(fractional.items()):
            distance = min(value_j, 1.0 - value_j)
            if distance > most_fractional:
                most_fractional = distance
                branch_on = j
        if branch_on < 0:
            # Integral relaxation: the rounding above captured it.
            continue
        for child_zero, child_one in (
            (fixed_zero | {branch_on}, fixed_one),
            (fixed_zero, fixed_one | {branch_on}),
        ):
            counter += 1
            heapq.heappush(
                heap,
                (-bound, counter, frozenset(child_zero), frozenset(child_one)),
            )
    return best_set, best_value


# ---------------------------------------------------------------------------
# The searcher
# ---------------------------------------------------------------------------

def ilp_search(
    candidates: CandidateSet,
    evaluator: ConfigurationEvaluator,
    budget_bytes: int,
    *,
    budget: Optional[SearchBudget] = None,
) -> SearchResult:
    """The ``ilp`` strategy: atom matrix -> LP relaxation -> branch and
    bound -> true-benefit comparison against greedy.

    Anytime: a :class:`SearchBudget` expiring anywhere in the program
    abandons it and runs :func:`greedy_search_with_heuristics` on the
    warm caches instead (the result is flagged truncated with the
    budget's reason).  Never worse than greedy: the final configuration
    is whichever of the ILP solution and the greedy solution has the
    higher true (optimizer-evaluated) benefit.
    """
    telemetry = _Telemetry(evaluator)

    seed: Optional[Set[int]] = None
    resumed = False
    pool: List[CandidateIndex] = []
    try:
        reason = _spent(budget)
        if reason is not None:
            raise _BudgetSpent(reason)
        pool = evaluator.ranked_positive_candidates(candidates)[:MAX_POOL]
        pool = [c for c in pool if c.size_bytes <= budget_bytes]
        atoms = build_atom_matrix(pool, evaluator, budget)
        maintenance = [
            evaluator.candidate_maintenance(candidate) for candidate in pool
        ]
        program = _Program(pool, atoms, maintenance, budget_bytes)
        if budget is not None:
            state = budget.restore("ilp", budget_bytes)
            if state is not None:
                resolved = resolve_candidates(state.candidate_keys, pool)
                if resolved is not None:
                    index_of = {c.key: j for j, c in enumerate(pool)}
                    seed = {index_of[c.key] for c in resolved}
                    resumed = True
        chosen, _ = _branch_and_bound(program, budget, seed)
        ilp_config = IndexConfiguration(
            sorted(
                (pool[j] for j in chosen),
                key=lambda c: (str(c.pattern), c.value_type.value),
            )
        )
        ilp_benefit = evaluator.benefit(ilp_config)
        if budget is not None:
            budget.note_best("ilp", budget_bytes, ilp_config, benefit=ilp_benefit)
    except _BudgetSpent as spent:
        # Anytime fallback: greedy on warm caches, flagged truncated.
        fallback = greedy_search_with_heuristics(
            candidates, evaluator, budget_bytes, budget=budget
        )
        return telemetry.finish(
            "ilp",
            fallback.configuration,
            budget_bytes,
            benefit=fallback.benefit,
            truncated=spent.reason,
            resumed=resumed,
        )

    greedy = greedy_search_with_heuristics(
        candidates, evaluator, budget_bytes, budget=budget
    )
    if greedy.benefit > ilp_benefit:
        config, benefit = greedy.configuration, greedy.benefit
    else:
        config, benefit = ilp_config, ilp_benefit
    if budget is not None:
        budget.note_best("ilp", budget_bytes, config, benefit=benefit)
    return telemetry.finish(
        "ilp",
        config,
        budget_bytes,
        benefit=benefit,
        truncated=greedy.truncated_reason,
        resumed=resumed or greedy.resumed,
    )
