"""Synthetic workloads of random XPath path expressions (Section VII-C).

The paper studies candidate generalization on "synthetic workloads
consisting of random XPath path expressions that occur in the data"
(Table III) and uses 9 synthetic queries to diversify the 20-query
train/test workload of Figures 4 and 5.

:func:`random_path_queries` samples rooted tag paths that actually occur
in a collection, truncates/wildcards them randomly, and attaches a
predicate whose comparison value is drawn from the data (so the queries
are selective and the paths indexable).
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

from repro.query.model import Query, WhereClause
from repro.query.workload import Workload
from repro.storage.database import Database
from repro.xpath.ast import Axis, Literal, LocationPath, Step


def _data_paths(database: Database, collection: str) -> List[Tuple[Tuple[str, ...], int]]:
    stats = database.runstats(collection)
    return sorted(stats.path_counts.items())


def _path_to_location(
    tag_path: Sequence[str], wildcard_at: Optional[int], descendant_at: Optional[int]
) -> LocationPath:
    steps = []
    for position, name in enumerate(tag_path):
        axis = Axis.DESCENDANT if position == descendant_at else Axis.CHILD
        if position == wildcard_at and not name.startswith("@"):
            name = "*"
        steps.append(Step(axis, name))
    return LocationPath(tuple(steps), absolute=True)


def random_path_queries(
    database: Database,
    collection: str,
    count: int,
    seed: int = 0,
    wildcard_probability: float = 0.25,
    descendant_probability: float = 0.2,
) -> List[Query]:
    """``count`` random single-predicate queries over paths occurring in
    the data.  Deterministic for a given seed."""
    rng = random.Random(seed)
    paths = [
        (path, count_)
        for path, count_ in _data_paths(database, collection)
        if len(path) >= 2 and not path[-1].startswith("@")
    ]
    if not paths:
        raise ValueError(f"collection {collection!r} has no indexable paths")
    stats = database.runstats(collection)
    queries: List[Query] = []
    for _ in range(count):
        tag_path, __ = paths[rng.randrange(len(paths))]
        # Only leaf-ish paths make useful value predicates; re-draw a few
        # times to find one with values.
        for __retry in range(5):
            summary = stats.summaries.get(tag_path)
            if summary is not None and (summary.numeric_sample or summary.string_sample):
                break
            tag_path, __ = paths[rng.randrange(len(paths))]
        wildcard_at = None
        if len(tag_path) > 2 and rng.random() < wildcard_probability:
            wildcard_at = rng.randrange(1, len(tag_path) - 1)
        descendant_at = None
        if len(tag_path) > 2 and rng.random() < descendant_probability:
            descendant_at = rng.randrange(1, len(tag_path))
        # Split into binding prefix (first step) + relative predicate path.
        location = _path_to_location(tag_path, wildcard_at, descendant_at)
        binding = LocationPath(location.steps[:1], absolute=True)
        relative = LocationPath(location.steps[1:], absolute=False)
        literal, op = _draw_predicate(stats, tag_path, rng)
        clause = WhereClause(relative, op, literal) if relative.steps else None
        where = (clause,) if clause else ()
        queries.append(
            Query(
                collection=collection,
                binding_path=binding,
                where=where,
                return_paths=(),
                text=f"synthetic:{location}{op}{literal}",
            )
        )
    return queries


def _draw_predicate(stats, tag_path, rng: random.Random) -> Tuple[Literal, str]:
    summary = stats.summaries.get(tag_path)
    if summary is not None and summary.numeric_sample and (
        not summary.string_sample or rng.random() < 0.5
    ):
        value = summary.numeric_sample[rng.randrange(len(summary.numeric_sample))]
        op = rng.choice(("=", ">", "<", ">=", "<="))
        return Literal(float(value)), op
    if summary is not None and summary.string_sample:
        value = summary.string_sample[rng.randrange(len(summary.string_sample))]
        return Literal(value), "="
    return Literal("missing-value"), "="


def synthetic_workload(
    database: Database,
    collection: str,
    count: int,
    seed: int = 0,
) -> Workload:
    """A workload of ``count`` random path queries."""
    queries = random_path_queries(database, collection, count, seed)
    return Workload.from_statements(queries)
