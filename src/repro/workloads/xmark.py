"""XMark-like benchmark: auction-site data and queries.

The paper's tech report [24] also evaluates on XMark [28].  XMark models a
single large auction-site document; we adapt it to the collection-of-
documents storage model (as DB2 would shred it across rows): ``IDOC``
holds item documents, ``PDOC`` person documents, and ``ADOC`` open-auction
documents.  The query set models XMark queries expressible in the
reproduction's subset (exact-match, range, wildcard and descendant
navigation).
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.query.workload import Workload
from repro.storage.database import Database

ITEM_COLLECTION = "IDOC"
PERSON_COLLECTION = "PDOC"
AUCTION_COLLECTION = "ADOC"

REGIONS = ("africa", "asia", "australia", "europe", "namerica", "samerica")
CITIES = ("Tampa", "Cairo", "Berlin", "Tokyo", "Lima", "Sydney", "Toronto")
EDUCATIONS = ("HighSchool", "College", "Graduate", "Other")


def item_document(i: int, rng: random.Random) -> str:
    region = REGIONS[rng.randrange(len(REGIONS))]
    quantity = rng.randrange(1, 10)
    categories = "".join(
        f'<incategory category="category{rng.randrange(50)}"/>'
        for _ in range(rng.randrange(1, 4))
    )
    return f"""<item id="item{i}">
  <location>{region}</location>
  <quantity>{quantity}</quantity>
  <name>Item name {i}</name>
  <payment>Creditcard</payment>
  <description>
    <parlist>
      <listitem><text>lorem ipsum {i} gold</text></listitem>
    </parlist>
  </description>
  {categories}
  <mailbox>
    <mail><from>person{rng.randrange(200)}</from><date>2007-0{1 + i % 9}-01</date></mail>
  </mailbox>
</item>"""


def person_document(i: int, rng: random.Random) -> str:
    city = CITIES[rng.randrange(len(CITIES))]
    income = round(rng.uniform(9_000.0, 250_000.0), 2)
    education = EDUCATIONS[rng.randrange(len(EDUCATIONS))]
    interests = "".join(
        f'<interest category="category{rng.randrange(50)}"/>'
        for _ in range(rng.randrange(0, 4))
    )
    return f"""<person id="person{i}">
  <name>Person {i}</name>
  <emailaddress>mailto:person{i}@example.com</emailaddress>
  <address>
    <street>{rng.randrange(1, 99)} Main St</street>
    <city>{city}</city>
    <country>United States</country>
  </address>
  <profile income="{income}">
    {interests}
    <education>{education}</education>
    <business>No</business>
  </profile>
</person>"""


def auction_document(i: int, num_items: int, num_persons: int, rng: random.Random) -> str:
    initial = round(rng.uniform(1.0, 200.0), 2)
    bidders = []
    current = initial
    for _ in range(rng.randrange(0, 5)):
        increase = round(rng.uniform(1.0, 25.0), 2)
        current = round(current + increase, 2)
        bidders.append(
            f"<bidder><increase>{increase}</increase>"
            f"<personref person=\"person{rng.randrange(max(1, num_persons))}\"/></bidder>"
        )
    return f"""<open_auction id="auction{i}">
  <initial>{initial}</initial>
  {''.join(bidders)}
  <current>{current}</current>
  <itemref item="item{rng.randrange(max(1, num_items))}"/>
  <seller person="person{rng.randrange(max(1, num_persons))}"/>
  <quantity>{rng.randrange(1, 5)}</quantity>
</open_auction>"""


def build_database(
    num_items: int = 200,
    num_persons: int = 200,
    num_auctions: int = 200,
    seed: int = 7,
    database: Optional[Database] = None,
) -> Database:
    """Generate an XMark-like database (three collections, seeded)."""
    rng = random.Random(seed)
    db = database or Database("xmark")
    db.create_collection(ITEM_COLLECTION)
    db.create_collection(PERSON_COLLECTION)
    db.create_collection(AUCTION_COLLECTION)
    for i in range(num_items):
        db.insert_document(ITEM_COLLECTION, item_document(i, rng))
    for i in range(num_persons):
        db.insert_document(PERSON_COLLECTION, person_document(i, rng))
    for i in range(num_auctions):
        db.insert_document(
            AUCTION_COLLECTION, auction_document(i, num_items, num_persons, rng)
        )
    return db


def xmark_queries(seed: int = 7) -> List[str]:
    """XMark-flavoured queries within the reproduction's subset."""
    rng = random.Random(seed + 1)
    person = f"person{rng.randrange(200)}"
    item = f"item{rng.randrange(200)}"
    category = f"category{rng.randrange(50)}"
    return [
        # XMark Q1: the name of the person with a given id
        f"""for $p in PERSONS('PDOC')/person
            where $p/@id = "{person}"
            return $p/name""",
        # XMark Q2-ish: initial increases of open auctions
        """for $a in AUCTIONS('ADOC')/open_auction
           where $a/bidder/increase > 20
           return $a/itemref""",
        # XMark Q5-ish: auctions whose current price exceeds a threshold
        """for $a in AUCTIONS('ADOC')/open_auction[current >= 100]
           return $a/seller""",
        # items of a region
        """for $i in ITEMS('IDOC')/item
           where $i/location = "europe"
           return $i/name""",
        # category membership via attribute
        f"""for $i in ITEMS('IDOC')/item
            where $i/incategory/@category = "{category}"
            return $i/name""",
        # wildcard navigation into the profile
        """for $p in PERSONS('PDOC')/person
           where $p/profile/@income > 100000 and $p/*/city = "Tampa"
           return $p/emailaddress""",
        # descendant navigation: text anywhere under the description
        """for $i in ITEMS('IDOC')/item
           where $i/description//text = "lorem ipsum 7 gold"
           return $i/name""",
        # auction for a given item
        f"""for $a in AUCTIONS('ADOC')/open_auction
            where $a/itemref/@item = "{item}"
            return $a/current""",
    ]


def xmark_workload(seed: int = 7) -> Workload:
    """The XMark-style workload."""
    return Workload.from_statements(xmark_queries(seed))
