"""Benchmark workloads: TPoX-like, XMark-like, and synthetic generators.

All generators are seeded and deterministic, producing laptop-scale
databases with the same vocabulary and query shapes as the paper's
evaluation (Section VII).
"""

from repro.workloads import drift, recursive, stream, synthetic, tpox, xmark
from repro.workloads.drift import drift_workload
from repro.workloads.recursive import recursive_workload
from repro.workloads.stream import stream_profile, synthetic_stream
from repro.workloads.synthetic import random_path_queries, synthetic_workload
from repro.workloads.tpox import build_database as build_tpox_database
from repro.workloads.tpox import tpox_queries, tpox_updates, tpox_workload
from repro.workloads.xmark import build_database as build_xmark_database
from repro.workloads.xmark import xmark_queries, xmark_workload

__all__ = [
    "build_tpox_database",
    "build_xmark_database",
    "drift",
    "drift_workload",
    "random_path_queries",
    "recursive",
    "recursive_workload",
    "stream",
    "stream_profile",
    "synthetic",
    "synthetic_stream",
    "synthetic_workload",
    "tpox",
    "tpox_queries",
    "tpox_updates",
    "tpox_workload",
    "xmark",
    "xmark_queries",
    "xmark_workload",
]
