"""Workload drift: generate variations of a training workload.

Section VI-B motivates top down search with exactly this scenario: "the
DBA has assembled a representative training workload, but the actual
workload may be a variation on this training workload ... the rich
structure of XML allows users to pose queries that retrieve elements from
the data that are reachable by different paths with slight variations."

:func:`drift_workload` produces such variations deterministically:

* **literal drift** -- a comparison keeps its path but compares against a
  different value drawn from the data;
* **sibling drift** -- a where-clause path is redirected to a *sibling*
  element (same parent path, different final tag), e.g.
  ``SecInfo/*/Sector`` -> ``SecInfo/*/Industry``.  Specific indexes on the
  original path are useless for the drifted query; general indexes
  (``/Security//*``) still apply.

:func:`drift_texts` lifts the same transformation to *statement texts*:
it parses, drifts, and unparses each query back into replayable
statement syntax, so any recorded stream (``workloads/stream.py``) can
be replayed through the online daemon as its drifted twin.
"""

from __future__ import annotations

import random
from typing import List, Optional, Tuple

from repro.query.model import Query, WhereClause
from repro.query.workload import Workload, WorkloadEntry
from repro.storage.database import Database
from repro.xpath.ast import Literal, LocationPath, Step
from repro.xpath.patterns import pattern_from_path


def drift_workload(
    database: Database,
    workload: Workload,
    seed: int = 0,
    literal_probability: float = 0.5,
    sibling_probability: float = 0.5,
) -> Workload:
    """Return a drifted copy of ``workload`` (non-queries pass through)."""
    rng = random.Random(seed)
    entries: List[WorkloadEntry] = []
    for entry in workload:
        statement = entry.statement
        if isinstance(statement, Query):
            statement = _drift_query(
                database, statement, rng, literal_probability, sibling_probability
            )
        entries.append(WorkloadEntry(statement, entry.frequency))
    return Workload(entries)


def _drift_query(
    database: Database,
    query: Query,
    rng: random.Random,
    literal_probability: float,
    sibling_probability: float,
) -> Query:
    if query.collection not in database.collections:
        return query
    stats = database.runstats(query.collection)
    skeleton = query.binding_path.without_predicates()
    new_where: List[WhereClause] = []
    changed = False
    for clause in query.where:
        drifted = clause
        if clause.is_comparison and rng.random() < sibling_probability:
            sibling = _sibling_clause(stats, skeleton, clause, rng)
            if sibling is not None:
                drifted = sibling
                changed = True
        if (
            drifted is clause
            and clause.is_comparison
            and rng.random() < literal_probability
        ):
            fresh = _fresh_literal(stats, skeleton, clause, rng)
            if fresh is not None:
                drifted = WhereClause(clause.path, clause.op, fresh)
                changed = True
        new_where.append(drifted)
    if not changed:
        return query
    return Query(
        collection=query.collection,
        binding_path=query.binding_path,
        where=tuple(new_where),
        return_paths=query.return_paths,
        text=f"drifted:{query.describe()}",
    )


def unparse_query(query: Query) -> str:
    """Serialize a (possibly drifted) :class:`Query` back into statement
    syntax that :func:`~repro.query.parser.parse_statement` accepts.
    Drifted queries carry a non-parseable ``text`` tag, so replaying one
    requires rebuilding the text from the AST."""
    parts = [f"for $v in C('{query.collection}'){query.binding_path}"]
    if query.where:
        clauses = []
        for clause in query.where:
            text = f"$v/{clause.path}" if str(clause.path) else "$v"
            if clause.is_comparison:
                text += f" {clause.op} {clause.literal}"
            clauses.append(text)
        parts.append("where " + " and ".join(clauses))
    if query.aggregates:
        parts.append(
            "return "
            + ", ".join(
                f"{agg.function}($v/{agg.path})" for agg in query.aggregates
            )
        )
    elif query.return_paths:
        parts.append(
            "return " + ", ".join(f"$v/{path}" for path in query.return_paths)
        )
    return " ".join(parts)


def drift_texts(
    database: Database,
    texts: List[str],
    seed: int = 0,
    literal_probability: float = 0.5,
    sibling_probability: float = 0.5,
) -> List[str]:
    """Drift a replayable stream: parse each text, apply the same
    literal/sibling drift as :func:`drift_workload` against the live
    data, and unparse the result back into statement syntax.
    Non-queries and unparseable texts pass through unchanged, so the
    drifted stream lines up arrival-for-arrival with the original."""
    from repro.query.parser import QuerySyntaxError, parse_statement

    rng = random.Random(seed)
    drifted: List[str] = []
    for text in texts:
        try:
            statement = parse_statement(text)
        except QuerySyntaxError:
            drifted.append(text)
            continue
        if not isinstance(statement, Query):
            drifted.append(text)
            continue
        moved = _drift_query(
            database, statement, rng, literal_probability, sibling_probability
        )
        drifted.append(text if moved is statement else unparse_query(moved))
    return drifted


def _full_pattern(skeleton: LocationPath, clause: WhereClause):
    full = skeleton.concat(clause.path) if clause.path.steps else skeleton
    return pattern_from_path(full)


def _sibling_clause(
    stats, skeleton: LocationPath, clause: WhereClause, rng: random.Random
) -> Optional[WhereClause]:
    """Redirect the clause to a sibling leaf (same parent tag path)."""
    if not clause.path.steps:
        return None
    pattern = _full_pattern(skeleton, clause)
    matches = [path for path, __ in stats.matching_paths(pattern)]
    if not matches:
        return None
    original = matches[rng.randrange(len(matches))]
    parent = original[:-1]
    siblings = sorted(
        path[-1]
        for path in stats.path_counts
        if len(path) == len(original)
        and path[:-1] == parent
        and path[-1] != original[-1]
        and not path[-1].startswith("@")
    )
    if not siblings:
        return None
    new_tag = siblings[rng.randrange(len(siblings))]
    last = clause.path.steps[-1]
    if last.name_test.startswith("@"):
        return None
    new_steps = clause.path.steps[:-1] + (Step(last.axis, new_tag),)
    new_path = LocationPath(new_steps, absolute=False)
    # draw a value for the new target so the query still selects something
    new_pattern = _full_pattern(skeleton, WhereClause(new_path))
    literal = _draw_value(stats, new_pattern, clause.op or "=", rng)
    if literal is None:
        return None
    op = clause.op if clause.op is not None else "="
    return WhereClause(new_path, op, literal)


def _fresh_literal(
    stats, skeleton: LocationPath, clause: WhereClause, rng: random.Random
) -> Optional[Literal]:
    pattern = _full_pattern(skeleton, clause)
    return _draw_value(stats, pattern, clause.op or "=", rng)


def _draw_value(stats, pattern, op: str, rng: random.Random) -> Optional[Literal]:
    matches = stats.matching_paths(pattern)
    if not matches:
        return None
    path, __ = matches[rng.randrange(len(matches))]
    summary = stats.summaries.get(path)
    if summary is None:
        return None
    numeric_ops = op in ("<", "<=", ">", ">=")
    if summary.numeric_sample and (numeric_ops or not summary.string_sample):
        value = summary.numeric_sample[rng.randrange(len(summary.numeric_sample))]
        return Literal(float(value))
    if summary.string_sample and not numeric_ops:
        return Literal(summary.string_sample[rng.randrange(len(summary.string_sample))])
    return None
