"""Recursive-document benchmark: a bill-of-materials collection.

The paper calls out that "XML elements can be recursive" as one of the
challenges XML index recommendation faces (Section I): with recursion, a
tag can occur at many depths, descendant-axis patterns match unboundedly
many rooted paths, and specific/general index trade-offs get sharper.

This generator produces ``<Part>`` documents whose ``<SubParts>`` nest
further ``<Part>`` elements to a random depth, plus queries that navigate
with ``//``.
"""

from __future__ import annotations

import random
from typing import List, Optional

from repro.query.workload import Workload
from repro.storage.database import Database

PART_COLLECTION = "PARTS"

MATERIALS = ("steel", "aluminium", "copper", "plastic", "carbon")


def _part(i: int, depth: int, rng: random.Random) -> str:
    material = MATERIALS[rng.randrange(len(MATERIALS))]
    weight = round(rng.uniform(0.1, 50.0), 2)
    children = ""
    if depth > 0:
        subparts = "".join(
            _part(i * 10 + k, depth - 1, rng)
            for k in range(rng.randrange(0, 3))
        )
        if subparts:
            children = f"<SubParts>{subparts}</SubParts>"
    return (
        f'<Part id="p{i}_{depth}">'
        f"<Material>{material}</Material>"
        f"<Weight>{weight}</Weight>"
        f"{children}"
        f"</Part>"
    )


def build_database(
    num_parts: int = 150,
    max_depth: int = 4,
    seed: int = 23,
    database: Optional[Database] = None,
) -> Database:
    """Generate a bill-of-materials database with recursive Part nesting."""
    rng = random.Random(seed)
    db = database or Database("bom")
    db.create_collection(PART_COLLECTION)
    for i in range(num_parts):
        depth = rng.randrange(1, max_depth + 1)
        db.insert_document(PART_COLLECTION, _part(i, depth, rng))
    return db


def recursive_queries(seed: int = 23) -> List[str]:
    """Queries exercising descendant navigation over the recursion."""
    rng = random.Random(seed + 1)
    material = MATERIALS[rng.randrange(len(MATERIALS))]
    return [
        # material at ANY nesting depth
        f"""for $p in PARTS('PARTS')/Part
            where $p//Material = "{material}"
            return $p""",
        # heavy sub-parts, at least one level down
        """for $p in PARTS('PARTS')/Part
           where $p/SubParts//Weight > 45 return $p""",
        # top-level material only (contrast with the descendant query)
        f"""for $p in PARTS('PARTS')/Part
            where $p/Material = "{material}"
            return $p""",
        # deep id lookup
        """for $p in PARTS('PARTS')/Part
           where $p//Part/@id = "p70_1" return $p""",
    ]


def recursive_workload(seed: int = 23) -> Workload:
    return Workload.from_statements(recursive_queries(seed))
