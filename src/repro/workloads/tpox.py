"""TPoX-like benchmark: data generator and query set.

The paper evaluates on the TPoX benchmark [10] (financial transaction
processing over XML): *Security* documents (the ``SDOC`` collection, used
by the paper's running examples), FIXML *Order* documents (``ODOC``), and
customer/account documents (``CDOC``).  We generate seeded, laptop-scale
documents with the same vocabulary as the paper's examples
(``Symbol``, ``Yield``, ``SecInfo/*/Sector``, ...) and model the 11-query
workload of the TPoX specification within the reproduction's mini-XQuery
subset.

The ``SecInfo`` subtree intentionally varies by security type
(``StockInformation`` / ``FundInformation`` / ``BondInformation``), which is
what makes wildcard patterns like ``/Security/SecInfo/*/Sector``
necessary -- exactly the paper's candidate C2.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence

from repro.query.workload import Workload
from repro.storage.database import Database

SECURITY_COLLECTION = "SDOC"
ORDER_COLLECTION = "ODOC"
CUSTOMER_COLLECTION = "CDOC"

SECTORS = (
    "Energy",
    "Technology",
    "Finance",
    "Healthcare",
    "Utilities",
    "Materials",
    "Industrial",
    "ConsumerGoods",
)
INDUSTRIES = (
    "OilAndGas",
    "Software",
    "Banking",
    "Pharmaceuticals",
    "Electricity",
    "Chemicals",
    "Machinery",
    "Retail",
)
SECURITY_TYPES = ("Stock", "Fund", "Bond")
CURRENCIES = ("USD", "EUR", "GBP", "JPY", "CAD")
COUNTRIES = ("US", "DE", "UK", "JP", "CA", "FR", "EG")


def symbol_for(i: int) -> str:
    """Deterministic ticker symbol for security ``i``."""
    letters = "ABCDEFGHIJKLMNOPQRSTUVWXYZ"
    first = letters[i % 26]
    second = letters[(i // 26) % 26]
    return f"{first}{second}{i:04d}"


def security_document(i: int, rng: random.Random) -> str:
    """One TPoX-like Security document."""
    sector = SECTORS[rng.randrange(len(SECTORS))]
    industry = INDUSTRIES[rng.randrange(len(INDUSTRIES))]
    sec_type = SECURITY_TYPES[rng.randrange(len(SECURITY_TYPES))]
    info_tag = f"{sec_type}Information"
    yield_value = round(rng.uniform(0.1, 9.9), 2)
    pe = round(rng.uniform(4.0, 60.0), 1)
    last = round(rng.uniform(5.0, 500.0), 2)
    ask = round(last * rng.uniform(1.0, 1.01), 2)
    bid = round(last * rng.uniform(0.99, 1.0), 2)
    shares = rng.randrange(100_000, 50_000_000)
    return f"""<Security id="{i}">
  <Symbol>{symbol_for(i)}</Symbol>
  <Name>Company {i}</Name>
  <SecurityType>{sec_type}</SecurityType>
  <SecInfo>
    <{info_tag}>
      <Sector>{sector}</Sector>
      <Industry>{industry}</Industry>
      <OutstandingShares>{shares}</OutstandingShares>
    </{info_tag}>
  </SecInfo>
  <Price>
    <LastTrade><Rate>{last}</Rate><Date>2007-06-{1 + i % 28:02d}</Date></LastTrade>
    <Ask>{ask}</Ask>
    <Bid>{bid}</Bid>
  </Price>
  <Yield>{yield_value}</Yield>
  <PE>{pe}</PE>
</Security>"""


def order_document(i: int, num_securities: int, rng: random.Random) -> str:
    """One FIXML-like Order document."""
    sym = symbol_for(rng.randrange(max(1, num_securities)))
    qty = rng.randrange(10, 5000)
    px = round(rng.uniform(5.0, 500.0), 2)
    account = f"ACCT{rng.randrange(max(1, num_securities // 2)):05d}"
    side = rng.choice(("1", "2"))
    return f"""<FIXML>
  <Order ID="{100000 + i}" Acct="{account}">
    <Instrmt Sym="{sym}" SecTyp="CS"/>
    <OrdQty Qty="{qty}"/>
    <Px>{px}</Px>
    <Side>{side}</Side>
    <OrdTyp>2</OrdTyp>
  </Order>
</FIXML>"""


def customer_document(i: int, num_securities: int, rng: random.Random) -> str:
    """One customer/accounts document."""
    nationality = COUNTRIES[rng.randrange(len(COUNTRIES))]
    accounts = []
    for account_position in range(rng.randrange(1, 4)):
        balance = round(rng.uniform(100.0, 1_000_000.0), 2)
        currency = CURRENCIES[rng.randrange(len(CURRENCIES))]
        positions = []
        for _ in range(rng.randrange(1, 5)):
            sym = symbol_for(rng.randrange(max(1, num_securities)))
            quantity = rng.randrange(1, 2000)
            positions.append(
                f"<Position><Symbol>{sym}</Symbol>"
                f"<Quantity>{quantity}</Quantity></Position>"
            )
        accounts.append(f"""
    <Account id="A{i}_{account_position}">
      <Balance><OnlineActualBal><Amt>{balance}</Amt></OnlineActualBal></Balance>
      <Currency>{currency}</Currency>
      <Holdings>{''.join(positions)}</Holdings>
    </Account>""")
    return f"""<Customer id="C{i:06d}">
  <Name><First>First{i}</First><Last>Last{i}</Last></Name>
  <Nationality>{nationality}</Nationality>
  <CountryOfResidence>{nationality}</CountryOfResidence>
  <Accounts>{''.join(accounts)}
  </Accounts>
</Customer>"""


def build_database(
    num_securities: int = 300,
    num_orders: int = 300,
    num_customers: int = 150,
    seed: int = 42,
    database: Optional[Database] = None,
) -> Database:
    """Generate a TPoX-like database (all three collections, seeded)."""
    rng = random.Random(seed)
    db = database or Database("tpox")
    db.create_collection(SECURITY_COLLECTION)
    db.create_collection(ORDER_COLLECTION)
    db.create_collection(CUSTOMER_COLLECTION)
    for i in range(num_securities):
        db.insert_document(SECURITY_COLLECTION, security_document(i, rng))
    for i in range(num_orders):
        db.insert_document(
            ORDER_COLLECTION, order_document(i, num_securities, rng)
        )
    for i in range(num_customers):
        db.insert_document(
            CUSTOMER_COLLECTION, customer_document(i, num_securities, rng)
        )
    return db


def tpox_queries(num_securities: int = 300, seed: int = 42) -> List[str]:
    """The 11-query TPoX-style workload, parameterized with values that
    occur in a database generated with the same ``num_securities``/``seed``.

    Q1 and Q4 are the paper's running examples (Section III).
    """
    rng = random.Random(seed + 1)
    sym_a = symbol_for(rng.randrange(num_securities))
    sym_b = symbol_for(rng.randrange(num_securities))
    sym_c = symbol_for(rng.randrange(num_securities))
    account = f"ACCT{rng.randrange(max(1, num_securities // 2)):05d}"
    customer = f"C{rng.randrange(150):06d}"
    return [
        # Q1 get_security (paper Q1)
        f"""for $sec in SECURITY('SDOC')/Security
            where $sec/Symbol = "{sym_a}"
            return $sec""",
        # Q2 get_security_price
        f"""for $sec in SECURITY('SDOC')/Security
            where $sec/Symbol = "{sym_b}"
            return $sec/Price/LastTrade/Rate""",
        # Q3 get_security_basics
        f"""for $sec in SECURITY('SDOC')/Security
            where $sec/Symbol = "{sym_c}"
            return <Basics>{{$sec/Name}}{{$sec/SecurityType}}</Basics>""",
        # Q4 search_securities (paper Q2)
        """for $sec in SECURITY('SDOC')/Security[Yield>4.5]
           where $sec/SecInfo/*/Sector = "Energy"
           return <Security>{$sec/Name}</Security>""",
        # Q5 security_price_range
        """for $sec in SECURITY('SDOC')/Security
           where $sec/Price/Ask >= 100 and $sec/Price/Ask <= 120
           return $sec/Symbol""",
        # Q6 high_pe_stocks
        """for $sec in SECURITY('SDOC')/Security[SecurityType="Stock"]
           where $sec/PE > 45
           return <Hit>{$sec/Symbol}{$sec/PE}</Hit>""",
        # Q7 get_order
        """for $o in ORDER('ODOC')/FIXML/Order
           where $o/@ID = "100042"
           return $o""",
        # Q8 account_orders
        f"""for $o in ORDER('ODOC')/FIXML/Order
            where $o/@Acct = "{account}"
            return $o/Instrmt""",
        # Q9 big_orders_for_symbol
        f"""for $o in ORDER('ODOC')/FIXML/Order
            where $o/Instrmt/@Sym = "{sym_a}" and $o/OrdQty/@Qty > 1000
            return $o/Px""",
        # Q10 get_customer_profile
        f"""for $c in CUSTACC('CDOC')/Customer
            where $c/@id = "{customer}"
            return $c/Name""",
        # Q11 rich_accounts_by_country
        """for $c in CUSTACC('CDOC')/Customer
           where $c/Nationality = "US"
             and $c/Accounts/Account/Balance/OnlineActualBal/Amt > 900000
           return $c/Name/Last""",
    ]


def tpox_extended_queries(num_securities: int = 300, seed: int = 42) -> List[str]:
    """Extra TPoX-style queries using let bindings and aggregates
    (modeled on the spec's customer_max_order / account_balances shapes).
    Kept separate from the 11-query set so the paper's experiments stay
    byte-stable."""
    rng = random.Random(seed + 3)
    sym = symbol_for(rng.randrange(num_securities))
    return [
        # customer_max_order: largest order quantity for a symbol
        f"""for $o in ORDER('ODOC')/FIXML/Order
            let $q := $o/OrdQty/@Qty
            where $o/Instrmt/@Sym = "{sym}"
            return max($q)""",
        # account_balances: balances of a customer's accounts
        """for $c in CUSTACC('CDOC')/Customer
           let $amt := $c/Accounts/Account/Balance/OnlineActualBal/Amt
           where $c/Nationality = "US"
           return sum($amt)""",
        # portfolio size: number of positions held
        """for $c in CUSTACC('CDOC')/Customer
           where $c/CountryOfResidence = "DE"
           return count($c/Accounts/Account/Holdings/Position)""",
        # average ask across a sector
        """for $s in SECURITY('SDOC')/Security
           where $s/SecInfo/*/Sector = "Finance"
           return avg($s/Price/Ask)""",
    ]


def tpox_join_queries(num_securities: int = 300, seed: int = 42) -> List[str]:
    """Cross-document TPoX-style queries (the spec joins orders and
    accounts to securities).  Kept separate from the 11-query set so the
    paper's experiments stay byte-stable."""
    rng = random.Random(seed + 4)
    sector = SECTORS[rng.randrange(len(SECTORS))]
    return [
        # orders joined to their security's sector
        f"""for $o in ORDER('ODOC')/FIXML/Order, $s in SECURITY('SDOC')/Security
            where $o/Instrmt/@Sym = $s/Symbol
              and $s/SecInfo/*/Sector = "{sector}"
            return <hit>{{$o/@ID}}{{$s/Name}}</hit>""",
        # large orders joined to high-yield securities
        """for $o in ORDER('ODOC')/FIXML/Order, $s in SECURITY('SDOC')/Security
           where $o/Instrmt/@Sym = $s/Symbol
             and $o/OrdQty/@Qty > 4000 and $s/Yield > 8
           return <hit>{$o/@ID}{$s/Symbol}</hit>""",
        # customer holdings joined to securities
        """for $c in CUSTACC('CDOC')/Customer, $s in SECURITY('SDOC')/Security
           where $c/Accounts/Account/Holdings/Position/Symbol = $s/Symbol
             and $s/PE > 55
           return <hit>{$c/@id}{$s/Symbol}</hit>""",
    ]


def tpox_updates(
    count: int = 4, num_securities: int = 300, seed: int = 42
) -> List[str]:
    """Insert/delete statements for maintenance-cost experiments."""
    rng = random.Random(seed + 2)
    statements: List[str] = []
    for i in range(count):
        if i % 2 == 0:
            doc = security_document(num_securities + 1000 + i, rng)
            flat = " ".join(doc.split())
            statements.append(f"insert into {SECURITY_COLLECTION} value '{flat}'")
        else:
            sym = symbol_for(rng.randrange(num_securities))
            statements.append(
                f'delete from {SECURITY_COLLECTION} where /Security/Symbol = "{sym}"'
            )
    return statements


def tpox_workload(
    num_securities: int = 300,
    seed: int = 42,
    include_updates: bool = False,
    update_frequency: float = 1.0,
) -> Workload:
    """The standard experimental workload: 11 queries (optionally plus
    updates with the given frequency)."""
    workload = Workload.from_statements(tpox_queries(num_securities, seed))
    if include_updates:
        for statement in tpox_updates(num_securities=num_securities, seed=seed):
            workload.add(statement, frequency=update_frequency)
    return workload
