"""Synthetic high-volume statement streams (the PR 7 scale setting).

Real tuning inputs are *streams*: thousands of statement arrivals drawn
from a few dozen application templates, literals drawn from finite
domains (tickers, accounts, categories), popularity roughly Zipfian.
That shape is exactly what workload compression exploits -- exact
duplicates collapse, literal variants share templates, and coverage
clustering pools the rest -- so the generator here produces it
deterministically: a seeded mix of TPoX and XMark query templates (plus
a small update mix) at any requested length.

Used by the BENCH_PR7 10k-statement benchmark (``record_bench.py
--ilp-sweep``) and the compression tests.  :func:`drifting_stream`
produces the phase-shifted variant the online daemon's drift-replay
benchmark (``--serve-sweep``, BENCH_PR8) and ``repro serve`` replay;
:func:`~repro.workloads.drift.drift_texts` turns any recorded stream
into its sibling/literal-drifted replica.
"""

from __future__ import annotations

import random
from typing import Callable, List, Tuple

from repro.query.workload import Workload
from repro.workloads.tpox import security_document, symbol_for
from repro.workloads.xmark import CITIES, REGIONS

#: Finite literal pools: quantized thresholds keep the number of
#: *distinct* statement texts bounded (streams repeat themselves).
_YIELDS = ("2.5", "3.5", "4.5", "5.5", "6.5", "7.5")
_ASK_LOWS = ("60", "80", "100", "120", "140", "160", "180")
_PES = ("20", "30", "40", "45", "50")
_QTYS = ("500", "1000", "2000")
_AMOUNTS = ("500000", "750000", "900000")
_INCREASES = ("10", "20", "30")
_CURRENTS = ("50", "100", "150")
_INCOMES = ("50000", "100000", "150000")
_SECTORS = (
    "Energy", "Technology", "Finance", "Healthcare",
    "Utilities", "Materials", "Industrial", "ConsumerGoods",
)
_COUNTRIES = ("US", "DE", "UK", "JP", "CA")


def _templates(
    num_securities: int,
) -> List[Callable[[random.Random], str]]:
    """The application templates: each draws its literals from a finite
    pool, so a long stream revisits the same statement texts."""
    def sym(rng: random.Random) -> str:
        return symbol_for(rng.randrange(num_securities))

    def account(rng: random.Random) -> str:
        return f"ACCT{rng.randrange(max(1, num_securities // 2)):05d}"

    return [
        # -- TPoX side ------------------------------------------------
        lambda rng: (
            f"for $s in SECURITY('SDOC')/Security "
            f'where $s/Symbol = "{sym(rng)}" return $s'
        ),
        lambda rng: (
            f"for $s in SECURITY('SDOC')/Security "
            f'where $s/Symbol = "{sym(rng)}" '
            f"return $s/Price/LastTrade/Rate"
        ),
        lambda rng: (
            f"for $s in SECURITY('SDOC')/Security"
            f"[Yield>{rng.choice(_YIELDS)}] "
            f'where $s/SecInfo/*/Sector = "{rng.choice(_SECTORS)}" '
            f"return $s/Name"
        ),
        lambda rng: (
            lambda low: (
                f"for $s in SECURITY('SDOC')/Security "
                f"where $s/Price/Ask >= {low} "
                f"and $s/Price/Ask <= {int(low) + 20} "
                f"return $s/Symbol"
            )
        )(rng.choice(_ASK_LOWS)),
        lambda rng: (
            f"for $s in SECURITY('SDOC')/Security"
            f'[SecurityType="Stock"] '
            f"where $s/PE > {rng.choice(_PES)} return $s/Symbol"
        ),
        lambda rng: (
            f"for $o in ORDER('ODOC')/FIXML/Order "
            f'where $o/@ID = "{100000 + rng.randrange(300)}" return $o'
        ),
        lambda rng: (
            f"for $o in ORDER('ODOC')/FIXML/Order "
            f'where $o/@Acct = "{account(rng)}" return $o/Instrmt'
        ),
        lambda rng: (
            f"for $o in ORDER('ODOC')/FIXML/Order "
            f'where $o/Instrmt/@Sym = "{sym(rng)}" '
            f"and $o/OrdQty/@Qty > {rng.choice(_QTYS)} return $o/Px"
        ),
        lambda rng: (
            f"for $c in CUSTACC('CDOC')/Customer "
            f'where $c/@id = "C{rng.randrange(150):06d}" return $c/Name'
        ),
        lambda rng: (
            f"for $c in CUSTACC('CDOC')/Customer "
            f'where $c/Nationality = "{rng.choice(_COUNTRIES)}" '
            f"and $c/Accounts/Account/Balance/OnlineActualBal/Amt > "
            f"{rng.choice(_AMOUNTS)} return $c/Name/Last"
        ),
        # -- XMark side -----------------------------------------------
        lambda rng: (
            f"for $p in PERSONS('PDOC')/person "
            f'where $p/@id = "person{rng.randrange(200)}" return $p/name'
        ),
        lambda rng: (
            f"for $a in AUCTIONS('ADOC')/open_auction "
            f"where $a/bidder/increase > {rng.choice(_INCREASES)} "
            f"return $a/itemref"
        ),
        lambda rng: (
            f"for $a in AUCTIONS('ADOC')/open_auction"
            f"[current >= {rng.choice(_CURRENTS)}] return $a/seller"
        ),
        lambda rng: (
            f"for $i in ITEMS('IDOC')/item "
            f'where $i/location = "{rng.choice(REGIONS)}" return $i/name'
        ),
        lambda rng: (
            f"for $i in ITEMS('IDOC')/item "
            f'where $i/incategory/@category = "category{rng.randrange(50)}" '
            f"return $i/name"
        ),
        lambda rng: (
            f"for $p in PERSONS('PDOC')/person "
            f"where $p/profile/@income > {rng.choice(_INCOMES)} "
            f'and $p/*/city = "{rng.choice(CITIES)}" '
            f"return $p/emailaddress"
        ),
        lambda rng: (
            f"for $a in AUCTIONS('ADOC')/open_auction "
            f'where $a/itemref/@item = "item{rng.randrange(200)}" '
            f"return $a/current"
        ),
    ]


def synthetic_stream(
    num_statements: int = 10_000,
    seed: int = 0,
    num_securities: int = 120,
    update_fraction: float = 0.02,
) -> Workload:
    """A seeded TPoX+XMark statement stream of ``num_statements``
    arrivals (each with frequency 1 -- compression is the caller's job).

    Template popularity is Zipfian (template ``k`` drawn with weight
    ``1/(k+1)``); ``update_fraction`` of arrivals are update statements
    (security inserts and symbol deletes) so maintenance costs
    participate.  Deterministic in ``seed``.
    """
    rng = random.Random(seed)
    templates = _templates(num_securities)
    weights = [1.0 / (rank + 1) for rank in range(len(templates))]
    texts: List[str] = []
    for _ in range(num_statements):
        if rng.random() < update_fraction:
            if rng.random() < 0.5:
                doc = security_document(
                    num_securities + 1000 + rng.randrange(64), rng
                )
                flat = " ".join(doc.split())
                texts.append(f"insert into SDOC value '{flat}'")
            else:
                texts.append(
                    f"delete from SDOC where /Security/Symbol = "
                    f'"{symbol_for(rng.randrange(num_securities))}"'
                )
        else:
            template = rng.choices(templates, weights=weights)[0]
            texts.append(template(rng))
    return Workload.from_statements(texts)


def drifting_stream(
    num_statements: int = 600,
    seed: int = 0,
    num_securities: int = 120,
    phases: int = 3,
    update_fraction: float = 0.0,
) -> Tuple[List[str], List[int]]:
    """A replayable *drifting* statement stream (the PR 8 online-daemon
    setting): arrivals are split into ``phases`` equal segments, and
    phase ``p`` draws only from its own disjoint slice of the template
    list (Zipfian within the slice).  The coverage-signature
    distribution is therefore stationary inside a phase and shifts
    sharply at each boundary -- exactly the shape the daemon's drift
    detector gates on.

    Returns ``(texts, boundaries)`` where ``boundaries[p]`` is the index
    of phase ``p``'s first arrival.  Deterministic in ``seed``; replaying
    the same stream twice drives the daemon through the same cycles.
    """
    if phases <= 0:
        raise ValueError(f"phases must be positive, got {phases}")
    rng = random.Random(seed)
    templates = _templates(num_securities)
    if phases > len(templates):
        raise ValueError(
            f"at most {len(templates)} phases (one disjoint template "
            f"slice each), got {phases}"
        )
    slice_size = len(templates) // phases
    per_phase = num_statements // phases
    texts: List[str] = []
    boundaries: List[int] = []
    for phase in range(phases):
        boundaries.append(len(texts))
        pool = templates[phase * slice_size:(phase + 1) * slice_size]
        weights = [1.0 / (rank + 1) for rank in range(len(pool))]
        count = per_phase if phase < phases - 1 else num_statements - len(texts)
        for _ in range(count):
            if update_fraction > 0 and rng.random() < update_fraction:
                texts.append(
                    f"delete from SDOC where /Security/Symbol = "
                    f'"{symbol_for(rng.randrange(num_securities))}"'
                )
            else:
                template = rng.choices(pool, weights=weights)[0]
                texts.append(template(rng))
    return texts, boundaries


def stream_profile(workload: Workload) -> Tuple[int, int]:
    """(arrivals, distinct statement texts) of a stream -- the headroom
    exact compression alone can reclaim."""
    return (
        len(workload),
        len({entry.statement.describe() for entry in workload}),
    )
